"""Index size accounting.

The paper reports index sizes in MB (Figures 6(a), 13(a)) and only
reports a technique on a dataset when its index fits in the machine's
24 GB of RAM (§4.1). We measure our Python indexes with a recursive
``sys.getsizeof`` walk (numpy buffers counted via ``nbytes``), and the
harness applies a scaled-down residency budget the same way.

Absolute bytes are inflated by CPython object headers relative to the
paper's packed C++ structures; the *relative* ordering across
techniques — the only thing the figures compare — is preserved.
"""

from __future__ import annotations

import sys
from typing import Any

import numpy as np

#: Default index-residency budget for the harness's reporting rule, the
#: scaled stand-in for the paper's 24 GB (see DESIGN.md §2).
DEFAULT_BUDGET_BYTES = 1_500_000_000


def deep_sizeof(obj: Any, _seen: set[int] | None = None) -> int:
    """Recursive size of ``obj`` in bytes.

    Shared sub-objects are counted once. Graphs reached through an
    index attribute named ``graph`` are skipped — the road network
    itself is input data, not index (the paper's figures report the
    index structures only).
    """
    seen = _seen if _seen is not None else set()
    oid = id(obj)
    if oid in seen:
        return 0
    seen.add(oid)

    if isinstance(obj, np.ndarray):
        return int(obj.nbytes) + sys.getsizeof(obj, 0)

    size = sys.getsizeof(obj, 0)
    if isinstance(obj, dict):
        for k, v in obj.items():
            size += deep_sizeof(k, seen) + deep_sizeof(v, seen)
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            size += deep_sizeof(item, seen)
    elif hasattr(obj, "__dict__"):
        for name, value in vars(obj).items():
            if name == "graph":
                continue
            size += deep_sizeof(value, seen)
    elif hasattr(obj, "__slots__"):
        for name in obj.__slots__:
            if name == "graph" or not hasattr(obj, name):
                continue
            size += deep_sizeof(getattr(obj, name), seen)
    return size


def megabytes(n_bytes: int) -> float:
    """Bytes → MB (the unit of Figures 6(a) and 13(a))."""
    return n_bytes / 1_000_000.0
