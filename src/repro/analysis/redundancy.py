"""δ-redundancy of road networks (Appendix C / Table 2).

PCPD's O(n) space bound assumes every shortest path is δ-redundant:
any *core-disjoint* path — one sharing no vertex with the shortest path
P except the endpoints — is at least δ times longer. The paper measures
``min length(P') / length(P)`` over its query pairs as an upper bound
on δ and finds values at or barely above 1 on every dataset (Table 2),
explaining PCPD's blow-up: the space constant is (2 + 2/(δ-1))².
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.core.dijkstra import dijkstra_distance, dijkstra_path
from repro.graph.graph import Graph

INF = math.inf


@dataclass(frozen=True)
class RedundancyResult:
    """Outcome of one pair's core-disjoint comparison."""

    source: int
    target: int
    shortest: float
    core_disjoint: float

    @property
    def ratio(self) -> float:
        """length(P') / length(P); ``inf`` when no core-disjoint path."""
        if math.isinf(self.core_disjoint):
            return INF
        return self.core_disjoint / self.shortest


def core_disjoint_ratio(graph: Graph, source: int, target: int) -> RedundancyResult | None:
    """Compare the shortest path with the shortest core-disjoint path.

    The core of P is its interior vertex set; removing it and re-running
    the query yields the shortest P' sharing no interior vertex with P
    (Appendix C). Returns ``None`` for disconnected or adjacent-trivial
    pairs (paths with an empty core never constrain δ).
    """
    if source == target:
        return None
    dist, path = dijkstra_path(graph, source, target)
    if path is None:
        return None
    core = path[1:-1]
    if not core:
        return None  # single-edge path: every other path is core-disjoint
    stripped = graph.without_vertices(core)
    alt = dijkstra_distance(stripped, source, target)
    return RedundancyResult(source, target, dist, alt)


def redundancy_upper_bound(
    graph: Graph, pairs: Iterable[tuple[int, int]]
) -> tuple[float, int]:
    """``min length(P')/length(P)`` over the pairs — Table 2's statistic.

    Returns the minimum ratio (an upper bound on δ for the network) and
    the number of pairs that contributed (had a finite ratio). A
    network where no pair admits a core-disjoint path returns
    ``(inf, 0)``.
    """
    best = INF
    contributing = 0
    for s, t in pairs:
        result = core_disjoint_ratio(graph, s, t)
        if result is None:
            continue
        r = result.ratio
        if math.isinf(r):
            continue
        contributing += 1
        if r < best:
            best = r
    return best, contributing


def pcpd_space_constant(delta: float) -> float:
    """The Appendix C space constant ``(2 + 2/(δ-1))²``.

    Diverges as δ → 1 — the analytical reason measured δ ≈ 1 (Table 2)
    predicts PCPD's large practical space despite its O(n) bound.
    """
    if delta <= 1.0:
        return INF
    return (2.0 + 2.0 / (delta - 1.0)) ** 2
