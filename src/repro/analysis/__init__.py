"""Analyses from the paper's appendices.

- :mod:`~repro.analysis.redundancy` — δ-redundancy of road networks
  (Appendix C / Table 2);
- :mod:`~repro.analysis.defect` — the TNR preprocessing defect and its
  fix (Appendix B / Figure 12);
- :mod:`~repro.analysis.memory` — index size accounting used by the
  Figure 6(a)/13(a) space benches and the 24 GB-style residency rule.
"""

from repro.analysis.memory import deep_sizeof
from repro.analysis.redundancy import core_disjoint_ratio, redundancy_upper_bound

__all__ = ["core_disjoint_ratio", "deep_sizeof", "redundancy_upper_bound"]
