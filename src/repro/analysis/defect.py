"""The TNR preprocessing defect and its correction (Appendix B).

Bast et al.'s access-node computation pairs each cell vertex with the
outer-shell vertices of the *same* boundary side. Figure 12(b)'s
counter-example defeats it: a vertex ``v5`` between the shells whose
only neighbours are a cell vertex ``v1`` and a far vertex ``v6`` is an
essential access node (it is the only way out towards ``v6``), yet it
lies on no shortest path from the cell to its own side's ``Sup`` — so
the flawed method omits it and the query ``dist(v1, v6)`` comes back
wrong.

:func:`counterexample` builds a concrete embedding of Figure 12(b);
:func:`demonstrate` runs both preprocessing variants on it and reports
the answers; :func:`stress` counts wrong answers of the flawed variant
on any dataset. The corrected variant is exact by construction (see
:mod:`repro.core.tnr.access_nodes`), which reproduces the paper's
conclusion: "we resort to the simple solution ... our experiments show
that the pre-computation overhead ... is negligible compared with the
reduction in the cost of access node computation" — and, above all,
correct answers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.ch import ContractionHierarchy
from repro.core.dijkstra import dijkstra_distance
from repro.core.tnr.index import build_tnr
from repro.core.tnr.query import TransitNodeRouting
from repro.graph.graph import Graph

#: Grid resolution used by the counter-example embedding.
COUNTEREXAMPLE_GRID = 16


def counterexample() -> tuple[Graph, int, int, int]:
    """A concrete Figure 12(b) embedding.

    Returns ``(graph, grid_g, v1, v6)``. The graph lives on a
    ``[0, 16]²`` map with unit grid cells:

    - ``v1`` sits in cell (8, 8) = C0;
    - a chain of ordinary road vertices runs straight up from ``v1``,
      crossing the inner shell's top side and the outer shell's top
      side (so the flawed method has honest top-side access nodes);
    - ``v5`` sits in cell (8, 11) — between the shells — reached from
      ``v1`` by one long edge that crosses the inner shell's *top*;
    - ``v6`` sits in cell (13, 11) — beyond the outer shell — and its
      only edge arrives from ``v5``, crossing the outer shell's
      *right* side.

    ``v5``'s inner crossing is on the top, its outward continuation
    leaves on the right: no shortest path links it to the top's
    ``Sup``, so Bast et al.'s method never marks it.
    """
    scale = 1.0  # one unit per grid cell on a 16x16 map
    coords = [
        (8.5, 8.5),    # 0: v1 (cell 8,8)
        (8.5, 9.5),    # 1: chain a1 (cell 8,9)
        (8.5, 10.5),   # 2: a2 (8,10) — inner side
        (8.5, 11.5),   # 3: a3 (8,11) — outside inner shell
        (8.5, 12.5),   # 4: a4 (8,12) — outer side
        (8.5, 13.5),   # 5: a5 (8,13) — beyond outer shell
        (8.5, 14.5),   # 6: a6 (8,14)
        (8.2, 11.5),   # 7: v5 (cell 8,11), between the shells
        (13.5, 11.5),  # 8: v6 (cell 13,11), beyond the outer shell
        (0.5, 0.5),    # 9: far corner anchor keeping the bbox 16x16
        (15.5, 15.5),  # 10: opposite corner anchor
    ]
    xs = [c[0] * scale for c in coords]
    ys = [c[1] * scale for c in coords]
    g = Graph(xs, ys)
    chain = [0, 1, 2, 3, 4, 5, 6]
    for a, b in zip(chain, chain[1:]):
        g.add_edge(a, b, 1.0)
    g.add_edge(0, 7, 40.0)   # v1 - v5: crosses the inner shell (top)
    g.add_edge(7, 8, 40.0)   # v5 - v6: crosses the outer shell (right)
    # Anchors hang off the chain ends, far from C0's shells.
    g.add_edge(9, 0, 200.0)
    g.add_edge(10, 6, 200.0)
    return g.freeze(), COUNTEREXAMPLE_GRID, 0, 8


@dataclass(frozen=True)
class DefectReport:
    """Outcome of :func:`demonstrate`."""

    true_distance: float
    flawed_distance: float
    corrected_distance: float
    flawed_access_nodes: tuple[int, ...]
    corrected_access_nodes: tuple[int, ...]

    @property
    def flawed_is_wrong(self) -> bool:
        return not math.isclose(self.flawed_distance, self.true_distance)

    @property
    def corrected_is_right(self) -> bool:
        return math.isclose(self.corrected_distance, self.true_distance)


def demonstrate() -> DefectReport:
    """Run both preprocessing variants on the counter-example."""
    graph, grid_g, s, t = counterexample()
    ch = ContractionHierarchy.build(graph)
    flawed = build_tnr(graph, ch, grid_g, flawed=True)
    corrected = build_tnr(graph, ch, grid_g, flawed=False)
    return DefectReport(
        true_distance=dijkstra_distance(graph, s, t),
        flawed_distance=TransitNodeRouting(graph, flawed, ch).distance(s, t),
        corrected_distance=TransitNodeRouting(graph, corrected, ch).distance(s, t),
        flawed_access_nodes=tuple(
            flawed.transit_nodes[i] for i in flawed.vertex_access[s]
        ),
        corrected_access_nodes=tuple(
            corrected.transit_nodes[i] for i in corrected.vertex_access[s]
        ),
    )


def stress(
    graph: Graph,
    grid_g: int,
    pairs: list[tuple[int, int]],
    ch: ContractionHierarchy | None = None,
) -> tuple[int, int]:
    """Count wrong flawed-TNR answers over ``pairs`` on any dataset.

    Returns ``(wrong, answerable)`` — the corrected variant is asserted
    exact on the same pairs, so a non-zero ``wrong`` isolates the
    defect rather than an environment problem.
    """
    ch = ch or ContractionHierarchy.build(graph)
    flawed = TransitNodeRouting(graph, build_tnr(graph, ch, grid_g, flawed=True), ch)
    corrected = TransitNodeRouting(
        graph, build_tnr(graph, ch, grid_g, flawed=False), ch
    )
    wrong = 0
    answerable = 0
    for s, t in pairs:
        if not flawed.index.answerable(s, t):
            continue
        answerable += 1
        truth = dijkstra_distance(graph, s, t)
        if not math.isclose(corrected.distance(s, t), truth):
            raise AssertionError(
                f"corrected TNR wrong on ({s}, {t}): this is a bug, not the defect"
            )
        if not math.isclose(flawed.distance(s, t), truth):
            wrong += 1
    return wrong, answerable
