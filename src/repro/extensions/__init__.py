"""Appendix A techniques, implemented as ablation baselines.

The paper's Appendix A surveys the methods its main evaluation leaves
out because prior work [26] showed them inferior to CH. Two of them are
implemented here so the ablation benches can confirm that claim on our
networks:

- :mod:`~repro.extensions.alt` — ALT [12]: A* with landmark
  lower bounds from the triangle inequality;
- :mod:`~repro.extensions.arcflags` — Arc Flags [15]: grid-partitioned
  edge flags pruning Dijkstra's relaxations;
- :mod:`~repro.extensions.reach` — RE [13]: exact reach values pruning
  Dijkstra with a certified geometric lower bound;
- :mod:`~repro.extensions.hepv` — HEPV [16]: grid partition with
  encoded boundary-to-boundary path views (and the space blow-up the
  paper cites);
- :mod:`~repro.extensions.approx_oracle` — the [24]-style ε-approximate
  distance oracle (single-lookup PCPD revision).

HiTi [17] is deliberately absent: the paper excludes it because it
requires Euclidean edge weights, and our networks (like the paper's)
carry travel times.
"""

from repro.extensions.alt import ALT, build_alt
from repro.extensions.approx_oracle import ApproxDistanceOracle
from repro.extensions.arcflags import ArcFlags, build_arcflags
from repro.extensions.hepv import HEPV, build_hepv
from repro.extensions.reach import Reach, build_reach

__all__ = [
    "ALT",
    "ApproxDistanceOracle",
    "ArcFlags",
    "HEPV",
    "Reach",
    "build_alt",
    "build_arcflags",
    "build_hepv",
    "build_reach",
]
