"""Arc Flags (Hilger et al. [15], paper Appendix A).

    "Arc Flags ... also imposes a grid on the road network. In the
    preprocessing step, for each vertex v and each edge e incident to
    v, Arc Flags tags e with the grid cells in which there is at least
    one vertex v' whose shortest path to v' passes through e. Then ...
    Arc Flags can efficiently identify the shortest path or distance
    between s and t by applying a revised version of Dijkstra's
    algorithm that avoids visiting irrelevant edges."

Preprocessing is the classic boundary-vertex scheme: for every region
(grid cell with vertices), run a full Dijkstra from each *boundary*
vertex and flag every shortest-path-DAG edge pointing towards it;
intra-region edges are flagged for their own region. Flagging the whole
DAG (not one tree) keeps queries exact under ties.

The preprocessing costs one full Dijkstra per boundary vertex — far
more than CH — which is part of why the paper's main evaluation leaves
Arc Flags out (shown inferior to CH in [26]); the ablation bench
quantifies both sides of that trade here.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from heapq import heappop, heappush

from repro.core.dijkstra import dijkstra_sssp
from repro.graph.graph import Graph
from repro.graph.coords import square_hull

INF = math.inf


@dataclass
class ArcFlagsBuildStats:
    seconds: float = 0.0
    regions: int = 0
    boundary_vertices: int = 0


@dataclass
class ArcFlagsIndex:
    """Directed-edge flag bitmasks over ``k x k`` grid regions.

    ``flags[u][v]`` is a bitmask: bit ``r`` set means the directed edge
    ``u -> v`` lies on some shortest path into region ``r``.
    """

    k: int
    region_of: list[int]
    flags: list[dict[int, int]]
    stats: ArcFlagsBuildStats = field(default_factory=ArcFlagsBuildStats)


def _regions(graph: Graph, k: int) -> list[int]:
    hull = square_hull(graph.bounding_box())
    side = hull.side or 1.0
    cell = side / k
    region = []
    for v in range(graph.n):
        ix = min(k - 1, max(0, int((graph.xs[v] - hull.xmin) / cell)))
        iy = min(k - 1, max(0, int((graph.ys[v] - hull.ymin) / cell)))
        region.append(iy * k + ix)
    return region


def build_arcflags(graph: Graph, k: int = 4) -> ArcFlagsIndex:
    """Compute arc flags over a ``k x k`` region grid."""
    if not graph.frozen:
        raise ValueError("freeze() the graph before building an index")
    start = time.perf_counter()
    region_of = _regions(graph, k)
    flags: list[dict[int, int]] = [
        {v: 0 for v, _ in graph.neighbors(u)} for u in range(graph.n)
    ]

    # Intra-region edges are always allowed towards their own region.
    for u in range(graph.n):
        ru = region_of[u]
        for v, _ in graph.neighbors(u):
            if region_of[v] == ru:
                flags[u][v] |= 1 << ru
                flags[v][u] |= 1 << ru

    # Boundary vertices: endpoints of region-crossing edges.
    boundary: set[int] = set()
    for u in range(graph.n):
        for v, _ in graph.neighbors(u):
            if region_of[u] != region_of[v]:
                boundary.add(u)
                boundary.add(v)

    for b in sorted(boundary):
        bit = 1 << region_of[b]
        dist, _ = dijkstra_sssp(graph, b)
        # Flag every DAG edge pointing towards b: travelling u -> v is
        # "towards b" when dist(b, v) + w == dist(b, u).
        for u in range(graph.n):
            du = dist[u]
            if math.isinf(du):
                continue
            for v, w in graph.neighbors(u):
                if dist[v] + w == du:
                    flags[u][v] |= bit

    stats = ArcFlagsBuildStats(
        seconds=time.perf_counter() - start,
        regions=k * k,
        boundary_vertices=len(boundary),
    )
    return ArcFlagsIndex(k=k, region_of=region_of, flags=flags, stats=stats)


class ArcFlags:
    """Flag-pruned Dijkstra; exact thanks to DAG-complete flags."""

    name = "ArcFlags"

    def __init__(self, graph: Graph, index: ArcFlagsIndex) -> None:
        if len(index.region_of) != graph.n:
            raise ValueError("index was built for a different graph")
        self.graph = graph
        self.index = index
        self.last_settled = 0

    @classmethod
    def build(cls, graph: Graph, k: int = 4) -> "ArcFlags":
        return cls(graph, build_arcflags(graph, k))

    @property
    def preprocessing_seconds(self) -> float:
        return self.index.stats.seconds

    # ------------------------------------------------------------------
    def distance(self, source: int, target: int) -> float:
        d, _ = self._search(source, target, want_path=False)
        return d

    def path(self, source: int, target: int) -> tuple[float, list[int] | None]:
        return self._search(source, target, want_path=True)

    def _search(
        self, source: int, target: int, want_path: bool
    ) -> tuple[float, list[int] | None]:
        if source == target:
            return 0.0, [source]
        graph = self.graph
        flags = self.index.flags
        bit = 1 << self.index.region_of[target]

        dist: dict[int, float] = {source: 0.0}
        parent: dict[int, int] = {source: source}
        settled: set[int] = set()
        heap: list[tuple[float, int]] = [(0.0, source)]
        while heap:
            d, u = heappop(heap)
            if u in settled:
                continue
            settled.add(u)
            if u == target:
                self.last_settled = len(settled)
                if not want_path:
                    return d, None
                path = [u]
                while path[-1] != source:
                    path.append(parent[path[-1]])
                path.reverse()
                return d, path
            row = flags[u]
            for v, w in graph.neighbors(u):
                if not row[v] & bit:
                    continue  # edge flagged irrelevant for t's region
                nd = d + w
                if nd < dist.get(v, INF):
                    dist[v] = nd
                    parent[v] = u
                    heappush(heap, (nd, v))
        self.last_settled = len(settled)
        return INF, None
