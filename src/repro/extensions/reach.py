"""RE — reach-based pruning (Goldberg et al. [13], paper Appendix A).

    "for any shortest path that passes through v, the reach of v is an
    upperbound on min{dist(s', v), dist(v, t')} ... given any two
    vertices s and t, if the reach of v is smaller than both dist(s, v)
    and dist(v, t), then v cannot be on the shortest path from s to t."

Reach values here are *exact* (not the upper bounds engineered for
continent-scale graphs): from the all-pairs distance matrix,

    reach(v) = max over (s, t) with d(s,v) + d(v,t) = d(s,t)
               of min(d(s,v), d(v,t))

computed as n vectorised n×n passes — Θ(n³) work that numpy keeps
affordable at this library's spatial-method scale, and another reason
(besides the query numbers) the paper's main evaluation sticks with CH.

Queries run Dijkstra with the pruning test above; ``dist(v, t)`` is
replaced by its certified geometric lower bound (straight-line distance
over the network's best speed), which keeps the test safe: pruning only
fires when ``reach(v)`` is below both a true distance and a true lower
bound, so no vertex of any shortest path is ever pruned.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from heapq import heappop, heappush

import numpy as np

from repro.core.dijkstra import dijkstra_sssp
from repro.graph.graph import Graph
from repro.queries.knn import certified_max_speed

INF = math.inf


@dataclass
class ReachBuildStats:
    seconds: float = 0.0


@dataclass
class ReachIndex:
    """Exact reach per vertex plus the geometric bound's speed."""

    reach: np.ndarray
    max_speed: float
    stats: ReachBuildStats = field(default_factory=ReachBuildStats)


def compute_reaches(graph: Graph) -> np.ndarray:
    """Exact reach values from the all-pairs distance matrix."""
    n = graph.n
    dist = np.empty((n, n), dtype=np.float64)
    for s in range(n):
        dist[s] = dijkstra_sssp(graph, s)[0]
    reach = np.zeros(n, dtype=np.float64)
    for v in range(n):
        to_v = dist[:, v][:, None]      # d(s, v)
        from_v = dist[v, :][None, :]    # d(v, t)
        with np.errstate(invalid="ignore"):
            on_path = (to_v + from_v) == dist
        if not on_path.any():
            continue
        contribution = np.minimum(
            np.broadcast_to(to_v, dist.shape),
            np.broadcast_to(from_v, dist.shape),
        )
        reach[v] = contribution[on_path].max()
    return reach


def build_reach(graph: Graph) -> ReachIndex:
    """Exact reach preprocessing (Θ(n³); small networks only)."""
    if not graph.frozen:
        raise ValueError("freeze() the graph before building an index")
    started = time.perf_counter()
    index = ReachIndex(
        reach=compute_reaches(graph),
        max_speed=certified_max_speed(graph),
    )
    index.stats.seconds = time.perf_counter() - started
    return index


class Reach:
    """Reach-pruned Dijkstra; exact (see module docstring)."""

    name = "RE"

    def __init__(self, graph: Graph, index: ReachIndex) -> None:
        if len(index.reach) != graph.n:
            raise ValueError("index was built for a different graph")
        self.graph = graph
        self.index = index
        self.last_settled = 0

    @classmethod
    def build(cls, graph: Graph) -> "Reach":
        return cls(graph, build_reach(graph))

    @property
    def preprocessing_seconds(self) -> float:
        return self.index.stats.seconds

    # ------------------------------------------------------------------
    def distance(self, source: int, target: int) -> float:
        d, _ = self._search(source, target, want_path=False)
        return d

    def path(self, source: int, target: int) -> tuple[float, list[int] | None]:
        return self._search(source, target, want_path=True)

    def _search(
        self, source: int, target: int, want_path: bool
    ) -> tuple[float, list[int] | None]:
        if source == target:
            return 0.0, [source]
        graph = self.graph
        reach = self.index.reach
        speed = self.index.max_speed
        tx, ty = graph.xs[target], graph.ys[target]
        xs, ys = graph.xs, graph.ys

        dist: dict[int, float] = {source: 0.0}
        parent: dict[int, int] = {source: source}
        settled: set[int] = set()
        heap: list[tuple[float, int]] = [(0.0, source)]
        while heap:
            d, u = heappop(heap)
            if u in settled:
                continue
            settled.add(u)
            if u == target:
                self.last_settled = len(settled)
                if not want_path:
                    return d, None
                path = [u]
                while path[-1] != source:
                    path.append(parent[path[-1]])
                path.reverse()
                return d, path
            for v, w in graph.neighbors(u):
                nd = d + w
                if v != target:
                    # The [13] test with a certified geometric lower
                    # bound standing in for dist(v, t).
                    r = reach[v]
                    if r < nd:
                        lower = math.hypot(xs[v] - tx, ys[v] - ty) / speed
                        if r < lower:
                            continue
                if nd < dist.get(v, INF):
                    dist[v] = nd
                    parent[v] = u
                    heappush(heap, (nd, v))
        self.last_settled = len(settled)
        return INF, None
