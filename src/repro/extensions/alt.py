"""ALT — A* with landmarks and the triangle inequality (Appendix A).

    "ALT preprocesses the road network by first selecting a small set
    of vertices, called the landmarks. Then, it pre-computes the
    distance from each vertex in V to each landmark. With the
    pre-computed distances, we can efficiently derive a lowerbound of
    dist(s, v) + dist(v, t) ... ALT incorporates such lowerbounds with
    Dijkstra's algorithm to improve query efficiency." [12]

For any landmark L the triangle inequality gives
``dist(v, t) >= |dist(L, t) - dist(L, v)|``; the potential is the max
over landmarks. Landmarks are chosen by *farthest selection* (each new
landmark maximises the distance to the chosen set), the standard
heuristic that puts them on the network's periphery.

The paper excludes ALT from its main evaluation because prior work
showed it "inferior to CH in terms of both space overhead and query
performance" [26] — the ablation bench confirms exactly that here.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from heapq import heappop, heappush

from repro.core.dijkstra import dijkstra_sssp
from repro.graph.graph import Graph

INF = math.inf


@dataclass
class ALTBuildStats:
    seconds: float = 0.0
    landmarks: list[int] = field(default_factory=list)


@dataclass
class ALTIndex:
    """Per-landmark distance columns: ``dist_to[k][v] = dist(L_k, v)``."""

    landmarks: list[int]
    dist_to: list[list[float]]
    stats: ALTBuildStats = field(default_factory=ALTBuildStats)


def select_landmarks(graph: Graph, k: int, seed_vertex: int = 0) -> list[int]:
    """Farthest-selection landmarks (peripheral spread)."""
    if k < 1:
        raise ValueError("need at least one landmark")
    first_dist, _ = dijkstra_sssp(graph, seed_vertex)
    start = max(range(graph.n), key=lambda v: (first_dist[v], -v)
                if not math.isinf(first_dist[v]) else (-1.0, -v))
    landmarks = [start]
    min_dist = dijkstra_sssp(graph, start)[0]
    while len(landmarks) < min(k, graph.n):
        nxt = max(
            range(graph.n),
            key=lambda v: (min_dist[v], -v) if not math.isinf(min_dist[v]) else (-1.0, -v),
        )
        if nxt in landmarks:
            break
        landmarks.append(nxt)
        d, _ = dijkstra_sssp(graph, nxt)
        min_dist = [min(a, b) for a, b in zip(min_dist, d)]
    return landmarks


def build_alt(graph: Graph, n_landmarks: int = 8) -> ALTIndex:
    """Select landmarks and materialise their distance columns."""
    if not graph.frozen:
        raise ValueError("freeze() the graph before building an index")
    start = time.perf_counter()
    landmarks = select_landmarks(graph, n_landmarks)
    dist_to = [dijkstra_sssp(graph, L)[0] for L in landmarks]
    stats = ALTBuildStats(seconds=time.perf_counter() - start, landmarks=landmarks)
    return ALTIndex(landmarks=landmarks, dist_to=dist_to, stats=stats)


class ALT:
    """A* over landmark potentials; exact for any landmark set.

    The potential ``pi(v) = max_k |dist(L_k, t) - dist(L_k, v)|`` is a
    *consistent* heuristic (each term satisfies the triangle
    inequality), so the first settlement of ``t`` is optimal.
    """

    name = "ALT"

    def __init__(self, graph: Graph, index: ALTIndex) -> None:
        if index.dist_to and len(index.dist_to[0]) != graph.n:
            raise ValueError("index was built for a different graph")
        self.graph = graph
        self.index = index
        self.last_settled = 0

    @classmethod
    def build(cls, graph: Graph, n_landmarks: int = 8) -> "ALT":
        return cls(graph, build_alt(graph, n_landmarks))

    @property
    def preprocessing_seconds(self) -> float:
        return self.index.stats.seconds

    # ------------------------------------------------------------------
    def potential(self, v: int, target: int) -> float:
        """Lower bound on dist(v, target) from the landmark columns."""
        best = 0.0
        for column in self.index.dist_to:
            dv, dt = column[v], column[target]
            if math.isinf(dv) or math.isinf(dt):
                continue
            bound = dt - dv
            if bound < 0:
                bound = -bound
            if bound > best:
                best = bound
        return best

    def distance(self, source: int, target: int) -> float:
        d, _ = self._astar(source, target, want_path=False)
        return d

    def path(self, source: int, target: int) -> tuple[float, list[int] | None]:
        return self._astar(source, target, want_path=True)

    # ------------------------------------------------------------------
    def _astar(
        self, source: int, target: int, want_path: bool
    ) -> tuple[float, list[int] | None]:
        if source == target:
            return 0.0, [source]
        graph = self.graph
        columns = self.index.dist_to
        t_cols = [c[target] for c in columns]

        def pot(v: int) -> float:
            best = 0.0
            for c, dt in zip(columns, t_cols):
                dv = c[v]
                if math.isinf(dv) or math.isinf(dt):
                    continue
                b = dt - dv
                if b < 0:
                    b = -b
                if b > best:
                    best = b
            return best

        dist: dict[int, float] = {source: 0.0}
        parent: dict[int, int] = {source: source}
        settled: set[int] = set()
        heap: list[tuple[float, int]] = [(pot(source), source)]
        while heap:
            _, u = heappop(heap)
            if u in settled:
                continue
            settled.add(u)
            if u == target:
                self.last_settled = len(settled)
                if not want_path:
                    return dist[u], None
                path = [u]
                while path[-1] != source:
                    path.append(parent[path[-1]])
                path.reverse()
                return dist[u], path
            du = dist[u]
            for v, w in graph.neighbors(u):
                nd = du + w
                if nd < dist.get(v, INF):
                    dist[v] = nd
                    parent[v] = u
                    heappush(heap, (nd + pot(v), v))
        self.last_settled = len(settled)
        return INF, None
