"""HEPV — Hierarchical Encoded Path Views (Jing et al. [16], App. A).

    "HEPV ... pre-processes the road network by partitioning the graph
    and pre-computing the distances among certain vertices in each
    partition component. Compared with HiTi, the major deficiency of
    HEPV is that it incurs a huge space consumption."

One hierarchy level, grid partition. Per component ``C``: the boundary
vertices (endpoints of component-crossing edges) and the *encoded path
view* — all pairwise boundary-to-boundary distances through ``C``'s
interior. Queries run Dijkstra over the collapsed graph:

    s → (boundary of s's component, via interior distances)
      → the boundary super-graph (views of every component
         + the original crossing edges)
      → (boundary of t's component) → t,

plus the direct interior s→t path when both endpoints share a
component. Every maximal within-component segment of a real shortest
path has boundary endpoints and is dominated by the component's view
entry, so the collapsed graph preserves all distances exactly.

Why it lost to CH (and why the paper leaves it out of the main
evaluation): the views cost Σ|B_C|² space — quadratic in boundary
size, the "huge space consumption" of [17]'s critique — and queries
still run a (smaller) Dijkstra instead of CH's hierarchy climb. The
ablation bench quantifies both.

Note HiTi [17] itself is *not* implemented, matching the paper: "HiTi
cannot handle the datasets used in our experiments, since ... the
weight of each edge represents the time required to traverse the
edge", and our networks use travel times too.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from heapq import heappop, heappush

from repro.graph.coords import square_hull
from repro.graph.graph import Graph

INF = math.inf


@dataclass
class HEPVBuildStats:
    seconds: float = 0.0
    components: int = 0
    boundary_vertices: int = 0
    view_entries: int = 0


@dataclass
class HEPVIndex:
    """Partition labels, interior adjacency, and the path views.

    ``views[c]`` maps boundary vertex → list of ``(boundary, dist)``
    through-component distances; ``super_adj`` is the boundary-level
    graph (views + original crossing edges).
    """

    k: int
    component_of: list[int]
    boundary: set[int]
    members: dict[int, list[int]]
    views: dict[int, dict[int, list[tuple[int, float]]]]
    super_adj: dict[int, list[tuple[int, float]]]
    stats: HEPVBuildStats = field(default_factory=HEPVBuildStats)


def _component_labels(graph: Graph, k: int) -> list[int]:
    hull = square_hull(graph.bounding_box())
    cell = (hull.side or 1.0) / k
    labels = []
    for v in range(graph.n):
        ix = min(k - 1, max(0, int((graph.xs[v] - hull.xmin) / cell)))
        iy = min(k - 1, max(0, int((graph.ys[v] - hull.ymin) / cell)))
        labels.append(iy * k + ix)
    return labels


def _interior_dijkstra(
    graph: Graph,
    component_of: list[int],
    component: int,
    source: int,
    targets: set[int],
) -> dict[int, float]:
    """Distances from ``source`` using only ``component``'s vertices."""
    dist: dict[int, float] = {source: 0.0}
    out: dict[int, float] = {}
    remaining = set(targets)
    remaining.discard(source)
    if source in targets:
        out[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    settled: set[int] = set()
    while heap and remaining:
        d, u = heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        if u in remaining:
            remaining.discard(u)
            out[u] = d
        for v, w in graph.neighbors(u):
            if component_of[v] != component:
                continue
            nd = d + w
            if nd < dist.get(v, INF):
                dist[v] = nd
                heappush(heap, (nd, v))
    return out


def build_hepv(graph: Graph, k: int = 4) -> HEPVIndex:
    """Build the one-level HEPV structure over a ``k x k`` partition."""
    if not graph.frozen:
        raise ValueError("freeze() the graph before building an index")
    started = time.perf_counter()
    component_of = _component_labels(graph, k)

    members: dict[int, list[int]] = {}
    for v, c in enumerate(component_of):
        members.setdefault(c, []).append(v)

    boundary: set[int] = set()
    crossing: list[tuple[int, int, float]] = []
    for u in range(graph.n):
        for v, w in graph.neighbors(u):
            if u < v and component_of[u] != component_of[v]:
                boundary.add(u)
                boundary.add(v)
                crossing.append((u, v, w))

    views: dict[int, dict[int, list[tuple[int, float]]]] = {}
    view_entries = 0
    for c, verts in members.items():
        b_here = sorted(b for b in verts if b in boundary)
        view: dict[int, list[tuple[int, float]]] = {}
        for b in b_here:
            found = _interior_dijkstra(
                graph, component_of, c, b, set(b_here) - {b}
            )
            view[b] = sorted(found.items())
            view_entries += len(found)
        views[c] = view

    super_adj: dict[int, list[tuple[int, float]]] = {b: [] for b in boundary}
    for c, view in views.items():
        for b, entries in view.items():
            super_adj[b].extend(entries)
    for u, v, w in crossing:
        super_adj[u].append((v, w))
        super_adj[v].append((u, w))

    index = HEPVIndex(
        k=k,
        component_of=component_of,
        boundary=boundary,
        members=members,
        views=views,
        super_adj=super_adj,
    )
    index.stats = HEPVBuildStats(
        seconds=time.perf_counter() - started,
        components=len(members),
        boundary_vertices=len(boundary),
        view_entries=view_entries,
    )
    return index


class HEPV:
    """Distance queries over the collapsed boundary graph; exact."""

    name = "HEPV"

    def __init__(self, graph: Graph, index: HEPVIndex) -> None:
        if len(index.component_of) != graph.n:
            raise ValueError("index was built for a different graph")
        self.graph = graph
        self.index = index
        self.last_settled = 0

    @classmethod
    def build(cls, graph: Graph, k: int = 4) -> "HEPV":
        return cls(graph, build_hepv(graph, k))

    @property
    def preprocessing_seconds(self) -> float:
        return self.index.stats.seconds

    # ------------------------------------------------------------------
    def distance(self, source: int, target: int) -> float:
        """Dijkstra over {s} ∪ boundary ∪ {t} with encoded views."""
        if source == target:
            return 0.0
        graph = self.graph
        idx = self.index
        cs, ct = idx.component_of[source], idx.component_of[target]

        # Entry edges: s to its component's boundary through the
        # interior; exit edges: t's boundary to t (undirected, same).
        s_bounds = {b for b in idx.members[cs] if b in idx.boundary}
        t_bounds = {b for b in idx.members[ct] if b in idx.boundary}
        entry = _interior_dijkstra(graph, idx.component_of, cs, source, s_bounds)
        exit_ = _interior_dijkstra(graph, idx.component_of, ct, target, t_bounds)

        best = INF
        if cs == ct:
            same = _interior_dijkstra(
                graph, idx.component_of, cs, source, {target}
            )
            best = same.get(target, INF)

        dist: dict[int, float] = dict(entry)
        if source in idx.boundary:
            dist[source] = 0.0
        heap = [(d, b) for b, d in dist.items()]
        import heapq as _hq

        _hq.heapify(heap)
        settled: set[int] = set()
        super_adj = idx.super_adj
        while heap:
            d, u = _hq.heappop(heap)
            if u in settled or d > dist.get(u, INF):
                continue
            if d >= best:
                break
            settled.add(u)
            tail = exit_.get(u)
            if tail is not None and d + tail < best:
                best = d + tail
            if u == target:
                best = min(best, d)
            for v, w in super_adj.get(u, ()):
                nd = d + w
                if nd < dist.get(v, INF):
                    dist[v] = nd
                    _hq.heappush(heap, (nd, v))
        self.last_settled = len(settled)
        return best

    def path(self, source: int, target: int) -> tuple[float, list[int] | None]:
        """HEPV is a distance structure; expand the path with Dijkstra.

        [16] stores enough to decode paths from the views; we keep the
        ablation honest by reporting the distance from the views and
        the path from a plain search (the technique is compared on
        distance queries, as in the paper's Appendix A discussion).
        """
        from repro.core.dijkstra import dijkstra_path

        d = self.distance(source, target)
        if math.isinf(d):
            return INF, None
        _, path = dijkstra_path(self.graph, source, target)
        return d, path
