"""An ε-approximate distance oracle in the spirit of [24] (Appendix A).

    "Sankaranarayanan and Samet [24] propose a revised version of PCPD
    that can handle approximate distance queries efficiently."

PCPD answers a distance query with O(k) lookups because it must walk
the whole path. The approximate revision trades exactness for a single
O(log n) lookup: pairs of squares are split not until all paths share
an edge, but until both sides are *well separated* — their network
diameters are at most ε times the distance between their
representatives. The stored representative distance then approximates
every cross distance:

    dist(s, t) ≥ d_rep · (1 - 2ε)  and  dist(s, t) ≤ d_rep · (1 + 2ε)

so the returned ``d_rep`` is within a relative error of ``2ε/(1-2ε)``
of the truth (``ε < 0.5`` required). Diameters are upper-bounded by
twice the representative's eccentricity, which keeps construction at
one APSP reuse plus linear scans per pair.

Like PCPD, the construction is Θ(n²) — this is a *small-network*
oracle, used here to complete the Appendix A picture, not to compete
with CH.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.core.pcpd.pairs import APSPTables, quadrant_of, quadrant_split
from repro.graph.coords import BoundingBox, square_hull
from repro.graph.graph import Graph

INF = math.inf

#: Recursion guard, same rationale as PCPD's.
MAX_DEPTH = 48


class _Node:
    __slots__ = ("approx", "children")

    def __init__(self) -> None:
        self.approx: float | None = None
        self.children: dict[tuple[int, int], "_Node"] | None = None

    @property
    def is_leaf(self) -> bool:
        return self.approx is not None

    def count_leaves(self) -> int:
        if self.is_leaf:
            return 1
        if not self.children:
            return 0
        return sum(c.count_leaves() for c in self.children.values())


@dataclass
class ApproxOracleStats:
    seconds: float = 0.0
    n_pairs: int = 0


@dataclass
class ApproxOracleIndex:
    graph: Graph
    epsilon: float
    root: _Node
    hull: BoundingBox
    stats: ApproxOracleStats = field(default_factory=ApproxOracleStats)


class ApproxDistanceOracle:
    """Single-lookup ε-approximate distance queries."""

    name = "ApproxOracle"

    def __init__(self, index: ApproxOracleIndex) -> None:
        self.index = index

    @classmethod
    def build(cls, graph: Graph, epsilon: float = 0.25) -> "ApproxDistanceOracle":
        """Construct the oracle; ``0 < epsilon < 0.5``."""
        if not 0 < epsilon < 0.5:
            raise ValueError("epsilon must be in (0, 0.5)")
        if not graph.frozen:
            raise ValueError("freeze() the graph before building an index")
        started = time.perf_counter()
        tables = APSPTables.compute(graph)
        hull = square_hull(graph.bounding_box())
        root = _Node()
        everything = list(range(graph.n))
        stack = [(root, hull, everything, hull, everything, 0)]
        while stack:
            node, box_x, xs, box_y, ys, depth = stack.pop()
            approx = _separated_distance(tables, xs, ys, epsilon)
            if approx is not None:
                node.approx = approx
                continue
            if depth >= MAX_DEPTH:
                raise RuntimeError(
                    "approximate oracle exceeded maximum depth; duplicate "
                    "vertex coordinates in the input"
                )
            node.children = {}
            for qi, (bx, vx) in enumerate(quadrant_split(box_x, xs, graph)):
                if not vx:
                    continue
                for qj, (by, vy) in enumerate(quadrant_split(box_y, ys, graph)):
                    if not vy:
                        continue
                    if len(vx) == 1 and len(vy) == 1 and vx[0] == vy[0]:
                        continue
                    child = _Node()
                    node.children[(qi, qj)] = child
                    stack.append((child, bx, vx, by, vy, depth + 1))
        index = ApproxOracleIndex(
            graph=graph, epsilon=epsilon, root=root, hull=hull
        )
        index.stats.seconds = time.perf_counter() - started
        index.stats.n_pairs = root.count_leaves()
        return cls(index)

    # ------------------------------------------------------------------
    @property
    def guaranteed_relative_error(self) -> float:
        """The worst-case relative error of :meth:`distance`."""
        eps = self.index.epsilon
        return 2 * eps / (1 - 2 * eps)

    def distance(self, source: int, target: int) -> float:
        """One O(log n) descent; within the guaranteed relative error."""
        if source == target:
            return 0.0
        idx = self.index
        g = idx.graph
        sx, sy = g.xs[source], g.ys[source]
        tx, ty = g.xs[target], g.ys[target]
        node = idx.root
        box_x, box_y = idx.hull, idx.hull
        while not node.is_leaf:
            if node.children is None:
                return INF
            qi = quadrant_of(box_x, sx, sy)
            qj = quadrant_of(box_y, tx, ty)
            child = node.children.get((qi, qj))
            if child is None:
                return INF
            node = child
            box_x = box_x.quadrants()[qi]
            box_y = box_y.quadrants()[qj]
        assert node.approx is not None
        return node.approx


def _separated_distance(
    tables: APSPTables, xs: list[int], ys: list[int], epsilon: float
) -> float | None:
    """Representative distance if (xs, ys) is ε-well-separated.

    Separation test: ``2·ecc_rep(X) + 2·ecc_rep(Y) ≤ 2ε·d(repX, repY)``
    — twice the representative eccentricity upper-bounds a side's
    network diameter. Singleton/singleton pairs always separate
    (diameter zero), unreachable singleton pairs store ``inf``.
    """
    rep_x, rep_y = xs[0], ys[0]
    if len(xs) == 1 and len(ys) == 1:
        if rep_x == rep_y:
            return None  # the trivial pair is handled by the caller
        return float(tables.dist[rep_x][rep_y])
    d = float(tables.dist[rep_x][rep_y])
    if math.isinf(d) or d <= 0:
        return None  # overlapping or unreachable: keep splitting
    row_x = tables.dist[rep_x]
    row_y = tables.dist[rep_y]
    diam_x = 2 * max(row_x[v] for v in xs)
    diam_y = 2 * max(row_y[v] for v in ys)
    if diam_x + diam_y <= 2 * epsilon * d:
        return d
    return None
