"""Connectivity utilities.

The paper assumes connected road networks (§2). Synthetic generation or
DIMACS subsetting can leave stray components, so every dataset passes
through :func:`largest_component` before indexing.
"""

from __future__ import annotations

from collections import deque

from repro.graph.graph import Graph


def connected_components(g: Graph) -> list[list[int]]:
    """All connected components, largest first, each sorted by vertex id."""
    seen = [False] * g.n
    components: list[list[int]] = []
    for start in range(g.n):
        if seen[start]:
            continue
        comp = [start]
        seen[start] = True
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v, _ in g.neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    comp.append(v)
                    queue.append(v)
        comp.sort()
        components.append(comp)
    components.sort(key=len, reverse=True)
    return components


def is_connected(g: Graph) -> bool:
    """Whether the graph is a single connected component."""
    if g.n == 0:
        return True
    return len(connected_components(g)[0]) == g.n


def largest_component(g: Graph) -> tuple[Graph, list[int]]:
    """Subgraph induced by the largest component plus the old-id map."""
    if g.n == 0:
        return g.copy(), []
    comp = connected_components(g)[0]
    return g.induced_subgraph(comp)
