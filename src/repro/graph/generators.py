"""Synthetic road-network generation.

The paper evaluates on US road networks from the Ninth DIMACS
Implementation Challenge (Table 1), with travel-time edge weights. Those
files are not available offline, so this module builds synthetic
networks that preserve the structural properties every evaluated
technique exploits:

- **near-planarity / degree-boundedness** — vertices are points in the
  plane, edges come from a Delaunay triangulation thinned down to road
  density (about 1.2 undirected edges per vertex, matching Table 1's
  arc-to-vertex ratio of ~2.4), so queries behave like real road graphs;
- **spatial coherence** — edge weights grow with geometric length, so
  nearby sources share shortest-path trees (what SILC/PCPD compress);
- **a vertex-importance hierarchy** — a sparse "highway" backbone of
  faster edges between city hubs, so some vertices genuinely matter more
  (what CH/TNR exploit);
- **population clustering** — multi-scale Gaussian city clusters over a
  uniform rural background, so the paper's close-range query buckets
  (Q1–Q3, which demand vertex pairs within ~0.1% of the map side) are
  populated;
- **travel-time weights** — integer weights equal to length divided by a
  per-edge speed, like the challenge's time-weighted graphs (and hence
  *not* Euclidean distances — the property that rules out HiTi,
  Appendix A).

Coordinates live on an integer lattice of ``COORD_SCALE`` units per map
side, matching the challenge convention of integer coordinates, so
DIMACS round-trips are exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.csgraph import minimum_spanning_tree
from scipy.spatial import Delaunay, cKDTree

from repro.graph.components import largest_component
from repro.graph.graph import Graph

COORD_SCALE = 1_000_000  # lattice units per map side (DIMACS-like)

LOCAL_SPEED = 1.0  # baseline speed on ordinary roads
ARTERIAL_SPEED = 2.0  # faster ring/arterial roads
HIGHWAY_SPEED = 4.0  # backbone highways between hubs


@dataclass(frozen=True)
class RoadNetworkSpec:
    """Parameters of one synthetic network.

    The defaults are tuned so the generated graphs land close to the
    Table 1 edge/vertex ratio and show the paper's query behaviour.
    """

    n: int
    seed: int = 0
    n_cities: int | None = None  # default: ~sqrt(n)/2 clusters
    city_fraction: float = 0.72  # population share living in clusters
    n_hubs: int | None = None  # highway endpoints; default ~6 + n^(1/3)
    extra_edge_factor: float = 0.22  # non-tree Delaunay edges kept per vertex
    tight_cluster_fraction: float = 0.25  # share of clusters that are very dense

    def resolved_cities(self) -> int:
        if self.n_cities is not None:
            return self.n_cities
        return max(3, int(math.sqrt(self.n) / 2))

    def resolved_hubs(self) -> int:
        if self.n_hubs is not None:
            return self.n_hubs
        return max(4, min(16, 6 + int(round(self.n ** (1.0 / 3.0) / 2))))


@dataclass
class GenerationReport:
    """Diagnostics emitted alongside a generated network."""

    requested_n: int
    final_n: int = 0
    final_m: int = 0
    n_highway_edges: int = 0
    n_arterial_edges: int = 0
    notes: list[str] = field(default_factory=list)


def _sample_points(spec: RoadNetworkSpec, rng: np.random.Generator) -> np.ndarray:
    """Sample ``spec.n`` planar points: city clusters + rural background."""
    n = spec.n
    n_city = int(n * spec.city_fraction)
    n_rural = n - n_city
    k = spec.resolved_cities()

    centers = rng.uniform(0.08, 0.92, size=(k, 2))
    # Zipf-ish city sizes: big metros plus many small towns.
    weights = 1.0 / np.arange(1, k + 1)
    weights /= weights.sum()
    counts = rng.multinomial(n_city, weights)

    # A share of clusters is very tight so the closest query buckets
    # (L-inf within ~0.1% of the map) contain real vertex pairs.
    n_tight = max(1, int(k * spec.tight_cluster_fraction))
    sigmas = rng.uniform(0.015, 0.05, size=k)
    sigmas[:n_tight] = rng.uniform(0.0015, 0.006, size=n_tight)

    chunks = []
    for center, count, sigma in zip(centers, counts, sigmas):
        if count == 0:
            continue
        chunks.append(rng.normal(center, sigma, size=(count, 2)))
    chunks.append(rng.uniform(0.0, 1.0, size=(n_rural, 2)))
    points = np.clip(np.concatenate(chunks, axis=0), 0.0, 1.0)

    # Snap to the integer lattice and perturb exact duplicates, which
    # would break the Delaunay triangulation and the Morton mapping.
    points = np.round(points * COORD_SCALE)
    seen: set[tuple[int, int]] = set()
    for i in range(len(points)):
        p = (int(points[i, 0]), int(points[i, 1]))
        while p in seen:
            points[i] += rng.integers(-3, 4, size=2)
            points[i] = np.clip(points[i], 0, COORD_SCALE)
            p = (int(points[i, 0]), int(points[i, 1]))
        seen.add(p)
    return points


def _delaunay_edges(points: np.ndarray) -> set[tuple[int, int]]:
    """Undirected edge set of the Delaunay triangulation."""
    tri = Delaunay(points)
    edges: set[tuple[int, int]] = set()
    for simplex in tri.simplices:
        a, b, c = int(simplex[0]), int(simplex[1]), int(simplex[2])
        for u, v in ((a, b), (b, c), (a, c)):
            edges.add((u, v) if u < v else (v, u))
    return edges


def _thin_edges(
    points: np.ndarray,
    edges: set[tuple[int, int]],
    spec: RoadNetworkSpec,
    rng: np.random.Generator,
) -> list[tuple[int, int]]:
    """Thin the triangulation to road density, keeping it connected.

    The Euclidean minimum spanning tree (a Delaunay subgraph) is always
    kept; the remaining edges are sampled with a bias against long
    links, which removes the long sliver edges Delaunay adds across
    empty countryside and leaves a road-like skeleton.
    """
    n = len(points)
    edge_list = sorted(edges)
    us = np.fromiter((e[0] for e in edge_list), dtype=np.int64)
    vs = np.fromiter((e[1] for e in edge_list), dtype=np.int64)
    lengths = np.hypot(
        points[us, 0] - points[vs, 0], points[us, 1] - points[vs, 1]
    )
    lengths = np.maximum(lengths, 1.0)

    mst = minimum_spanning_tree(
        coo_matrix((lengths, (us, vs)), shape=(n, n))
    ).tocoo()
    kept = {(min(int(a), int(b)), max(int(a), int(b))) for a, b in zip(mst.row, mst.col)}

    extras_budget = int(spec.extra_edge_factor * n)
    median_len = float(np.median(lengths))
    candidates = [i for i, e in enumerate(edge_list) if e not in kept]
    # Short edges are much more likely to be real roads than long ones.
    probs = np.array(
        [1.0 / (1.0 + (lengths[i] / median_len) ** 3) for i in candidates]
    )
    if candidates and extras_budget > 0:
        probs /= probs.sum()
        take = min(extras_budget, len(candidates))
        chosen = rng.choice(len(candidates), size=take, replace=False, p=probs)
        for idx in chosen:
            kept.add(edge_list[candidates[idx]])
    return sorted(kept)


def _select_hubs(points: np.ndarray, spec: RoadNetworkSpec, rng: np.random.Generator) -> list[int]:
    """Pick spread-out hub vertices near dense areas for the backbone."""
    k = spec.resolved_hubs()
    tree = cKDTree(points)
    # Density proxy: inverse distance to the 8th nearest neighbour.
    sample = rng.choice(len(points), size=min(len(points), 512), replace=False)
    dists, _ = tree.query(points[sample], k=min(9, len(points)))
    density = 1.0 / (dists[:, -1] + 1.0)
    order = sample[np.argsort(-density)]
    hubs: list[int] = []
    min_gap = 0.18 * COORD_SCALE
    for cand in order:
        c = points[cand]
        if all(np.hypot(*(c - points[h])) >= min_gap for h in hubs):
            hubs.append(int(cand))
        if len(hubs) == k:
            break
    return hubs if len(hubs) >= 2 else [int(order[0]), int(order[-1])]


def _euclidean_sssp_tree(
    adj: list[list[tuple[int, float]]], source: int
) -> tuple[list[float], list[int]]:
    """Dijkstra over Euclidean lengths; returns (dist, parent).

    Local to generation (runs before travel-time weights exist), so it
    does not reuse :mod:`repro.core.dijkstra`, which works on a built
    :class:`Graph`.
    """
    import heapq

    n = len(adj)
    dist = [math.inf] * n
    parent = [-1] * n
    dist[source] = 0.0
    heap = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for v, w in adj[u]:
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
    return dist, parent


def _mark_backbone(
    points: np.ndarray, edges: list[tuple[int, int]], hubs: list[int]
) -> tuple[set[tuple[int, int]], set[tuple[int, int]]]:
    """Mark highway and arterial edges along hub-to-hub routes.

    Edges on geometric shortest routes between hub pairs become
    highways; edges adjacent to highway vertices become arterials. The
    result is a genuine importance hierarchy: CH contracts countryside
    first, and TNR's access nodes funnel onto the backbone.
    """
    n = len(points)
    adj: list[list[tuple[int, float]]] = [[] for _ in range(n)]
    for u, v in edges:
        length = float(np.hypot(*(points[u] - points[v]))) or 1.0
        adj[u].append((v, length))
        adj[v].append((u, length))

    highway: set[tuple[int, int]] = set()
    for i, h in enumerate(hubs):
        _, parent = _euclidean_sssp_tree(adj, h)
        for t in hubs[i + 1 :]:
            node = t
            while parent[node] != -1:
                p = parent[node]
                highway.add((min(node, p), max(node, p)))
                node = p

    on_highway = {u for e in highway for u in e}
    arterial = {
        (u, v)
        for u, v in edges
        if (u, v) not in highway and (u in on_highway or v in on_highway)
    }
    return highway, arterial


def generate_road_network(spec: RoadNetworkSpec) -> tuple[Graph, GenerationReport]:
    """Generate a synthetic road network per ``spec``.

    Returns the frozen graph (largest connected component, vertices
    renumbered) and a :class:`GenerationReport`. Deterministic in
    ``spec.seed``.
    """
    if spec.n < 8:
        raise ValueError("need at least 8 vertices for a meaningful network")
    rng = np.random.default_rng(spec.seed)
    report = GenerationReport(requested_n=spec.n)

    points = _sample_points(spec, rng)
    edges = _thin_edges(points, _delaunay_edges(points), spec, rng)
    hubs = _select_hubs(points, spec, rng)
    highway, arterial = _mark_backbone(points, edges, hubs)
    report.n_highway_edges = len(highway)
    report.n_arterial_edges = len(arterial)

    g = Graph(points[:, 0].tolist(), points[:, 1].tolist())
    for u, v in edges:
        length = float(np.hypot(*(points[u] - points[v]))) or 1.0
        if (u, v) in highway:
            speed = HIGHWAY_SPEED
        elif (u, v) in arterial:
            speed = ARTERIAL_SPEED
        else:
            speed = LOCAL_SPEED
        travel_time = max(1, int(round(length / speed)))
        g.add_edge(u, v, float(travel_time))

    g, _ = largest_component(g)
    if g.n < spec.n:
        report.notes.append(
            f"largest component kept {g.n}/{spec.n} vertices"
        )
    report.final_n = g.n
    report.final_m = g.m
    return g.freeze(), report


def grid_graph(width: int, height: int, weight: float = 1.0) -> Graph:
    """A ``width x height`` lattice with uniform weights.

    Not a realistic road network — a deterministic fixture for unit
    tests where hand-checkable distances matter.
    """
    if width < 1 or height < 1:
        raise ValueError("grid dimensions must be positive")
    xs = [float(i % width) for i in range(width * height)]
    ys = [float(i // width) for i in range(width * height)]
    g = Graph(xs, ys)
    for y in range(height):
        for x in range(width):
            u = y * width + x
            if x + 1 < width:
                g.add_edge(u, u + 1, weight)
            if y + 1 < height:
                g.add_edge(u, u + width, weight)
    return g.freeze()


def paper_example_graph() -> Graph:
    """The 8-vertex network of Figure 1.

    Vertices are ``v1..v8`` mapped to ids ``0..7``. Edges ``(v2, v8)``
    and ``(v6, v8)`` have weight 2; all others weight 1. Coordinates
    approximate the figure's layout so the spatial indexes can run on
    it too.

    The edge set is reverse-engineered from the paper's walkthroughs and
    is the unique 9-edge set satisfying all of them: contraction under
    the order v1 < ... < v8 yields exactly the three shortcuts c1 (v3-v8
    via v1, weight 2), c2 (v7-v6 via v5, weight 2) and c3 (v7-v8 via v6,
    weight 4); the SILC partition of ``V \\ {v8}`` has the three classes
    of Figure 4 ({v1, v3} via v1, {v2} via v2, {v4..v7} via v6); and the
    CH query walkthrough holds (dist(v3, v7) = 6, found at v8).
    """
    xs = [1.0, 1.0, 0.0, 1.5, 3.5, 2.5, 4.5, 2.0]
    ys = [3.0, 1.5, 2.0, 0.5, 1.0, 2.0, 2.5, 3.0]
    edges = [
        (0, 2, 1.0),   # v1-v3
        (0, 7, 1.0),   # v1-v8
        (1, 2, 1.0),   # v2-v3
        (1, 7, 2.0),   # v2-v8
        (3, 4, 1.0),   # v4-v5
        (3, 5, 1.0),   # v4-v6
        (4, 5, 1.0),   # v5-v6
        (4, 6, 1.0),   # v5-v7
        (5, 7, 2.0),   # v6-v8
    ]
    return Graph(xs, ys, edges).freeze()
