"""Road-network graph substrate.

This subpackage provides everything the query techniques are built on:

- :class:`~repro.graph.graph.Graph` — an undirected, weighted,
  coordinate-embedded graph tailored to road networks.
- :mod:`~repro.graph.coords` — bounding boxes and distance metrics.
- :mod:`~repro.graph.morton` — Z-order (Morton) codes used by SILC.
- :mod:`~repro.graph.dimacs` — DIMACS challenge ``.gr``/``.co`` IO.
- :mod:`~repro.graph.generators` — synthetic road-network generators.
- :mod:`~repro.graph.components` — connectivity utilities.
- :mod:`~repro.graph.pqueue` — addressable binary heap.
"""

from repro.graph.components import connected_components, largest_component
from repro.graph.coords import BoundingBox, chebyshev, euclidean
from repro.graph.graph import Edge, Graph
from repro.graph.morton import morton_decode, morton_encode
from repro.graph.pqueue import AddressableHeap

__all__ = [
    "AddressableHeap",
    "BoundingBox",
    "Edge",
    "Graph",
    "chebyshev",
    "connected_components",
    "euclidean",
    "largest_component",
    "morton_decode",
    "morton_encode",
]
