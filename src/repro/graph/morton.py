"""Z-order (Morton) codes.

SILC stores each vertex's equivalence-class partition as intervals on a
two-dimensional Z-curve (Appendix D): every quadtree cell corresponds to
one contiguous Morton-code interval, so "which class contains target t"
becomes a binary search over sorted intervals.

We use ``MORTON_BITS`` bits per axis. 20 bits cover the generators'
1,000,000-unit coordinate lattice exactly, so distinct lattice points
get distinct codes — which lets the SILC quadtree always separate
mixed-colour cells by splitting deeper.
"""

from __future__ import annotations

from repro.graph.coords import BoundingBox

MORTON_BITS = 20
MORTON_SIDE = 1 << MORTON_BITS  # cells per axis
MORTON_MAX = (1 << (2 * MORTON_BITS)) - 1

_SPREAD_MASKS = (
    0x0000FFFF0000FFFF,
    0x00FF00FF00FF00FF,
    0x0F0F0F0F0F0F0F0F,
    0x3333333333333333,
    0x5555555555555555,
)


def _part1by1(x: int) -> int:
    """Spread the low 32 bits of ``x`` to even bit positions."""
    x &= 0xFFFFFFFF
    x = (x | (x << 16)) & _SPREAD_MASKS[0]
    x = (x | (x << 8)) & _SPREAD_MASKS[1]
    x = (x | (x << 4)) & _SPREAD_MASKS[2]
    x = (x | (x << 2)) & _SPREAD_MASKS[3]
    x = (x | (x << 1)) & _SPREAD_MASKS[4]
    return x


def _compact1by1(x: int) -> int:
    """Inverse of :func:`_part1by1`."""
    x &= _SPREAD_MASKS[4]
    x = (x | (x >> 1)) & _SPREAD_MASKS[3]
    x = (x | (x >> 2)) & _SPREAD_MASKS[2]
    x = (x | (x >> 4)) & _SPREAD_MASKS[1]
    x = (x | (x >> 8)) & _SPREAD_MASKS[0]
    x = (x | (x >> 16)) & 0xFFFFFFFF
    return x


def morton_encode(ix: int, iy: int) -> int:
    """Interleave two cell indices into one Morton code.

    ``ix`` occupies the even bits, ``iy`` the odd bits, so codes sort in
    Z-curve order.
    """
    if not (0 <= ix < MORTON_SIDE and 0 <= iy < MORTON_SIDE):
        raise ValueError(f"cell index ({ix}, {iy}) out of range [0, {MORTON_SIDE})")
    return _part1by1(ix) | (_part1by1(iy) << 1)


def morton_decode(code: int) -> tuple[int, int]:
    """Recover ``(ix, iy)`` from a Morton code."""
    if not 0 <= code <= MORTON_MAX:
        raise ValueError(f"morton code {code} out of range")
    return _compact1by1(code), _compact1by1(code >> 1)


class MortonMapper:
    """Maps continuous coordinates in a bounding box to Morton codes.

    The box is first extended to its square hull so both axes share one
    scale; a quadtree cell at depth ``d`` then corresponds to exactly one
    aligned Morton interval of length ``4**(MORTON_BITS - d)``.
    """

    __slots__ = ("x0", "y0", "scale")

    def __init__(self, box: BoundingBox) -> None:
        side = box.side
        if side <= 0:
            # Degenerate (single point / collinear) boxes still need a
            # well-defined mapping; any positive scale works.
            side = 1.0
        self.x0 = box.xmin
        self.y0 = box.ymin
        # Strictly-below-one scaling so xmax lands inside the last cell.
        self.scale = (MORTON_SIDE - 1) / side

    def cell_of(self, x: float, y: float) -> tuple[int, int]:
        """Integer cell indices of a point (clamped to the grid)."""
        ix = min(MORTON_SIDE - 1, max(0, int((x - self.x0) * self.scale)))
        iy = min(MORTON_SIDE - 1, max(0, int((y - self.y0) * self.scale)))
        return ix, iy

    def encode(self, x: float, y: float) -> int:
        """Morton code of a point."""
        ix, iy = self.cell_of(x, y)
        return morton_encode(ix, iy)


def quadtree_interval(ix: int, iy: int, depth: int) -> tuple[int, int]:
    """Half-open Morton interval of the quadtree cell ``(ix, iy, depth)``.

    ``depth`` counts root = 0; the cell covers ``2**(MORTON_BITS-depth)``
    Morton cells per axis and its codes form one contiguous block.
    ``(ix, iy)`` index the cell within its depth level.
    """
    if not 0 <= depth <= MORTON_BITS:
        raise ValueError(f"depth {depth} out of range [0, {MORTON_BITS}]")
    shift = MORTON_BITS - depth
    base = morton_encode(ix << shift, iy << shift)
    return base, base + (1 << (2 * shift))
