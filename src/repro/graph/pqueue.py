"""Addressable binary min-heap with decrease-key.

``heapq`` plus lazy deletion is fine for plain Dijkstra, but CH's node
ordering (§3.2) needs true *re-prioritisation* of arbitrary entries
(a vertex's contraction priority changes whenever a neighbour is
contracted), so we keep a classic addressable heap. It is also used by
the Dijkstra variants so every traversal in the library shares one
queue implementation ("common subroutines for similar tasks", §4.1).
"""

from __future__ import annotations

from typing import Generic, Hashable, Iterator, TypeVar

K = TypeVar("K", bound=Hashable)


class AddressableHeap(Generic[K]):
    """Binary min-heap keyed by hashable items with float priorities.

    Supports O(log n) :meth:`push`, :meth:`pop`, :meth:`update` (both
    decrease and increase), and O(1) :meth:`priority` lookup.

    >>> h = AddressableHeap()
    >>> h.push('a', 3.0); h.push('b', 1.0); h.push('c', 2.0)
    >>> h.update('a', 0.5)
    >>> [h.pop()[0] for _ in range(len(h))]
    ['a', 'b', 'c']
    """

    __slots__ = ("_items", "_prios", "_pos")

    def __init__(self) -> None:
        self._items: list[K] = []
        self._prios: list[float] = []
        self._pos: dict[K, int] = {}

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __contains__(self, item: K) -> bool:
        return item in self._pos

    def __iter__(self) -> Iterator[K]:
        """Iterate items in arbitrary (heap) order."""
        return iter(self._items)

    def push(self, item: K, priority: float) -> None:
        """Insert a new item; raises if it is already queued."""
        if item in self._pos:
            raise KeyError(f"{item!r} already in heap; use update()")
        self._items.append(item)
        self._prios.append(priority)
        self._pos[item] = len(self._items) - 1
        self._sift_up(len(self._items) - 1)

    def push_or_update(self, item: K, priority: float) -> None:
        """Insert, or change priority if present (any direction)."""
        if item in self._pos:
            self.update(item, priority)
        else:
            self.push(item, priority)

    def update(self, item: K, priority: float) -> None:
        """Change the priority of a queued item."""
        i = self._pos[item]
        old = self._prios[i]
        self._prios[i] = priority
        if priority < old:
            self._sift_up(i)
        elif priority > old:
            self._sift_down(i)

    def decrease_key(self, item: K, priority: float) -> bool:
        """Lower the priority if ``priority`` improves it.

        Returns True if the key changed. The Dijkstra idiom:
        ``if tentative < dist: heap.decrease_key(v, tentative)``.
        """
        i = self._pos[item]
        if priority >= self._prios[i]:
            return False
        self._prios[i] = priority
        self._sift_up(i)
        return True

    def priority(self, item: K) -> float:
        """Current priority of a queued item."""
        return self._prios[self._pos[item]]

    def peek(self) -> tuple[K, float]:
        """Minimum item without removing it."""
        if not self._items:
            raise IndexError("peek from empty heap")
        return self._items[0], self._prios[0]

    def pop(self) -> tuple[K, float]:
        """Remove and return the minimum ``(item, priority)``."""
        if not self._items:
            raise IndexError("pop from empty heap")
        top, prio = self._items[0], self._prios[0]
        last_item, last_prio = self._items.pop(), self._prios.pop()
        del self._pos[top]
        if self._items:
            self._items[0], self._prios[0] = last_item, last_prio
            self._pos[last_item] = 0
            self._sift_down(0)
        return top, prio

    def remove(self, item: K) -> float:
        """Delete an arbitrary queued item; returns its priority."""
        i = self._pos[item]
        prio = self._prios[i]
        last = len(self._items) - 1
        if i != last:
            self._items[i], self._prios[i] = self._items[last], self._prios[last]
            self._pos[self._items[i]] = i
        self._items.pop()
        self._prios.pop()
        del self._pos[item]
        if i < len(self._items):
            self._sift_down(i)
            self._sift_up(i)
        return prio

    # ------------------------------------------------------------------
    def _sift_up(self, i: int) -> None:
        items, prios, pos = self._items, self._prios, self._pos
        item, prio = items[i], prios[i]
        while i > 0:
            parent = (i - 1) >> 1
            if prios[parent] <= prio:
                break
            items[i], prios[i] = items[parent], prios[parent]
            pos[items[i]] = i
            i = parent
        items[i], prios[i] = item, prio
        pos[item] = i

    def _sift_down(self, i: int) -> None:
        items, prios, pos = self._items, self._prios, self._pos
        size = len(items)
        item, prio = items[i], prios[i]
        while True:
            child = 2 * i + 1
            if child >= size:
                break
            right = child + 1
            if right < size and prios[right] < prios[child]:
                child = right
            if prios[child] >= prio:
                break
            items[i], prios[i] = items[child], prios[child]
            pos[items[i]] = i
            i = child
        items[i], prios[i] = item, prio
        pos[item] = i
