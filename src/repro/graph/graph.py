"""The core road-network graph structure.

The paper (§2) models a road network as a degree-bounded, connected,
undirected graph with positive edge weights (travel times). ``Graph``
mirrors that model:

- vertices are dense integer ids ``0 .. n-1``;
- every vertex carries planar coordinates (needed by TNR's grid, SILC's
  quadtree, PCPD's square pairs, and the workload generators);
- edges are undirected with strictly positive weights;
- adjacency is a list of ``(neighbour, weight)`` lists, the layout the
  C++ reference implementation uses (Appendix D) translated to Python.

The structure is append-only after :meth:`freeze`; the query indexes all
assume the graph does not change underneath them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.graph.coords import BoundingBox, chebyshev, euclidean
from repro.graph.csr import CSRGraph


@dataclass(frozen=True)
class Edge:
    """An undirected edge, normalised so that ``u < v``."""

    u: int
    v: int
    weight: float

    @staticmethod
    def make(u: int, v: int, weight: float) -> "Edge":
        """Create a normalised edge (smaller endpoint first)."""
        if u > v:
            u, v = v, u
        return Edge(u, v, weight)

    def key(self) -> tuple[int, int]:
        """The normalised ``(min, max)`` endpoint pair."""
        return (self.u, self.v)

    def other(self, w: int) -> int:
        """The endpoint that is not ``w``."""
        if w == self.u:
            return self.v
        if w == self.v:
            return self.u
        raise ValueError(f"vertex {w} is not an endpoint of {self}")


class Graph:
    """Undirected, weighted, coordinate-embedded road network.

    Parameters
    ----------
    xs, ys:
        Vertex coordinates; ``len(xs)`` defines the vertex count.
    edges:
        Iterable of ``(u, v, weight)``. Parallel edges collapse to the
        minimum weight (the only one a shortest-path query can use);
        self-loops are rejected.

    Examples
    --------
    >>> g = Graph([0.0, 1.0, 2.0], [0.0, 0.0, 0.0],
    ...           [(0, 1, 1.0), (1, 2, 1.0)])
    >>> g.n, g.m
    (3, 2)
    >>> sorted(g.neighbors(1))
    [(0, 1.0), (2, 1.0)]
    """

    __slots__ = ("xs", "ys", "_adj", "_m", "_frozen", "_bbox", "_wmaps", "_nbr", "_csr")

    def __init__(
        self,
        xs: Sequence[float],
        ys: Sequence[float],
        edges: Iterable[tuple[int, int, float]] = (),
    ) -> None:
        if len(xs) != len(ys):
            raise ValueError("xs and ys must have the same length")
        self.xs: list[float] = [float(x) for x in xs]
        self.ys: list[float] = [float(y) for y in ys]
        self._adj: list[list[tuple[int, float]]] = [[] for _ in range(len(self.xs))]
        self._m = 0
        self._frozen = False
        self._bbox: BoundingBox | None = None
        self._wmaps: list[dict[int, float]] | None = None
        # Per-vertex {neighbour: position in _adj[u]} while unfrozen, so
        # add_edge dedup is O(1) instead of an O(degree) scan (quadratic
        # over a generator's insertion stream). Dropped on freeze().
        self._nbr: list[dict[int, int]] | None = [{} for _ in range(len(self.xs))]
        self._csr: CSRGraph | None = None
        for u, v, w in edges:
            self.add_edge(u, v, w)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int, weight: float) -> None:
        """Insert an undirected edge; parallel edges keep the lighter one."""
        if self._frozen:
            raise RuntimeError("graph is frozen; indexes may depend on it")
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise ValueError(f"self-loop at vertex {u} is not allowed")
        weight = float(weight)
        if weight <= 0:
            raise ValueError(f"edge ({u}, {v}) has non-positive weight {weight}")
        existing = self._edge_index(u, v)
        if existing is None:
            self._adj[u].append((v, weight))
            self._adj[v].append((u, weight))
            if self._nbr is not None:
                self._nbr[u][v] = len(self._adj[u]) - 1
                self._nbr[v][u] = len(self._adj[v]) - 1
            self._m += 1
        else:
            i, j = existing
            if weight < self._adj[u][i][1]:
                self._adj[u][i] = (v, weight)
                self._adj[v][j] = (u, weight)

    def freeze(self) -> "Graph":
        """Mark the graph immutable; returns ``self`` for chaining.

        Freezing also materialises the CSR flat-array backend (see
        :mod:`repro.graph.csr`) that the shortest-path kernels and the
        multiprocess builders run on, and drops the construction-time
        neighbour index.
        """
        self._frozen = True
        self._nbr = None
        if self._csr is None:
            self._csr = CSRGraph.from_adjacency(self.xs, self.ys, self._adj)
        return self

    def csr(self) -> CSRGraph:
        """The CSR backend; only frozen graphs have one."""
        if self._csr is None:
            raise RuntimeError("csr() requires a frozen graph")
        return self._csr

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices."""
        return len(self.xs)

    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return self._m

    @property
    def frozen(self) -> bool:
        return self._frozen

    def neighbors(self, u: int) -> list[tuple[int, float]]:
        """``(neighbour, weight)`` pairs of ``u`` (do not mutate)."""
        return self._adj[u]

    def degree(self, u: int) -> int:
        return len(self._adj[u])

    def max_degree(self) -> int:
        """Largest vertex degree (the paper assumes this is bounded)."""
        return max((len(a) for a in self._adj), default=0)

    def has_edge(self, u: int, v: int) -> bool:
        self._check_vertex(u)
        self._check_vertex(v)
        if self._nbr is not None:
            return v in self._nbr[u]
        return v in self.weight_map(u)

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge ``(u, v)``; raises :class:`KeyError` if absent."""
        self._check_vertex(u)
        self._check_vertex(v)
        if self._nbr is not None:
            i = self._nbr[u].get(v)
            if i is None:
                raise KeyError(f"no edge between {u} and {v}")
            return self._adj[u][i][1]
        wmap = self.weight_map(u)
        if v not in wmap:
            raise KeyError(f"no edge between {u} and {v}")
        return wmap[v]

    def weight_map(self, u: int) -> dict[int, float]:
        """``{neighbour: weight}`` of ``u`` — O(1) weight lookups.

        Built lazily for the whole graph on first use and only on
        frozen graphs (mutation would invalidate it). This is the hot
        lookup inside SILC/PCPD/TNR path walks, which fetch one edge
        weight per path edge.
        """
        if self._wmaps is None:
            if not self._frozen:
                raise RuntimeError("weight_map requires a frozen graph")
            self._wmaps = [dict(nbrs) for nbrs in self._adj]
        return self._wmaps[u]

    def edges(self) -> Iterator[Edge]:
        """Iterate each undirected edge exactly once (normalised)."""
        for u, nbrs in enumerate(self._adj):
            for v, w in nbrs:
                if u < v:
                    yield Edge(u, v, w)

    def coord(self, u: int) -> tuple[float, float]:
        """``(x, y)`` coordinates of vertex ``u``."""
        return (self.xs[u], self.ys[u])

    def bounding_box(self) -> BoundingBox:
        """Bounding box of the vertex coordinates (cached once frozen)."""
        if self._bbox is not None and self._frozen:
            return self._bbox
        box = BoundingBox.of_points(self.xs, self.ys)
        if self._frozen:
            self._bbox = box
        return box

    def euclidean_distance(self, u: int, v: int) -> float:
        """Straight-line distance between two vertices."""
        return euclidean(self.xs[u], self.ys[u], self.xs[v], self.ys[v])

    def chebyshev_distance(self, u: int, v: int) -> float:
        """L∞ distance between two vertices (the §4.2 bucketing metric)."""
        return chebyshev(self.xs[u], self.ys[u], self.xs[v], self.ys[v])

    def path_weight(self, path: Sequence[int]) -> float:
        """Total weight of a vertex path; validates every hop is an edge.

        A single-vertex path has weight 0. Raises :class:`KeyError` if a
        consecutive pair is not an edge — this is the validity check the
        tests lean on.
        """
        total = 0.0
        for a, b in zip(path, path[1:]):
            total += self.edge_weight(a, b)
        return total

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def induced_subgraph(self, vertices: Sequence[int]) -> tuple["Graph", list[int]]:
        """Subgraph induced by ``vertices``.

        Returns the new graph (vertices renumbered ``0..k-1`` in the
        order given) and the old-id list such that ``old[i]`` is the
        original id of new vertex ``i``.
        """
        old = list(vertices)
        new_id = {v: i for i, v in enumerate(old)}
        if len(new_id) != len(old):
            raise ValueError("duplicate vertices in subgraph request")
        sub = Graph([self.xs[v] for v in old], [self.ys[v] for v in old])
        for v in old:
            for w, weight in self._adj[v]:
                if v < w and w in new_id:
                    sub.add_edge(new_id[v], new_id[w], weight)
        return sub, old

    def without_vertices(self, removed: Iterable[int]) -> "Graph":
        """Copy of the graph with ``removed`` vertices isolated.

        Vertex ids are preserved (removed vertices stay but lose all
        incident edges); used by the δ-redundancy analysis, which needs
        shortest paths avoiding the core of another path (Appendix C).
        """
        gone = set(removed)
        g = Graph(self.xs, self.ys)
        for u, nbrs in enumerate(self._adj):
            if u in gone:
                continue
            for v, w in nbrs:
                if u < v and v not in gone:
                    g.add_edge(u, v, w)
        return g

    def copy(self) -> "Graph":
        """Unfrozen deep copy."""
        g = Graph(self.xs, self.ys)
        for e in self.edges():
            g.add_edge(e.u, e.v, e.weight)
        return g

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_vertex(self, u: int) -> None:
        if not 0 <= u < len(self._adj):
            raise IndexError(f"vertex {u} out of range [0, {len(self._adj)})")

    def _edge_index(self, u: int, v: int) -> tuple[int, int] | None:
        """Positions of ``v`` in ``adj[u]`` and ``u`` in ``adj[v]``."""
        self._check_vertex(u)
        self._check_vertex(v)
        if self._nbr is not None:
            iu = self._nbr[u].get(v)
            if iu is None:
                return None
            return (iu, self._nbr[v][u])
        iu = next((i for i, (w, _) in enumerate(self._adj[u]) if w == v), None)
        if iu is None:
            return None
        iv = next(i for i, (w, _) in enumerate(self._adj[v]) if w == u)
        return (iu, iv)

    # ------------------------------------------------------------------
    # Pickling
    # ------------------------------------------------------------------
    def __getstate__(self):
        # A frozen graph ships only its CSR arrays — this is what keeps
        # the multiprocess builders cheap (workers rebuild adjacency
        # locally instead of unpickling millions of tuples) and what
        # the persistence layer's format-3 files contain.
        if self._frozen and self._csr is not None:
            return {"csr": self._csr}
        return {
            "xs": self.xs,
            "ys": self.ys,
            "adj": self._adj,
            "m": self._m,
            "frozen": self._frozen,
        }

    def __setstate__(self, state) -> None:
        csr = state.get("csr")
        if csr is not None:
            self.xs = csr.xs.tolist()
            self.ys = csr.ys.tolist()
            self._adj = csr.adjacency_lists()
            self._m = csr.m
            self._frozen = True
            self._nbr = None
            self._csr = csr
        else:
            self.xs = state["xs"]
            self.ys = state["ys"]
            self._adj = state["adj"]
            self._m = state["m"]
            self._frozen = state["frozen"]
            self._nbr = [
                {v: i for i, (v, _) in enumerate(nbrs)} for nbrs in self._adj
            ]
            self._csr = None
            if self._frozen:
                self.freeze()
        self._bbox = None
        self._wmaps = None

    def __repr__(self) -> str:
        return f"Graph(n={self.n}, m={self.m}, frozen={self._frozen})"
