"""CSR flat-array graph backend and the batched shortest-path kernels.

The paper's C++ reference implementation (Appendix D) stores adjacency
as flat arrays — the compressed-sparse-row layout — because every
technique it measures spends its time streaming edges. This module is
that layout for the Python reproduction: a :class:`CSRGraph` is
materialised once when a :class:`~repro.graph.graph.Graph` is frozen
and shared by every kernel afterwards.

Layout
------
``indptr`` (int32, ``n+1``) and ``indices`` (int32, ``2m``) are the
usual CSR row pointers and column ids; ``weights`` (float64, ``2m``)
holds the arc weights; ``xs``/``ys`` (float64, ``n``) the vertex
coordinates. Each undirected edge is stored as two directed arcs, and
each adjacency row is sorted by neighbour id.

Kernels
-------
The traversal itself runs inside :func:`scipy.sparse.csgraph.dijkstra`
(compiled C); the parts the repo's techniques need beyond distances —
tie-broken parent trees and first-hop tables — are *derived* from the
distance arrays with exact vectorised algebra:

- the documented tie-break rule ("replace the parent only on a strict
  improvement, or on an equal distance from a smaller predecessor id")
  makes the final parent of ``v`` exactly
  ``min { u : dist[u] + w(u, v) == dist[v] }``, which is computable
  from the distance array alone;
- the first hop of ``v`` is the child-of-source ancestor of ``v`` in
  that parent tree, computed by pointer doubling.

Both derivations are bit-identical to the legacy pure-Python loops in
:mod:`repro.core.dijkstra` (see ``tests/test_csr_kernels.py`` for the
differential property test).

Scratch pool
------------
Early-exit point-to-point kernels keep their labels in preallocated
per-graph scratch (:class:`ScratchLabels`) borrowed from a small
free-list instead of building dicts and sets per call. Borrow/release
is re-entrant safe (nested borrows get distinct label sets) but the
pool is **not thread safe**; see ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import os
from typing import Sequence

import numpy as np

try:  # scipy ships the compiled Dijkstra; the repo degrades to the
    # pure-Python paths without it (see kernel_for).
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import dijkstra as _scipy_dijkstra

    HAVE_SCIPY = True
except Exception:  # pragma: no cover - scipy is installed in CI
    csr_matrix = None
    _scipy_dijkstra = None
    HAVE_SCIPY = False

INF = float("inf")

# Crossover sizes below which the pure-Python loops beat the scipy call
# overhead (~0.15 ms per invocation, measured in bench_kernels.py).
# REPRO_FORCE_CSR=1 overrides them so the differential tests can drive
# the kernels on tiny graphs.
MIN_N_SINGLE = 400
MIN_N_BATCH = 48

_POOL_CAP = 8


def _env_set(name: str) -> bool:
    return os.environ.get(name, "") not in ("", "0")


class ScratchLabels:
    """Reusable label arrays for the early-exit Python kernels.

    ``dist``/``parent`` start as all-inf/-1; a kernel records every
    index it writes in ``touched`` (and every ``mark`` byte it sets in
    ``marked``) so :meth:`reset` restores the invariant in O(touched)
    rather than O(n).
    """

    __slots__ = ("dist", "parent", "mark", "touched", "marked")

    def __init__(self, n: int) -> None:
        self.dist: list[float] = [INF] * n
        self.parent: list[int] = [-1] * n
        self.mark = bytearray(n)
        self.touched: list[int] = []
        self.marked: list[int] = []

    def reset(self) -> None:
        dist, parent = self.dist, self.parent
        for v in self.touched:
            dist[v] = INF
            parent[v] = -1
        self.touched.clear()
        mark = self.mark
        for v in self.marked:
            mark[v] = 0
        self.marked.clear()


class CSRGraph:
    """Flat-array mirror of a frozen :class:`~repro.graph.graph.Graph`.

    Pickles to just the five core arrays (a fraction of the size of the
    object graph), which is what :mod:`repro.parallel` ships to worker
    processes.
    """

    __slots__ = (
        "n",
        "m",
        "indptr",
        "indices",
        "weights",
        "xs",
        "ys",
        "_matrix",
        "_maskm",
        "_esrc",
        "_revc",
        "_pool",
    )

    def __init__(self, indptr, indices, weights, xs, ys) -> None:
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int32)
        self.indices = np.ascontiguousarray(indices, dtype=np.int32)
        self.weights = np.ascontiguousarray(weights, dtype=np.float64)
        self.xs = np.ascontiguousarray(xs, dtype=np.float64)
        self.ys = np.ascontiguousarray(ys, dtype=np.float64)
        self.n = len(self.indptr) - 1
        self.m = len(self.indices) // 2
        self._matrix = None
        self._maskm = None
        self._esrc = None
        self._revc = None
        self._pool: list[ScratchLabels] = []

    @classmethod
    def from_adjacency(
        cls,
        xs: Sequence[float],
        ys: Sequence[float],
        adj: Sequence[Sequence[tuple[int, float]]],
    ) -> "CSRGraph":
        """Build from an adjacency-list graph, sorting rows by neighbour id."""
        n = len(adj)
        indptr = np.zeros(n + 1, dtype=np.int32)
        for u, nbrs in enumerate(adj):
            indptr[u + 1] = len(nbrs)
        np.cumsum(indptr, out=indptr)
        nnz = int(indptr[-1])
        indices = np.empty(nnz, dtype=np.int32)
        weights = np.empty(nnz, dtype=np.float64)
        for u, nbrs in enumerate(adj):
            a = int(indptr[u])
            for k, (v, w) in enumerate(sorted(nbrs)):
                indices[a + k] = v
                weights[a + k] = w
        return cls(indptr, indices, weights, xs, ys)

    # ------------------------------------------------------------------
    # Derived views (cached)
    # ------------------------------------------------------------------
    def matrix(self):
        """The scipy ``csr_matrix`` view (shares the core arrays)."""
        if self._matrix is None:
            if not HAVE_SCIPY:
                raise RuntimeError("scipy is required for the CSR kernels")
            self._matrix = csr_matrix(
                (self.weights, self.indices, self.indptr),
                shape=(self.n, self.n),
                copy=False,
            )
        return self._matrix

    def masked_matrix(self):
        """A reusable scipy matrix for *subgraph* searches.

        Same sparsity structure as :meth:`matrix` but with its own data
        array, meant to be overwritten per use: set the arcs outside
        the subgraph to ``inf`` (scipy's Dijkstra never relaxes an
        ``inf`` arc, so they behave as deleted) and the rest to
        :attr:`weights`. Reusing one template skips the per-call sparse
        construction that otherwise dominates many-small-subgraph
        passes like the TNR access-node build. Like the scratch pool,
        the template is shared per graph: callers must fully rewrite
        ``.data`` before each search and must not use it re-entrantly.
        """
        if self._maskm is None:
            if not HAVE_SCIPY:
                raise RuntimeError("scipy is required for the CSR kernels")
            self._maskm = csr_matrix(
                (self.weights.copy(), self.indices, self.indptr),
                shape=(self.n, self.n),
                copy=False,
            )
        return self._maskm

    def edge_sources(self) -> np.ndarray:
        """``esrc[k]`` = tail of arc ``k`` (ascending; ``indices`` is the head)."""
        if self._esrc is None:
            self._esrc = np.repeat(
                np.arange(self.n, dtype=np.int32), np.diff(self.indptr)
            )
        return self._esrc

    def _reversed_arcs(self):
        """Reversed arc arrays + scratch buffers for the 1-source parent pass.

        Reversed so that a plain boolean-mask fancy assignment writes
        candidate parents in descending-id order — the last write (the
        smallest id) is exactly the documented tie-break winner.
        """
        if self._revc is None:
            nnz = len(self.indices)
            self._revc = (
                self.edge_sources()[::-1].copy(),
                self.indices[::-1].copy(),
                self.weights[::-1].copy(),
                np.empty(nnz),
                np.empty(nnz),
                np.empty(nnz, dtype=bool),
            )
        return self._revc

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def sssp(self, source: int) -> tuple[np.ndarray, np.ndarray]:
        """Single-source distances + tie-broken parents (matches legacy)."""
        dist = _scipy_dijkstra(self.matrix(), directed=True, indices=int(source))
        rsrc, rdst, rw, buf1, buf2, mbuf = self._reversed_arcs()
        np.take(dist, rsrc, out=buf1)
        np.add(buf1, rw, out=buf1)
        np.take(dist, rdst, out=buf2)
        np.equal(buf1, buf2, out=mbuf)
        parent = np.full(self.n, -1, dtype=np.int32)
        parent[rdst[mbuf]] = rsrc[mbuf]
        if not np.isfinite(dist).all():
            parent[np.isinf(dist)] = -1
        parent[source] = source
        return dist, parent

    def sssp_many(
        self, sources: Sequence[int], chunk: int = 128
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched SSSP: ``(k, n)`` distance and parent matrices.

        Processes ``chunk`` sources per scipy call so the intermediate
        ``(chunk, 2m)`` relaxation matrices stay cache-friendly.
        """
        src = np.asarray(sources, dtype=np.int64)
        k = len(src)
        dist = np.empty((k, self.n), dtype=np.float64)
        parent = np.empty((k, self.n), dtype=np.int32)
        mat = self.matrix()
        for a in range(0, k, chunk):
            b = min(a + chunk, k)
            dc = _scipy_dijkstra(mat, directed=True, indices=src[a:b])
            dist[a:b] = dc
            parent[a:b] = self._derive_parents(dc, src[a:b])
        return dist, parent

    def first_hops_many(
        self, sources: Sequence[int], chunk: int = 128
    ) -> np.ndarray:
        """Batched first-hop tables: ``hops[i, v]`` matches legacy
        ``first_hop_table(g, sources[i])[v]`` exactly."""
        src = np.asarray(sources, dtype=np.int64)
        hops = np.empty((len(src), self.n), dtype=np.int32)
        mat = self.matrix()
        for a in range(0, len(src), chunk):
            b = min(a + chunk, len(src))
            dc = _scipy_dijkstra(mat, directed=True, indices=src[a:b])
            pc = self._derive_parents(dc, src[a:b])
            hops[a:b] = _hops_from_parents(pc, src[a:b])
        return hops

    def distances(self, sources, limit: float | None = None) -> np.ndarray:
        """``(k, n)`` distance rows; ``limit`` bounds the search radius
        (labels beyond it come back inf)."""
        src = np.asarray(sources, dtype=np.int64)
        if limit is not None and np.isfinite(limit):
            return _scipy_dijkstra(
                self.matrix(), directed=True, indices=src, limit=float(limit)
            )
        return _scipy_dijkstra(self.matrix(), directed=True, indices=src)

    def distance_table(self, sources, targets) -> np.ndarray:
        """``(len(sources), len(targets))`` exact distance matrix.

        The batched serve primitive for the index-free baseline: one
        compiled multi-source sweep, then a column gather. Unreachable
        pairs hold ``inf``.
        """
        src = np.asarray(sources, dtype=np.int64)
        tgt = np.asarray(targets, dtype=np.int64)
        if len(src) == 0 or len(tgt) == 0:
            return np.empty((len(src), len(tgt)), dtype=np.float64)
        return self.distances(src)[:, tgt]

    def _derive_parents(self, dist: np.ndarray, sources: np.ndarray) -> np.ndarray:
        """Tie-broken parents for a ``(k, n)`` distance block.

        ``parent[v] = min{u : dist[u] + w(u, v) == dist[v]}``: the
        relaxation mask is enumerated in row-major order by
        ``np.nonzero`` with arc tails ascending, so writing it reversed
        makes the smallest tail the last (winning) write per vertex.
        """
        esrc = self.edge_sources()
        edst = self.indices
        k = dist.shape[0]
        parent = np.full((k, self.n), -1, dtype=np.int32)
        mask = dist[:, esrc] + self.weights == dist[:, edst]
        rows, cols = np.nonzero(mask)
        rows = rows[::-1]
        cols = cols[::-1]
        parent[rows, edst[cols]] = esrc[cols]
        parent[~np.isfinite(dist)] = -1
        parent[np.arange(k), sources] = sources
        return parent

    # ------------------------------------------------------------------
    # Scratch pool
    # ------------------------------------------------------------------
    def borrow_labels(self) -> ScratchLabels:
        """Take a clean label set; pair every borrow with release_labels."""
        if self._pool:
            return self._pool.pop()
        return ScratchLabels(self.n)

    def release_labels(self, labels: ScratchLabels) -> None:
        labels.reset()
        if len(self._pool) < _POOL_CAP:
            self._pool.append(labels)

    def core_arrays(self) -> dict[str, np.ndarray]:
        """The five defining arrays, by name.

        This is the published layout of a frozen graph: the pickle
        state, the persistence format, and the serving layer's
        shared-memory segments (:mod:`repro.serve.segments`) all ship
        exactly these arrays. Reconstructing a ``CSRGraph`` from views
        of the same buffers is zero-copy — the constructor's
        ``ascontiguousarray`` is the identity on contiguous arrays of
        the right dtype.
        """
        return {
            "indptr": self.indptr,
            "indices": self.indices,
            "weights": self.weights,
            "xs": self.xs,
            "ys": self.ys,
        }

    # ------------------------------------------------------------------
    # Pickling: core arrays only (caches and pool rebuild lazily)
    # ------------------------------------------------------------------
    def __getstate__(self):
        return self.core_arrays()

    def __setstate__(self, state) -> None:
        self.__init__(
            state["indptr"],
            state["indices"],
            state["weights"],
            state["xs"],
            state["ys"],
        )

    def adjacency_lists(self) -> list[list[tuple[int, float]]]:
        """Rebuild Python adjacency lists (used when unpickling a Graph)."""
        indptr = self.indptr.tolist()
        indices = self.indices.tolist()
        weights = self.weights.tolist()
        return [
            list(zip(indices[indptr[u] : indptr[u + 1]], weights[indptr[u] : indptr[u + 1]]))
            for u in range(self.n)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRGraph(n={self.n}, m={self.m})"


class DirectedCSR:
    """Flat arc arrays of a *directed* graph.

    The road network itself is undirected (each edge stored as two
    arcs inside :class:`CSRGraph`); this is the same layout for graphs
    that are genuinely one-way — most importantly the CH *upward*
    graph, whose arcs only lead to higher-ranked vertices. The
    many-to-many engine (:mod:`repro.core.ch.many_to_many`) runs its
    bucketed sweeps on this view.
    """

    __slots__ = ("n", "indptr", "indices", "weights", "_matrix", "_rstarts", "_rempty")

    def __init__(self, indptr, indices, weights) -> None:
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int32)
        self.indices = np.ascontiguousarray(indices, dtype=np.int32)
        self.weights = np.ascontiguousarray(weights, dtype=np.float64)
        self.n = len(self.indptr) - 1
        self._matrix = None
        self._rstarts = None
        self._rempty = None

    @classmethod
    def from_rows(
        cls, rows: Sequence[Sequence[tuple[int, float]]]
    ) -> "DirectedCSR":
        """Build from per-vertex ``(head, weight)`` lists, head-sorted."""
        n = len(rows)
        indptr = np.zeros(n + 1, dtype=np.int32)
        for u, arcs in enumerate(rows):
            indptr[u + 1] = len(arcs)
        np.cumsum(indptr, out=indptr)
        nnz = int(indptr[-1])
        indices = np.empty(nnz, dtype=np.int32)
        weights = np.empty(nnz, dtype=np.float64)
        for u, arcs in enumerate(rows):
            a = int(indptr[u])
            for k, (v, w) in enumerate(sorted(arcs)):
                indices[a + k] = v
                weights[a + k] = w
        return cls(indptr, indices, weights)

    @property
    def nnz(self) -> int:
        return len(self.indices)

    def matrix(self):
        """The scipy ``csr_matrix`` view (shares the arc arrays)."""
        if self._matrix is None:
            if not HAVE_SCIPY:
                raise RuntimeError("scipy is required for the CSR kernels")
            self._matrix = csr_matrix(
                (self.weights, self.indices, self.indptr),
                shape=(self.n, self.n),
                copy=False,
            )
        return self._matrix

    def neighbor_min_bounds(self, dist: np.ndarray) -> np.ndarray:
        """``bound[i, u] = min over arcs (u, v, w) of dist[i, v] + w``.

        The vectorised form of the stall-on-demand test: a settled
        label ``dist[i, u]`` is *stalled* when ``bound[i, u]`` beats it
        — some neighbour reaches ``u`` cheaper than the label claims,
        so ``u`` cannot top an optimal up-down path. Vertices without
        outgoing arcs get ``inf`` (never stalled).
        """
        out = np.full_like(dist, INF)
        if self.nnz == 0:
            return out
        if self._rstarts is None:
            nonempty = self.indptr[:-1] < self.indptr[1:]
            self._rempty = ~nonempty
            self._rstarts = self.indptr[:-1][nonempty].astype(np.intp)
        cand = dist[:, self.indices] + self.weights
        out[:, ~self._rempty] = np.minimum.reduceat(cand, self._rstarts, axis=1)
        return out

    def stalled_entries(
        self,
        dist: np.ndarray,
        rows: np.ndarray,
        verts: np.ndarray,
        labels: np.ndarray,
    ) -> np.ndarray:
        """Per settled label ``(rows[k], verts[k])``: is it *stalled* —
        does some arc ``(verts[k], v, w)`` have
        ``dist[rows[k], v] + w < labels[k]``?

        Same predicate as ``neighbor_min_bounds(dist) < dist`` but
        evaluated only at the settled entries: the arc fan-out of each
        entry is expanded flat (``O(sum of settled degrees)`` work)
        instead of densely over every ``(search, vertex)`` cell, whose
        unreachable-label comparisons and per-segment ``reduceat``
        overhead dominate sparse search spaces like the CH upward
        sweeps.
        """
        out = np.zeros(len(verts), dtype=bool)
        if self.nnz == 0 or len(verts) == 0:
            return out
        deg = (self.indptr[verts + 1] - self.indptr[verts]).astype(np.intp)
        total = int(deg.sum())
        if total == 0:
            return out
        e = np.repeat(np.arange(len(verts), dtype=np.intp), deg)
        within = np.arange(total, dtype=np.intp) - np.repeat(
            np.cumsum(deg) - deg, deg
        )
        arc = self.indptr[verts].astype(np.intp)[e] + within
        beat = (
            dist[rows[e], self.indices[arc]] + self.weights[arc] < labels[e]
        )
        out[e[beat]] = True
        return out

    def core_arrays(self) -> dict[str, np.ndarray]:
        """The three arc arrays, by name (see ``CSRGraph.core_arrays``)."""
        return {
            "indptr": self.indptr,
            "indices": self.indices,
            "weights": self.weights,
        }

    # Pickle the three arc arrays only (the scipy view and reduceat
    # scratch rebuild lazily, same policy as CSRGraph).
    def __getstate__(self):
        return self.core_arrays()

    def __setstate__(self, state) -> None:
        self.__init__(state["indptr"], state["indices"], state["weights"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DirectedCSR(n={self.n}, nnz={self.nnz})"


def _hops_from_parents(parent: np.ndarray, sources: np.ndarray) -> np.ndarray:
    """First hops from a ``(k, n)`` parent block by pointer doubling.

    ``hop[v]`` is the child-of-source ancestor of ``v``, i.e. the
    fixpoint of following parents while remapping children of the
    source (and unreachable vertices) to themselves. Doubling converges
    in O(log diameter) gather passes.
    """
    k, n = parent.shape
    cols = np.broadcast_to(np.arange(n, dtype=parent.dtype), parent.shape)
    hop = parent.copy()
    unreachable = parent < 0
    if unreachable.any():
        hop[unreachable] = cols[unreachable]
    child = parent == sources[:, None]
    hop[child] = cols[child]
    rows = np.arange(k)[:, None]
    while True:
        nxt = hop[rows, hop]
        if np.array_equal(nxt, hop):
            break
        hop = nxt
    hop[unreachable] = -1
    hop[np.arange(k), sources] = sources
    return hop


def kernel_for(graph, min_n: int = MIN_N_SINGLE):
    """The graph's CSR backend when the kernels should run, else None.

    None when: scipy is unavailable, ``REPRO_NO_CSR=1`` is set, the
    graph is unfrozen (no CSR yet), or it is smaller than ``min_n``
    (scipy's per-call overhead loses to the Python loops there) —
    unless ``REPRO_FORCE_CSR=1`` overrides the size cutoff.
    """
    if not HAVE_SCIPY or _env_set("REPRO_NO_CSR"):
        return None
    csr = getattr(graph, "_csr", None)
    if csr is None:
        return None
    if csr.n < min_n and not _env_set("REPRO_FORCE_CSR"):
        return None
    return csr
