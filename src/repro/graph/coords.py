"""Coordinate utilities: bounding boxes and planar distance metrics.

The paper's workload generator buckets queries by the L∞ (Chebyshev)
distance between endpoints measured over a grid imposed on the network's
bounding box (§4.2), so the bounding box and the Chebyshev metric are
first-class citizens here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


def euclidean(x1: float, y1: float, x2: float, y2: float) -> float:
    """Euclidean (L2) distance between two planar points."""
    return math.hypot(x2 - x1, y2 - y1)


def chebyshev(x1: float, y1: float, x2: float, y2: float) -> float:
    """Chebyshev (L∞) distance between two planar points."""
    return max(abs(x2 - x1), abs(y2 - y1))


def manhattan(x1: float, y1: float, x2: float, y2: float) -> float:
    """Manhattan (L1) distance between two planar points."""
    return abs(x2 - x1) + abs(y2 - y1)


@dataclass(frozen=True)
class BoundingBox:
    """Axis-aligned bounding box of a point set.

    ``xmin == xmax`` (or ``ymin == ymax``) is legal and describes a
    degenerate box; :meth:`side` is then zero along that axis.
    """

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        if self.xmin > self.xmax or self.ymin > self.ymax:
            raise ValueError(f"inverted bounding box: {self}")

    @staticmethod
    def of_points(xs: Sequence[float], ys: Sequence[float]) -> "BoundingBox":
        """Bounding box of the points ``zip(xs, ys)``.

        Raises :class:`ValueError` on an empty point set.
        """
        if len(xs) == 0 or len(xs) != len(ys):
            raise ValueError("need a non-empty, equal-length coordinate pair")
        return BoundingBox(min(xs), min(ys), max(xs), max(ys))

    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    @property
    def side(self) -> float:
        """The longer side; the square hull of the box has this side."""
        return max(self.width, self.height)

    def contains(self, x: float, y: float) -> bool:
        """Whether ``(x, y)`` lies in the (closed) box."""
        return self.xmin <= x <= self.xmax and self.ymin <= y <= self.ymax

    def intersects(self, other: "BoundingBox") -> bool:
        """Whether the closed boxes share at least one point."""
        return not (
            self.xmax < other.xmin
            or other.xmax < self.xmin
            or self.ymax < other.ymin
            or other.ymax < self.ymin
        )

    def expanded(self, margin: float) -> "BoundingBox":
        """A copy grown by ``margin`` on every side."""
        if margin < 0:
            raise ValueError("margin must be non-negative")
        return BoundingBox(
            self.xmin - margin, self.ymin - margin, self.xmax + margin, self.ymax + margin
        )

    def quadrants(self) -> tuple["BoundingBox", "BoundingBox", "BoundingBox", "BoundingBox"]:
        """Split into four equal quadrants (SW, SE, NW, NE)."""
        cx = (self.xmin + self.xmax) / 2.0
        cy = (self.ymin + self.ymax) / 2.0
        return (
            BoundingBox(self.xmin, self.ymin, cx, cy),
            BoundingBox(cx, self.ymin, self.xmax, cy),
            BoundingBox(self.xmin, cy, cx, self.ymax),
            BoundingBox(cx, cy, self.xmax, self.ymax),
        )


def square_hull(box: BoundingBox) -> BoundingBox:
    """Smallest square box containing ``box``, anchored at its min corner.

    SILC's quadtree and PCPD's quadrant splits both operate on squares;
    anchoring at the min corner keeps Morton codes monotone in x and y.
    The max corner is clamped up to the original corners because
    ``min + (max - min)`` can round *below* ``max`` in floating point,
    which would push boundary points outside the hull.
    """
    side = box.side
    return BoundingBox(
        box.xmin,
        box.ymin,
        max(box.xmin + side, box.xmax),
        max(box.ymin + side, box.ymax),
    )


def bucket_of(value: float, cell: float) -> int:
    """Index of the half-open bucket ``[k*cell, (k+1)*cell)`` holding ``value``.

    Used to place vertices into grid cells; values exactly on the top
    boundary of the last cell are clamped into it by callers.
    """
    if cell <= 0:
        raise ValueError("cell size must be positive")
    return int(math.floor(value / cell))


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; raises on an empty iterable."""
    total, count = 0.0, 0
    for v in values:
        total += v
        count += 1
    if count == 0:
        raise ValueError("mean of empty iterable")
    return total / count
