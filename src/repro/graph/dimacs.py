"""DIMACS Ninth Implementation Challenge graph IO.

The paper's datasets come from the challenge [3] as paired files:

- a ``.gr`` file: ``p sp <n> <m>`` header plus ``a <u> <v> <w>`` arcs
  (1-based vertex ids, each undirected road segment listed as two arcs);
- a ``.co`` file: ``p aux sp co <n>`` header plus ``v <id> <x> <y>``
  coordinates (the challenge stores longitude/latitude ×10⁶).

We cannot download the real data in this environment, but this module
means the benchmark harness runs unchanged on it: drop the challenge
files next to the registry and pass ``--dimacs-dir``.
"""

from __future__ import annotations

import os
from typing import IO, Iterable

from repro.graph.graph import Graph


class DimacsFormatError(ValueError):
    """Raised when a DIMACS file is malformed."""


def _tokens(stream: IO[str]) -> Iterable[tuple[int, list[str]]]:
    """Yield ``(line_number, fields)`` for non-comment, non-empty lines."""
    for lineno, line in enumerate(stream, start=1):
        fields = line.split()
        if not fields or fields[0] == "c":
            continue
        yield lineno, fields


def read_coordinates(stream: IO[str]) -> tuple[list[float], list[float]]:
    """Parse a ``.co`` stream into coordinate lists (0-based ids)."""
    xs: list[float] = []
    ys: list[float] = []
    declared = None
    for lineno, fields in _tokens(stream):
        kind = fields[0]
        if kind == "p":
            if len(fields) != 5 or fields[1:4] != ["aux", "sp", "co"]:
                raise DimacsFormatError(f"line {lineno}: bad co header {fields}")
            declared = int(fields[4])
            xs = [0.0] * declared
            ys = [0.0] * declared
        elif kind == "v":
            if declared is None:
                raise DimacsFormatError(f"line {lineno}: 'v' before 'p' header")
            if len(fields) != 4:
                raise DimacsFormatError(f"line {lineno}: bad vertex line {fields}")
            vid = int(fields[1]) - 1
            if not 0 <= vid < declared:
                raise DimacsFormatError(f"line {lineno}: vertex id {vid + 1} out of range")
            xs[vid] = float(fields[2])
            ys[vid] = float(fields[3])
        else:
            raise DimacsFormatError(f"line {lineno}: unknown record {kind!r}")
    if declared is None:
        raise DimacsFormatError("missing 'p aux sp co' header")
    return xs, ys


def read_graph(gr_stream: IO[str], co_stream: IO[str]) -> Graph:
    """Parse paired ``.gr``/``.co`` streams into a :class:`Graph`.

    Arc pairs ``(u,v)``/``(v,u)`` collapse into one undirected edge; when
    the two directions disagree on weight, the smaller wins (matching
    the paper's undirected model, §2).
    """
    xs, ys = read_coordinates(co_stream)
    g = Graph(xs, ys)
    declared_n = declared_m = None
    arcs = 0
    for lineno, fields in _tokens(gr_stream):
        kind = fields[0]
        if kind == "p":
            if len(fields) != 4 or fields[1] != "sp":
                raise DimacsFormatError(f"line {lineno}: bad gr header {fields}")
            declared_n, declared_m = int(fields[2]), int(fields[3])
            if declared_n != len(xs):
                raise DimacsFormatError(
                    f".gr declares {declared_n} vertices but .co has {len(xs)}"
                )
        elif kind == "a":
            if declared_n is None:
                raise DimacsFormatError(f"line {lineno}: 'a' before 'p' header")
            if len(fields) != 4:
                raise DimacsFormatError(f"line {lineno}: bad arc line {fields}")
            u, v, w = int(fields[1]) - 1, int(fields[2]) - 1, float(fields[3])
            if u == v:
                continue  # challenge data contains a few self-loop arcs
            g.add_edge(u, v, w)
            arcs += 1
        else:
            raise DimacsFormatError(f"line {lineno}: unknown record {kind!r}")
    if declared_n is None:
        raise DimacsFormatError("missing 'p sp' header")
    if declared_m is not None and arcs > declared_m:
        raise DimacsFormatError(f"read {arcs} arcs but header declares {declared_m}")
    return g


def load(gr_path: str | os.PathLike, co_path: str | os.PathLike) -> Graph:
    """Load a graph from ``.gr``/``.co`` files on disk."""
    with open(gr_path) as gr, open(co_path) as co:
        return read_graph(gr, co)


def write_graph(g: Graph, gr_stream: IO[str], co_stream: IO[str], name: str = "repro") -> None:
    """Serialise a graph as challenge-format ``.gr``/``.co`` streams.

    Every undirected edge is written as two arcs, matching the challenge
    convention, so our files round-trip through any challenge tool.
    """
    co_stream.write(f"c coordinates for {name}\n")
    co_stream.write(f"p aux sp co {g.n}\n")
    for u in range(g.n):
        co_stream.write(f"v {u + 1} {int(round(g.xs[u]))} {int(round(g.ys[u]))}\n")
    gr_stream.write(f"c graph for {name}\n")
    gr_stream.write(f"p sp {g.n} {2 * g.m}\n")
    for e in g.edges():
        w = int(round(e.weight))
        gr_stream.write(f"a {e.u + 1} {e.v + 1} {w}\n")
        gr_stream.write(f"a {e.v + 1} {e.u + 1} {w}\n")


def save(g: Graph, gr_path: str | os.PathLike, co_path: str | os.PathLike) -> None:
    """Write a graph to ``.gr``/``.co`` files on disk."""
    with open(gr_path, "w") as gr, open(co_path, "w") as co:
        write_graph(g, gr, co)
