"""The ten-dataset registry mirroring Table 1 of the paper.

The paper uses ten US road networks from the Ninth DIMACS Implementation
Challenge, from Delaware (48,812 vertices) to the full US (23,947,347
vertices). Offline and in pure Python we cannot index twenty million
vertices (repro band: 3/5), so each dataset is represented by a
synthetic network (:mod:`repro.graph.generators`) whose size follows the
same geometric ladder at a reduced scale. The *relative* results the
paper reports — log-log trends versus n, per-query-set crossovers, the
memory wall that locks SILC/PCPD out of large datasets — survive this
scaling; see DESIGN.md §2.

Real challenge data can be dropped in: ``load_dataset(name,
dimacs_dir=...)`` looks for ``<name>.gr``/``<name>.co`` first.

Three size tiers are provided:

- ``tiny`` — for fast unit/integration tests;
- ``small`` — the default experiment scale (600 – 24,000 vertices);
- ``medium`` — a larger ladder for longer runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache

from repro.graph import dimacs
from repro.graph.generators import GenerationReport, RoadNetworkSpec, generate_road_network
from repro.graph.graph import Graph

#: Vertex/edge counts of the real DIMACS datasets (paper Table 1).
PAPER_TABLE1 = {
    "DE": ("Delaware", 48_812, 120_489),
    "NH": ("New Hampshire", 115_055, 264_218),
    "ME": ("Maine", 187_315, 422_998),
    "CO": ("Colorado", 435_666, 1_057_066),
    "FL": ("Florida", 1_070_376, 2_712_798),
    "CA": ("California and Nevada", 1_890_815, 4_657_742),
    "E-US": ("Eastern US", 3_598_623, 8_778_114),
    "W-US": ("Western US", 6_262_104, 15_248_146),
    "C-US": ("Central US", 14_081_816, 34_292_496),
    "US": ("United States", 23_947_347, 58_333_344),
}

DATASET_NAMES = tuple(PAPER_TABLE1)

#: The four smallest datasets — the only ones the paper could afford to
#: index with SILC and PCPD under its 24 GB budget (§4.3).
SPATIAL_METHOD_DATASETS = ("DE", "NH", "ME", "CO")

#: Datasets used for the per-query-set figures (Figs 9, 11, 14, 15).
QUERY_SET_FIGURE_DATASETS = ("DE", "CO", "E-US", "US")

_TIER_SIZES = {
    "tiny": {
        "DE": 150, "NH": 200, "ME": 260, "CO": 340, "FL": 450,
        "CA": 580, "E-US": 760, "W-US": 980, "C-US": 1_280, "US": 1_650,
    },
    "small": {
        "DE": 600, "NH": 1_000, "ME": 1_500, "CO": 2_400, "FL": 4_500,
        "CA": 7_000, "E-US": 10_500, "W-US": 14_000, "C-US": 19_000,
        "US": 24_000,
    },
    "medium": {
        "DE": 1_200, "NH": 2_200, "ME": 3_600, "CO": 6_000, "FL": 10_000,
        "CA": 16_000, "E-US": 26_000, "W-US": 40_000, "C-US": 60_000,
        "US": 90_000,
    },
}

TIERS = tuple(_TIER_SIZES)
DEFAULT_TIER = "small"

_SEED_BASE = 20120827  # the paper's VLDB presentation date


@dataclass(frozen=True)
class DatasetSpec:
    """One registry entry: a named dataset at a given tier."""

    name: str
    region: str
    tier: str
    n_target: int
    seed: int
    paper_n: int
    paper_m: int
    #: TNR grid resolution used by the default experiments for this
    #: dataset (the paper fixes 128x128; we scale it with n so the
    #: vertices-per-cell regime matches — see DESIGN.md).
    tnr_grid: int
    #: Whether SILC/PCPD are expected to fit the memory budget here.
    allows_spatial_methods: bool


def _default_tnr_grid(n: int) -> int:
    """Grid resolution balancing build cost against table size.

    The paper fixes a 128x128 grid over millions of vertices. At our
    scale two costs pull in opposite directions: a *coarse* grid makes
    the 5x5 inner blocks huge, and the per-vertex access-node Dijkstras
    (which settle a block's worth of vertices each) dominate the build;
    a *fine* grid multiplies the number of access nodes, and the
    |T|^2 pairwise table dominates memory. Keeping the inner block at
    roughly <=300 vertices (g^2 >= n/12) balances the two, clamped to
    [16, 64] so shells stay meaningful and tables stay in the tens of
    megabytes.
    """
    grid = 16
    while grid < 128 and grid * grid * 3 < n:
        grid *= 2
    return grid


def dataset_spec(name: str, tier: str = DEFAULT_TIER) -> DatasetSpec:
    """Registry lookup; raises :class:`KeyError` for unknown names/tiers."""
    region, paper_n, paper_m = PAPER_TABLE1[name]
    sizes = _TIER_SIZES[tier]
    n_target = sizes[name]
    return DatasetSpec(
        name=name,
        region=region,
        tier=tier,
        n_target=n_target,
        seed=_SEED_BASE + 13 * DATASET_NAMES.index(name) + 7 * TIERS.index(tier),
        paper_n=paper_n,
        paper_m=paper_m,
        tnr_grid=_default_tnr_grid(n_target),
        allows_spatial_methods=name in SPATIAL_METHOD_DATASETS,
    )


def all_specs(tier: str = DEFAULT_TIER) -> list[DatasetSpec]:
    """All ten specs, in Table 1 order (ascending size)."""
    return [dataset_spec(name, tier) for name in DATASET_NAMES]


@lru_cache(maxsize=None)
def _generate(name: str, tier: str) -> tuple[Graph, GenerationReport]:
    spec = dataset_spec(name, tier)
    return generate_road_network(RoadNetworkSpec(n=spec.n_target, seed=spec.seed))


def load_dataset(
    name: str,
    tier: str = DEFAULT_TIER,
    dimacs_dir: str | os.PathLike | None = None,
) -> Graph:
    """Load (generating and caching on first use) a registry dataset.

    If ``dimacs_dir`` is given and contains ``<name>.gr``/``<name>.co``,
    the real challenge data is loaded instead of the synthetic network —
    the paper's exact inputs, when available.
    """
    if name not in PAPER_TABLE1:
        raise KeyError(f"unknown dataset {name!r}; known: {', '.join(DATASET_NAMES)}")
    if dimacs_dir is not None:
        gr = os.path.join(dimacs_dir, f"{name}.gr")
        co = os.path.join(dimacs_dir, f"{name}.co")
        if os.path.exists(gr) and os.path.exists(co):
            return dimacs.load(gr, co).freeze()
    graph, _ = _generate(name, tier)
    return graph


def generation_report(name: str, tier: str = DEFAULT_TIER) -> GenerationReport:
    """The generator diagnostics for a synthetic dataset."""
    _, report = _generate(name, tier)
    return report
