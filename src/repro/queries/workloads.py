"""Workload generators: the Q-sets (§4.2) and R-sets (Appendix E.2).

Q-sets — bucketed by L∞ distance:

    "We first imposed a 1024 × 1024 grid on the road network and
    computed the side length l of each grid cell. After that, we
    randomly selected ten thousand pairs of vertices from the road
    network to compose Qi (i ∈ [1, 10]), such that the L∞ distance
    between each pair of vertices is in [2^(i-1)·l, 2^i·l)."

R-sets — bucketed by network distance:

    "we first computed a rough estimation of the maximum distance ld
    between any two vertices. After that, we inserted 10000 pairs of
    vertices (u, v) into Ri (i ∈ [1, 10]), such that dist(u, v) ∈
    [2^(i-11)·ld, 2^(i-10)·ld)."

Sampling strategy: uniform rejection sampling is hopeless for the
narrow buckets (Q1 accepts pairs within ~0.1% of the map side), so we
sample a source uniformly and pick a partner from the set of vertices
whose metric value lands in the bucket — for Q-sets via a KD-tree ring
query, for R-sets via a Dijkstra ball from the source. A bucket that a
dataset simply cannot populate (e.g. no vertex pairs that close) yields
fewer pairs; the per-set ``requested`` vs ``len(pairs)`` counts make
that visible rather than silently padding.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from heapq import heappop, heappush

import numpy as np
from scipy.spatial import cKDTree

from repro.graph.graph import Graph

#: The paper's workload-grid resolution (§4.2).
QUERY_GRID = 1024
#: Buckets per family.
N_SETS = 10
#: Pairs per set in the paper; our default is scaled down to keep a
#: full benchmark run tractable in pure Python.
DEFAULT_PAIRS = 300


@dataclass(frozen=True)
class QuerySet:
    """One workload bucket: ``pairs`` all satisfy ``lo <= metric < hi``."""

    name: str
    index: int
    lo: float
    hi: float
    requested: int
    pairs: tuple[tuple[int, int], ...]

    def __len__(self) -> int:
        return len(self.pairs)

    @property
    def shortfall(self) -> int:
        """How many requested pairs the dataset could not supply."""
        return self.requested - len(self.pairs)


def linf_query_sets(
    graph: Graph,
    pairs_per_set: int = DEFAULT_PAIRS,
    seed: int = 0,
    grid: int = QUERY_GRID,
) -> list[QuerySet]:
    """Generate Q1..Q10 (§4.2): L∞-distance-bucketed vertex pairs."""
    if graph.n < 2:
        raise ValueError("need at least two vertices")
    rng = np.random.default_rng(seed)
    box = graph.bounding_box()
    cell = (box.side or 1.0) / grid
    points = np.column_stack([graph.xs, graph.ys])
    tree = cKDTree(points, balanced_tree=True)

    sets: list[QuerySet] = []
    for i in range(1, N_SETS + 1):
        lo, hi = (2 ** (i - 1)) * cell, (2**i) * cell
        pairs = _sample_linf_pairs(graph, tree, points, lo, hi, pairs_per_set, rng)
        sets.append(
            QuerySet(
                name=f"Q{i}", index=i, lo=lo, hi=hi,
                requested=pairs_per_set, pairs=tuple(pairs),
            )
        )
    return sets


def _sample_linf_pairs(
    graph: Graph,
    tree: cKDTree,
    points: np.ndarray,
    lo: float,
    hi: float,
    count: int,
    rng: np.random.Generator,
) -> list[tuple[int, int]]:
    """Pairs with L∞ distance in ``[lo, hi)``.

    For a random source, candidate partners are found with a Chebyshev
    (p=∞) KD-tree ring query; sources whose ring is empty are skipped.
    """
    n = graph.n
    pairs: list[tuple[int, int]] = []
    attempts = 0
    max_attempts = 60 * count
    while len(pairs) < count and attempts < max_attempts:
        attempts += 1
        s = int(rng.integers(n))
        ring = tree.query_ball_point(points[s], hi, p=np.inf)
        candidates = [
            t
            for t in ring
            if t != s and graph.chebyshev_distance(s, t) >= lo
        ]
        if not candidates:
            continue
        t = candidates[int(rng.integers(len(candidates)))]
        pairs.append((s, int(t)))
    return pairs


def estimate_max_distance(graph: Graph, seed: int = 0, sweeps: int = 4) -> float:
    """Rough diameter estimate ``ld`` by repeated double-sweep Dijkstra.

    Matches the paper's "rough estimation of the maximum distance
    between any two vertices" for the R-set buckets.
    """
    rng = np.random.default_rng(seed)
    best = 0.0
    start = int(rng.integers(graph.n))
    for _ in range(sweeps):
        dist = _sssp_distances(graph, start)
        far, far_d = max(
            ((v, d) for v, d in enumerate(dist) if not math.isinf(d)),
            key=lambda item: item[1],
        )
        if far_d > best:
            best = far_d
        start = far
    return best


def distance_query_sets(
    graph: Graph,
    pairs_per_set: int = DEFAULT_PAIRS,
    seed: int = 0,
    max_distance: float | None = None,
) -> list[QuerySet]:
    """Generate R1..R10 (Appendix E.2): network-distance buckets.

    ``Ri`` holds pairs with ``dist(u, v) ∈ [2^(i-11)·ld, 2^(i-10)·ld)``.
    Sampling runs one Dijkstra ball per random source, collecting a
    partner for every bucket the ball's vertices fall into — one search
    feeds all ten buckets.
    """
    rng = np.random.default_rng(seed)
    ld = max_distance if max_distance is not None else estimate_max_distance(graph, seed)
    bounds = [((2.0 ** (i - 11)) * ld, (2.0 ** (i - 10)) * ld) for i in range(1, N_SETS + 1)]

    buckets: list[list[tuple[int, int]]] = [[] for _ in range(N_SETS)]
    attempts = 0
    max_attempts = 40 * pairs_per_set
    while attempts < max_attempts and any(
        len(b) < pairs_per_set for b in buckets
    ):
        attempts += 1
        s = int(rng.integers(graph.n))
        dist = _sssp_distances(graph, s)
        per_bucket: list[list[int]] = [[] for _ in range(N_SETS)]
        for v, d in enumerate(dist):
            if v == s or math.isinf(d) or d <= 0:
                continue
            k = _bucket_index(d, ld)
            if k is not None:
                per_bucket[k].append(v)
        for k, members in enumerate(per_bucket):
            if members and len(buckets[k]) < pairs_per_set:
                t = members[int(rng.integers(len(members)))]
                buckets[k].append((s, t))
    return [
        QuerySet(
            name=f"R{i + 1}", index=i + 1, lo=bounds[i][0], hi=bounds[i][1],
            requested=pairs_per_set, pairs=tuple(buckets[i]),
        )
        for i in range(N_SETS)
    ]


def _bucket_index(d: float, ld: float) -> int | None:
    """R-bucket of network distance ``d``, or None when out of range."""
    # Ri covers [2^(i-11) ld, 2^(i-10) ld) for i in 1..10.
    ratio = d / ld
    if ratio <= 0:
        return None
    k = math.floor(math.log2(ratio)) + 10  # i - 1
    if 0 <= k < N_SETS:
        return k
    return None


def _sssp_distances(graph: Graph, source: int) -> list[float]:
    """Distance-only SSSP (local copy keeps this module dependency-light)."""
    n = graph.n
    dist = [math.inf] * n
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    neighbors = graph.neighbors
    while heap:
        d, u = heappop(heap)
        if d > dist[u]:
            continue
        for v, w in neighbors(u):
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                heappush(heap, (nd, v))
    return dist
