"""Workload generators: the Q-sets (§4.2) and R-sets (Appendix E.2).

Q-sets — bucketed by L∞ distance:

    "We first imposed a 1024 × 1024 grid on the road network and
    computed the side length l of each grid cell. After that, we
    randomly selected ten thousand pairs of vertices from the road
    network to compose Qi (i ∈ [1, 10]), such that the L∞ distance
    between each pair of vertices is in [2^(i-1)·l, 2^i·l)."

R-sets — bucketed by network distance:

    "we first computed a rough estimation of the maximum distance ld
    between any two vertices. After that, we inserted 10000 pairs of
    vertices (u, v) into Ri (i ∈ [1, 10]), such that dist(u, v) ∈
    [2^(i-11)·ld, 2^(i-10)·ld)."

Sampling strategy: uniform rejection sampling is hopeless for the
narrow buckets (Q1 accepts pairs within ~0.1% of the map side), so we
sample a source uniformly and pick a partner from the set of vertices
whose metric value lands in the bucket — for Q-sets via one vectorised
Chebyshev scan of the coordinate arrays per source (replacing the old
KD-tree ring query plus per-candidate Python filter, whose filter pass
dominated on the wide Q8–Q10 rings), for R-sets via a Dijkstra ball
from the source (CSR SSSP kernel when available) bucketed with one
``searchsorted`` over the bound edges. A bucket that a dataset simply
cannot populate (e.g. no vertex pairs that close) yields fewer pairs;
the per-set ``requested`` vs ``len(pairs)`` counts make that visible
rather than silently padding.

Both generators are deterministic in ``seed`` alone: the Q-set sampler
is pure coordinate arithmetic, and the R-set sampler consumes distances
that are bit-identical between the CSR and legacy SSSP paths, so
``REPRO_NO_CSR`` / ``REPRO_FORCE_CSR`` do not change the emitted sets
(``tests/test_workloads.py`` locks this in).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from heapq import heappop, heappush

import numpy as np

from repro.graph.csr import MIN_N_SINGLE, kernel_for
from repro.graph.graph import Graph

#: The paper's workload-grid resolution (§4.2).
QUERY_GRID = 1024
#: Buckets per family.
N_SETS = 10
#: Pairs per set in the paper; our default is scaled down to keep a
#: full benchmark run tractable in pure Python.
DEFAULT_PAIRS = 300


@dataclass(frozen=True)
class QuerySet:
    """One workload bucket: ``pairs`` all satisfy ``lo <= metric < hi``."""

    name: str
    index: int
    lo: float
    hi: float
    requested: int
    pairs: tuple[tuple[int, int], ...]

    def __len__(self) -> int:
        return len(self.pairs)

    @property
    def shortfall(self) -> int:
        """How many requested pairs the dataset could not supply."""
        return self.requested - len(self.pairs)


def linf_query_sets(
    graph: Graph,
    pairs_per_set: int = DEFAULT_PAIRS,
    seed: int = 0,
    grid: int = QUERY_GRID,
) -> list[QuerySet]:
    """Generate Q1..Q10 (§4.2): L∞-distance-bucketed vertex pairs."""
    if graph.n < 2:
        raise ValueError("need at least two vertices")
    rng = np.random.default_rng(seed)
    box = graph.bounding_box()
    cell = (box.side or 1.0) / grid
    xs = np.asarray(graph.xs, dtype=np.float64)
    ys = np.asarray(graph.ys, dtype=np.float64)

    sets: list[QuerySet] = []
    for i in range(1, N_SETS + 1):
        lo, hi = (2 ** (i - 1)) * cell, (2**i) * cell
        pairs = _sample_linf_pairs(xs, ys, lo, hi, pairs_per_set, rng)
        sets.append(
            QuerySet(
                name=f"Q{i}", index=i, lo=lo, hi=hi,
                requested=pairs_per_set, pairs=tuple(pairs),
            )
        )
    return sets


def _sample_linf_pairs(
    xs: np.ndarray,
    ys: np.ndarray,
    lo: float,
    hi: float,
    count: int,
    rng: np.random.Generator,
) -> list[tuple[int, int]]:
    """Pairs with L∞ distance in ``[lo, hi)``.

    For a random source, one vectorised Chebyshev scan of the
    coordinate arrays yields every partner in the ring at once; sources
    with an empty ring are skipped (and consume no partner draw, so the
    emitted sets depend on the seed alone). The source itself can never
    be drawn: its own Chebyshev distance is 0 < ``lo``.
    """
    n = len(xs)
    pairs: list[tuple[int, int]] = []
    attempts = 0
    max_attempts = 60 * count
    while len(pairs) < count and attempts < max_attempts:
        attempts += 1
        s = int(rng.integers(n))
        cheb = np.maximum(np.abs(xs - xs[s]), np.abs(ys - ys[s]))
        candidates = np.flatnonzero((cheb >= lo) & (cheb < hi))
        if len(candidates) == 0:
            continue
        t = candidates[int(rng.integers(len(candidates)))]
        pairs.append((s, int(t)))
    return pairs


def estimate_max_distance(graph: Graph, seed: int = 0, sweeps: int = 4) -> float:
    """Rough diameter estimate ``ld`` by repeated double-sweep Dijkstra.

    Matches the paper's "rough estimation of the maximum distance
    between any two vertices" for the R-set buckets.
    """
    rng = np.random.default_rng(seed)
    best = 0.0
    start = int(rng.integers(graph.n))
    for _ in range(sweeps):
        dist = _sssp_distances(graph, start)
        reach = np.flatnonzero(np.isfinite(dist))
        far = int(reach[np.argmax(dist[reach])])
        far_d = float(dist[far])
        if far_d > best:
            best = far_d
        start = far
    return best


def distance_query_sets(
    graph: Graph,
    pairs_per_set: int = DEFAULT_PAIRS,
    seed: int = 0,
    max_distance: float | None = None,
) -> list[QuerySet]:
    """Generate R1..R10 (Appendix E.2): network-distance buckets.

    ``Ri`` holds pairs with ``dist(u, v) ∈ [2^(i-11)·ld, 2^(i-10)·ld)``.
    Sampling runs one Dijkstra ball per random source, collecting a
    partner for every bucket the ball's vertices fall into — one search
    feeds all ten buckets.
    """
    rng = np.random.default_rng(seed)
    ld = max_distance if max_distance is not None else estimate_max_distance(graph, seed)
    bounds = [((2.0 ** (i - 11)) * ld, (2.0 ** (i - 10)) * ld) for i in range(1, N_SETS + 1)]
    # The bucket boundaries as one sorted edge array: vertex v lands in
    # bucket searchsorted(edges, d, 'right') - 1, which realises the
    # half-open invariant lo <= d < hi directly (no log2 rounding at
    # the bucket edges).
    edges = np.array([lo for lo, _ in bounds] + [bounds[-1][1]])

    buckets: list[list[tuple[int, int]]] = [[] for _ in range(N_SETS)]
    attempts = 0
    max_attempts = 40 * pairs_per_set
    while attempts < max_attempts and any(
        len(b) < pairs_per_set for b in buckets
    ):
        attempts += 1
        s = int(rng.integers(graph.n))
        dist = _sssp_distances(graph, s)
        which = np.searchsorted(edges, dist, side="right") - 1
        usable = np.isfinite(dist) & (dist > 0)
        for k in range(N_SETS):
            if len(buckets[k]) >= pairs_per_set:
                continue
            members = np.flatnonzero(usable & (which == k))
            if len(members):
                t = int(members[int(rng.integers(len(members)))])
                buckets[k].append((s, t))
    return [
        QuerySet(
            name=f"R{i + 1}", index=i + 1, lo=bounds[i][0], hi=bounds[i][1],
            requested=pairs_per_set, pairs=tuple(buckets[i]),
        )
        for i in range(N_SETS)
    ]


@dataclass(frozen=True)
class ChurnPhase:
    """One phase of a churn workload: apply ``updates``, then query.

    ``updates`` holds ``((u, v), new_weight)`` reweightings of existing
    edges; ``queries`` the vertex pairs answered *after* the batch is
    applied (i.e. on the new epoch).
    """

    updates: tuple[tuple[tuple[int, int], float], ...]
    queries: tuple[tuple[int, int], ...]


def rush_hour_churn(
    graph: Graph,
    bursts: int = 4,
    edges_per_burst: int = 12,
    queries_per_phase: int = 25,
    seed: int = 0,
    factor_range: tuple[float, float] = (1.3, 3.0),
) -> list[ChurnPhase]:
    """A rush-hour weight-churn workload: congestion bursts with queries.

    Each burst picks a random hotspot vertex and slows down a connected
    cluster of edges around it (breadth-first, ``edges_per_burst`` of
    them) by an integer-preserving factor — ``max(w + 1, round(w * f))``
    keeps integer travel times integral, and strictly increases so every
    update is a real change. Two phases later the same cluster relaxes
    back to its original weights (traffic clears), so a long replay
    exercises both directions of change and returns edges to exact
    previous values. Deterministic in ``seed`` alone.
    """
    if bursts < 1:
        raise ValueError("need at least one burst")
    lo_f, hi_f = factor_range
    rng = np.random.default_rng(seed)
    original = {
        (min(e.u, e.v), max(e.u, e.v)): float(e.weight) for e in graph.edges()
    }
    current = dict(original)
    congested: list[list[tuple[int, int]]] = []

    def cluster(hot: int) -> list[tuple[int, int]]:
        seen: set[tuple[int, int]] = set()
        picked: list[tuple[int, int]] = []
        frontier = [hot]
        while frontier and len(picked) < edges_per_burst:
            v = frontier.pop(0)
            for u, _w in graph.neighbors(v):
                key = (min(u, v), max(u, v))
                if key not in seen:
                    seen.add(key)
                    picked.append(key)
                    frontier.append(u)
        return picked[:edges_per_burst]

    phases: list[ChurnPhase] = []
    for b in range(bursts):
        updates: list[tuple[tuple[int, int], float]] = []
        hot = int(rng.integers(graph.n))
        burst_edges = cluster(hot)
        for key in burst_edges:
            f = lo_f + (hi_f - lo_f) * float(rng.random())
            w = current[key]
            new_w = max(w + 1.0, float(round(w * f)))
            current[key] = new_w
            updates.append((key, new_w))
        congested.append(burst_edges)
        if b >= 2:
            for key in congested[b - 2]:
                if current[key] != original[key]:
                    current[key] = original[key]
                    updates.append((key, original[key]))
        queries = tuple(
            (int(rng.integers(graph.n)), int(rng.integers(graph.n)))
            for _ in range(queries_per_phase)
        )
        phases.append(ChurnPhase(updates=tuple(updates), queries=queries))
    return phases


def _sssp_distances(graph: Graph, source: int) -> np.ndarray:
    """Distance-only SSSP as a float64 array.

    Dispatches to the CSR kernel when available; the legacy heap loop
    below is the fallback. Both return bit-identical distances (the
    PR-2 kernel guarantee), which is what keeps the R-set sampler's
    RNG draws — and hence the emitted sets — independent of the
    ``REPRO_NO_CSR`` / ``REPRO_FORCE_CSR`` knobs.
    """
    csr = kernel_for(graph, MIN_N_SINGLE)
    if csr is not None:
        return csr.distances(np.array([source], dtype=np.int64))[0]
    n = graph.n
    dist = [math.inf] * n
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    neighbors = graph.neighbors
    while heap:
        d, u = heappop(heap)
        if d > dist[u]:
            continue
        for v, w in neighbors(u):
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                heappush(heap, (nd, v))
    return np.asarray(dist, dtype=np.float64)
