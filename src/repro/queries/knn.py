"""k-nearest-neighbour search by network distance.

The paper motivates distance queries with nearest-POI search (§2), and
Appendix A notes that SILC extends to nearest-neighbour queries [21].
This module provides the generic machinery on top of *any* technique:

- :func:`knn_brute_force` — the §2 recipe verbatim: one distance query
  per candidate;
- :class:`KNNFinder` — the same answer with geometric pruning: on
  travel-time-weighted networks, the straight-line distance divided by
  the network's best speed is a valid lower bound on travel time, so
  candidates are examined best-bound-first and the search stops once
  the bound exceeds the current k-th best (classic incremental NN).

The pruned variant needs a certified ``max_speed`` (distance units per
travel-time unit). For graphs from :mod:`repro.graph.generators` that
is :data:`repro.graph.generators.HIGHWAY_SPEED`; for arbitrary graphs
:func:`certified_max_speed` derives it from the edges.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from heapq import heapify, heappop
from typing import Sequence

from repro.core.base import QueryTechnique
from repro.graph.graph import Graph

INF = math.inf


def knn_brute_force(
    technique: QueryTechnique,
    source: int,
    candidates: Sequence[int],
    k: int = 1,
) -> list[tuple[float, int]]:
    """The paper's §2 recipe: a distance query per candidate.

    Returns the ``k`` nearest as ``(distance, vertex)`` ascending,
    ties broken by vertex id. Unreachable candidates are excluded.
    """
    if k < 1:
        raise ValueError("k must be positive")
    scored = sorted(
        (technique.distance(source, c), c)
        for c in candidates
    )
    return [(d, c) for d, c in scored if not math.isinf(d)][:k]


def certified_max_speed(graph: Graph) -> float:
    """Largest (euclidean length / travel time) over the edges.

    Any single edge's speed bounds the speed of a whole path, so
    ``euclid(s, t) / max_speed <= dist(s, t)`` — the pruning bound.
    """
    best = 0.0
    for e in graph.edges():
        length = graph.euclidean_distance(e.u, e.v)
        if length > 0:
            best = max(best, length / e.weight)
    if best <= 0:
        raise ValueError("graph has no positive-length edges")
    return best


@dataclass
class KNNStats:
    """How much work the pruned search did."""

    distance_queries: int = 0
    pruned: int = 0


class KNNFinder:
    """Best-bound-first kNN over a fixed candidate set.

    >>> # doctest-style sketch; see tests for executable checks
    >>> # finder = KNNFinder(graph, ch, restaurants)
    >>> # finder.query(my_location, k=3)
    """

    def __init__(
        self,
        graph: Graph,
        technique: QueryTechnique,
        candidates: Sequence[int],
        max_speed: float | None = None,
    ) -> None:
        self.graph = graph
        self.technique = technique
        self.candidates = list(candidates)
        self.max_speed = max_speed if max_speed is not None else certified_max_speed(graph)
        if self.max_speed <= 0:
            raise ValueError("max_speed must be positive")
        self.stats = KNNStats()

    def query(self, source: int, k: int = 1) -> list[tuple[float, int]]:
        """The ``k`` nearest candidates by network distance.

        Identical output to :func:`knn_brute_force`; candidates whose
        geometric lower bound already exceeds the current k-th best
        distance are never queried.
        """
        if k < 1:
            raise ValueError("k must be positive")
        g = self.graph
        heap = [
            (g.euclidean_distance(source, c) / self.max_speed, c)
            for c in self.candidates
        ]
        heapify(heap)

        best: list[tuple[float, int]] = []  # (distance, vertex), sorted
        while heap:
            bound, c = heappop(heap)
            if len(best) >= k and bound >= best[-1][0]:
                self.stats.pruned += len(heap) + 1
                break  # every remaining bound is at least this one
            d = self.technique.distance(source, c)
            self.stats.distance_queries += 1
            if math.isinf(d):
                continue
            best.append((d, c))
            best.sort()
            if len(best) > k:
                best.pop()
        return best
