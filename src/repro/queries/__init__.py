"""Query workload generation (paper §4.2 and Appendix E.2)."""

from repro.queries.workloads import (
    QuerySet,
    distance_query_sets,
    linf_query_sets,
)

__all__ = ["QuerySet", "distance_query_sets", "linf_query_sets"]
