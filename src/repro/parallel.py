"""Multiprocess fan-out for the embarrassingly parallel build passes.

The heavy preprocessing in this library is dominated by per-source or
per-cell computations that never touch shared state: SILC runs one
Dijkstra per vertex, PCPD materialises one tree per vertex, TNR one
access-node computation per grid cell. This module fans such loops out
over worker processes.

Workers inherit the immutable inputs (graph, grid) through a pool
initializer — on fork platforms that is a copy-on-write no-op, and on
spawn platforms a one-time pickle per worker rather than per task.

``workers=None`` or ``workers<=1`` means run inline (no pool, no
overhead); builders accept the knob and default to inline so nothing
changes for small graphs or platforms without fork.
"""

from __future__ import annotations

import multiprocessing
import os
from multiprocessing import get_context
from typing import Any, Callable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def serve_context() -> multiprocessing.context.BaseContext:
    """The multiprocessing context for long-lived serving workers.

    Prefers ``fork`` where available: serving workers attach
    shared-memory segments rather than inheriting big state, but fork
    still saves the per-worker interpreter + import cost (hundreds of
    milliseconds of scipy/numpy imports under ``spawn``), which matters
    when the pool restarts a crashed worker mid-traffic. Falls back to
    the platform default elsewhere. The build-side :func:`map_with_context`
    keeps the platform default: its workers inherit the graph through
    the initializer, which is correct under either start method.
    """
    try:
        return get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return get_context()

# Worker-global slot filled by the pool initializer.
_WORKER_CONTEXT: Any = None


def _init_worker(context: Any) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context


def _call_with_context(payload: tuple[Callable, Any]) -> Any:
    fn, item = payload
    return fn(_WORKER_CONTEXT, item)


def resolve_workers(workers: int | None) -> int:
    """Normalise a ``workers`` knob: None/0/1 → 1, -1 → cpu count."""
    if workers is None or workers == 0:
        return 1
    if workers < 0:
        return max(1, os.cpu_count() or 1)
    return workers


def effective_chunksize(n_items: int, n_processes: int, chunksize: int) -> int:
    """Cap the caller's ``chunksize`` so no pool process sits idle.

    The cap is the ceiling of ``n_items / n_processes`` — the largest
    chunk that still hands every process at least one chunk. (An
    earlier floor-division version collapsed to 1 whenever
    ``n_items < n_processes`` *or* the floor rounded below the knob,
    shipping one item per IPC round-trip regardless of the caller's
    setting.)
    """
    if n_items <= 0 or n_processes <= 0:
        return 1
    cap = -(-n_items // n_processes)
    return max(1, min(chunksize, cap))


def map_with_context(
    fn: Callable[[Any, T], R],
    context: Any,
    items: Sequence[T],
    workers: int | None = None,
    chunksize: int = 8,
) -> list[R]:
    """``[fn(context, item) for item in items]``, optionally in parallel.

    Order is preserved. With ``workers <= 1`` (the default) this is a
    plain loop — same code path, zero multiprocessing machinery — so
    parallelism is strictly opt-in.
    """
    n_workers = resolve_workers(workers)
    if n_workers <= 1 or len(items) <= 1:
        return [fn(context, item) for item in items]

    ctx = get_context()
    n_processes = min(n_workers, len(items))
    with ctx.Pool(
        processes=n_processes,
        initializer=_init_worker,
        initargs=(context,),
    ) as pool:
        return pool.map(
            _call_with_context,
            [(fn, item) for item in items],
            chunksize=effective_chunksize(len(items), n_processes, chunksize),
        )
