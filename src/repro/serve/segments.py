"""Shared-memory index segments + the versioned serving manifest.

One serving process (the *publisher*) copies the frozen flat arrays of
the graph and of each built technique index into POSIX shared memory —
one segment per technique — and describes them in a small JSON-able
manifest:

```
{"schema": 1, "service": "<token>", "dataset": "DE", "tier": "small",
 "fingerprint": {"n": ..., "m": ..., "total_weight": ...},
 "techniques": {
   "ch": {"segment": "rsv-<token>-ch", "nbytes": ...,
          "meta": {"n": ...},
          "arrays": {"indptr": {"dtype": "int32", "shape": [601],
                                "offset": 0}, ...}}, ...}}
```

Workers (and foreign inspectors like ``repro-harness service status``)
attach by name and rebuild numpy views straight over the mapped buffer
— no pickle, no copy; every array offset is 64-byte aligned so views
are as cache/SIMD-friendly as freshly allocated arrays. The manifest is
the only thing that crosses process boundaries by value.

Ownership and cleanup
---------------------
The publisher owns the segments: only :meth:`SegmentSet.close` unlinks
them (attachers merely unmap). Cleanup is robust to worker crashes —
a killed worker leaves the parent's mapping and registration intact,
so ``close()`` still frees everything; if the *publisher* itself dies
abnormally, Python's ``resource_tracker`` unlinks the leaked segments
at interpreter exit.

CPython < 3.13 tracker hazard: ``SharedMemory(name=...)`` registers the
segment with the caller's resource tracker even on *attach*, so a
foreign process that merely inspected a segment would unlink it — out
from under the live service — when that process exits.
:func:`_attach_shm` neutralises this: it passes ``track=False`` where
supported (3.13+) and otherwise unregisters foreign attachments
explicitly. Pool workers are forked from the publisher and share its
tracker, where the registration set is idempotent and the publisher's
eventual unlink unregisters exactly once — they must *not* unregister
(that would erase the publisher's own crash-safety registration), so
``foreign=False`` skips the workaround for them.
"""

from __future__ import annotations

import json
import os
import secrets
from multiprocessing import resource_tracker, shared_memory
from typing import Sequence

import numpy as np

from repro.graph.csr import CSRGraph, DirectedCSR
from repro.persistence import GraphFingerprint

#: Manifest schema; attachers reject anything else.
SERVE_SCHEMA = 1

#: Array offsets inside a segment are rounded up to this many bytes.
_ALIGN = 64

# ----------------------------------------------------------------------
# Ring-transport slot layout (see RingBuffers below and docs/SERVING.md)
# ----------------------------------------------------------------------
#: int64 word indices inside one ring-slot descriptor.
SLOT_SEQ = 0      #: publish sequence — bumped by the scheduler per dispatch
SLOT_COMMIT = 1   #: worker copies SEQ here *after* the results are written
SLOT_BATCH = 2    #: scheduler batch id the slot belongs to
SLOT_TECH = 3     #: technique id (index into the sorted manifest techniques)
SLOT_OFF = 4      #: first pair row of this slot's span in the arenas
SLOT_NPAIRS = 5   #: pair count of this slot's span
SLOT_STATUS = 6   #: STATUS_OK or STATUS_ERR (error text in the error block)
SLOT_REQ = 7      #: request id of the head request in the batch (telemetry)
# Per-stage timestamps (CLOCK_MONOTONIC microseconds, comparable across
# forked processes on the same host) feeding the serve.stage_us.*
# latency breakdown — see docs/OBSERVABILITY.md.
SLOT_T_ENQ = 8      #: earliest request enqueue time in the batch
SLOT_T_FORM = 9     #: batch formation (scheduler closed the batch)
SLOT_T_PUB = 10     #: slot publish (written just before the SEQ bump)
SLOT_T_WSTART = 11  #: worker picked the slot up
SLOT_T_WCOMMIT = 12 #: worker finished, about to commit
SLOT_EPOCH = 13     #: weight epoch the worker answered under (swap audit)
SLOT_WORDS = 16   #: descriptor width (two cache lines of int64 words)

STATUS_OK = 0
STATUS_ERR = 1

#: Per-slot error text block (utf-8, truncated).
ERR_BYTES = 256


class SegmentError(RuntimeError):
    """Raised for unattachable, foreign, or mismatched segments."""


def _fingerprint_entry(fingerprint: GraphFingerprint) -> dict:
    """The manifest's JSON form of a fingerprint (epoch included)."""
    return {
        "n": fingerprint.n,
        "m": fingerprint.m,
        "total_weight": fingerprint.total_weight,
        "epoch": fingerprint.epoch,
    }


def release_segments(segments: dict[str, shared_memory.SharedMemory]) -> None:
    """Unmap and unlink a drained epoch's segments (idempotent-ish).

    Tolerates already-unlinked names so crash-recovery paths can call
    it unconditionally.
    """
    for shm in segments.values():
        try:
            shm.close()
        except Exception:  # pragma: no cover - double close
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
    segments.clear()


def manifest_segment_names(manifest: dict) -> list[str]:
    """Every shared-memory segment name a manifest references.

    Technique segments, the ring transport, and the metrics planes
    (scheduler + workers) — the full footprint ``service clean`` must
    account for after a publisher is SIGKILLed.
    """
    names = [
        e["segment"] for e in manifest.get("techniques", {}).values()
    ]
    transport = manifest.get("transport")
    if isinstance(transport, dict) and transport.get("segment"):
        names.append(transport["segment"])
    metrics = manifest.get("metrics", {})
    sched = metrics.get("scheduler")
    if isinstance(sched, dict) and sched.get("segment"):
        names.append(sched["segment"])
    for entry in metrics.get("workers") or []:
        if isinstance(entry, dict) and entry.get("segment"):
            names.append(entry["segment"])
    return names


def publisher_alive(manifest: dict) -> bool:
    """Whether the manifest's publisher process still exists.

    Signal 0 probes liveness without touching the process; a
    ``PermissionError`` means the pid exists under another user, which
    still counts as alive.
    """
    pid = manifest.get("publisher_pid")
    if not pid:
        return False
    try:
        os.kill(int(pid), 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - foreign-uid publisher
        return True
    return True


def find_orphans(manifest: dict) -> list[str]:
    """Manifest-referenced segments that still exist.

    Besides the names the manifest carries, scans ``/dev/shm`` (where
    available) for anything else under the service's token — a
    publisher killed mid-epoch-swap can leave old-epoch segments the
    updated manifest no longer mentions.
    """
    orphans: list[str] = []
    for name in manifest_segment_names(manifest):
        try:
            shm = _attach_shm(name, foreign=True)
        except FileNotFoundError:
            continue
        shm.close()
        orphans.append(name)
    token = manifest.get("service")
    if token and os.path.isdir("/dev/shm"):
        prefix = f"rsv-{token}-"
        for entry in sorted(os.listdir("/dev/shm")):
            if entry.startswith(prefix) and entry not in orphans:
                orphans.append(entry)
    return orphans


def unlink_orphans(names: Sequence[str]) -> list[str]:
    """Unlink each named segment; returns the names actually removed.

    Races with concurrent cleanup are tolerated — a name that vanishes
    between listing and unlinking is simply skipped.
    """
    removed: list[str] = []
    for name in names:
        try:
            # foreign=False on purpose: on pre-3.13 the attach registers
            # with the resource tracker and unlink() unregisters — a
            # balanced pair. foreign=True would unregister early and
            # unlink()'s second unregister would KeyError in the
            # tracker process (harmless but noisy on a CLI path).
            shm = _attach_shm(name, foreign=False)
        except FileNotFoundError:
            continue
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - concurrent clean
            continue
        removed.append(name)
    return removed


def _attach_shm(name: str, foreign: bool) -> shared_memory.SharedMemory:
    """Attach an existing segment without adopting cleanup duty.

    See the module docstring: ``track=False`` on 3.13+, explicit
    unregister for ``foreign`` attachments on older interpreters.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track kwarg
        shm = shared_memory.SharedMemory(name=name)
        if foreign:
            try:
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker variants
                pass
        return shm


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _layout(arrays: dict[str, np.ndarray]) -> tuple[dict[str, dict], int]:
    """Aligned segment layout for ``arrays``: (specs, total bytes).

    Every array lands at a 64-byte-aligned offset; the specs are the
    JSON-able ``{name: {dtype, shape, offset}}`` mapping the manifest
    carries and :func:`_views` rebuilds from.
    """
    specs: dict[str, dict] = {}
    offset = 0
    for key, arr in arrays.items():
        specs[key] = {
            "dtype": str(arr.dtype),
            "shape": list(arr.shape),
            "offset": offset,
        }
        offset = _aligned(offset + arr.nbytes)
    return specs, offset


def _views(
    shm: shared_memory.SharedMemory, specs: dict[str, dict], *, where: str
) -> dict[str, np.ndarray]:
    """Numpy views over ``shm`` per ``specs`` (bounds-checked, no copy)."""
    out: dict[str, np.ndarray] = {}
    for key, spec in specs.items():
        dtype = np.dtype(spec["dtype"])
        shape = tuple(spec["shape"])
        need = int(spec["offset"]) + int(np.prod(shape)) * dtype.itemsize
        if need > shm.size:
            raise SegmentError(
                f"segment {shm.name!r} is truncated: array {where}.{key} "
                f"needs {need} bytes but the mapping holds {shm.size}"
            )
        out[key] = np.ndarray(
            shape, dtype=dtype, buffer=shm.buf, offset=spec["offset"]
        )
    return out


# ----------------------------------------------------------------------
# Packing: technique objects -> flat array payloads
# ----------------------------------------------------------------------
def pack_graph(csr: CSRGraph) -> tuple[dict[str, np.ndarray], dict]:
    """The frozen graph's five core arrays (serves ``dijkstra``)."""
    return dict(csr.core_arrays()), {}


def pack_ch(ch) -> tuple[dict[str, np.ndarray], dict]:
    """A CH index as its upward-graph arc arrays.

    The upward ``DirectedCSR`` is everything the bucket-based
    many-to-many engine needs; vertex ranks, shortcut middles and the
    augmented adjacency stay behind in the publisher (they serve path
    unpacking, which the distance service does not do).
    """
    up = ch.index.upward_csr()
    return dict(up.core_arrays()), {"n": int(ch.index.n)}


def pack_tnr(tnr) -> tuple[dict[str, np.ndarray], dict]:
    """A TNR index: cell map, transit table, flattened access lists.

    ``vertex_access``/``vertex_access_dist`` are ragged per-vertex
    arrays; they flatten into one indptr plus two value arrays, the
    same trick as the CSR layout itself.
    """
    index = tnr.index
    n = len(index.vertex_access)
    va_indptr = np.zeros(n + 1, dtype=np.int64)
    for v, idx in enumerate(index.vertex_access):
        va_indptr[v + 1] = len(idx)
    np.cumsum(va_indptr, out=va_indptr)
    total = int(va_indptr[-1])
    va_idx = np.empty(total, dtype=np.int32)
    va_dist = np.empty(total, dtype=np.float64)
    for v, (idx, dist) in enumerate(
        zip(index.vertex_access, index.vertex_access_dist)
    ):
        va_idx[va_indptr[v] : va_indptr[v + 1]] = idx
        va_dist[va_indptr[v] : va_indptr[v + 1]] = dist
    arrays = {
        "cells": np.asarray(index.grid.cell_of_vertex, dtype=np.int32),
        "table": np.ascontiguousarray(index.table, dtype=np.float32),
        "va_indptr": va_indptr,
        "va_idx": va_idx,
        "va_dist": va_dist,
    }
    return arrays, {"g": int(index.grid.g)}


def pack_silc(index) -> tuple[dict[str, np.ndarray], dict]:
    """A SILC index: Morton codes + flattened interval/exception lists.

    Exception keys are sorted per vertex so the worker-side lookup is a
    binary search over the vertex's slice.
    """
    n = index.n
    iv_indptr = np.zeros(n + 1, dtype=np.int64)
    for v in range(n):
        iv_indptr[v + 1] = len(index.starts[v])
    np.cumsum(iv_indptr, out=iv_indptr)
    total = int(iv_indptr[-1])
    iv_start = np.empty(total, dtype=np.int64)
    iv_end = np.empty(total, dtype=np.int64)
    iv_color = np.empty(total, dtype=np.int64)
    for v in range(n):
        a, b = iv_indptr[v], iv_indptr[v + 1]
        iv_start[a:b] = index.starts[v]
        iv_end[a:b] = index.ends[v]
        iv_color[a:b] = index.colors[v]

    exc_indptr = np.zeros(n + 1, dtype=np.int64)
    for v in range(n):
        exc_indptr[v + 1] = len(index.exceptions[v])
    np.cumsum(exc_indptr, out=exc_indptr)
    total = int(exc_indptr[-1])
    exc_key = np.empty(total, dtype=np.int64)
    exc_val = np.empty(total, dtype=np.int64)
    for v in range(n):
        a = int(exc_indptr[v])
        for k, (tgt, color) in enumerate(sorted(index.exceptions[v].items())):
            exc_key[a + k] = tgt
            exc_val[a + k] = color
    arrays = {
        "codes": np.asarray(index.codes, dtype=np.int64),
        "iv_indptr": iv_indptr,
        "iv_start": iv_start,
        "iv_end": iv_end,
        "iv_color": iv_color,
        "exc_indptr": exc_indptr,
        "exc_key": exc_key,
        "exc_val": exc_val,
    }
    return arrays, {"n": int(n)}


def pack_labels(index) -> tuple[dict[str, np.ndarray], dict]:
    """A hub-label index: its three flat arrays, published verbatim.

    The CSR-style label layout (:mod:`repro.core.labels.index`) is
    already exactly what the query kernels consume, so the segment is a
    byte-for-byte copy — workers rebuild a
    :class:`~repro.core.labels.HubLabelIndex` straight over the views.
    """
    return dict(index.core_arrays()), {"n": int(index.n)}


# ----------------------------------------------------------------------
# Publisher
# ----------------------------------------------------------------------
class SegmentSet:
    """Owner of one service's published segments.

    ``payloads`` maps technique name to ``(arrays, meta)`` as produced
    by the ``pack_*`` helpers. The constructor copies every array into
    its segment (the only copy in the system); :attr:`manifest` is the
    JSON-able description workers and inspectors attach from.
    """

    def __init__(
        self,
        payloads: dict[str, tuple[dict[str, np.ndarray], dict]],
        *,
        fingerprint: GraphFingerprint,
        dataset: str = "?",
        tier: str = "?",
    ) -> None:
        token = secrets.token_hex(4)
        self._token = token
        self._segments, techniques = self._build(
            payloads, lambda tech: f"rsv-{token}-{tech}"
        )
        self.manifest: dict = {
            "schema": SERVE_SCHEMA,
            "service": token,
            "dataset": dataset,
            "tier": tier,
            "publisher_pid": os.getpid(),
            "fingerprint": _fingerprint_entry(fingerprint),
            "techniques": techniques,
        }

    @staticmethod
    def _build(
        payloads: dict[str, tuple[dict[str, np.ndarray], dict]],
        name_for,
    ) -> tuple[dict[str, shared_memory.SharedMemory], dict[str, dict]]:
        """Create and fill one segment per technique.

        On failure, unlinks whatever it already created and re-raises —
        it never touches segments it did not create, so a failed
        :meth:`republish` leaves the live epoch serving.
        """
        segments: dict[str, shared_memory.SharedMemory] = {}
        techniques: dict[str, dict] = {}
        try:
            for tech, (arrays, meta) in payloads.items():
                arrays = {k: np.ascontiguousarray(a) for k, a in arrays.items()}
                specs, nbytes = _layout(arrays)
                name = name_for(tech)
                shm = shared_memory.SharedMemory(
                    create=True, name=name, size=max(nbytes, 1)
                )
                segments[tech] = shm
                for key, arr in arrays.items():
                    dst = np.ndarray(
                        arr.shape,
                        dtype=arr.dtype,
                        buffer=shm.buf,
                        offset=specs[key]["offset"],
                    )
                    dst[...] = arr
                techniques[tech] = {
                    "segment": name,
                    "nbytes": nbytes,
                    "meta": dict(meta),
                    "arrays": specs,
                }
        except BaseException:
            release_segments(segments)
            raise
        return segments, techniques

    def republish(
        self,
        payloads: dict[str, tuple[dict[str, np.ndarray], dict]],
        *,
        fingerprint: GraphFingerprint,
    ) -> dict[str, shared_memory.SharedMemory]:
        """Publish a new weight epoch's segments *side by side*.

        The new segments are named ``rsv-<token>-e<epoch>-<tech>`` so
        they coexist with the epoch still being served; the manifest
        (the same dict object workers and the pool hold) is updated in
        place to point at them. Returns the previous epoch's segments —
        the caller unlinks them via :func:`release_segments` only after
        every worker has flipped and every in-flight batch on the old
        epoch has drained.
        """
        if set(payloads) != set(self._segments):
            raise SegmentError(
                "republish must cover exactly the published techniques "
                f"({sorted(self._segments)}), got {sorted(payloads)}"
            )
        epoch = fingerprint.epoch
        segments, techniques = self._build(
            payloads, lambda tech: f"rsv-{self._token}-e{epoch}-{tech}"
        )
        old = self._segments
        self._segments = segments
        self.manifest["techniques"] = techniques
        self.manifest["fingerprint"] = _fingerprint_entry(fingerprint)
        return old

    @property
    def techniques(self) -> list[str]:
        return sorted(self._segments)

    def close(self) -> None:
        """Unmap and unlink every segment (idempotent).

        Segments are unlinked only here and in the epoch-swap drain
        (:func:`release_segments` on what :meth:`republish` returned);
        either runs fine after worker crashes, since the publisher's
        mappings are untouched by a child dying.
        """
        release_segments(self._segments)

    def __enter__(self) -> "SegmentSet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# Attachment
# ----------------------------------------------------------------------
class AttachedSegments:
    """Zero-copy views over a published service's segments.

    ``arrays(tech)`` returns ``{name: ndarray}`` views backed directly
    by the mapped shared memory — nothing is copied or unpickled.
    :meth:`close` unmaps; it never unlinks (the publisher owns that).
    """

    def __init__(self, manifest: dict, *, foreign: bool = False) -> None:
        if not isinstance(manifest, dict) or manifest.get("schema") != SERVE_SCHEMA:
            got = manifest.get("schema") if isinstance(manifest, dict) else "?"
            raise SegmentError(
                f"manifest schema {got} unsupported (this release reads "
                f"{SERVE_SCHEMA})"
            )
        self.manifest = manifest
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._arrays: dict[str, dict[str, np.ndarray]] = {}
        try:
            for tech, entry in manifest["techniques"].items():
                try:
                    shm = _attach_shm(entry["segment"], foreign)
                except FileNotFoundError as exc:
                    raise SegmentError(
                        f"segment {entry['segment']!r} for technique "
                        f"{tech!r} is gone (service shut down?)"
                    ) from exc
                self._segments[tech] = shm
                self._arrays[tech] = _views(shm, entry["arrays"], where=tech)
        except BaseException:
            self.close()
            raise

    @property
    def techniques(self) -> list[str]:
        return sorted(self._arrays)

    def arrays(self, tech: str) -> dict[str, np.ndarray]:
        return self._arrays[tech]

    def meta(self, tech: str) -> dict:
        return self.manifest["techniques"][tech]["meta"]

    def close(self) -> None:
        # Views into the buffers must be dropped before unmapping or
        # SharedMemory.close() raises BufferError on exported pointers.
        self._arrays.clear()
        for shm in self._segments.values():
            try:
                shm.close()
            except BufferError:  # pragma: no cover - live views remain
                pass
        self._segments.clear()

    def __enter__(self) -> "AttachedSegments":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def attach_segments(manifest: dict, *, foreign: bool = False) -> AttachedSegments:
    """Attach a published service's segments (see :class:`AttachedSegments`).

    ``foreign=True`` marks a process outside the publisher's fork
    family (an inspector CLI, a test subprocess); it switches on the
    pre-3.13 resource-tracker workaround so the inspector's exit cannot
    unlink the live service's memory.
    """
    return AttachedSegments(manifest, foreign=foreign)


# ----------------------------------------------------------------------
# Ring transport: request ring + pair/result arenas
# ----------------------------------------------------------------------
def _ring_arrays(n_slots: int, slot_pairs: int) -> dict[str, np.ndarray]:
    """Zeroed prototype arrays for a ring of ``n_slots`` slots.

    - ``ring``    — one :data:`SLOT_WORDS`-word int64 descriptor per slot
      (whole cache lines, so two workers never false-share a descriptor;
      words 7..12 carry the request id and stage timestamps for the
      telemetry plane);
    - ``pairs``   — the int32 request arena: slot ``i`` owns rows
      ``[i*slot_pairs, (i+1)*slot_pairs)``;
    - ``results`` — the float64 reply arena, same row ownership;
    - ``errors``  — :data:`ERR_BYTES` of utf-8 per slot for the rare
      worker-side exception message.
    """
    cap = n_slots * slot_pairs
    return {
        "ring": np.zeros((n_slots, SLOT_WORDS), dtype=np.int64),
        "pairs": np.zeros((cap, 2), dtype=np.int32),
        "results": np.zeros(cap, dtype=np.float64),
        "errors": np.zeros((n_slots, ERR_BYTES), dtype=np.uint8),
    }


class RingBuffers:
    """Publisher-owned shared-memory ring: descriptors + arenas.

    The zero-copy transport between the scheduler and the workers
    (:class:`repro.serve.pool.RingPool`): the scheduler writes request
    pairs into the ``pairs`` arena and publishes a slot by bumping its
    ``SLOT_SEQ`` word; the worker writes distances straight into the
    ``results`` arena and acknowledges by copying ``SLOT_SEQ`` into
    ``SLOT_COMMIT`` *after* the last result store — so a slot whose
    commit word trails its sequence word was killed mid-flight and must
    be retried, while a committed slot's results are complete even if
    the worker died before its wakeup byte left the pipe.

    Ownership mirrors :class:`SegmentSet`: the creator alone unlinks
    (:meth:`close`); workers attach via :class:`AttachedRing` and only
    unmap. The manifest carries the layout under the ``"transport"``
    key (:attr:`manifest_entry`), same spec format as index segments.
    """

    def __init__(
        self, n_slots: int, slot_pairs: int, *, token: str | None = None
    ) -> None:
        if n_slots < 1 or slot_pairs < 1:
            raise ValueError(
                f"ring needs positive dimensions, got {n_slots}x{slot_pairs}"
            )
        self.n_slots = n_slots
        self.slot_pairs = slot_pairs
        arrays = _ring_arrays(n_slots, slot_pairs)
        self._specs, nbytes = _layout(arrays)
        name = f"rsv-{token or secrets.token_hex(4)}-ring"
        self._shm = shared_memory.SharedMemory(
            create=True, name=name, size=max(nbytes, 1)
        )
        views = _views(self._shm, self._specs, where="ring")
        self.ring = views["ring"]
        self.pairs = views["pairs"]
        self.results = views["results"]
        self.errors = views["errors"]
        self.ring[...] = 0
        self.manifest_entry: dict = {
            "kind": "ring",
            "segment": name,
            "nbytes": nbytes,
            "n_slots": n_slots,
            "slot_pairs": slot_pairs,
            "arrays": self._specs,
        }

    def close(self) -> None:
        """Unmap and unlink the ring segment (idempotent)."""
        if self._shm is None:
            return
        self.ring = self.pairs = self.results = self.errors = None
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - live views remain
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        self._shm = None

    def __enter__(self) -> "RingBuffers":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class AttachedRing:
    """A worker's zero-copy view of a published :class:`RingBuffers`.

    Attach-only (never unlinks), same resource-tracker hygiene as
    :class:`AttachedSegments`.
    """

    def __init__(self, entry: dict, *, foreign: bool = False) -> None:
        if not isinstance(entry, dict) or entry.get("kind") != "ring":
            raise SegmentError(f"not a ring transport entry: {entry!r}")
        self.n_slots = int(entry["n_slots"])
        self.slot_pairs = int(entry["slot_pairs"])
        try:
            self._shm = _attach_shm(entry["segment"], foreign)
        except FileNotFoundError as exc:
            raise SegmentError(
                f"ring segment {entry['segment']!r} is gone "
                f"(service shut down?)"
            ) from exc
        try:
            views = _views(self._shm, entry["arrays"], where="ring")
        except BaseException:
            self.close()
            raise
        self.ring = views["ring"]
        self.pairs = views["pairs"]
        self.results = views["results"]
        self.errors = views["errors"]

    def close(self) -> None:
        self.ring = self.pairs = self.results = self.errors = None
        if self._shm is not None:
            try:
                self._shm.close()
            except BufferError:  # pragma: no cover - live views remain
                pass
            self._shm = None

    def __enter__(self) -> "AttachedRing":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# Manifest files (for cross-process inspection)
# ----------------------------------------------------------------------
def save_manifest(path: str | os.PathLike, manifest: dict) -> str:
    """Write a manifest as JSON; returns the path."""
    path = os.fspath(path)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def load_manifest(path: str | os.PathLike) -> dict:
    """Read a manifest written by :func:`save_manifest` (schema-checked)."""
    with open(path, "r", encoding="utf-8") as fh:
        manifest = json.load(fh)
    if not isinstance(manifest, dict) or manifest.get("schema") != SERVE_SCHEMA:
        raise SegmentError(f"{path}: not a serve manifest (schema mismatch)")
    return manifest
