"""Multi-worker query service: shared segments, pool, scheduler.

The serving subsystem turns the repo's batched distance endpoint
(:func:`repro.harness.experiments.batched_distances`) into a long-lived
multi-process service:

- :mod:`repro.serve.segments` publishes the frozen CSR graph and the
  built technique indexes into ``multiprocessing.shared_memory``
  segments described by a versioned manifest, so N workers map the
  same bytes instead of unpickling N copies;
- :mod:`repro.serve.pool` runs the persistent worker pool — each
  worker attaches the segments, rebuilds zero-copy numpy views of the
  indexes, and answers batched distance queries through the existing
  many-to-many / CSR kernel paths;
- :mod:`repro.serve.scheduler` micro-batches compatible requests,
  applies admission control (bounded queue, deadlines, typed
  :class:`~repro.serve.scheduler.Overloaded` rejects) and retries
  batches once when a worker dies;
- :mod:`repro.serve.service` ties them together behind
  :class:`~repro.serve.service.QueryService` and the
  ``repro-harness service {start,bench,status}`` CLI.

See ``docs/SERVING.md`` for the architecture, the manifest format and
the failure semantics.
"""

from repro.serve.scheduler import (
    TECHNIQUE_BATCH_CAPS,
    BatchingScheduler,
    Overloaded,
    QueryFuture,
)
from repro.serve.segments import (
    SERVE_SCHEMA,
    AttachedRing,
    AttachedSegments,
    RingBuffers,
    SegmentError,
    SegmentSet,
    attach_segments,
    load_manifest,
    save_manifest,
)
from repro.serve.pool import RingFull, RingPool, WorkerPool, build_techniques
from repro.serve.service import (
    KNOWN_TECHNIQUES,
    TRANSPORTS,
    QueryService,
    ServiceConfig,
    build_payloads,
    resolve_transport,
)

__all__ = [
    "AttachedRing",
    "AttachedSegments",
    "BatchingScheduler",
    "KNOWN_TECHNIQUES",
    "Overloaded",
    "QueryFuture",
    "QueryService",
    "RingBuffers",
    "RingFull",
    "RingPool",
    "SERVE_SCHEMA",
    "SegmentError",
    "SegmentSet",
    "ServiceConfig",
    "TECHNIQUE_BATCH_CAPS",
    "TRANSPORTS",
    "WorkerPool",
    "attach_segments",
    "build_payloads",
    "build_techniques",
    "load_manifest",
    "resolve_transport",
    "save_manifest",
]
