"""Request scheduler: micro-batching, admission control, retries.

Requests enter as ``(technique, pairs)`` and come back as
:class:`QueryFuture`\\ s. The scheduler coalesces compatible requests —
same technique, arrival within the batch window — into one
``batched_distances`` call on a pool worker, which is where the serving
throughput comes from: one deduplicated many-to-many table amortises
the per-query upward-search cost across every request in the batch.

Requests are never split across batches: a batch is whole requests
packed greedily up to ``max_batch`` pairs (an oversized request gets a
batch of its own). Because every technique's answers are exact per
entry, the partitioning cannot change any result bit — the service
answers bit-identical to an in-process ``batched_distances`` over the
same pairs regardless of how traffic happened to coalesce.

Batch sizing is technique-aware: ``max_batch`` is the global cap, and
``max_batch_overrides`` (defaulting to :data:`TECHNIQUE_BATCH_CAPS`)
caps individual techniques below it. TNR is the motivating case: it
once served through a deduplicated source x target ``distance_table``
grid — quadratic work for linear answers on coalesced batches (the
ROADMAP's "TNR serving cliff"). The linear ``distance_pairs`` path
removed the cliff; TNR's cap now bounds the padded Equation-1 gather
scratch (batch x access x access floats) instead. The
``serve.batch_pairs.<technique>`` histograms record what was actually
dispatched.

Admission control is load-shedding, not queueing-forever:

- a bounded queue — submissions beyond ``max_queue`` waiting requests
  raise :class:`Overloaded` immediately (counter ``serve.shed_queue``);
- per-request deadlines — a request whose deadline passed while it
  waited is shed at dispatch time, before any worker spends cycles on
  it (counter ``serve.shed_deadline``); both shed paths also bump the
  aggregate ``serve.shed``;
- graceful degradation — a request for a known technique that is not
  published in this service's segments is answered by ``degrade_to``
  (bidirectional Dijkstra by default) with the future's ``degraded``
  flag set, rather than erroring (counter ``serve.degraded``);
- ring backpressure — on the ring transport a batch that cannot get
  slots (:class:`~repro.serve.pool.RingFull`) is *held*, not lost:
  it parks in a blocked queue (counter ``serve.ring_full``, wait time
  in the ``serve.slot_wait_us`` histogram) and re-dispatches as soon
  as completions recycle slots. Held batches still count against
  ``max_queue``, so a jammed ring feeds the same typed
  :class:`Overloaded` shed path as a full queue.

A batch whose worker died is retried exactly once on the restarted
pool (counter ``serve.retries``); a second death fails its futures.

Telemetry: every request gets a monotonically increasing ``request_id``
and every batch carries stage timestamps (enqueue → batch-form →
slot-publish → worker-start → commit → scatter) through the transport
(ring slot words / extended pipe replies), feeding the
``serve.e2e_us`` and ``serve.stage_us.<stage>`` histograms. A bounded
:class:`FlightRecorder` keeps the last N terminal request records
(done/failed/shed, with latency and retry/degrade flags) for
post-mortem inspection regardless of whether obs is enabled.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Sequence

import numpy as np

from repro import obs
from repro.serve.pool import RingFull, WorkerPool

Pair = tuple[int, int]

#: Default per-technique batch caps (pairs), applied below the global
#: ``max_batch``. TNR's vectorised ``distance_pairs`` path evaluates a
#: padded ``batch x access x access`` Equation-1 tensor per batch; the
#: cap bounds that scratch while staying deep enough that coalescing
#: still amortises the numpy dispatch overhead (measured knee ~64 on
#: DE-small; see docs/PERFORMANCE.md).
TECHNIQUE_BATCH_CAPS: dict[str, int] = {"tnr": 64}


class Overloaded(RuntimeError):
    """The service queue is full — the request was rejected unserved."""


class QueryFuture:
    """Handle to one submitted request.

    ``status`` is ``"pending"`` until the scheduler resolves it to
    ``"done"`` (``distances`` holds one float per submitted pair, in
    order), ``"shed"`` (deadline passed before dispatch) or
    ``"failed"`` (``error`` holds the message). ``degraded`` marks
    requests answered by the fallback technique.
    """

    __slots__ = ("technique", "pairs", "deadline", "submitted_at", "status",
                 "distances", "error", "degraded", "request_id", "epoch",
                 "served_epoch")

    def __init__(
        self,
        technique: str,
        pairs: Sequence[Pair],
        deadline: float | None,
        degraded: bool,
    ) -> None:
        self.technique = technique
        self.pairs = list(pairs)
        self.deadline = deadline
        self.submitted_at = time.monotonic()
        self.status = "pending"
        self.distances: list[float] | None = None
        self.error: str | None = None
        self.degraded = degraded
        #: Assigned by the scheduler at admission (0 = unassigned).
        self.request_id = 0
        #: Weight epoch the request was admitted under; the scheduler
        #: guarantees the answer was computed at exactly this epoch.
        self.epoch = 0
        #: Epoch the worker reports having answered under (set on done;
        #: ``None`` until then, or when the transport carries no tag).
        self.served_epoch: int | None = None

    @property
    def done(self) -> bool:
        return self.status != "pending"

    def result(self) -> list[float]:
        """The distances, or raise for shed/failed requests."""
        if self.status == "done":
            assert self.distances is not None
            return self.distances
        if self.status == "shed":
            raise Overloaded(self.error or "request shed")
        if self.status == "failed":
            raise RuntimeError(self.error or "request failed")
        raise RuntimeError("request still pending — drain() the scheduler")


class FlightRecorder:
    """Bounded ring of the last N terminal request records.

    Always on (a deque append per terminal request is noise next to a
    dispatch): after an incident — sheds, retries, a worker death — the
    recorder holds what happened to the most recent requests without
    requiring obs to have been enabled in advance.
    """

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self._records: deque[dict] = deque(maxlen=capacity)
        #: Total records ever taken (so overflow is detectable).
        self.recorded = 0

    def record(self, entry: dict) -> None:
        self._records.append(entry)
        self.recorded += 1

    def records(self) -> list[dict]:
        """Oldest-to-newest copy of the retained records."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)


class _Batch:
    """One dispatched unit: whole requests for a single technique."""

    __slots__ = ("batch_id", "technique", "requests", "pairs", "retries",
                 "blocked_since", "request_id", "t_enq_us", "t_form_us",
                 "epoch")

    def __init__(self, batch_id: int, technique: str,
                 requests: list[QueryFuture]) -> None:
        self.batch_id = batch_id
        self.technique = technique
        self.requests = requests
        self.pairs: list[Pair] = [p for r in requests for p in r.pairs]
        self.retries = 0
        #: Admission epoch of the batch's requests. Batches only form
        #: from a single epoch's queue: the swap protocol drains the
        #: scheduler before bumping :attr:`BatchingScheduler.epoch`.
        self.epoch = requests[0].epoch
        #: When the ring first refused this batch (None = never held).
        self.blocked_since: float | None = None
        #: Telemetry: head request id + stage stamps (monotonic µs).
        self.request_id = requests[0].request_id
        self.t_enq_us = min(int(r.submitted_at * 1e6) for r in requests)
        self.t_form_us = int(time.monotonic() * 1e6)

    def scatter(self, distances) -> None:
        # One ndarray.tolist() per request instead of a per-pair float()
        # loop: same exact float64 values, and it also consumes ring
        # arena views immediately (they are only valid until the next
        # poll recycles their slots).
        arr = np.asarray(distances, dtype=np.float64)
        offset = 0
        for r in self.requests:
            k = len(r.pairs)
            r.distances = arr[offset:offset + k].tolist()
            r.status = "done"
            offset += k

    def fail(self, message: str) -> None:
        for r in self.requests:
            r.status = "failed"
            r.error = message


class BatchingScheduler:
    """Coalesce requests into batches and drive them through the pool."""

    def __init__(
        self,
        pool: WorkerPool,
        published: Sequence[str],
        *,
        known: Sequence[str] | None = None,
        max_batch: int = 256,
        max_batch_overrides: dict[str, int] | None = None,
        batch_window_s: float = 0.002,
        max_queue: int = 1024,
        degrade_to: str = "dijkstra",
    ) -> None:
        if degrade_to not in published:
            raise ValueError(
                f"degradation target {degrade_to!r} is not published "
                f"(published: {sorted(published)})"
            )
        self.pool = pool
        self.published = frozenset(published)
        self.known = frozenset(known) if known is not None else self.published
        self.max_batch = max_batch
        if max_batch_overrides is None:
            max_batch_overrides = TECHNIQUE_BATCH_CAPS
        self.max_batch_overrides = dict(max_batch_overrides)
        self.batch_window_s = batch_window_s
        self.max_queue = max_queue
        self.degrade_to = degrade_to
        #: Waiting requests per technique, in arrival order.
        self._queues: dict[str, deque[QueryFuture]] = {}
        #: Oldest-waiter timestamp per technique (window aging).
        self._oldest: dict[str, float] = {}
        self._inflight: dict[int, _Batch] = {}
        #: Batches held back by ring backpressure, FIFO.
        self._blocked: deque[_Batch] = deque()
        self._next_batch_id = 0
        self._next_request_id = 1
        #: Last-N terminal request records (always on).
        self.flight = FlightRecorder()
        #: Current weight epoch; bumped by the service *after* a drain +
        #: worker flip, so every admitted request is answered at its
        #: admission epoch (audited per reply below).
        self.epoch = 0
        # Stats (mirrored into obs counters when enabled).
        self.dispatched_batches = 0
        self.dispatched_pairs = 0
        self.shed = 0
        self.degraded = 0
        self.retries = 0
        self.ring_full = 0
        self.epoch_mismatches = 0

    # ------------------------------------------------------------------
    def max_batch_for(self, technique: str) -> int:
        """The effective batch cap: the global cap, overridden per
        technique (overrides never raise it above the global cap)."""
        override = self.max_batch_overrides.get(technique)
        if override is None:
            return self.max_batch
        return min(self.max_batch, override)

    @property
    def queued(self) -> int:
        """Waiting requests — both undispatched and held by a full ring
        (so ring backpressure feeds the ``Overloaded`` shed path)."""
        return sum(len(q) for q in self._queues.values()) + sum(
            len(b.requests) for b in self._blocked
        )

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    def _count(self, name: str) -> None:
        if obs.ENABLED:
            obs.registry().counter(name).inc()

    # ------------------------------------------------------------------
    def submit(
        self,
        technique: str,
        pairs: Sequence[Pair],
        deadline_s: float | None = None,
    ) -> QueryFuture:
        """Enqueue a request; raises :class:`Overloaded` when full.

        ``deadline_s`` is a relative budget: a request not dispatched
        within that many seconds is shed instead of served late.
        """
        technique = technique.lower()
        degraded = False
        if technique not in self.published:
            if technique not in self.known:
                raise ValueError(
                    f"unknown technique {technique!r} "
                    f"(known: {sorted(self.known)})"
                )
            technique = self.degrade_to
            degraded = True
        if not pairs:
            raise ValueError("empty request")
        rid = self._next_request_id
        self._next_request_id += 1
        if self.queued >= self.max_queue:
            self.shed += 1
            self._count("serve.shed")
            self._count("serve.shed_queue")
            self.flight.record({
                "id": rid,
                "technique": technique,
                "pairs": len(pairs),
                "status": "shed",
                "degraded": degraded,
                "e2e_us": 0,
                "retries": 0,
                "error": "queue full",
            })
            raise Overloaded(
                f"queue full ({self.queued} requests waiting, "
                f"limit {self.max_queue})"
            )
        deadline = (
            time.monotonic() + deadline_s if deadline_s is not None else None
        )
        fut = QueryFuture(technique, pairs, deadline, degraded)
        fut.request_id = rid
        fut.epoch = self.epoch
        if degraded:
            self.degraded += 1
            self._count("serve.degraded")
        q = self._queues.setdefault(technique, deque())
        if not q:
            self._oldest[technique] = fut.submitted_at
        q.append(fut)
        return fut

    # ------------------------------------------------------------------
    def _dispatch(self, technique: str, requests: list[QueryFuture]) -> None:
        batch = _Batch(self._next_batch_id, technique, requests)
        self._next_batch_id += 1
        self._send(batch)

    def _record_terminal(self, batch: _Batch) -> None:
        """Flight-record every request of a terminally resolved batch."""
        now = time.monotonic()
        for r in batch.requests:
            self.flight.record({
                "id": r.request_id,
                "technique": r.technique,
                "pairs": len(r.pairs),
                "status": r.status,
                "degraded": r.degraded,
                "e2e_us": int((now - r.submitted_at) * 1e6),
                "retries": batch.retries,
                "error": r.error,
            })

    def _try_submit(self, batch: _Batch) -> bool:
        """Hand a batch to the pool; False means the ring refused it."""
        try:
            self.pool.submit(
                batch.batch_id,
                batch.technique,
                batch.pairs,
                meta={
                    "request_id": batch.request_id,
                    "t_enq_us": batch.t_enq_us,
                    "t_form_us": batch.t_form_us,
                },
            )
        except RingFull:
            return False
        except ValueError as exc:
            # A batch the transport can never carry (e.g. one request
            # larger than the whole ring): fail its futures typed, now.
            batch.fail(str(exc))
            self._record_terminal(batch)
            return True
        self._inflight[batch.batch_id] = batch
        self.dispatched_batches += 1
        self.dispatched_pairs += len(batch.pairs)
        if obs.ENABLED:
            obs.registry().histogram(
                f"serve.batch_pairs.{batch.technique}"
            ).observe(len(batch.pairs))
            if batch.blocked_since is not None:
                obs.registry().histogram("serve.slot_wait_us").observe(
                    (time.monotonic() - batch.blocked_since) * 1e6
                )
        batch.blocked_since = None
        return True

    def _send(self, batch: _Batch) -> None:
        if not self._try_submit(batch):
            if batch.blocked_since is None:
                batch.blocked_since = time.monotonic()
                self.ring_full += 1
                self._count("serve.ring_full")
            self._blocked.append(batch)

    def _flush_blocked(self) -> None:
        """Re-dispatch ring-blocked batches in FIFO order while they fit."""
        while self._blocked:
            if not self._try_submit(self._blocked[0]):
                return
            self._blocked.popleft()

    def _flush_technique(self, technique: str) -> None:
        """Pack the technique's waiting requests into batches and send."""
        q = self._queues.get(technique)
        if not q:
            return
        cap = self.max_batch_for(technique)
        now = time.monotonic()
        current: list[QueryFuture] = []
        size = 0
        while q:
            fut = q.popleft()
            if fut.deadline is not None and now > fut.deadline:
                fut.status = "shed"
                fut.error = "deadline passed before dispatch"
                self.shed += 1
                self._count("serve.shed")
                self._count("serve.shed_deadline")
                self.flight.record({
                    "id": fut.request_id,
                    "technique": fut.technique,
                    "pairs": len(fut.pairs),
                    "status": "shed",
                    "degraded": fut.degraded,
                    "e2e_us": int((now - fut.submitted_at) * 1e6),
                    "retries": 0,
                    "error": fut.error,
                })
                continue
            if obs.ENABLED:
                obs.registry().histogram("serve.queue_us").observe(
                    (now - fut.submitted_at) * 1e6
                )
            if current and size + len(fut.pairs) > cap:
                self._dispatch(technique, current)
                current, size = [], 0
            current.append(fut)
            size += len(fut.pairs)
        if current:
            self._dispatch(technique, current)
        self._oldest.pop(technique, None)

    def pump(self, block_s: float = 0.0) -> int:
        """One scheduling step: flush due batches, collect completions.

        A technique's queue is flushed when it holds ``max_batch`` pairs
        or its oldest waiter has aged past the batch window. Returns the
        number of requests resolved this step.
        """
        now = time.monotonic()
        for technique in list(self._queues):
            q = self._queues[technique]
            if not q:
                continue
            pending_pairs = sum(len(f.pairs) for f in q)
            aged = now - self._oldest.get(technique, now) >= self.batch_window_s
            if pending_pairs >= self.max_batch_for(technique) or aged:
                self._flush_technique(technique)
        return self._collect(block_s)

    def _collect(self, block_s: float) -> int:
        if not self._inflight and not self._blocked:
            return 0
        resolved = 0
        # With nothing in flight there is no completion to wait for —
        # poll(0) still lets the ring recycle slots for blocked batches.
        for event in self.pool.poll(block_s if self._inflight else 0.0):
            kind = event[0]
            if kind == "done":
                batch_id, distances = event[1], event[2]
                batch = self._inflight.pop(batch_id, None)
                if batch is not None:
                    stamps = event[3] if len(event) > 3 else None
                    served = stamps.get("epoch") if stamps else None
                    if served is not None and served != batch.epoch:
                        # A reply computed at the wrong weight epoch is
                        # a wrong answer — fail it loudly rather than
                        # hand back stale (or too-fresh) distances.
                        self.epoch_mismatches += 1
                        self._count("serve.epoch_mismatch")
                        batch.fail(
                            f"epoch mismatch: admitted at epoch "
                            f"{batch.epoch}, answered at {served}"
                        )
                        resolved += len(batch.requests)
                        self._record_terminal(batch)
                        continue
                    for r in batch.requests:
                        r.served_epoch = (
                            served if served is not None else batch.epoch
                        )
                    batch.scatter(distances)
                    resolved += len(batch.requests)
                    self._observe_latency(batch, stamps)
                    self._record_terminal(batch)
            elif kind == "error":
                _, batch_id, message = event
                batch = self._inflight.pop(batch_id, None)
                if batch is not None:
                    batch.fail(message)
                    resolved += len(batch.requests)
                    self._record_terminal(batch)
            elif kind == "died":
                (_, batch_ids) = event
                for batch_id in batch_ids:
                    batch = self._inflight.pop(batch_id, None)
                    if batch is None:
                        continue
                    if batch.retries == 0:
                        batch.retries += 1
                        self.retries += 1
                        self._count("serve.retries")
                        self._send(batch)
                    else:
                        batch.fail("worker died twice on this batch")
                        resolved += len(batch.requests)
                        self._record_terminal(batch)
        self._flush_blocked()
        return resolved

    #: Stage boundaries of the latency breakdown, in pipeline order:
    #: (histogram suffix, start stamp, end stamp). ``scatter`` closes
    #: against "now" at observation time.
    _STAGES = (
        ("queue", "enq", "form"),
        ("publish", "form", "pub"),
        ("dispatch", "pub", "wstart"),
        ("worker", "wstart", "wcommit"),
    )

    def _observe_latency(self, batch: _Batch, stamps: dict | None) -> None:
        """Feed ``serve.e2e_us`` + ``serve.stage_us.*`` from one batch.

        Stages with a missing/zero boundary (a fake pool in tests, a
        transport that lost a stamp) are skipped rather than observed
        as garbage; per-request end-to-end latency needs no stamps.
        """
        if not obs.ENABLED:
            return
        reg = obs.registry()
        now = time.monotonic()
        for r in batch.requests:
            reg.histogram("serve.e2e_us").observe(
                max((now - r.submitted_at) * 1e6, 0.0)
            )
        if not stamps:
            return
        now_us = int(now * 1e6)
        for stage, start, end in self._STAGES:
            a, b = stamps.get(start), stamps.get(end)
            if a and b:
                reg.histogram(f"serve.stage_us.{stage}").observe(
                    max(b - a, 0)
                )
        wcommit = stamps.get("wcommit")
        if wcommit:
            reg.histogram("serve.stage_us.scatter").observe(
                max(now_us - wcommit, 0)
            )

    # ------------------------------------------------------------------
    def drain(self, timeout_s: float = 60.0) -> None:
        """Flush everything and wait for all in-flight work to resolve."""
        for technique in list(self._queues):
            self._flush_technique(technique)
        deadline = time.monotonic() + timeout_s
        while self._inflight or self._blocked:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"{len(self._inflight)} batches still in flight "
                    f"({len(self._blocked)} ring-blocked) after "
                    f"{timeout_s:.0f}s"
                )
            self._collect(min(remaining, 0.25))

    def stats(self) -> dict[str, int]:
        return {
            "dispatched_batches": self.dispatched_batches,
            "dispatched_pairs": self.dispatched_pairs,
            "shed": self.shed,
            "degraded": self.degraded,
            "retries": self.retries,
            "ring_full": self.ring_full,
            "queued": self.queued,
            "inflight": self.inflight,
            "flight_recorded": self.flight.recorded,
            "epoch": self.epoch,
            "epoch_mismatches": self.epoch_mismatches,
        }
