"""The persistent worker pool and its shared-memory technique views.

Each worker process attaches the published segments
(:mod:`repro.serve.segments`) and rebuilds *views* of the indexes —
lightweight objects whose arrays live in shared memory and whose query
methods are the repo's existing exact paths:

- :class:`SharedDijkstra` answers through
  :meth:`repro.graph.csr.CSRGraph.distance_table` (the compiled SSSP
  sweep) over a CSRGraph wrapping the mapped graph arrays;
- :class:`SharedCH` exposes the upward :class:`~repro.graph.csr.DirectedCSR`
  through the same duck-typed surface
  (``index.n``/``index.upward_csr()``/``upward_search``) that
  :func:`repro.core.ch.many_to_many.many_to_many` consumes, so CH
  batches run the bucket engine unchanged;
- :class:`SharedTNR` replays :class:`repro.core.tnr.query.TransitNodeRouting`'s
  table/fallback split on the flattened access arrays, with
  :class:`SharedCH` as the fallback (the paper's recommended setup);
- :class:`SharedSILC` walks first-hop intervals with ``searchsorted``
  over the flattened per-vertex interval arrays;
- :class:`SharedLabels` rebuilds a
  :class:`~repro.core.labels.HubLabelIndex` directly over the mapped
  label arrays (the segment layout *is* the in-process layout) and
  dispatches to the hub-label query kernels.

Every view's answers are bit-identical to the in-process technique:
each underlying primitive is exact per entry (float64 sums of integer
travel times), so neither the segment indirection nor the scheduler's
batch partitioning can change a single bit (guarded by
``tests/test_serve.py``).

The pool itself is deliberately simple: one pipe per worker, batches
dispatched to the least-loaded worker, completions collected with
``multiprocessing.connection.wait``. A worker death surfaces as a
``died`` event carrying the batch ids that were in flight; the pool
restarts the worker (counted in ``serve.worker_restarts``) and the
scheduler decides whether to retry the batches.
"""

from __future__ import annotations

import os
from multiprocessing.connection import wait as _conn_wait
from typing import Sequence

import numpy as np

from repro import obs
from repro.graph.csr import CSRGraph, DirectedCSR
from repro.parallel import serve_context
from repro.persistence import GraphFingerprint
from repro.serve.segments import AttachedSegments, SegmentError, attach_segments

INF = float("inf")

#: Matches repro.core.tnr.grid.OUTER_RADIUS (imported lazily to keep
#: the worker's import graph small would be false economy — assert at
#: build time instead).
from repro.core.tnr.grid import OUTER_RADIUS
from repro.core.silc.quadtree import MIXED_LEAF


# ----------------------------------------------------------------------
# Shared technique views
# ----------------------------------------------------------------------
class SharedDijkstra:
    """Bidirectional-Dijkstra-equivalent serving view (exact baseline).

    Answers through the CSR batched sweep, the same kernel
    :class:`repro.core.bidirectional.BidirectionalDijkstra` dispatches
    its ``distance_table`` to.
    """

    name = "Dijkstra"

    def __init__(self, csr: CSRGraph) -> None:
        self.csr = csr

    def distance_table(self, sources, targets) -> np.ndarray:
        return self.csr.distance_table(sources, targets)

    def distance(self, source: int, target: int) -> float:
        if source == target:
            return 0.0
        return float(self.csr.distance_table([source], [target])[0, 0])


class _SharedCHIndex:
    """Duck-typed stand-in for :class:`repro.core.ch.contraction.CHIndex`
    carrying only what the many-to-many engine reads."""

    __slots__ = ("n", "_ucsr")

    def __init__(self, n: int, ucsr: DirectedCSR) -> None:
        self.n = n
        self._ucsr = ucsr

    def upward_csr(self) -> DirectedCSR:
        return self._ucsr


class SharedCH:
    """CH distance serving over the shared upward arc arrays."""

    name = "CH"

    def __init__(self, n: int, ucsr: DirectedCSR) -> None:
        self.index = _SharedCHIndex(n, ucsr)

    def distance_table(self, sources, targets) -> np.ndarray:
        from repro.core.ch.many_to_many import many_to_many

        return many_to_many(self, sources, targets, dtype=np.float64)

    def distance(self, source: int, target: int) -> float:
        if source == target:
            return 0.0
        return float(self.distance_table([source], [target])[0, 0])

    def upward_search(self, source: int, stall: bool = True) -> dict[int, float]:
        """Flat-array port of ``ContractionHierarchy.upward_search``.

        Only exercised on the legacy many-to-many path (tiny graphs or
        ``REPRO_NO_CSR=1``); identical label semantics, including
        stall-on-demand.
        """
        from heapq import heappop, heappush

        ucsr = self.index.upward_csr()
        indptr, indices, weights = ucsr.indptr, ucsr.indices, ucsr.weights
        dist: dict[int, float] = {source: 0.0}
        settled: dict[int, float] = {}
        heap: list[tuple[float, int]] = [(0.0, source)]
        dist_get = dist.get
        while heap:
            d, u = heappop(heap)
            if u in settled or d > dist[u]:
                continue
            lo, hi = int(indptr[u]), int(indptr[u + 1])
            if stall:
                stalled = False
                for k in range(lo, hi):
                    dv = dist_get(int(indices[k]))
                    if dv is not None and dv + weights[k] < d:
                        stalled = True
                        break
                if stalled:
                    continue
            settled[u] = d
            for k in range(lo, hi):
                v = int(indices[k])
                nd = d + float(weights[k])
                if nd < dist_get(v, INF):
                    dist[v] = nd
                    heappush(heap, (nd, v))
        return settled


class SharedTNR:
    """TNR distance serving: shared transit table + flattened I2 arrays.

    ``distance_table`` mirrors
    :meth:`repro.core.tnr.query.TransitNodeRouting.distance_table`
    line for line — answerable pairs gather Equation 1 from the shared
    table, the rest batch through the fallback's ``distance_table``
    over deduplicated endpoints.
    """

    name = "TNR"

    def __init__(
        self,
        g: int,
        cells: np.ndarray,
        table: np.ndarray,
        va_indptr: np.ndarray,
        va_idx: np.ndarray,
        va_dist: np.ndarray,
        fallback,
    ) -> None:
        self.g = g
        self.cells = cells
        self.table = table
        self.va_indptr = va_indptr
        self.va_idx = va_idx
        self.va_dist = va_dist
        self.fallback = fallback

    def answerable(self, u: int, v: int) -> bool:
        ca, cb = int(self.cells[u]), int(self.cells[v])
        g = self.g
        return max(abs(ca % g - cb % g), abs(ca // g - cb // g)) > OUTER_RADIUS

    def _access(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        lo, hi = int(self.va_indptr[v]), int(self.va_indptr[v + 1])
        return self.va_idx[lo:hi], self.va_dist[lo:hi]

    def _table_distance(self, source: int, target: int) -> float:
        ai, ds = self._access(source)
        aj, dt = self._access(target)
        if len(ai) == 0 or len(aj) == 0:
            return INF
        middle = self.table[np.ix_(ai, aj)].astype(np.float64)
        totals = ds[:, None] + middle + dt[None, :]
        return float(totals.min())

    def distance(self, source: int, target: int) -> float:
        if source == target:
            return 0.0
        if not self.answerable(source, target):
            return self.fallback.distance(source, target)
        return self._table_distance(source, target)

    def distance_table(self, sources, targets) -> np.ndarray:
        src = [int(s) for s in sources]
        tgt = [int(t) for t in targets]
        out = np.empty((len(src), len(tgt)), dtype=np.float64)
        pending: list[tuple[int, int]] = []
        for i, s in enumerate(src):
            row = out[i]
            for j, t in enumerate(tgt):
                if s == t:
                    row[j] = 0.0
                elif self.answerable(s, t):
                    row[j] = self._table_distance(s, t)
                else:
                    pending.append((i, j))
        if pending:
            f_src = sorted({src[i] for i, _ in pending})
            f_tgt = sorted({tgt[j] for _, j in pending})
            sub = np.asarray(
                self.fallback.distance_table(f_src, f_tgt), dtype=np.float64
            )
            si = {v: k for k, v in enumerate(f_src)}
            ti = {v: k for k, v in enumerate(f_tgt)}
            for i, j in pending:
                out[i, j] = sub[si[src[i]], ti[tgt[j]]]
        return out


class SharedSILC:
    """SILC distance serving: interval bisection over flattened arrays.

    The walk is the same first-hop iteration as
    :meth:`repro.core.silc.query.SILC.distance` — same visit order,
    same float64 weight sums — with ``np.searchsorted`` standing in for
    ``bisect_right`` and a per-vertex binary search over the graph's
    neighbour-sorted CSR row standing in for ``weight_map``.
    """

    name = "SILC"

    def __init__(self, csr: CSRGraph, arrays: dict[str, np.ndarray]) -> None:
        self.csr = csr
        self.codes = arrays["codes"]
        self.iv_indptr = arrays["iv_indptr"]
        self.iv_start = arrays["iv_start"]
        self.iv_end = arrays["iv_end"]
        self.iv_color = arrays["iv_color"]
        self.exc_indptr = arrays["exc_indptr"]
        self.exc_key = arrays["exc_key"]
        self.exc_val = arrays["exc_val"]

    def _edge_weight(self, u: int, v: int) -> float:
        indptr = self.csr.indptr
        lo, hi = int(indptr[u]), int(indptr[u + 1])
        k = lo + int(np.searchsorted(self.csr.indices[lo:hi], v))
        return float(self.csr.weights[k])

    def next_hop(self, source: int, target: int) -> int:
        code = int(self.codes[target])
        lo, hi = int(self.iv_indptr[source]), int(self.iv_indptr[source + 1])
        i = lo + int(np.searchsorted(self.iv_start[lo:hi], code, side="right")) - 1
        if i < lo or code >= int(self.iv_end[i]):
            raise KeyError(
                f"morton code of {target} not covered by partition of {source}"
            )
        color = int(self.iv_color[i])
        if color == MIXED_LEAF:
            elo, ehi = int(self.exc_indptr[source]), int(self.exc_indptr[source + 1])
            k = elo + int(np.searchsorted(self.exc_key[elo:ehi], target))
            if k >= ehi or int(self.exc_key[k]) != target:
                raise KeyError(target)
            color = int(self.exc_val[k])
        return color

    def distance(self, source: int, target: int) -> float:
        if source == target:
            return 0.0
        total = 0.0
        current = source
        while current != target:
            nxt = self.next_hop(current, target)
            if nxt < 0:
                return INF
            total += self._edge_weight(current, nxt)
            current = nxt
        return total


class SharedLabels:
    """Hub-label distance serving over the shared flat label arrays.

    The mapped ``indptr``/``hubs``/``dists`` views *are* a valid
    :class:`~repro.core.labels.HubLabelIndex` (the segment layout is the
    in-process layout), so every query dispatches to the same kernels —
    zero copies, bit-identical answers.
    """

    name = "HL"

    def __init__(self, n: int, arrays: dict[str, np.ndarray]) -> None:
        from repro.core.labels import HubLabelIndex

        self.index = HubLabelIndex(
            n=n,
            indptr=arrays["indptr"],
            hubs=arrays["hubs"],
            dists=arrays["dists"],
        )

    def distance(self, source: int, target: int) -> float:
        from repro.core.labels import point_query

        return point_query(self.index, source, target)

    def distances(self, pairs) -> np.ndarray:
        from repro.core.labels import query_pairs

        pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        return query_pairs(self.index, pairs[:, 0], pairs[:, 1])

    def distance_table(self, sources, targets) -> np.ndarray:
        from repro.core.labels import label_table

        return label_table(self.index, sources, targets)


def build_techniques(segs: AttachedSegments) -> dict:
    """Instantiate the shared views for every published technique.

    Verifies the graph segment against the manifest fingerprint before
    answering anything through it; TNR requires CH in the same manifest
    (its fallback), which :func:`repro.serve.service.build_payloads`
    guarantees at publish time.
    """
    manifest = segs.manifest
    out: dict = {}
    graph_arrays = segs.arrays("dijkstra")
    csr = CSRGraph(**graph_arrays)
    fp = manifest.get("fingerprint", {})
    got = GraphFingerprint.of_csr(csr)
    if (got.n, got.m) != (fp.get("n"), fp.get("m")) or got.total_weight != fp.get(
        "total_weight"
    ):
        raise SegmentError(
            f"graph segment does not match the manifest fingerprint "
            f"({got} vs {fp})"
        )
    out["dijkstra"] = SharedDijkstra(csr)
    if "ch" in manifest["techniques"]:
        a = segs.arrays("ch")
        ucsr = DirectedCSR(a["indptr"], a["indices"], a["weights"])
        out["ch"] = SharedCH(int(segs.meta("ch")["n"]), ucsr)
    if "tnr" in manifest["techniques"]:
        if "ch" not in out:
            raise SegmentError("tnr segment published without its ch fallback")
        a = segs.arrays("tnr")
        out["tnr"] = SharedTNR(
            g=int(segs.meta("tnr")["g"]),
            cells=a["cells"],
            table=a["table"],
            va_indptr=a["va_indptr"],
            va_idx=a["va_idx"],
            va_dist=a["va_dist"],
            fallback=out["ch"],
        )
    if "silc" in manifest["techniques"]:
        out["silc"] = SharedSILC(csr, segs.arrays("silc"))
    if "labels" in manifest["techniques"]:
        out["labels"] = SharedLabels(
            int(segs.meta("labels")["n"]), segs.arrays("labels")
        )
    return out


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _worker_main(manifest: dict, conn, trace_base: str | None) -> None:
    """Worker loop: attach, build views, answer batches until ``stop``.

    Protocol (parent -> worker): ``("batch", id, technique, pairs)`` or
    ``("stop",)``. Worker -> parent: ``("ready", pid)`` once, then
    ``("ok", id, distances)`` / ``("err", id, message)`` per batch.
    Only the pairs and the result row cross the pipe — never index
    arrays (the zero-copy contract the tests assert).
    """
    from repro.harness.experiments import batched_distances

    if trace_base or obs.trace_path() is not None:
        # Forked workers inherit the parent's open trace; re-route to a
        # pid-unique file instead of interleaving with (or closing) it.
        base = trace_base or obs.trace_path()
        obs.detach_trace()
        obs.start_trace(obs.unique_trace_path(base))
    segs = None
    try:
        segs = attach_segments(manifest, foreign=False)
        techniques = build_techniques(segs)
        conn.send(("ready", os.getpid()))
        while True:
            msg = conn.recv()
            if msg[0] == "stop":
                break
            _, batch_id, technique, pairs = msg
            try:
                with obs.span("serve.worker_batch"):
                    out = batched_distances(
                        techniques[technique], pairs, batch_size=max(len(pairs), 1)
                    )
                conn.send(("ok", batch_id, out))
            except Exception as exc:  # surface, don't die
                conn.send(("err", batch_id, f"{type(exc).__name__}: {exc}"))
    except (EOFError, OSError, KeyboardInterrupt):  # parent went away
        pass
    finally:
        if obs.trace_path() is not None:
            obs.stop_trace()
        if segs is not None:
            segs.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------
class _Worker:
    __slots__ = ("process", "conn", "inflight", "ready")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.inflight: dict[int, tuple[str, Sequence]] = {}
        self.ready = False


class WorkerPool:
    """N persistent workers answering batches over pipes.

    Events from :meth:`poll`:

    - ``("done", batch_id, distances)`` — a batch completed;
    - ``("error", batch_id, message)`` — the batch raised in the worker
      (bad technique name, out-of-range vertex — the worker survives);
    - ``("died", batch_ids)`` — a worker died (crash or kill) with
      those batches in flight; the pool has already restarted it and
      incremented ``serve.worker_restarts``. Requeueing is the
      scheduler's call.
    """

    def __init__(self, manifest: dict, n_workers: int = 2) -> None:
        if n_workers < 1:
            raise ValueError(f"need at least one worker, got {n_workers}")
        self.manifest = manifest
        self.n_workers = n_workers
        self._ctx = serve_context()
        self._workers: list[_Worker] = []
        self.restarts = 0
        self.batches_done = 0
        self._trace_base = obs.trace_path()

    # ------------------------------------------------------------------
    def start(self) -> "WorkerPool":
        for _ in range(self.n_workers):
            self._workers.append(self._spawn())
        return self

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(self.manifest, child_conn, self._trace_base),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _Worker(process, parent_conn)

    @property
    def worker_pids(self) -> list[int]:
        return [w.process.pid for w in self._workers]

    @property
    def inflight(self) -> int:
        return sum(len(w.inflight) for w in self._workers)

    # ------------------------------------------------------------------
    def submit(self, batch_id: int, technique: str, pairs: Sequence) -> None:
        """Send a batch to the least-loaded live worker.

        A worker whose pipe is already broken is reaped (and restarted)
        on the spot and the next candidate tried; with every worker
        freshly dead the batch lands on a restarted one.
        """
        last_exc: BaseException | None = None
        for w in sorted(self._workers, key=lambda w: len(w.inflight)):
            try:
                w.conn.send(("batch", batch_id, technique, pairs))
            except (BrokenPipeError, OSError) as exc:
                last_exc = exc
                self._reap(w)  # events for its in-flight batches surface in poll
                continue
            w.inflight[batch_id] = (technique, pairs)
            return
        raise RuntimeError("no live worker accepted the batch") from last_exc

    def poll(self, timeout: float = 0.0) -> list[tuple]:
        """Collect completion/death events (waits up to ``timeout`` s)."""
        events: list[tuple] = []
        while True:
            conns = [w.conn for w in self._workers]
            ready = _conn_wait(conns, timeout)
            if not ready:
                # A SIGKILLed worker's pipe usually reports EOF, but
                # belt-and-braces: reap anything no longer alive.
                for w in list(self._workers):
                    if not w.process.is_alive():
                        events.extend(self._reap_events(w))
                return events
            timeout = 0.0  # only block on the first wait
            for conn in ready:
                w = next(x for x in self._workers if x.conn is conn)
                try:
                    msg = w.conn.recv()
                except (EOFError, OSError):
                    events.extend(self._reap_events(w))
                    continue
                if msg[0] == "ready":
                    w.ready = True
                elif msg[0] == "ok":
                    _, batch_id, distances = msg
                    w.inflight.pop(batch_id, None)
                    self.batches_done += 1
                    events.append(("done", batch_id, distances))
                elif msg[0] == "err":
                    _, batch_id, message = msg
                    w.inflight.pop(batch_id, None)
                    events.append(("error", batch_id, message))

    def _reap_events(self, w: _Worker) -> list[tuple]:
        lost = list(w.inflight)
        self._reap(w)
        return [("died", lost)]

    def _reap(self, w: _Worker) -> None:
        """Replace a dead worker with a fresh one (counted)."""
        try:
            w.conn.close()
        except OSError:  # pragma: no cover
            pass
        if w.process.is_alive():  # broken pipe but still running: kill
            w.process.terminate()
        w.process.join(timeout=5)
        self._workers.remove(w)
        self._workers.append(self._spawn())
        self.restarts += 1
        if obs.ENABLED:
            obs.registry().counter("serve.worker_restarts").inc()

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Graceful shutdown: stop message, join, then force-kill."""
        for w in self._workers:
            try:
                w.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for w in self._workers:
            w.process.join(timeout=5)
            if w.process.is_alive():  # pragma: no cover - stuck worker
                w.process.kill()
                w.process.join(timeout=5)
            try:
                w.conn.close()
            except OSError:  # pragma: no cover
                pass
        self._workers.clear()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
