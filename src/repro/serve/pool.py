"""The persistent worker pool and its shared-memory technique views.

Each worker process attaches the published segments
(:mod:`repro.serve.segments`) and rebuilds *views* of the indexes —
lightweight objects whose arrays live in shared memory and whose query
methods are the repo's existing exact paths:

- :class:`SharedDijkstra` answers through
  :meth:`repro.graph.csr.CSRGraph.distance_table` (the compiled SSSP
  sweep) over a CSRGraph wrapping the mapped graph arrays;
- :class:`SharedCH` exposes the upward :class:`~repro.graph.csr.DirectedCSR`
  through the same duck-typed surface
  (``index.n``/``index.upward_csr()``/``upward_search``) that
  :func:`repro.core.ch.many_to_many.many_to_many` consumes, so CH
  batches run the bucket engine unchanged;
- :class:`SharedTNR` replays :class:`repro.core.tnr.query.TransitNodeRouting`'s
  table/fallback split on the flattened access arrays, with
  :class:`SharedCH` as the fallback (the paper's recommended setup);
- :class:`SharedSILC` walks first-hop intervals with ``searchsorted``
  over the flattened per-vertex interval arrays;
- :class:`SharedLabels` rebuilds a
  :class:`~repro.core.labels.HubLabelIndex` directly over the mapped
  label arrays (the segment layout *is* the in-process layout) and
  dispatches to the hub-label query kernels.

Every view's answers are bit-identical to the in-process technique:
each underlying primitive is exact per entry (float64 sums of integer
travel times), so neither the segment indirection nor the scheduler's
batch partitioning can change a single bit (guarded by
``tests/test_serve.py``).

Two transports drive the views (selected by ``REPRO_SERVE_TRANSPORT``
or :class:`~repro.serve.service.ServiceConfig.transport`):

- :class:`WorkerPool` — the original pipe transport: batches and their
  float64 replies are pickled through one ``Pipe`` per worker. Kept as
  the differential control for the ring transport's bit-identity
  tests.
- :class:`RingPool` — the zero-copy ring transport: the scheduler
  writes request pairs into a shared int32 arena and publishes a
  fixed-width slot descriptor (:mod:`repro.serve.segments` ring
  layout); the worker writes distances straight into a preallocated
  float64 result arena and commits the slot; only an 8-byte slot index
  ever crosses the wakeup pipe in either direction. Per-slot
  sequence/commit words make SIGKILL mid-slot detectable: an
  uncommitted slot is retried, a committed one is harvested.

Either pool dispatches batches to the least-loaded worker and collects
completions with ``multiprocessing.connection.wait``. A worker death
surfaces as a ``died`` event carrying the batch ids that were lost in
flight; the pool restarts the worker (counted in
``serve.worker_restarts``) and the scheduler decides whether to retry.
"""

from __future__ import annotations

import math
import os
import secrets
import struct
import time
from multiprocessing.connection import wait as _conn_wait
from typing import Sequence

import numpy as np

from repro import obs
from repro.graph.csr import CSRGraph, DirectedCSR
from repro.obs.registry import MetricsRegistry
from repro.obs.shm import MetricsPlane, PlaneMirror
from repro.parallel import serve_context
from repro.persistence import GraphFingerprint
from repro.serve.segments import (
    ERR_BYTES,
    SLOT_BATCH,
    SLOT_COMMIT,
    SLOT_EPOCH,
    SLOT_NPAIRS,
    SLOT_OFF,
    SLOT_REQ,
    SLOT_SEQ,
    SLOT_STATUS,
    SLOT_T_ENQ,
    SLOT_T_FORM,
    SLOT_T_PUB,
    SLOT_T_WCOMMIT,
    SLOT_T_WSTART,
    SLOT_TECH,
    STATUS_ERR,
    STATUS_OK,
    AttachedRing,
    AttachedSegments,
    RingBuffers,
    SegmentError,
    attach_segments,
)

INF = float("inf")


def _now_us() -> int:
    """Microseconds on CLOCK_MONOTONIC — comparable across forked
    processes on the same host, which is what the per-stage latency
    stamps rely on."""
    return time.monotonic_ns() // 1000

#: Ring wakeup-channel control tokens (regular messages are slot >= 0).
_STOP = -1
_READY = -2
_EPOCH = -3  #: epoch flip: a re-published manifest follows on the pipe
_TOKEN = struct.Struct("<q")


def _manifest_epoch(manifest: dict) -> int:
    """The weight epoch a manifest serves (0 for pre-dynamics manifests)."""
    return int(manifest.get("fingerprint", {}).get("epoch", 0))


class RingFull(RuntimeError):
    """No free ring slots for this batch — back off and retry later."""

#: Matches repro.core.tnr.grid.OUTER_RADIUS (imported lazily to keep
#: the worker's import graph small would be false economy — assert at
#: build time instead).
from repro.core.tnr.grid import OUTER_RADIUS  # noqa: E402
from repro.core.silc.quadtree import MIXED_LEAF  # noqa: E402


# ----------------------------------------------------------------------
# Shared technique views
# ----------------------------------------------------------------------
class SharedDijkstra:
    """Bidirectional-Dijkstra-equivalent serving view (exact baseline).

    Answers through the CSR batched sweep, the same kernel
    :class:`repro.core.bidirectional.BidirectionalDijkstra` dispatches
    its ``distance_table`` to.
    """

    name = "Dijkstra"

    def __init__(self, csr: CSRGraph) -> None:
        self.csr = csr

    def distance_table(self, sources, targets) -> np.ndarray:
        return self.csr.distance_table(sources, targets)

    def distance(self, source: int, target: int) -> float:
        if source == target:
            return 0.0
        return float(self.csr.distance_table([source], [target])[0, 0])


class _SharedCHIndex:
    """Duck-typed stand-in for :class:`repro.core.ch.contraction.CHIndex`
    carrying only what the many-to-many engine reads."""

    __slots__ = ("n", "_ucsr")

    def __init__(self, n: int, ucsr: DirectedCSR) -> None:
        self.n = n
        self._ucsr = ucsr

    def upward_csr(self) -> DirectedCSR:
        return self._ucsr


class SharedCH:
    """CH distance serving over the shared upward arc arrays."""

    name = "CH"

    def __init__(self, n: int, ucsr: DirectedCSR) -> None:
        self.index = _SharedCHIndex(n, ucsr)

    def distance_table(self, sources, targets) -> np.ndarray:
        from repro.core.ch.many_to_many import many_to_many

        return many_to_many(self, sources, targets, dtype=np.float64)

    def distance(self, source: int, target: int) -> float:
        if source == target:
            return 0.0
        return float(self.distance_table([source], [target])[0, 0])

    def upward_search(self, source: int, stall: bool = True) -> dict[int, float]:
        """Flat-array port of ``ContractionHierarchy.upward_search``.

        Only exercised on the legacy many-to-many path (tiny graphs or
        ``REPRO_NO_CSR=1``); identical label semantics, including
        stall-on-demand.
        """
        from heapq import heappop, heappush

        ucsr = self.index.upward_csr()
        indptr, indices, weights = ucsr.indptr, ucsr.indices, ucsr.weights
        dist: dict[int, float] = {source: 0.0}
        settled: dict[int, float] = {}
        heap: list[tuple[float, int]] = [(0.0, source)]
        dist_get = dist.get
        while heap:
            d, u = heappop(heap)
            if u in settled or d > dist[u]:
                continue
            lo, hi = int(indptr[u]), int(indptr[u + 1])
            if stall:
                stalled = False
                for k in range(lo, hi):
                    dv = dist_get(int(indices[k]))
                    if dv is not None and dv + weights[k] < d:
                        stalled = True
                        break
                if stalled:
                    continue
            settled[u] = d
            for k in range(lo, hi):
                v = int(indices[k])
                nd = d + float(weights[k])
                if nd < dist_get(v, INF):
                    dist[v] = nd
                    heappush(heap, (nd, v))
        return settled


class SharedTNR:
    """TNR distance serving: shared transit table + flattened I2 arrays.

    ``distance_table`` mirrors
    :meth:`repro.core.tnr.query.TransitNodeRouting.distance_table`
    line for line — answerable pairs gather Equation 1 from the shared
    table, the rest batch through the fallback's ``distance_table``
    over deduplicated endpoints.
    """

    name = "TNR"

    def __init__(
        self,
        g: int,
        cells: np.ndarray,
        table: np.ndarray,
        va_indptr: np.ndarray,
        va_idx: np.ndarray,
        va_dist: np.ndarray,
        fallback,
    ) -> None:
        self.g = g
        self.cells = cells
        self.table = table
        self.va_indptr = va_indptr
        self.va_idx = va_idx
        self.va_dist = va_dist
        self.fallback = fallback

    def answerable(self, u: int, v: int) -> bool:
        ca, cb = int(self.cells[u]), int(self.cells[v])
        g = self.g
        return max(abs(ca % g - cb % g), abs(ca // g - cb // g)) > OUTER_RADIUS

    def _access(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        lo, hi = int(self.va_indptr[v]), int(self.va_indptr[v + 1])
        return self.va_idx[lo:hi], self.va_dist[lo:hi]

    def _table_distance(self, source: int, target: int) -> float:
        ai, ds = self._access(source)
        aj, dt = self._access(target)
        if len(ai) == 0 or len(aj) == 0:
            return INF
        middle = self.table[np.ix_(ai, aj)].astype(np.float64)
        totals = ds[:, None] + middle + dt[None, :]
        return float(totals.min())

    def distance(self, source: int, target: int) -> float:
        if source == target:
            return 0.0
        if not self.answerable(source, target):
            return self.fallback.distance(source, target)
        return self._table_distance(source, target)

    def distance_table(self, sources, targets) -> np.ndarray:
        src = [int(s) for s in sources]
        tgt = [int(t) for t in targets]
        out = np.empty((len(src), len(tgt)), dtype=np.float64)
        pending: list[tuple[int, int]] = []
        for i, s in enumerate(src):
            row = out[i]
            for j, t in enumerate(tgt):
                if s == t:
                    row[j] = 0.0
                elif self.answerable(s, t):
                    row[j] = self._table_distance(s, t)
                else:
                    pending.append((i, j))
        if pending:
            f_src = sorted({src[i] for i, _ in pending})
            f_tgt = sorted({tgt[j] for _, j in pending})
            sub = np.asarray(
                self.fallback.distance_table(f_src, f_tgt), dtype=np.float64
            )
            si = {v: k for k, v in enumerate(f_src)}
            ti = {v: k for k, v in enumerate(f_tgt)}
            for i, j in pending:
                out[i, j] = sub[si[src[i]], ti[tgt[j]]]
        return out

    def distance_pairs(self, pairs) -> np.ndarray:
        """Vectorised per-pair distances — linear in the batch size.

        Mirrors :meth:`TransitNodeRouting.distance_pairs` but evaluates
        every answerable pair's Equation-1 min in one padded numpy
        gather over the flattened access-node arrays: pairs' access
        lists are right-padded to the batch maxima with ``inf``
        distances, so padding rows/columns never win the min and the
        result equals the per-pair answer bit for bit.
        """
        arr = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        s, t = arr[:, 0], arr[:, 1]
        out = np.zeros(len(arr), dtype=np.float64)
        g = self.g
        ca, cb = self.cells[s], self.cells[t]
        cheb = np.maximum(np.abs(ca % g - cb % g), np.abs(ca // g - cb // g))
        same = s == t
        table_ok = (cheb > OUTER_RADIUS) & ~same
        idx = np.nonzero(table_ok)[0]
        if len(idx):
            out[idx] = self._table_distance_many(s[idx], t[idx])
        fb = np.nonzero(~table_ok & ~same)[0]
        if len(fb):
            f_src = sorted({int(a) for a in s[fb]})
            f_tgt = sorted({int(b) for b in t[fb]})
            sub = np.asarray(
                self.fallback.distance_table(f_src, f_tgt), dtype=np.float64
            )
            si = {v: k for k, v in enumerate(f_src)}
            ti = {v: k for k, v in enumerate(f_tgt)}
            out[fb] = [sub[si[int(a)], ti[int(b)]] for a, b in arr[fb]]
        return out

    def _table_distance_many(self, s: np.ndarray, t: np.ndarray) -> np.ndarray:
        """Equation 1 for many (s, t) pairs in one padded gather."""
        indptr = self.va_indptr
        slo, ns = indptr[s], indptr[s + 1] - indptr[s]
        tlo, nt = indptr[t], indptr[t + 1] - indptr[t]
        max_s = int(ns.max(initial=0))
        max_t = int(nt.max(initial=0))
        if max_s == 0 or max_t == 0:
            return np.full(len(s), INF)
        rs, rt = np.arange(max_s), np.arange(max_t)
        sv = rs[None, :] < ns[:, None]
        sp = np.where(sv, slo[:, None] + rs[None, :], 0)
        tv = rt[None, :] < nt[:, None]
        tp = np.where(tv, tlo[:, None] + rt[None, :], 0)
        a_s = self.va_idx[sp]  # (k, max_s) access-node ids, 0-padded
        a_t = self.va_idx[tp]
        d_s = np.where(sv, self.va_dist[sp], INF)
        d_t = np.where(tv, self.va_dist[tp], INF)
        middle = self.table[a_s[:, :, None], a_t[:, None, :]].astype(np.float64)
        totals = d_s[:, :, None] + middle + d_t[:, None, :]
        return totals.reshape(len(s), -1).min(axis=1)


class SharedSILC:
    """SILC distance serving: interval bisection over flattened arrays.

    The walk is the same first-hop iteration as
    :meth:`repro.core.silc.query.SILC.distance` — same visit order,
    same float64 weight sums — with ``np.searchsorted`` standing in for
    ``bisect_right`` and a per-vertex binary search over the graph's
    neighbour-sorted CSR row standing in for ``weight_map``.
    """

    name = "SILC"

    def __init__(self, csr: CSRGraph, arrays: dict[str, np.ndarray]) -> None:
        self.csr = csr
        self.codes = arrays["codes"]
        self.iv_indptr = arrays["iv_indptr"]
        self.iv_start = arrays["iv_start"]
        self.iv_end = arrays["iv_end"]
        self.iv_color = arrays["iv_color"]
        self.exc_indptr = arrays["exc_indptr"]
        self.exc_key = arrays["exc_key"]
        self.exc_val = arrays["exc_val"]

    def _edge_weight(self, u: int, v: int) -> float:
        indptr = self.csr.indptr
        lo, hi = int(indptr[u]), int(indptr[u + 1])
        k = lo + int(np.searchsorted(self.csr.indices[lo:hi], v))
        return float(self.csr.weights[k])

    def next_hop(self, source: int, target: int) -> int:
        code = int(self.codes[target])
        lo, hi = int(self.iv_indptr[source]), int(self.iv_indptr[source + 1])
        i = lo + int(np.searchsorted(self.iv_start[lo:hi], code, side="right")) - 1
        if i < lo or code >= int(self.iv_end[i]):
            raise KeyError(
                f"morton code of {target} not covered by partition of {source}"
            )
        color = int(self.iv_color[i])
        if color == MIXED_LEAF:
            elo, ehi = int(self.exc_indptr[source]), int(self.exc_indptr[source + 1])
            k = elo + int(np.searchsorted(self.exc_key[elo:ehi], target))
            if k >= ehi or int(self.exc_key[k]) != target:
                raise KeyError(target)
            color = int(self.exc_val[k])
        return color

    def distance(self, source: int, target: int) -> float:
        if source == target:
            return 0.0
        total = 0.0
        current = source
        while current != target:
            nxt = self.next_hop(current, target)
            if nxt < 0:
                return INF
            total += self._edge_weight(current, nxt)
            current = nxt
        return total


class SharedLabels:
    """Hub-label distance serving over the shared flat label arrays.

    The mapped ``indptr``/``hubs``/``dists`` views *are* a valid
    :class:`~repro.core.labels.HubLabelIndex` (the segment layout is the
    in-process layout), so every query dispatches to the same kernels —
    zero copies, bit-identical answers.
    """

    name = "HL"

    def __init__(self, n: int, arrays: dict[str, np.ndarray]) -> None:
        from repro.core.labels import HubLabelIndex

        self.index = HubLabelIndex(
            n=n,
            indptr=arrays["indptr"],
            hubs=arrays["hubs"],
            dists=arrays["dists"],
        )

    def distance(self, source: int, target: int) -> float:
        from repro.core.labels import point_query

        return point_query(self.index, source, target)

    def distances(self, pairs) -> np.ndarray:
        from repro.core.labels import query_pairs

        pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        return query_pairs(self.index, pairs[:, 0], pairs[:, 1])

    def distance_table(self, sources, targets) -> np.ndarray:
        from repro.core.labels import label_table

        return label_table(self.index, sources, targets)


def build_techniques(segs: AttachedSegments) -> dict:
    """Instantiate the shared views for every published technique.

    Verifies the graph segment against the manifest fingerprint before
    answering anything through it; TNR requires CH in the same manifest
    (its fallback), which :func:`repro.serve.service.build_payloads`
    guarantees at publish time.
    """
    manifest = segs.manifest
    out: dict = {}
    graph_arrays = segs.arrays("dijkstra")
    csr = CSRGraph(**graph_arrays)
    fp = manifest.get("fingerprint", {})
    got = GraphFingerprint.of_csr(csr)
    if (got.n, got.m) != (fp.get("n"), fp.get("m")) or got.total_weight != fp.get(
        "total_weight"
    ):
        raise SegmentError(
            f"graph segment does not match the manifest fingerprint "
            f"({got} vs {fp})"
        )
    out["dijkstra"] = SharedDijkstra(csr)
    if "ch" in manifest["techniques"]:
        a = segs.arrays("ch")
        ucsr = DirectedCSR(a["indptr"], a["indices"], a["weights"])
        out["ch"] = SharedCH(int(segs.meta("ch")["n"]), ucsr)
    if "tnr" in manifest["techniques"]:
        if "ch" not in out:
            raise SegmentError("tnr segment published without its ch fallback")
        a = segs.arrays("tnr")
        out["tnr"] = SharedTNR(
            g=int(segs.meta("tnr")["g"]),
            cells=a["cells"],
            table=a["table"],
            va_indptr=a["va_indptr"],
            va_idx=a["va_idx"],
            va_dist=a["va_dist"],
            fallback=out["ch"],
        )
    if "silc" in manifest["techniques"]:
        out["silc"] = SharedSILC(csr, segs.arrays("silc"))
    if "labels" in manifest["techniques"]:
        out["labels"] = SharedLabels(
            int(segs.meta("labels")["n"]), segs.arrays("labels")
        )
    return out


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _attach_plane(plane_entry: dict | None) -> MetricsPlane | None:
    """Worker-side metrics-plane attach + registry mirror install.

    The plane is parent-created and parent-owned; the worker only maps
    it (``foreign=False``: same service) and mirrors its registry into
    it. A broken plane must never take the worker down — telemetry is
    strictly best-effort.
    """
    if plane_entry is None:
        return None
    try:
        plane = MetricsPlane.attach(plane_entry, foreign=False)
        plane.set_pid(os.getpid())
        obs.registry().set_mirror(PlaneMirror(plane))
        return plane
    except Exception:  # pragma: no cover - best-effort telemetry
        return None


def _detach_plane(plane: MetricsPlane | None) -> None:
    if plane is None:
        return
    try:
        obs.registry().set_mirror(None)
        plane.close()
    except Exception:  # pragma: no cover
        pass


def _worker_main(
    manifest: dict, conn, trace_base: str | None, plane_entry: dict | None = None
) -> None:
    """Worker loop: attach, build views, answer batches until ``stop``.

    Protocol (parent -> worker): ``("batch", id, technique, pairs)``,
    ``("epoch", manifest)`` (detach the old segments, attach the
    re-published ones, acknowledge with ``("epoch_ok", epoch)``) or
    ``("stop",)``. Worker -> parent: ``("ready", pid)`` once, then
    ``("ok", id, distances, wstart_us, wcommit_us, epoch)`` /
    ``("err", id, message)`` per batch. Only the pairs and the result
    row cross the pipe — never index arrays (the zero-copy contract the
    tests assert).
    """
    from repro.harness.experiments import batched_distances

    if trace_base or obs.trace_path() is not None:
        # Forked workers inherit the parent's open trace; re-route to a
        # pid-unique file instead of interleaving with (or closing) it.
        base = trace_base or obs.trace_path()
        obs.detach_trace()
        obs.start_trace(obs.unique_trace_path(base))
    # Fork also copies the parent's accumulated counters *and* its
    # registry mirror (which maps the scheduler's plane — resetting
    # through it would zero the parent's telemetry). Detach the
    # inherited mirror, then drop the counters: the worker's trace tail
    # and its own metrics plane must report only worker-side activity,
    # or the parent's build-time totals would be counted once per
    # worker when planes are merged.
    obs.registry().set_mirror(None)
    obs.reset()
    segs = None
    plane = _attach_plane(plane_entry)
    try:
        segs = attach_segments(manifest, foreign=False)
        techniques = build_techniques(segs)
        epoch = _manifest_epoch(manifest)
        conn.send(("ready", os.getpid()))
        while True:
            msg = conn.recv()
            if msg[0] == "stop":
                break
            if msg[0] == "epoch":
                # Atomic view flip: drop every reference into the old
                # mapping first (so the unmap actually releases it),
                # then attach the re-published segments. The parent
                # sends this only after the scheduler drained, so no
                # batch ever straddles the flip.
                manifest = msg[1]
                techniques = None
                segs.close()
                segs = attach_segments(manifest, foreign=False)
                techniques = build_techniques(segs)
                epoch = _manifest_epoch(manifest)
                conn.send(("epoch_ok", epoch))
                continue
            _, batch_id, technique, pairs = msg
            t_start = _now_us()
            try:
                with obs.span("serve.worker_batch"):
                    out = batched_distances(
                        techniques[technique], pairs, batch_size=max(len(pairs), 1)
                    )
                conn.send(("ok", batch_id, out, t_start, _now_us(), epoch))
            except Exception as exc:  # surface, don't die
                conn.send(("err", batch_id, f"{type(exc).__name__}: {exc}"))
            if plane is not None:
                plane.note_batch()
    except (EOFError, OSError, KeyboardInterrupt):  # parent went away
        pass
    finally:
        if obs.trace_path() is not None:
            obs.stop_trace()
        _detach_plane(plane)
        if segs is not None:
            segs.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


def _ring_worker_main(
    manifest: dict, conn, trace_base: str | None, plane_entry: dict | None = None
) -> None:
    """Ring-transport worker loop: read descriptors, write the arena.

    Protocol: the parent sends one 8-byte slot index per published slot
    (``_STOP`` to shut down); the worker answers with the same 8 bytes
    once the slot is committed. Everything else — request pairs, result
    distances, error text — lives in the shared ring segment and never
    crosses the pipe.

    Commit discipline (the SIGKILL contract): the result stores land in
    the arena *before* ``SLOT_COMMIT`` is set to ``SLOT_SEQ``, so the
    parent can trust any committed slot's results even if this process
    is killed before (or while) sending the wakeup byte.
    """
    from repro.harness.experiments import batched_distances

    if trace_base or obs.trace_path() is not None:
        base = trace_base or obs.trace_path()
        obs.detach_trace()
        obs.start_trace(obs.unique_trace_path(base))
    # Inherited mirror + counters: see _worker_main for why both go.
    obs.registry().set_mirror(None)
    obs.reset()
    segs = ring = None
    plane = _attach_plane(plane_entry)
    try:
        segs = attach_segments(manifest, foreign=False)
        ring = AttachedRing(manifest["transport"], foreign=False)
        techniques = build_techniques(segs)
        epoch = _manifest_epoch(manifest)
        #: Technique ids are indexes into the sorted manifest names —
        #: the same order the parent's RingPool uses.
        by_id = [techniques.get(name) for name in sorted(manifest["techniques"])]
        rbuf, pair_arena = ring.ring, ring.pairs
        results, errors = ring.results, ring.errors
        conn.send_bytes(_TOKEN.pack(_READY))
        while True:
            slot = _TOKEN.unpack(conn.recv_bytes())[0]
            if slot == _STOP:
                break
            if slot == _EPOCH:
                # The re-published manifest follows the token on the
                # same pipe (length-framed, so the byte protocols mix
                # safely). The ring itself survives the flip — only the
                # index segments swap underneath it.
                manifest = conn.recv()
                techniques = by_id = None
                segs.close()
                segs = attach_segments(manifest, foreign=False)
                techniques = build_techniques(segs)
                by_id = [
                    techniques.get(name)
                    for name in sorted(manifest["techniques"])
                ]
                epoch = _manifest_epoch(manifest)
                conn.send_bytes(_TOKEN.pack(_EPOCH))
                continue
            rbuf[slot, SLOT_T_WSTART] = _now_us()
            off = int(rbuf[slot, SLOT_OFF])
            n = int(rbuf[slot, SLOT_NPAIRS])
            try:
                tech = by_id[int(rbuf[slot, SLOT_TECH])]
                with obs.span("serve.worker_batch"):
                    out = batched_distances(
                        tech, pair_arena[off : off + n], batch_size=max(n, 1)
                    )
                results[off : off + n] = out
                rbuf[slot, SLOT_STATUS] = STATUS_OK
            except Exception as exc:  # surface, don't die
                text = f"{type(exc).__name__}: {exc}".encode()[:ERR_BYTES]
                errors[slot] = 0
                errors[slot, : len(text)] = np.frombuffer(text, dtype=np.uint8)
                rbuf[slot, SLOT_STATUS] = STATUS_ERR
            rbuf[slot, SLOT_EPOCH] = epoch
            rbuf[slot, SLOT_T_WCOMMIT] = _now_us()
            rbuf[slot, SLOT_COMMIT] = rbuf[slot, SLOT_SEQ]
            if plane is not None:
                plane.note_batch()
            conn.send_bytes(_TOKEN.pack(slot))
    except (EOFError, OSError, KeyboardInterrupt):  # parent went away
        pass
    finally:
        if obs.trace_path() is not None:
            obs.stop_trace()
        _detach_plane(plane)
        if ring is not None:
            ring.close()
        if segs is not None:
            segs.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


# ----------------------------------------------------------------------
# The pools
# ----------------------------------------------------------------------
class _Worker:
    __slots__ = ("process", "conn", "inflight", "ready", "plane")

    def __init__(self, process, conn, plane=None) -> None:
        self.process = process
        self.conn = conn
        self.inflight: dict[int, tuple[str, Sequence]] = {}
        self.ready = False
        #: This worker slot's MetricsPlane (parent-owned; the worker
        #: mirrors its registry into it). Survives restarts: the pool
        #: harvests + resets it and hands it to the replacement.
        self.plane = plane


class WorkerPool:
    """N persistent workers answering batches over pipes.

    Events from :meth:`poll`:

    - ``("done", batch_id, distances, stamps)`` — a batch completed;
      ``stamps`` maps stage names (``enq``/``form``/``pub``/``wstart``/
      ``wcommit``) to CLOCK_MONOTONIC microseconds for the latency
      breakdown (zero where unknown);
    - ``("error", batch_id, message)`` — the batch raised in the worker
      (bad technique name, out-of-range vertex — the worker survives);
    - ``("died", batch_ids)`` — a worker died (crash or kill) with
      those batches in flight; the pool has already restarted it and
      incremented ``serve.worker_restarts``. Requeueing is the
      scheduler's call.
    """

    #: Worker entry point; RingPool overrides with the ring loop.
    _worker_target = staticmethod(_worker_main)

    #: The transport's name in status()/bench reports.
    transport = "pipe"

    def __init__(self, manifest: dict, n_workers: int = 2) -> None:
        if n_workers < 1:
            raise ValueError(f"need at least one worker, got {n_workers}")
        self.manifest = manifest
        self.n_workers = n_workers
        self._ctx = serve_context()
        self._workers: list[_Worker] = []
        self.restarts = 0
        self.batches_done = 0
        self._trace_base = obs.trace_path()
        #: Batch ids lost by a worker reaped outside poll() (e.g. a
        #: broken pipe discovered during submit); surfaced as one
        #: ``died`` event at the next poll so no future ever hangs.
        self._orphaned: list[int] = []
        #: Metrics harvested from dead workers' planes (merged in at
        #: reap time, folded into the service's aggregate snapshot).
        self.retired = MetricsRegistry()
        #: Per-stage timestamp records for pipe-transport batches,
        #: keyed by batch id (the ring transport carries these in the
        #: slot descriptor words instead).
        self._meta: dict[int, dict] = {}
        #: One fixed-name metrics plane per worker *slot* (not per
        #: process): registered in the manifest before any fork so a
        #: foreign `service stats` dashboard can attach them, and kept
        #: across restarts so the names stay stable.
        token = manifest.get("service") or secrets.token_hex(4)
        self._planes = [
            MetricsPlane(f"rsv-{token}-mw{i}") for i in range(n_workers)
        ]
        manifest.setdefault("metrics", {})["workers"] = [
            p.entry for p in self._planes
        ]

    # ------------------------------------------------------------------
    def start(self) -> "WorkerPool":
        for i in range(self.n_workers):
            self._workers.append(self._spawn(self._planes[i]))
        return self

    def _spawn(self, plane: MetricsPlane | None = None) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=self._worker_target,
            args=(
                self.manifest,
                child_conn,
                self._trace_base,
                plane.entry if plane is not None else None,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _Worker(process, parent_conn, plane)

    @property
    def worker_pids(self) -> list[int]:
        return [w.process.pid for w in self._workers]

    @property
    def inflight(self) -> int:
        return sum(len(w.inflight) for w in self._workers)

    def worker_status(self) -> list[dict]:
        """Per-worker liveness/progress rows (``service status`` section).

        ``batches`` and ``last_commit_age_s`` come from the worker's
        metrics-plane header (written by the worker itself, read here
        without any pipe traffic); ``pid`` prefers the plane's own
        claim, falling back to the process handle during startup.
        """
        now_us = _now_us()
        rows: list[dict] = []
        for i, w in enumerate(self._workers):
            row = {
                "worker": i,
                "pid": w.process.pid,
                "alive": w.process.is_alive(),
                "ready": w.ready,
                "inflight": len(w.inflight),
                "batches": 0,
                "last_commit_age_s": None,
            }
            if w.plane is not None:
                h = w.plane.header()
                if h["pid"]:
                    row["pid"] = h["pid"]
                row["batches"] = h["batches"]
                if h["last_batch_us"]:
                    row["last_commit_age_s"] = round(
                        max(now_us - h["last_batch_us"], 0) / 1e6, 3
                    )
            rows.append(row)
        return rows

    def worker_snapshots(self) -> list[dict]:
        """Live workers' plane snapshots (see :meth:`MetricsPlane.snapshot`)."""
        return [
            w.plane.snapshot() for w in self._workers if w.plane is not None
        ]

    # ------------------------------------------------------------------
    def flip_epoch(self) -> int:
        """Barrier: every worker reattaches the (re-published) manifest.

        Call only with zero batches in flight (the scheduler drains
        first): each worker flips its zero-copy views to the manifest's
        current segments and acknowledges; a worker that dies mid-flip
        is reaped as usual — its replacement forks with the already-new
        manifest, so it *is* on the new epoch. Returns the epoch now
        being served.
        """
        pending: list[_Worker] = []
        for w in list(self._workers):
            try:
                self._send_epoch(w)
                pending.append(w)
            except (BrokenPipeError, OSError):
                self._reap(w)
        for w in pending:
            if w not in self._workers:  # reaped while flipping others
                continue
            try:
                self._ack_epoch(w)
            except (EOFError, OSError):
                self._reap(w)
        return _manifest_epoch(self.manifest)

    def _send_epoch(self, w: _Worker) -> None:
        w.conn.send(("epoch", self.manifest))

    def _ack_epoch(self, w: _Worker) -> None:
        while True:
            if not w.conn.poll(10):
                raise RuntimeError(
                    f"worker pid {w.process.pid} did not acknowledge the "
                    f"epoch flip"
                )
            msg = w.conn.recv()
            if msg[0] == "epoch_ok":
                return
            if msg[0] == "ready":  # a fresh respawn racing the flip
                w.ready = True

    def submit(
        self,
        batch_id: int,
        technique: str,
        pairs: Sequence,
        meta: dict | None = None,
    ) -> None:
        """Send a batch to the least-loaded live worker.

        ``meta`` optionally carries the scheduler's telemetry stamps
        (``request_id``/``t_enq_us``/``t_form_us``); the transport adds
        its own publish/worker stamps and hands the full set back on
        the ``done`` event.

        A worker whose pipe is already broken is reaped (and restarted)
        on the spot and the next candidate tried; with every worker
        freshly dead the batch lands on a restarted one.
        """
        last_exc: BaseException | None = None
        for w in sorted(self._workers, key=lambda w: len(w.inflight)):
            try:
                w.conn.send(("batch", batch_id, technique, pairs))
            except (BrokenPipeError, OSError) as exc:
                last_exc = exc
                self._reap(w)  # events for its in-flight batches surface in poll
                continue
            w.inflight[batch_id] = (technique, pairs)
            self._meta[batch_id] = {
                "enq": int(meta.get("t_enq_us") or 0) if meta else 0,
                "form": int(meta.get("t_form_us") or 0) if meta else 0,
                "pub": _now_us(),
            }
            return
        raise RuntimeError("no live worker accepted the batch") from last_exc

    def poll(self, timeout: float = 0.0) -> list[tuple]:
        """Collect completion/death events (waits up to ``timeout`` s)."""
        events: list[tuple] = []
        self._reclaim()
        if self._orphaned:
            events.append(("died", self._orphaned))
            self._orphaned = []
        while True:
            conns = [w.conn for w in self._workers]
            ready = _conn_wait(conns, timeout)
            if not ready:
                # A SIGKILLed worker's pipe usually reports EOF, but
                # belt-and-braces: reap anything no longer alive.
                for w in list(self._workers):
                    if not w.process.is_alive():
                        events.extend(self._reap_events(w))
                return events
            timeout = 0.0  # only block on the first wait
            for conn in ready:
                w = next(x for x in self._workers if x.conn is conn)
                try:
                    self._on_message(w, events)
                except (EOFError, OSError):
                    events.extend(self._reap_events(w))

    def _reclaim(self) -> None:
        """Transport hook run at poll start (slot recycling for rings)."""

    def _on_message(self, w: _Worker, events: list[tuple]) -> None:
        """Consume one pipe message from ``w`` into ``events``."""
        msg = w.conn.recv()
        if msg[0] == "ready":
            w.ready = True
        elif msg[0] == "ok":
            _, batch_id, distances, wstart, wcommit, epoch = msg
            w.inflight.pop(batch_id, None)
            self.batches_done += 1
            if obs.ENABLED:
                nbytes = getattr(distances, "nbytes", 8 * len(distances))
                obs.registry().counter("serve.reply_bytes").inc(int(nbytes))
            stamps = self._meta.pop(batch_id, None) or {}
            stamps["wstart"] = int(wstart)
            stamps["wcommit"] = int(wcommit)
            stamps["epoch"] = int(epoch)
            events.append(("done", batch_id, distances, stamps))
        elif msg[0] == "err":
            _, batch_id, message = msg
            w.inflight.pop(batch_id, None)
            self._meta.pop(batch_id, None)
            events.append(("error", batch_id, message))

    def _reap_events(self, w: _Worker) -> list[tuple]:
        lost = list(w.inflight)
        w.inflight.clear()
        self._reap(w)
        return [("died", lost)] if lost else []

    def _reap(self, w: _Worker) -> None:
        """Replace a dead worker with a fresh one (counted).

        Anything still in the worker's in-flight map (a reap outside
        poll's event path) is queued as orphaned so the next poll
        reports it ``died`` instead of leaving its futures pending.

        The dead worker's metrics plane is harvested into
        :attr:`retired` *after* the join (the plane is quiescent, so
        the read is exact) and reset before the replacement inherits
        the same fixed-name segment — counters never double-count and
        never silently vanish across a restart.
        """
        self._orphaned.extend(w.inflight)
        for batch_id in w.inflight:
            self._meta.pop(batch_id, None)
        w.inflight.clear()
        try:
            w.conn.close()
        except OSError:  # pragma: no cover
            pass
        if w.process.is_alive():  # broken pipe but still running: kill
            w.process.terminate()
        w.process.join(timeout=5)
        if w.plane is not None:
            try:
                self.retired.merge_snapshot(w.plane.snapshot())
            except ValueError:  # pragma: no cover - torn mid-death write
                pass
            w.plane.reset()
        self._workers.remove(w)
        self._workers.append(self._spawn(w.plane))
        self.restarts += 1
        if obs.ENABLED:
            obs.registry().counter("serve.worker_restarts").inc()

    # ------------------------------------------------------------------
    def _send_stop(self, w: _Worker) -> None:
        w.conn.send(("stop",))

    def stop(self) -> None:
        """Graceful shutdown: stop message, join, then force-kill."""
        for w in self._workers:
            try:
                self._send_stop(w)
            except (BrokenPipeError, OSError):
                pass
        for w in self._workers:
            w.process.join(timeout=5)
            if w.process.is_alive():  # pragma: no cover - stuck worker
                w.process.kill()
                w.process.join(timeout=5)
            try:
                w.conn.close()
            except OSError:  # pragma: no cover
                pass
        self._workers.clear()
        planes, self._planes = self._planes, []
        for p in planes:
            try:
                p.close()
            except Exception:  # pragma: no cover
                pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


# ----------------------------------------------------------------------
# The ring-transport pool
# ----------------------------------------------------------------------
class _RingBatch:
    """Parent-side record of one batch spread over ring slots."""

    __slots__ = ("batch_id", "slots", "remaining")

    def __init__(self, batch_id: int, slots: list[int]) -> None:
        self.batch_id = batch_id
        self.slots = slots
        self.remaining = set(slots)


class RingPool(WorkerPool):
    """Zero-copy transport: shared request ring + result arena.

    Same event surface as :class:`WorkerPool` (``done`` / ``error`` /
    ``died``), different wire: :meth:`submit` writes the batch's pairs
    into the shared int32 arena, fills a fixed-width slot descriptor
    and sends the worker one 8-byte slot index; the worker writes
    distances straight into the shared float64 result arena and sends
    the index back. ``done`` events carry numpy *views* into that
    arena — no pickling, no copy — valid until the next :meth:`poll`
    (the scheduler scatters them into futures immediately, so freed
    slots are recycled one poll later, never under a live view).

    Backpressure is explicit: a batch that cannot get slots raises
    :class:`RingFull` and the scheduler holds it, feeding the existing
    ``Overloaded`` shed path once its queue bound is hit.

    SIGKILL recovery runs on the slot sequence/commit words: a dead
    worker's fully-committed batches are harvested from the arena as
    normal completions (the results provably landed before death);
    any batch with an uncommitted slot is reported ``died`` for the
    scheduler's retry-once policy.

    Batches larger than one slot (the scheduler's oversized-request
    case) span several contiguous-per-slot spans on the same worker;
    their ``done`` event concatenates the spans in order, so answers
    stay bit-identical to the pipe transport.
    """

    _worker_target = staticmethod(_ring_worker_main)
    transport = "ring"

    def __init__(
        self,
        manifest: dict,
        n_workers: int = 2,
        *,
        ring_slots: int = 64,
        slot_pairs: int = 256,
    ) -> None:
        super().__init__(manifest, n_workers)
        #: The pool owns the ring segment (publisher-unlink semantics);
        #: the manifest gains the transport entry *before* any worker
        #: forks, so attachers find it.
        self.ring = RingBuffers(
            ring_slots, slot_pairs, token=manifest.get("service")
        )
        manifest["transport"] = self.ring.manifest_entry
        self._tech_id = {
            name: i for i, name in enumerate(sorted(manifest["techniques"]))
        }
        self._free: list[int] = list(range(ring_slots - 1, -1, -1))
        self._pending_free: list[int] = []
        self._batches: dict[int, _RingBatch] = {}

    # ------------------------------------------------------------------
    @property
    def free_slots(self) -> int:
        return len(self._free)

    def _reclaim(self) -> None:
        """Recycle slots whose ``done`` views the scheduler has consumed.

        Completed slots park in ``_pending_free`` until the *next* poll:
        by then the scheduler has scattered every previously returned
        arena view, so recycling cannot overwrite a result that has not
        been read (the zero-copy hand-back invariant).
        """
        if self._pending_free:
            self._free.extend(self._pending_free)
            self._pending_free.clear()

    def submit(
        self,
        batch_id: int,
        technique: str,
        pairs: Sequence,
        meta: dict | None = None,
    ) -> None:
        """Publish a batch into ring slots on the least-loaded worker.

        Raises :class:`RingFull` when the ring cannot hold the batch
        right now; raises ``ValueError`` for a batch that could *never*
        fit (more pairs than the whole ring holds).
        """
        tech_id = self._tech_id.get(technique)
        if tech_id is None:
            raise ValueError(f"technique {technique!r} is not published")
        arr = np.asarray(pairs, dtype=np.int32).reshape(-1, 2)
        sp = self.ring.slot_pairs
        needed = max(1, math.ceil(len(arr) / sp))
        if needed > self.ring.n_slots:
            raise ValueError(
                f"batch of {len(arr)} pairs exceeds the ring capacity "
                f"({self.ring.n_slots} slots x {sp} pairs)"
            )
        if len(self._free) < needed:
            raise RingFull(
                f"ring full: {needed} slot(s) needed, {len(self._free)} free"
            )
        last_exc: BaseException | None = None
        for _ in range(self.n_workers + 1):
            w = min(self._workers, key=lambda w: len(w.inflight))
            slots = [self._free.pop() for _ in range(needed)]
            rec = _RingBatch(batch_id, slots)
            self._batches[batch_id] = rec
            w.inflight[batch_id] = slots
            try:
                for k, slot in enumerate(slots):
                    self._publish(w, slot, batch_id, tech_id, arr, k * sp, meta)
                return
            except (BrokenPipeError, OSError) as exc:
                # Nothing committed on a worker that never read a byte:
                # roll the batch back and try the next (restarted) pool.
                last_exc = exc
                del self._batches[batch_id]
                w.inflight.pop(batch_id, None)
                self._free.extend(slots)
                self._reap(w)
        raise RuntimeError("no live worker accepted the batch") from last_exc

    def _reap(self, w: _Worker) -> None:
        # Free the slots (and drop the records) of batches the base
        # class is about to orphan, so their retries get fresh slots.
        for batch_id in w.inflight:
            rec = self._batches.pop(batch_id, None)
            if rec is not None:
                self._pending_free.extend(rec.slots)
        super()._reap(w)

    def _publish(
        self, w: _Worker, slot: int, batch_id: int, tech_id: int,
        arr: np.ndarray, start: int, meta: dict | None = None,
    ) -> None:
        sp = self.ring.slot_pairs
        span = arr[start : start + sp]
        base = slot * sp
        self.ring.pairs[base : base + len(span)] = span
        ring = self.ring.ring
        ring[slot, SLOT_BATCH] = batch_id
        ring[slot, SLOT_TECH] = tech_id
        ring[slot, SLOT_OFF] = base
        ring[slot, SLOT_NPAIRS] = len(span)
        ring[slot, SLOT_STATUS] = STATUS_OK
        ring[slot, SLOT_REQ] = int(meta.get("request_id") or 0) if meta else 0
        ring[slot, SLOT_T_ENQ] = int(meta.get("t_enq_us") or 0) if meta else 0
        ring[slot, SLOT_T_FORM] = int(meta.get("t_form_us") or 0) if meta else 0
        ring[slot, SLOT_T_WSTART] = 0
        ring[slot, SLOT_T_WCOMMIT] = 0
        ring[slot, SLOT_T_PUB] = _now_us()
        # The sequence bump is the publish: everything above must be in
        # place before it, and the wakeup byte (a syscall, hence a
        # barrier) follows it.
        ring[slot, SLOT_SEQ] += 1
        w.conn.send_bytes(_TOKEN.pack(slot))

    # ------------------------------------------------------------------
    def _on_message(self, w: _Worker, events: list[tuple]) -> None:
        slot = _TOKEN.unpack(w.conn.recv_bytes())[0]
        if slot == _READY:
            w.ready = True
            return
        if obs.ENABLED:
            obs.registry().counter("serve.reply_bytes").inc(_TOKEN.size)
        batch_id = int(self.ring.ring[slot, SLOT_BATCH])
        rec = self._batches.get(batch_id)
        if rec is None:  # pragma: no cover - stale wakeup after a reap
            self._pending_free.append(slot)
            return
        rec.remaining.discard(slot)
        if not rec.remaining:
            w.inflight.pop(batch_id, None)
            events.append(self._finish(rec))

    def _finish(self, rec: _RingBatch) -> tuple:
        """Turn a fully-committed batch record into its pool event."""
        del self._batches[rec.batch_id]
        self._pending_free.extend(rec.slots)
        ring = self.ring.ring
        for slot in rec.slots:
            if int(ring[slot, SLOT_STATUS]) == STATUS_ERR:
                raw = self.ring.errors[slot].tobytes()
                message = raw.split(b"\0", 1)[0].decode("utf-8", "replace")
                return ("error", rec.batch_id, message)
        self.batches_done += 1
        if len(rec.slots) == 1:
            slot = rec.slots[0]
            off = int(ring[slot, SLOT_OFF])
            n = int(ring[slot, SLOT_NPAIRS])
            distances = self.ring.results[off : off + n]
        else:
            distances = np.concatenate([
                self.ring.results[
                    int(ring[s, SLOT_OFF]) : int(ring[s, SLOT_OFF])
                    + int(ring[s, SLOT_NPAIRS])
                ]
                for s in rec.slots
            ])
        first = rec.slots[0]
        wstarts = [int(ring[s, SLOT_T_WSTART]) for s in rec.slots]
        stamps = {
            "enq": int(ring[first, SLOT_T_ENQ]),
            "form": int(ring[first, SLOT_T_FORM]),
            "pub": int(ring[first, SLOT_T_PUB]),
            "wstart": min((t for t in wstarts if t), default=0),
            "wcommit": max(
                (int(ring[s, SLOT_T_WCOMMIT]) for s in rec.slots), default=0
            ),
            # All of a batch's slots run on one worker between two
            # drains, so every slot carries the same epoch word.
            "epoch": int(ring[first, SLOT_EPOCH]),
        }
        return ("done", rec.batch_id, distances, stamps)

    def _reap_events(self, w: _Worker) -> list[tuple]:
        """Classify a dead worker's slots by their commit words."""
        events: list[tuple] = []
        lost: list[int] = []
        ring = self.ring.ring
        for batch_id, slots in list(w.inflight.items()):
            rec = self._batches.get(batch_id)
            if rec is None:  # pragma: no cover - already resolved
                continue
            if all(ring[s, SLOT_COMMIT] == ring[s, SLOT_SEQ] for s in slots):
                events.append(self._finish(rec))
                if events[-1][0] == "done" and obs.ENABLED:
                    obs.registry().counter("serve.harvested").inc()
            else:
                # Uncommitted somewhere: drop the whole batch for the
                # scheduler's retry (a dead worker never writes again,
                # so its slots recycle safely).
                del self._batches[batch_id]
                self._pending_free.extend(rec.slots)
                lost.append(batch_id)
        w.inflight.clear()
        self._reap(w)
        if lost:
            events.append(("died", lost))
        return events

    # ------------------------------------------------------------------
    def _send_epoch(self, w: _Worker) -> None:
        # The token warns the worker that the next frame is a pickled
        # manifest, not another slot index (framing keeps them apart).
        w.conn.send_bytes(_TOKEN.pack(_EPOCH))
        w.conn.send(self.manifest)

    def _ack_epoch(self, w: _Worker) -> None:
        while True:
            if not w.conn.poll(10):
                raise RuntimeError(
                    f"worker pid {w.process.pid} did not acknowledge the "
                    f"epoch flip"
                )
            token = _TOKEN.unpack(w.conn.recv_bytes())[0]
            if token == _EPOCH:
                return
            if token == _READY:
                w.ready = True
            elif token >= 0:  # pragma: no cover - stale slot post-drain
                self._pending_free.append(token)

    def _send_stop(self, w: _Worker) -> None:
        w.conn.send_bytes(_TOKEN.pack(_STOP))

    def stop(self) -> None:
        """Stop the workers, then unlink the ring segment."""
        try:
            super().stop()
        finally:
            self.ring.close()
