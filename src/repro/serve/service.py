"""The query service: publish segments, run the pool, serve requests.

:class:`QueryService` is the one-stop assembly of the serving
subsystem: it packs the registry's built indexes into shared-memory
segments (:mod:`repro.serve.segments`), starts a
:class:`~repro.serve.pool.WorkerPool` over them and fronts it with a
:class:`~repro.serve.scheduler.BatchingScheduler`. The
``repro-harness service {start,bench,status}`` CLI and
``scripts/serve_bench.py`` are thin drivers over this class.

Lifecycle::

    with QueryService(ServiceConfig(dataset="DE", workers=2)) as svc:
        fut = svc.submit("ch", [(0, 17), (3, 99)])
        svc.drain()
        fut.result()  # [d(0,17), d(3,99)]

Shutdown order matters: workers stop first (they unmap), then the
publisher unlinks the segments. A crashed worker changes nothing — the
publisher's mappings survive child death, so ``close()`` still frees
every segment.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from typing import Sequence

from repro import obs
from repro.harness.registry import Registry
from repro.obs.registry import MetricsRegistry, to_prometheus
from repro.obs.shm import MetricsPlane, PlaneMirror
from repro.persistence import GraphFingerprint
from repro.serve.pool import RingPool, WorkerPool
from repro.serve.scheduler import BatchingScheduler, QueryFuture
from repro.serve.segments import (
    SegmentSet,
    pack_ch,
    pack_graph,
    pack_labels,
    pack_silc,
    pack_tnr,
)

#: Techniques the service understands. ``pcpd`` is known but has no
#: segment packer (its per-vertex shortest-path trees are a path/distance
#: oracle too large to serve); requests for it degrade gracefully to the
#: scheduler's fallback, which exercises the degradation path end to end.
KNOWN_TECHNIQUES = ("dijkstra", "ch", "tnr", "silc", "pcpd", "labels")

#: Techniques that can actually be published into segments.
PUBLISHABLE = ("dijkstra", "ch", "tnr", "silc", "labels")

#: Request/reply transports: shared-memory ring buffers (the default,
#: zero-copy) and the original pickled pipe path (kept as the
#: differential control; see docs/SERVING.md).
TRANSPORTS = ("ring", "pipe")

#: Environment knob consulted when ``ServiceConfig.transport`` is None.
TRANSPORT_ENV = "REPRO_SERVE_TRANSPORT"


def resolve_transport(value: str | None = None) -> str:
    """The effective transport: explicit value > env knob > ``ring``."""
    got = value or os.environ.get(TRANSPORT_ENV) or "ring"
    got = got.lower()
    if got not in TRANSPORTS:
        raise ValueError(
            f"unknown serve transport {got!r} (choose from {list(TRANSPORTS)})"
        )
    return got


@dataclass
class ServiceConfig:
    """Everything a :class:`QueryService` needs to come up."""

    dataset: str = "DE"
    tier: str = "small"
    workers: int = 2
    techniques: tuple[str, ...] = ("ch",)
    max_batch: int = 256
    #: Per-technique batch caps; None = scheduler defaults
    #: (:data:`repro.serve.scheduler.TECHNIQUE_BATCH_CAPS`).
    max_batch_overrides: dict | None = None
    batch_window_s: float = 0.002
    max_queue: int = 1024
    #: ``"ring"`` / ``"pipe"``; None resolves via $REPRO_SERVE_TRANSPORT.
    transport: str | None = None
    #: Ring transport sizing: request slots in the shared ring (each
    #: slot carries up to ``max_batch`` pairs).
    ring_slots: int = 64
    cache: str = "auto"
    extra: dict = field(default_factory=dict)


def build_payloads(
    registry: Registry, dataset: str, techniques: Sequence[str]
) -> dict:
    """Pack the requested techniques' indexes for publication.

    ``dijkstra`` (the graph itself) is always included — it is the
    degradation target and SILC's edge-weight source; requesting
    ``tnr`` pulls in ``ch`` as its fallback. Unknown names raise,
    unpublishable ones (``pcpd``) are skipped — the scheduler will
    degrade requests for them instead.
    """
    want = {t.lower() for t in techniques}
    unknown = want - set(KNOWN_TECHNIQUES)
    if unknown:
        raise ValueError(
            f"unknown technique(s) {sorted(unknown)} "
            f"(known: {list(KNOWN_TECHNIQUES)})"
        )
    want &= set(PUBLISHABLE)
    want.add("dijkstra")
    if "tnr" in want:
        want.add("ch")
    graph = registry.graph(dataset)
    csr = graph.csr()
    payloads: dict = {"dijkstra": pack_graph(csr)}
    if "ch" in want:
        payloads["ch"] = pack_ch(registry.ch(dataset))
    if "tnr" in want:
        payloads["tnr"] = pack_tnr(registry.tnr(dataset))
    if "silc" in want:
        payloads["silc"] = pack_silc(registry.silc(dataset).index)
    if "labels" in want:
        payloads["labels"] = pack_labels(registry.hub_labels_index(dataset))
    return payloads


class QueryService:
    """Segments + pool + scheduler, assembled and torn down together."""

    def __init__(
        self, config: ServiceConfig, registry: Registry | None = None
    ) -> None:
        self.config = config
        self.registry = registry or Registry(
            tier=config.tier, cache=config.cache, verbose=False
        )
        with obs.span("serve.publish"):
            payloads = build_payloads(
                self.registry, config.dataset, config.techniques
            )
            csr = self.registry.graph(config.dataset).csr()
            self.segments = SegmentSet(
                payloads,
                fingerprint=GraphFingerprint.of_csr(csr),
                dataset=config.dataset,
                tier=config.tier,
            )
        try:
            self.transport = resolve_transport(config.transport)
            with obs.span("serve.pool_start"):
                if self.transport == "ring":
                    self.pool: WorkerPool = RingPool(
                        self.segments.manifest,
                        n_workers=config.workers,
                        ring_slots=config.ring_slots,
                        slot_pairs=config.max_batch,
                    ).start()
                else:
                    self.pool = WorkerPool(
                        self.segments.manifest, n_workers=config.workers
                    ).start()
            self.scheduler = BatchingScheduler(
                self.pool,
                published=self.segments.techniques,
                known=KNOWN_TECHNIQUES,
                max_batch=config.max_batch,
                max_batch_overrides=config.max_batch_overrides,
                batch_window_s=config.batch_window_s,
                max_queue=config.max_queue,
            )
            # Scheduler-side metrics plane: mirrors *this* process's
            # registry (serve.e2e_us, shed counters, ...) into shared
            # memory so a foreign `service stats --watch` dashboard sees
            # the scheduler's half of the story too. Registered in the
            # manifest next to the worker planes.
            token = self.manifest.get("service") or f"{os.getpid():x}"
            self._plane = MetricsPlane(f"rsv-{token}-mwsched")
            self._plane.set_pid(os.getpid())
            self.manifest.setdefault("metrics", {})["scheduler"] = (
                self._plane.entry
            )
            self._mirror = PlaneMirror(self._plane)
            obs.registry().set_mirror(self._mirror)
        except BaseException:
            pool = getattr(self, "pool", None)
            if pool is not None:
                try:
                    pool.stop()
                except Exception:
                    pass
            plane = getattr(self, "_plane", None)
            if plane is not None:
                plane.close()
            self.segments.close()
            raise
        self._prev_usr1 = None
        self._closed = False
        self._dyn = None

    # ------------------------------------------------------------------
    @property
    def manifest(self) -> dict:
        return self.segments.manifest

    @property
    def published(self) -> list[str]:
        return self.segments.techniques

    @property
    def epoch(self) -> int:
        """The weight epoch currently being served."""
        return self.scheduler.epoch

    def _dynamic_state(self):
        """Build (once) the repairable index state behind this service.

        Constructed lazily on the first :meth:`apply_updates` — a
        static service never pays for the CCH scaffold. The witness CH
        and TNR grid side come from the same registry builds the
        publisher packed, so epoch 0's repaired indexes answer
        identically to what is already in the segments.
        """
        if self._dyn is None:
            from repro.dynamic import DynamicState

            dataset = self.config.dataset
            graph = self.registry.graph(dataset)
            tnr_g = None
            if "tnr" in self.published:
                tnr_g = int(self.manifest["techniques"]["tnr"]["meta"]["g"])
            self._dyn = DynamicState(
                graph,
                self.registry.ch(dataset),
                with_labels="labels" in self.published,
                tnr_grid=tnr_g,
            )
        return self._dyn

    def apply_updates(self, edges, new_weights):
        """Advance the served graph one weight epoch without stopping.

        The swap protocol (docs/SERVING.md):

        1. **Repair** every published index incrementally
           (:meth:`repro.dynamic.DynamicState.apply_updates`) while the
           old epoch keeps serving.
        2. **Drain** the scheduler — batches in flight complete on the
           epoch they were admitted under; nothing straddles the flip.
        3. **Republish**: the new epoch's segments come up side by side
           with the old ones, and the manifest flips to them in place.
        4. **Barrier**: every worker drops its old-epoch views,
           reattaches, and acks; replies are stamped with the epoch
           they were answered under (the scheduler fails any mismatch).
        5. **Unlink** the old epoch's segments — no mapping references
           them once the barrier has passed.

        Returns the :class:`~repro.dynamic.RepairReport`. Raises
        ``ValueError`` if a published technique has no repair path
        (``silc``'s interval tree is rebuild-only).
        """
        from types import SimpleNamespace

        from repro.dynamic import REPAIRABLE
        from repro.serve.segments import release_segments

        unsupported = set(self.published) - set(REPAIRABLE)
        if unsupported:
            raise ValueError(
                f"technique(s) {sorted(unsupported)} cannot be repaired "
                f"incrementally (repairable: {list(REPAIRABLE)})"
            )
        st = self._dynamic_state()
        with obs.span("serve.repair"):
            report = st.apply_updates(edges, new_weights)
        t_swap = time.perf_counter()
        self.scheduler.drain()
        payloads: dict = {"dijkstra": pack_graph(st.csr)}
        if "ch" in self.published:
            payloads["ch"] = pack_ch(st.ch)
        if "tnr" in self.published:
            payloads["tnr"] = pack_tnr(SimpleNamespace(index=st.tnr))
        if "labels" in self.published:
            payloads["labels"] = pack_labels(st.labels)
        old = self.segments.republish(
            payloads, fingerprint=st.current.fingerprint
        )
        self.pool.flip_epoch()
        release_segments(old)
        self.scheduler.epoch = st.epoch
        swap_us = (time.perf_counter() - t_swap) * 1e6
        if obs.ENABLED:
            reg = obs.registry()
            reg.gauge("serve.epoch").set(st.epoch)
            reg.histogram("serve.swap_us").observe(swap_us)
        return report

    def submit(self, technique, pairs, deadline_s=None) -> QueryFuture:
        return self.scheduler.submit(technique, pairs, deadline_s=deadline_s)

    def pump(self, block_s: float = 0.0) -> int:
        return self.scheduler.pump(block_s)

    def drain(self, timeout_s: float = 60.0) -> None:
        self.scheduler.drain(timeout_s)

    def status(self) -> dict:
        """A JSON-able snapshot for ``service status`` and tests.

        ``workers`` is the per-worker telemetry section sourced from the
        shm metrics planes (pid as claimed by the worker itself, batches
        served, seconds since its last commit); ``n_workers`` is the
        configured pool size. The schema is documented in
        docs/SERVING.md.
        """
        return {
            "dataset": self.config.dataset,
            "tier": self.config.tier,
            "transport": self.transport,
            "n_workers": self.pool.n_workers,
            "workers": self.pool.worker_status(),
            "worker_pids": self.pool.worker_pids,
            "published": self.published,
            "segment_bytes": {
                tech: entry["nbytes"]
                for tech, entry in self.manifest["techniques"].items()
            },
            "worker_restarts": self.pool.restarts,
            "batches_done": self.pool.batches_done,
            **self.scheduler.stats(),
        }

    def merged_snapshot(self) -> dict:
        """One schema-versioned snapshot of the whole service.

        Aggregates, via :meth:`MetricsRegistry.merge_snapshot`:

        - this process's registry (scheduler counters, e2e/stage
          histograms) — read directly, *not* through the scheduler
          plane, so nothing double-counts;
        - every live worker's metrics plane;
        - :attr:`WorkerPool.retired` — instruments harvested from
          workers that died and were restarted;
        - per-worker ``serve.worker.<i>.{pid,batches}`` gauges from the
          plane headers.
        """
        merged = MetricsRegistry()
        merged.merge_snapshot(obs.registry().snapshot())
        merged.merge_snapshot(self.pool.retired.snapshot())
        for snap in self.pool.worker_snapshots():
            merged.merge_snapshot(snap)
        for row in self.pool.worker_status():
            i = row["worker"]
            merged.gauge(f"serve.worker.{i}.pid").set(row["pid"] or 0)
            merged.gauge(f"serve.worker.{i}.batches").set(row["batches"])
        return merged.snapshot()

    def write_metrics(self, path: str | os.PathLike) -> str:
        """Dump :meth:`merged_snapshot` as Prometheus text to ``path``."""
        text = to_prometheus(self.merged_snapshot())
        path = os.fspath(path)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
        return path

    def install_usr1_snapshot(self, path: str | os.PathLike) -> None:
        """SIGUSR1 → :meth:`write_metrics` to ``path`` (live dumps).

        ``kill -USR1 <service pid>`` snapshots a running service
        without stopping it; the previous handler is restored at
        :meth:`close`. Main thread only (a signal.signal constraint).
        """
        def _handler(signum, frame):
            try:
                self.write_metrics(path)
            except Exception:  # pragma: no cover - never die on a dump
                pass

        self._prev_usr1 = signal.signal(signal.SIGUSR1, _handler)

    def close(self) -> None:
        """Stop workers, then unlink segments (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._prev_usr1 is not None:
            try:
                signal.signal(signal.SIGUSR1, self._prev_usr1)
            except (ValueError, OSError):  # pragma: no cover
                pass
            self._prev_usr1 = None
        reg = obs.registry()
        if getattr(reg, "_mirror", None) is self._mirror:
            reg.set_mirror(None)
        try:
            self.pool.stop()
        finally:
            self._plane.close()
            self.segments.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# Benchmark driver (scripts/serve_bench.py and `service bench`)
# ----------------------------------------------------------------------
def _latency_percentiles(
    registry: Registry,
    dataset: str,
    tech: str,
    requests: Sequence,
    max_batch: int,
    transport: str,
) -> dict:
    """True request-latency percentiles from the merged metrics plane.

    Runs one instrumented 2-worker pass (obs enabled on a clean
    registry, restored after) and reads ``serve.e2e_us`` /
    ``serve.stage_us.worker`` out of :meth:`QueryService.merged_snapshot`
    — end-to-end numbers measured across the parent *and* the workers,
    not parent-side approximations. Kept separate from the throughput
    sweep so instrumentation overhead never taints the QPS columns.
    """
    was = obs.ENABLED
    obs.reset()
    obs.set_enabled(True)
    try:
        config = ServiceConfig(
            dataset=dataset,
            tier=registry.tier,
            workers=2,
            techniques=(tech,),
            max_batch=max_batch,
            transport=transport,
        )
        with QueryService(config, registry=registry) as svc:
            serve_workload(svc, tech, requests)
            snap = svc.merged_snapshot()
    finally:
        obs.set_enabled(was)
        obs.reset()
    out: dict = {}
    hists = snap.get("histograms", {})
    for key, name in (
        ("latency_e2e_us", "serve.e2e_us"),
        ("latency_worker_us", "serve.stage_us.worker"),
    ):
        h = hists.get(name)
        if h and h.get("count"):
            out[key] = {q: round(h[q], 1) for q in ("p50", "p90", "p99")}
    return out


def serve_workload(
    service: QueryService,
    technique: str,
    requests: Sequence[Sequence[tuple[int, int]]],
    deadline_s: float | None = None,
) -> tuple[list[QueryFuture], float]:
    """Push a request stream through the service; returns (futures, secs).

    Requests are submitted as fast as the queue admits, pumping the
    scheduler between submissions; the clock stops when the last answer
    lands.
    """
    futures: list[QueryFuture] = []
    started = time.perf_counter()
    for req in requests:
        futures.append(service.submit(technique, req, deadline_s=deadline_s))
        service.pump()
    service.drain()
    elapsed = time.perf_counter() - started
    return futures, elapsed


def bench_serving(
    registry: Registry,
    dataset: str = "DE",
    techniques: Sequence[str] = ("ch", "tnr", "dijkstra"),
    *,
    n_pairs: int = 2000,
    request_size: int = 8,
    max_batch: int = 256,
    worker_counts: Sequence[int] = (1, 2, 4, 8),
    transport: str | None = None,
    repeats: int = 3,
    check: bool = True,
) -> dict:
    """QPS per technique: in-process vs per-request vs the service.

    Three comparable numbers per technique, all over the same Q-set
    workload split into ``request_size``-pair requests:

    - ``qps_inprocess_batched`` — one process, one big
      ``batched_distances`` call (the coalescing ceiling);
    - ``qps_single`` — one process answering each request as it
      arrives, no cross-request coalescing (what a naive service
      does per client request);
    - ``qps_service_<k>w`` — the full service at ``k`` workers,
      micro-batching the same request stream, on the selected
      ``transport`` (best of ``repeats`` passes, which suppresses
      scheduler-noise outliers on loaded machines).

    ``speedup_2w`` is ``qps_service_2w / qps_single`` — the service's
    gain over per-request serving, which on a single core is pure
    coalescing (on multi-core boxes worker parallelism stacks on top).
    ``bit_identical`` asserts every service answer equals the
    in-process batched answer bit for bit.
    """
    import numpy as np

    from repro.harness.experiments import batched_distances, request_stream

    transport = resolve_transport(transport)
    pairs = [p for qset in registry.q_sets(dataset) for p in qset.pairs]
    while pairs and len(pairs) < n_pairs:
        pairs = pairs + pairs
    pairs = pairs[:n_pairs]
    requests = request_stream(pairs, request_size)
    builders = {
        "dijkstra": registry.bidijkstra,
        "ch": registry.ch,
        "tnr": registry.tnr,
        "silc": registry.silc,
        "labels": registry.hub_labels,
    }
    report: dict = {
        "dataset": dataset,
        "tier": registry.tier,
        "transport": transport,
        "cpu_count": os.cpu_count() or 1,
        "n_pairs": len(pairs),
        "request_size": request_size,
        "max_batch": max_batch,
        "worker_counts": list(worker_counts),
        "repeats": repeats,
        "techniques": {},
    }
    for tech in techniques:
        obj = builders[tech](dataset)
        started = time.perf_counter()
        want = batched_distances(obj, pairs, batch_size=max_batch)
        t_batched = time.perf_counter() - started
        t_single = float("inf")
        for _ in range(max(1, repeats)):
            started = time.perf_counter()
            for req in requests:
                batched_distances(obj, req, batch_size=len(req))
            t_single = min(t_single, time.perf_counter() - started)
        entry: dict = {
            "qps_inprocess_batched": round(len(pairs) / t_batched, 1),
            "qps_single": round(len(pairs) / t_single, 1),
        }
        identical = True
        best: dict[int, float] = {w: float("inf") for w in worker_counts}
        # Two sweep passes, the second in reverse order: throughput on a
        # shared box drifts over minutes, and a one-directional sweep
        # would bake that drift into the worker-scaling ratios. Keeping
        # the best of a forward and a backward pass hits both ends of
        # the ladder with both halves of the drift.
        sweep_orders = [list(worker_counts), list(worker_counts)[::-1]]
        for order in sweep_orders:
            for workers in order:
                config = ServiceConfig(
                    dataset=dataset,
                    tier=registry.tier,
                    workers=workers,
                    techniques=(tech,),
                    max_batch=max_batch,
                    transport=transport,
                )
                with QueryService(config, registry=registry) as svc:
                    serve_workload(svc, tech, requests[:4])  # warm the pool
                    for _ in range(max(1, repeats)):
                        futures, secs = serve_workload(svc, tech, requests)
                        best[workers] = min(best[workers], secs)
                        if check:
                            got = np.array(
                                [d for f in futures for d in f.result()]
                            )
                            identical = identical and bool(
                                np.array_equal(got, want)
                            )
        for workers in worker_counts:
            entry[f"qps_service_{workers}w"] = round(
                len(pairs) / best[workers], 1
            )
        if check:
            entry["bit_identical"] = identical
        if 1 in worker_counts and 2 in worker_counts:
            entry["scaling_2w"] = round(
                entry["qps_service_2w"] / entry["qps_service_1w"], 2
            )
        if 2 in worker_counts:
            entry["speedup_2w"] = round(
                entry["qps_service_2w"] / entry["qps_single"], 2
            )
        entry.update(
            _latency_percentiles(
                registry, dataset, tech, requests, max_batch, transport
            )
        )
        report["techniques"][tech] = entry
    return report
