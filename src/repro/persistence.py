"""Index persistence: save and load preprocessed indexes.

Preprocessing is the expensive side of every technique in the paper —
up to hours at real scale — so a deployment builds once and ships the
index. This module wraps that in a small, versioned container so stale
or foreign files fail loudly instead of answering queries wrongly:

- a magic + format-version header (refuses files from other tools or
  incompatible releases);
- the index class name (refuses loading a SILC index as a CH index);
- the graph fingerprint (n, m, total weight) the index was built for
  (refuses an index built on different data).

>>> import repro, repro.persistence as rp
>>> g = repro.load_dataset("DE", tier="tiny")
>>> ch = repro.ContractionHierarchy.build(g)
>>> path = rp.save_index("/tmp/de.chx", ch.index, g)     # doctest: +SKIP
>>> index = rp.load_index("/tmp/de.chx", g)              # doctest: +SKIP
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from typing import Any

from repro.graph.graph import Graph

MAGIC = b"RRNQIDX1"  # repro road-network query index, format 1
FORMAT_VERSION = 1


class PersistenceError(RuntimeError):
    """Raised for unreadable, foreign, or mismatched index files."""


@dataclass(frozen=True)
class GraphFingerprint:
    """Cheap identity of the graph an index was built against."""

    n: int
    m: int
    total_weight: float

    @staticmethod
    def of(graph: Graph) -> "GraphFingerprint":
        return GraphFingerprint(
            n=graph.n,
            m=graph.m,
            total_weight=float(sum(e.weight for e in graph.edges())),
        )


def save_index(path: str | os.PathLike, index: Any, graph: Graph) -> str:
    """Write an index with header + fingerprint; returns the path.

    Atomic: writes to a sibling temp file and renames, so a crash never
    leaves a truncated index behind.
    """
    payload = {
        "format": FORMAT_VERSION,
        "kind": type(index).__name__,
        "fingerprint": GraphFingerprint.of(graph),
        "index": index,
    }
    path = os.fspath(path)
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as fh:
        fh.write(MAGIC)
        pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)
    return path


def load_index(
    path: str | os.PathLike,
    graph: Graph,
    expected_kind: str | None = None,
) -> Any:
    """Read an index, verifying header, kind and graph fingerprint.

    ``expected_kind`` (e.g. ``"CHIndex"``) adds a type check on top of
    the stored kind; omit it to accept any index built for ``graph``.
    """
    with open(path, "rb") as fh:
        magic = fh.read(len(MAGIC))
        if magic != MAGIC:
            raise PersistenceError(f"{path}: not a repro index file")
        try:
            payload = pickle.load(fh)
        except Exception as exc:  # truncated/corrupt pickle
            raise PersistenceError(f"{path}: corrupt index payload") from exc
    if payload.get("format") != FORMAT_VERSION:
        raise PersistenceError(
            f"{path}: format {payload.get('format')} unsupported "
            f"(this release reads {FORMAT_VERSION})"
        )
    kind = payload.get("kind")
    if expected_kind is not None and kind != expected_kind:
        raise PersistenceError(f"{path}: contains {kind}, expected {expected_kind}")
    fingerprint = payload.get("fingerprint")
    if fingerprint != GraphFingerprint.of(graph):
        raise PersistenceError(
            f"{path}: index was built for a different graph "
            f"({fingerprint} vs {GraphFingerprint.of(graph)})"
        )
    return payload["index"]
