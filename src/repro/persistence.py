"""Index persistence: save and load preprocessed indexes.

Preprocessing is the expensive side of every technique in the paper —
up to hours at real scale — so a deployment builds once and ships the
index. This module wraps that in a small, versioned container so stale
or foreign files fail loudly instead of answering queries wrongly:

- a magic + format-version header (refuses files from other tools or
  incompatible releases);
- a sha256 checksum of the pickled index (refuses bit-rot and
  truncation before unpickling anything);
- the index class name (refuses loading a SILC index as a CH index);
- the graph fingerprint (n, m, total weight) the index was built for
  (refuses an index built on different data).

Unlike the experiment cache (:mod:`repro.harness.cache`), which
silently rebuilds on any failure, persistence *fails loudly*: a shipped
index has no builder to fall back on, so a bad file must be an error.
Both share the same atomic-write and checksum primitives.

>>> import repro, repro.persistence as rp
>>> g = repro.load_dataset("DE", tier="tiny")
>>> ch = repro.ContractionHierarchy.build(g)
>>> path = rp.save_index("/tmp/de.chx", ch.index, g)     # doctest: +SKIP
>>> index = rp.load_index("/tmp/de.chx", g)              # doctest: +SKIP
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from typing import Any

from repro.graph.graph import Graph
from repro.harness.cache import atomic_write_bytes, sha256_hex

MAGIC = b"RRNQIDX1"  # repro road-network query index
FORMAT_VERSION = 4   # 4: GraphFingerprint gained the weight-epoch field
                     # (3: frozen Graphs pickle as CSR arrays;
                     #  2: header + sha256-checksummed payload)


class PersistenceError(RuntimeError):
    """Raised for unreadable, foreign, or mismatched index files."""


@dataclass(frozen=True)
class GraphFingerprint:
    """Cheap identity of the graph an index was built against.

    ``epoch`` versions the *weights*: epoch 0 is the dataset's frozen
    metric, and every :meth:`repro.dynamic.DynamicState.apply_updates`
    bumps it. Two fingerprints with the same topology but different
    epochs are different graphs as far as index validity is concerned.
    """

    n: int
    m: int
    total_weight: float
    epoch: int = 0

    @staticmethod
    def of(graph: Graph, epoch: int = 0) -> "GraphFingerprint":
        return GraphFingerprint(
            n=graph.n,
            m=graph.m,
            total_weight=float(sum(e.weight for e in graph.edges())),
            epoch=epoch,
        )

    @staticmethod
    def of_csr(csr, epoch: int = 0) -> "GraphFingerprint":
        """Fingerprint from a :class:`~repro.graph.csr.CSRGraph` alone.

        Equal to :meth:`of` on the graph the CSR was frozen from: each
        undirected edge is stored as two arcs, so the arc-weight sum is
        twice the edge-weight sum. Used where only the flat arrays are
        at hand — worker processes attaching shared-memory segments
        (:mod:`repro.serve.segments`) verify the published graph
        against a manifest fingerprint without rebuilding a Graph.
        """
        return GraphFingerprint(
            n=csr.n,
            m=csr.m,
            total_weight=float(csr.weights.sum()) / 2.0,
            epoch=epoch,
        )


def save_index(path: str | os.PathLike, index: Any, graph: Graph) -> str:
    """Write an index with header + fingerprint + checksum; returns the path.

    Atomic: writes to a unique per-process temp file and renames, so a
    crash (or a concurrent writer) never leaves a truncated index
    behind.
    """
    index_bytes = pickle.dumps(index, protocol=pickle.HIGHEST_PROTOCOL)
    header = {
        "format": FORMAT_VERSION,
        "kind": type(index).__name__,
        "fingerprint": GraphFingerprint.of(graph),
        "sha256": sha256_hex(index_bytes),
        "payload_bytes": len(index_bytes),
    }
    path = os.fspath(path)
    atomic_write_bytes(
        path,
        MAGIC + pickle.dumps(header, protocol=pickle.HIGHEST_PROTOCOL) + index_bytes,
    )
    return path


def load_index(
    path: str | os.PathLike,
    graph: Graph,
    expected_kind: str | None = None,
) -> Any:
    """Read an index, verifying header, checksum, kind and fingerprint.

    ``expected_kind`` (e.g. ``"CHIndex"``) adds a type check on top of
    the stored kind; omit it to accept any index built for ``graph``.
    """
    with open(path, "rb") as fh:
        magic = fh.read(len(MAGIC))
        if magic != MAGIC:
            raise PersistenceError(f"{path}: not a repro index file")
        try:
            header = pickle.load(fh)
        except Exception as exc:  # truncated/corrupt pickle
            raise PersistenceError(f"{path}: corrupt index payload") from exc
        index_bytes = fh.read()
    if not isinstance(header, dict) or header.get("format") != FORMAT_VERSION:
        got = header.get("format") if isinstance(header, dict) else "?"
        raise PersistenceError(
            f"{path}: format {got} unsupported "
            f"(this release reads {FORMAT_VERSION})"
        )
    if header.get("payload_bytes") != len(index_bytes):
        raise PersistenceError(
            f"{path}: corrupt index payload (truncated: "
            f"{len(index_bytes)} of {header.get('payload_bytes')} bytes)"
        )
    if sha256_hex(index_bytes) != header.get("sha256"):
        raise PersistenceError(f"{path}: corrupt index payload (checksum mismatch)")
    kind = header.get("kind")
    if expected_kind is not None and kind != expected_kind:
        raise PersistenceError(f"{path}: contains {kind}, expected {expected_kind}")
    fingerprint = header.get("fingerprint")
    if fingerprint != GraphFingerprint.of(graph):
        raise PersistenceError(
            f"{path}: index was built for a different graph "
            f"({fingerprint} vs {GraphFingerprint.of(graph)})"
        )
    try:
        return pickle.loads(index_bytes)
    except Exception as exc:
        raise PersistenceError(f"{path}: corrupt index payload") from exc
