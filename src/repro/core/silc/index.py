"""The SILC index: one compressed first-hop partition per vertex.

Preprocessing (§3.4 / Appendix D):

1. for every vertex ``v``, a Dijkstra pass yields the first hop of the
   shortest path from ``v`` to every other vertex (the equivalence
   classes of the partition of ``V \\ {v}``) — all-pairs work, which is
   why the paper can only afford SILC on the four smallest datasets;
2. each partition is compressed into disjoint Z-curve intervals by the
   region quadtree of :mod:`repro.core.silc.quadtree`;
3. each vertex's intervals live in sorted arrays, searched by bisection
   at query time ("stored in a binary search tree to accelerate query
   processing" — sorted-array bisection is the flat equivalent).

The O(n·√n) space bound (§3.4) shows up as the per-source interval
counts; :attr:`SILCBuildStats.total_intervals` tracks it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.core.dijkstra import first_hop_tables
from repro.core.silc.quadtree import compress_partitions
from repro.graph.coords import square_hull
from repro.graph.graph import Graph
from repro.graph.morton import MortonMapper
from repro.parallel import map_with_context

# Sources per work item: one batched first-hop kernel call per chunk
# amortises the per-call overhead, and chunks (not vertices) are what
# the multiprocess fan-out ships to workers.
_CHUNK = 64


@dataclass
class SILCBuildStats:
    """Preprocessing diagnostics."""

    seconds: float = 0.0
    total_intervals: int = 0
    total_exceptions: int = 0

    def intervals_per_vertex(self, n: int) -> float:
        return self.total_intervals / n if n else 0.0


@dataclass
class SILCIndex:
    """Per-vertex compressed partitions plus the shared Morton layout.

    ``starts[v]``/``ends[v]``/``colors[v]`` are parallel (plain-list)
    arrays of the half-open Morton intervals of ``v``'s partition;
    ``codes[v]`` is the Morton code of vertex ``v`` itself;
    ``exceptions[v]`` resolves vertices inside irreducible mixed cells
    (duplicate coordinates). Plain lists + ``bisect`` beat numpy here:
    a query does one tiny binary search per path edge, where array
    scalar boxing would dominate.
    """

    n: int
    codes: list[int]
    starts: list[list[int]]
    ends: list[list[int]]
    colors: list[list[int]]
    exceptions: list[dict[int, int]]
    stats: SILCBuildStats = field(default_factory=SILCBuildStats)

    @property
    def total_intervals(self) -> int:
        return self.stats.total_intervals


def _chunk_partitions(context, chunk: list[int]):
    """Compressed partitions for a chunk of sources (top level for the pool).

    One batched first-hop kernel call covers the whole chunk, one
    fancy-index gather reorders every row into Morton order at once,
    and one shared quadtree descent
    (:func:`repro.core.silc.quadtree.compress_partitions`) compresses
    the whole chunk — no per-vertex Python loop anywhere in the pass.
    """
    graph, order, codes_sorted, position = context
    hops = first_hop_tables(graph, chunk)
    order_arr = np.asarray(order, dtype=np.int64)
    colors = np.asarray(hops, dtype=np.int64)[:, order_arr]
    skips = [position[v] for v in chunk]
    out = []
    for intervals, exc in compress_partitions(codes_sorted, colors, skips):
        out.append(
            (
                [a for a, _, _ in intervals],
                [b for _, b, _ in intervals],
                [c for _, _, c in intervals],
                {order[j]: c for j, c in exc.items()},
            )
        )
    return out


def build_silc(graph: Graph, workers: int | None = None) -> SILCIndex:
    """Run SILC preprocessing (all-pairs first hops + compression).

    ``workers`` fans the per-vertex Dijkstra+compression loop over
    processes (see :mod:`repro.parallel`); the output is identical for
    any worker count.
    """
    if not graph.frozen:
        raise ValueError("freeze() the graph before building an index")
    start_time = time.perf_counter()
    n = graph.n
    with obs.span("silc.build"):
        with obs.span("silc.morton"):
            mapper = MortonMapper(square_hull(graph.bounding_box()))
            codes = [mapper.encode(graph.xs[v], graph.ys[v]) for v in range(n)]

            order = sorted(range(n), key=codes.__getitem__)
            codes_sorted = [codes[v] for v in order]
            position = [0] * n
            for i, v in enumerate(order):
                position[v] = i

        stats = SILCBuildStats()
        with obs.span("silc.partitions"):
            chunks = [list(range(a, min(a + _CHUNK, n))) for a in range(0, n, _CHUNK)]
            chunked = map_with_context(
                _chunk_partitions,
                (graph, order, codes_sorted, position),
                chunks,
                workers=workers,
            )
            results = [r for chunk_result in chunked for r in chunk_result]
            starts = [r[0] for r in results]
            ends = [r[1] for r in results]
            colors_out = [r[2] for r in results]
            exceptions = [r[3] for r in results]
            stats.total_intervals = sum(len(r[0]) for r in results)
            stats.total_exceptions = sum(len(r[3]) for r in results)

    stats.seconds = time.perf_counter() - start_time
    if obs.ENABLED:
        obs.registry().add_counters(
            "silc.build",
            {
                "runs": 1,
                "intervals": stats.total_intervals,
                "exceptions": stats.total_exceptions,
            },
        )
    return SILCIndex(
        n=n,
        codes=codes,
        starts=starts,
        ends=ends,
        colors=colors_out,
        exceptions=exceptions,
        stats=stats,
    )
