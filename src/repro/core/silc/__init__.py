"""SILC — Spatially Induced Linkage Cognizance (Samet et al. [21, 23]).

SILC pre-computes, for every vertex ``v``, the partition of the other
vertices into equivalence classes by the first hop of their shortest
path from ``v`` (§3.4), and compresses each partition into a region
quadtree whose cells become intervals on a Z-order curve (Appendix D).
A shortest-path query then walks first hops — one O(log n) interval
search per edge of the answer.
"""

from repro.core.silc.index import SILCIndex, build_silc
from repro.core.silc.query import SILC

__all__ = ["SILC", "SILCIndex", "build_silc"]
