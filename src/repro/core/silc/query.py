"""SILC queries: iterated first-hop lookups (§3.4).

    "It first inspects s, and examines the partition of V \\ {s} to
    identify the equivalence class EC that contains t. Let v be the
    neighbor of s that corresponds to EC. ... With an iterative
    application of this traversal method, the complete shortest path
    from s to t can be obtained."

Each lookup is a bisection over the source's sorted Morton intervals —
O(log n) — so a path of k edges costs O(k log n). A distance query
performs the same walk and sums edge weights ("SILC needs to first
compute the shortest path ... and then return the sum of the lengths",
§3.4); that is why SILC's distance queries degrade with distance in
Figures 8/9 while its shortest-path queries shine in Figures 10/11.

The walk is the hottest loop in the library — it runs once per path
*edge* — so it uses :mod:`bisect` over plain lists and the graph's
per-vertex weight maps rather than anything numpy-shaped.
"""

from __future__ import annotations

import math
from bisect import bisect_right

from repro.core.silc.index import SILCIndex
from repro.core.silc.quadtree import MIXED_LEAF
from repro.graph.graph import Graph

INF = math.inf


class SILC:
    """The SILC query object; implements the common technique interface."""

    name = "SILC"

    def __init__(self, graph: Graph, index: SILCIndex) -> None:
        if graph.n != index.n:
            raise ValueError("index was built for a different graph")
        self.graph = graph
        self.index = index

    @classmethod
    def build(cls, graph: Graph) -> "SILC":
        from repro.core.silc.index import build_silc

        return cls(graph, build_silc(graph))

    @property
    def preprocessing_seconds(self) -> float:
        return self.index.stats.seconds

    # ------------------------------------------------------------------
    def next_hop(self, source: int, target: int) -> int:
        """Neighbour of ``source`` on the shortest path to ``target``.

        Returns -1 when ``target`` is unreachable.
        """
        idx = self.index
        code = idx.codes[target]
        starts = idx.starts[source]
        i = bisect_right(starts, code) - 1
        if i < 0 or code >= idx.ends[source][i]:
            raise KeyError(
                f"morton code of {target} not covered by partition of {source}"
            )
        color = idx.colors[source][i]
        if color == MIXED_LEAF:
            color = idx.exceptions[source][target]
        return color

    def path(self, source: int, target: int) -> tuple[float, list[int] | None]:
        """Shortest path by first-hop walking; O(k log n)."""
        if source == target:
            return 0.0, [source]
        idx = self.index
        starts, ends, colors = idx.starts, idx.ends, idx.colors
        weight_map = self.graph.weight_map
        code = idx.codes[target]

        total = 0.0
        path = [source]
        current = source
        while current != target:
            row = starts[current]
            i = bisect_right(row, code) - 1
            if i < 0 or code >= ends[current][i]:
                raise KeyError(
                    f"morton code of {target} not covered by partition of {current}"
                )
            nxt = colors[current][i]
            if nxt == MIXED_LEAF:
                nxt = idx.exceptions[current][target]
            if nxt < 0:
                return INF, None
            total += weight_map(current)[nxt]
            path.append(nxt)
            current = nxt
        return total, path

    def distance(self, source: int, target: int) -> float:
        """Distance by walking the path and summing edge weights."""
        if source == target:
            return 0.0
        idx = self.index
        starts, ends, colors = idx.starts, idx.ends, idx.colors
        weight_map = self.graph.weight_map
        code = idx.codes[target]

        total = 0.0
        current = source
        while current != target:
            row = starts[current]
            i = bisect_right(row, code) - 1
            if i < 0 or code >= ends[current][i]:
                raise KeyError(
                    f"morton code of {target} not covered by partition of {current}"
                )
            nxt = colors[current][i]
            if nxt == MIXED_LEAF:
                nxt = idx.exceptions[current][target]
            if nxt < 0:
                return INF
            total += weight_map(current)[nxt]
            current = nxt
        return total
