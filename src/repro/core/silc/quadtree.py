"""Region-quadtree compression of a first-hop partition (Appendix D).

    "We first impose a 2×2 grid on the road network, and we inspect the
    vertices contained in each grid cell C. If there exist two vertices
    in C that are from two different equivalence classes, C is further
    divided into four quadrants. ... After that, each cell is
    transformed into an interval on a two-dimensional Z-curve."

The implementation works directly on the vertex list sorted by Morton
code (shared across all sources): a quadtree cell is a contiguous slice
of that list, and splitting a cell is three binary searches. A cell
whose slice carries one colour is emitted as a half-open Morton
interval; empty cells vanish — exactly the concise representation the
paper describes, built in O(output · log n).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Sequence

import numpy as np

from repro.graph.morton import MORTON_BITS

#: Colour marking a cell that cannot be split further yet stays mixed
#: (only possible when distinct vertices share one Morton code, e.g.
#: duplicate coordinates in imported data). Queries then consult the
#: exceptions table instead.
MIXED_LEAF = -9


def compress_partition(
    codes_sorted: Sequence[int],
    colors: Sequence[int],
    skip: int,
) -> tuple[list[tuple[int, int, int]], dict[int, int]]:
    """Compress one source's colouring into Z-curve intervals.

    Parameters
    ----------
    codes_sorted:
        Morton codes of all vertices, ascending (the global sort order).
    colors:
        ``colors[i]`` is the equivalence class (first-hop vertex id) of
        the ``i``-th vertex in that order.
    skip:
        Position of the source vertex, which belongs to no class
        (the partition covers ``V \\ {v}``) and is ignored.

    Returns
    -------
    intervals:
        ``(start, end, color)`` triples with half-open Morton ranges,
        sorted by ``start``, pairwise disjoint, jointly covering every
        non-source vertex. ``color`` may be :data:`MIXED_LEAF`.
    exceptions:
        ``position -> color`` for vertices inside MIXED_LEAF cells.
    """
    intervals: list[tuple[int, int, int]] = []
    exceptions: dict[int, int] = {}
    span = 1 << (2 * MORTON_BITS)

    # Explicit stack of (lo, hi, base, size): vertices in slice
    # [lo, hi) all have codes in [base, base + size). Children are
    # pushed in reverse so intervals come out sorted by start.
    stack: list[tuple[int, int, int, int]] = [(0, len(codes_sorted), 0, span)]
    while stack:
        lo, hi, base, size = stack.pop()
        first_color = None
        uniform = True
        for i in range(lo, hi):
            if i == skip:
                continue
            c = colors[i]
            if first_color is None:
                first_color = c
            elif c != first_color:
                uniform = False
                break
        if first_color is None:
            continue  # empty cell (or source only)
        if uniform:
            intervals.append((base, base + size, first_color))
            continue
        if size == 1:
            # Irreducible: several vertices share this Morton code.
            intervals.append((base, base + 1, MIXED_LEAF))
            for i in range(lo, hi):
                if i != skip:
                    exceptions[i] = colors[i]
            continue
        quarter = size >> 2
        boundaries = [lo]
        for k in (1, 2, 3):
            boundaries.append(
                bisect_left(codes_sorted, base + k * quarter, boundaries[-1], hi)
            )
        boundaries.append(hi)
        for k in (3, 2, 1, 0):
            c_lo, c_hi = boundaries[k], boundaries[k + 1]
            if c_lo < c_hi:
                stack.append((c_lo, c_hi, base + k * quarter, quarter))
    return intervals, exceptions


def compress_partitions(
    codes_sorted: Sequence[int],
    colors: np.ndarray,
    skips: Sequence[int],
) -> list[tuple[list[tuple[int, int, int]], dict[int, int]]]:
    """Compress many sources' colourings in one shared quadtree descent.

    The batched counterpart of :func:`compress_partition`:
    ``colors[r, i]`` is source ``r``'s colour for the ``i``-th vertex in
    Morton order, ``skips[r]`` that source's own position. Every source
    shares the same quadtree geometry (the cells are slices of the one
    sorted code list), so one descent serves the whole batch: a cell is
    visited once, carrying the subset of rows still unresolved there,
    and the per-cell uniformity test is a vectorised compare over a
    ``rows x cell`` block instead of a Python scan per source.

    Returns ``[(intervals, exceptions), ...]`` per row, element-for-
    element identical to calling :func:`compress_partition` row by row
    (asserted by the differential test in ``tests/test_serve.py``) —
    a row participates in exactly the cells the scalar recursion would
    visit, and children are pushed in the same reversed order, so
    intervals emerge sorted by start.
    """
    colors = np.asarray(colors, dtype=np.int64)
    k, n = colors.shape
    if len(codes_sorted) != n:
        raise ValueError(f"colors is {k}x{n} but there are {len(codes_sorted)} codes")
    skips_arr = np.asarray(skips, dtype=np.int64)
    intervals: list[list[tuple[int, int, int]]] = [[] for _ in range(k)]
    exceptions: list[dict[int, int]] = [{} for _ in range(k)]
    span = 1 << (2 * MORTON_BITS)

    # (lo, hi, base, size, rows): rows are the sources whose partition
    # was still mixed in this cell's parent.
    stack: list[tuple[int, int, int, int, np.ndarray]] = [
        (0, n, 0, span, np.arange(k))
    ]
    while stack:
        lo, hi, base, size, rows = stack.pop()
        m = hi - lo
        sk = skips_arr[rows]
        inside = (sk >= lo) & (sk < hi)
        if m == 1:
            # Single vertex: empty for the row it is the source of,
            # a uniform one-vertex cell for everyone else.
            active = rows[~inside]
            for r, c in zip(active.tolist(), colors[active, lo].tolist()):
                intervals[r].append((base, base + size, c))
            continue
        block = colors[np.ix_(rows, np.arange(lo, hi))]
        if inside.any():
            # Neutralise each row's source column by overwriting it
            # with another in-cell colour, so the uniformity test and
            # the emitted colour both ignore the source — exactly the
            # scalar loop's `if i == skip: continue`.
            idx = np.nonzero(inside)[0]
            cols = sk[idx] - lo
            block[idx, cols] = block[idx, np.where(cols == 0, 1, 0)]
        uniform = (block == block[:, :1]).all(axis=1)
        for r, c in zip(rows[uniform].tolist(), block[uniform, 0].tolist()):
            intervals[r].append((base, base + size, c))
        rest = rows[~uniform]
        if len(rest) == 0:
            continue
        if size == 1:
            for r in rest.tolist():
                intervals[r].append((base, base + 1, MIXED_LEAF))
                exc = exceptions[r]
                skip = int(skips_arr[r])
                for i in range(lo, hi):
                    if i != skip:
                        exc[i] = int(colors[r, i])
            continue
        quarter = size >> 2
        boundaries = [lo]
        for q in (1, 2, 3):
            boundaries.append(
                bisect_left(codes_sorted, base + q * quarter, boundaries[-1], hi)
            )
        boundaries.append(hi)
        for q in (3, 2, 1, 0):
            c_lo, c_hi = boundaries[q], boundaries[q + 1]
            if c_lo < c_hi:
                stack.append((c_lo, c_hi, base + q * quarter, quarter, rest))
    return list(zip(intervals, exceptions))
