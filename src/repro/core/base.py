"""The common interface every evaluated technique implements.

The paper compares five techniques on exactly two operations (§2):

- ``distance(s, t)`` — the length of the shortest path;
- ``path(s, t)`` — the edge sequence itself (returned as the vertex
  sequence, from which the edges are immediate).

Each implementation is an object over a frozen :class:`Graph`; index
construction happens in the constructor (or a ``build`` classmethod) so
that the harness can time preprocessing and measure index size
uniformly.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable


@runtime_checkable
class QueryTechnique(Protocol):
    """Structural type of a shortest-path/distance query technique."""

    #: Short name used in reports ("Dijkstra", "CH", "TNR", "SILC", "PCPD").
    name: str

    def distance(self, source: int, target: int) -> float:
        """Length of the shortest path; ``math.inf`` if disconnected."""
        ...

    def path(self, source: int, target: int) -> tuple[float, list[int] | None]:
        """``(distance, vertex sequence)``; ``(inf, None)`` if disconnected."""
        ...
