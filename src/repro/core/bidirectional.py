"""Bidirectional Dijkstra [19] — the paper's baseline (§3.1).

Two Dijkstra instances run "simultaneously" (alternating, smaller
frontier first), one from the source over ascending distance to ``s``,
one from the target. Each maintains its shortest-path tree. When the
frontiers' lower bounds cross the best connection found so far, the
shortest path must already have been discovered: it either passes the
meeting vertex or crosses a single edge between the two settled sets,
exactly the §3.1 argument.

The implementation keeps a running ``best`` over both cases (every edge
relaxation between a settled vertex and an opposite-side-labelled
vertex is a candidate), so the returned result is exact even though the
traversals stop early.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush

import numpy as np

from repro import obs
from repro.graph.csr import MIN_N_BATCH, kernel_for
from repro.graph.graph import Graph

INF = math.inf


class BidirectionalDijkstra:
    """Index-free baseline; ``distance``/``path`` per §3.1.

    >>> from repro.graph.generators import paper_example_graph
    >>> algo = BidirectionalDijkstra(paper_example_graph())
    >>> algo.distance(2, 6)  # v3 to v7 in the paper's numbering (§3.2)
    6.0
    """

    name = "Dijkstra"

    def __init__(self, graph: Graph) -> None:
        # The only "preprocessing" the baseline has: probing the CSR
        # dispatch (which may freeze-borrow label scratch on first use).
        with obs.span("bidijkstra.setup"):
            self.graph = graph
            #: Vertices settled by the last query (both directions) — the
            #: paper's "search space" notion, exposed for analysis.
            self.last_settled = 0

    # ------------------------------------------------------------------
    def distance(self, source: int, target: int) -> float:
        """Distance query."""
        if source == target:
            self.last_settled = 0
            return 0.0
        csr = kernel_for(self.graph, 0)
        if csr is None:
            best, _, _, _ = self._search(source, target)
            return best
        la, lb = csr.borrow_labels(), csr.borrow_labels()
        try:
            best, _ = self._run(source, target, la, lb)
            return best
        finally:
            csr.release_labels(lb)
            csr.release_labels(la)

    def distance_table(self, sources, targets) -> np.ndarray:
        """Batched distances ``table[i][j] = dist(sources[i], targets[j])``.

        One SSSP per source over the CSR kernels (gathered at the target
        columns) instead of one bidirectional search per pair; falls
        back to per-pair :meth:`distance` when the kernels are off.
        Entries equal the per-pair answers exactly.
        """
        csr = kernel_for(self.graph, MIN_N_BATCH)
        if csr is not None:
            return csr.distance_table(sources, targets)
        out = np.full((len(sources), len(targets)), INF, dtype=np.float64)
        for i, s in enumerate(sources):
            for j, t in enumerate(targets):
                out[i, j] = self.distance(s, t)
        return out

    def path(self, source: int, target: int) -> tuple[float, list[int] | None]:
        """Shortest path query; reconstructs from the two spanning trees."""
        if source == target:
            self.last_settled = 0
            return 0.0, [source]
        csr = kernel_for(self.graph, 0)
        if csr is None:
            best, meet, fparent, bparent = self._search(source, target)
            return self._join(best, meet, fparent, bparent, source, target)
        la, lb = csr.borrow_labels(), csr.borrow_labels()
        try:
            # Reconstruct before releasing: the parent arrays go back
            # to the scratch pool (and are reset) on release.
            best, meet = self._run(source, target, la, lb)
            return self._join(best, meet, la.parent, lb.parent, source, target)
        finally:
            csr.release_labels(lb)
            csr.release_labels(la)

    @staticmethod
    def _join(best, meet, fparent, bparent, source, target):
        """Splice the two tree walks around the meeting vertex."""
        if best == INF or meet is None:
            return INF, None
        forward: list[int] = [meet]
        node = meet
        while node != source:
            node = fparent[node]
            forward.append(node)
        forward.reverse()
        node = meet
        while node != target:
            node = bparent[node]
            forward.append(node)
        return best, forward

    # ------------------------------------------------------------------
    def _run(self, source: int, target: int, la, lb) -> tuple[float, int | None]:
        """Kernel-path search over two borrowed flat label sets.

        Same alternation, stop rule and relaxation order as
        :meth:`_search`, with list labels (``inf``/-1 defaults) and the
        ``mark`` bytes as the settled flags instead of dicts and sets —
        so its output is identical to the legacy path, just without the
        per-query allocations.
        """
        g = self.graph
        dist = (la.dist, lb.dist)
        parent = (la.parent, lb.parent)
        settled = (la.mark, lb.mark)
        touched = (la.touched, lb.touched)
        marked = (la.marked, lb.marked)
        dist[0][source] = 0.0
        parent[0][source] = source
        touched[0].append(source)
        dist[1][target] = 0.0
        parent[1][target] = target
        touched[1].append(target)
        heaps: tuple[list, list] = ([(0.0, source)], [(0.0, target)])

        best = INF
        meet: int | None = None
        n_settled = 0
        neighbors = g.neighbors

        while heaps[0] and heaps[1]:
            if heaps[0][0][0] + heaps[1][0][0] >= best:
                break
            side = 0 if heaps[0][0][0] <= heaps[1][0][0] else 1
            d, u = heappop(heaps[side])
            smark = settled[side]
            if smark[u]:
                continue
            smark[u] = 1
            marked[side].append(u)
            n_settled += 1
            ddist = dist[side]
            odist = dist[1 - side]
            sparent = parent[side]
            stouch = touched[side]
            sheap = heaps[side]
            for v, w in neighbors(u):
                nd = d + w
                old = ddist[v]
                if nd < old:
                    if old == INF:
                        stouch.append(v)
                    ddist[v] = nd
                    sparent[v] = u
                    heappush(sheap, (nd, v))
                if nd + odist[v] < best:
                    best = nd + odist[v]
                    meet = v

        self.last_settled = n_settled
        if obs.ENABLED:
            reg = obs.registry()
            reg.counter("bidijkstra.queries").inc()
            reg.counter("bidijkstra.settled").inc(n_settled)
        return best, meet

    # ------------------------------------------------------------------
    def _search(
        self, source: int, target: int
    ) -> tuple[float, int | None, dict[int, int], dict[int, int]]:
        """Run the bidirectional search.

        Returns ``(distance, meeting_vertex, forward_parents,
        backward_parents)``. The meeting vertex is a vertex on some
        shortest path that carries final labels on both sides, so the
        path splits into tree walks in both parent maps.
        """
        if source == target:
            self.last_settled = 0
            return 0.0, source, {source: source}, {target: target}

        g = self.graph
        dist = ({source: 0.0}, {target: 0.0})
        parent = ({source: source}, {target: target})
        settled: tuple[set[int], set[int]] = (set(), set())
        heaps: tuple[list, list] = ([(0.0, source)], [(0.0, target)])

        best = INF
        meet: int | None = None

        while heaps[0] and heaps[1]:
            # §3.1: stop once no undiscovered connection can beat `best`.
            if heaps[0][0][0] + heaps[1][0][0] >= best:
                break
            side = 0 if heaps[0][0][0] <= heaps[1][0][0] else 1
            d, u = heappop(heaps[side])
            if u in settled[side]:
                continue
            settled[side].add(u)
            other = 1 - side
            ddict, odict = dist[side], dist[other]
            for v, w in g.neighbors(u):
                nd = d + w
                if nd < ddict.get(v, INF):
                    ddict[v] = nd
                    parent[side][v] = u
                    heappush(heaps[side], (nd, v))
                dv = odict.get(v)
                if dv is not None and nd + dv < best:
                    best = nd + dv
                    meet = v

        self.last_settled = len(settled[0]) + len(settled[1])
        if obs.ENABLED:
            reg = obs.registry()
            reg.counter("bidijkstra.queries").inc()
            reg.counter("bidijkstra.settled").inc(self.last_settled)
        if best is INF:
            return INF, None, parent[0], parent[1]
        return best, meet, parent[0], parent[1]


class UnidirectionalDijkstra:
    """Plain Dijkstra wrapped in the technique interface.

    Not one of the paper's five measured techniques (§3 uses the
    bidirectional variant as the baseline), but the natural reference
    point for the ablation benches.
    """

    name = "UniDijkstra"

    def __init__(self, graph: Graph) -> None:
        self.graph = graph

    def distance(self, source: int, target: int) -> float:
        from repro.core.dijkstra import dijkstra_distance

        return dijkstra_distance(self.graph, source, target)

    def path(self, source: int, target: int) -> tuple[float, list[int] | None]:
        from repro.core.dijkstra import dijkstra_path

        return dijkstra_path(self.graph, source, target)
