"""Hub labels on flat arrays: build from CH, query by sorted merge.

Why CH search spaces are valid labels
-------------------------------------
A *2-hop label* assigns every vertex ``v`` a set ``L(v)`` of
``(hub, d)`` entries such that for any pair ``(s, t)``

``dist(s, t) = min { d_s + d_t : (h, d_s) in L(s), (h, d_t) in L(t) }``.

The stall-filtered upward search space of a contraction hierarchy is
exactly such a set (Abraham et al., arXiv:1304.2576 §2): every entry's
distance is the length of a real ``v``–``hub`` walk (shortcuts unpack
to real edges), so no candidate sum can undercut the true distance
(*soundness*); and the highest vertex of the optimal up-down path is
settled — and never stalled — in both endpoints' searches with its
exact distance (*completeness*). The minimum over common hubs is
therefore ``dist(s, t)`` bit-for-bit: every candidate is a float64 sum
of integer travel-time weights, which float64 represents exactly.

Layout
------
One CSR-style triple over all ``n`` vertices:

- ``indptr`` (int64, ``n+1``) — label slice boundaries;
- ``hubs``   (int32, total)   — hub ids, **strictly increasing within
  each vertex's slice** (sorted, deduplicated — the invariant the
  hypothesis suite asserts);
- ``dists``  (float64, total) — upward distances, aligned with ``hubs``.

Queries
-------
- a point query merges two sorted slices with one ``np.searchsorted``
  (no ``np.intersect1d``, no Python loop over hubs);
- a pair batch (:func:`query_pairs`) flattens every pair's two slices
  into owner-major key arrays, matches them with a single global
  ``searchsorted``, and reduces per pair with ``np.minimum.reduceat``;
- a distance table (:func:`label_table`) groups label entries by hub
  and reuses the many-to-many three-regime fold
  (:func:`repro.core.ch.many_to_many._fold_grouped`) — a hub's label
  entries are exactly a many-to-many bucket, minus the upward sweeps
  that dominate CH serving.

The flat build runs the same chunked scipy sweeps as the many-to-many
engine; ``REPRO_NO_CSR=1`` (or missing scipy) builds per vertex through
``ContractionHierarchy.upward_search`` instead. The two engines may
prune slightly different (equally valid) label sets, but both answer
every query identically to Dijkstra — ``tests/test_labels.py`` asserts
soundness and completeness for each.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro import obs
from repro.core.ch.many_to_many import (
    BUCKET_CAPACITY_HINT,
    SEARCH_CHUNK,
    _EntryStore,
    _flat_engine,
    _fold_grouped,
    _group_by_vertex,
    _settled_spaces,
)
from repro.core.ch.query import ContractionHierarchy
from repro.graph.graph import Graph

INF = float("inf")


@dataclass
class LabelStats:
    """Diagnostics of one label build."""

    seconds: float = 0.0
    entries: int = 0
    mean_label: float = 0.0
    max_label: int = 0


@dataclass(eq=False)
class HubLabelIndex:
    """Flat 2-hop labels for all ``n`` vertices (see module docstring)."""

    n: int
    indptr: np.ndarray
    hubs: np.ndarray
    dists: np.ndarray
    stats: LabelStats = field(default_factory=LabelStats)

    def __post_init__(self) -> None:
        self.indptr = np.ascontiguousarray(self.indptr, dtype=np.int64)
        self.hubs = np.ascontiguousarray(self.hubs, dtype=np.int32)
        self.dists = np.ascontiguousarray(self.dists, dtype=np.float64)

    def label(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """``(hubs, dists)`` views of ``v``'s label (hub-sorted)."""
        lo, hi = int(self.indptr[v]), int(self.indptr[v + 1])
        return self.hubs[lo:hi], self.dists[lo:hi]

    def label_sizes(self) -> np.ndarray:
        return np.diff(self.indptr)

    @property
    def total_entries(self) -> int:
        return len(self.hubs)

    @property
    def nbytes(self) -> int:
        return self.indptr.nbytes + self.hubs.nbytes + self.dists.nbytes

    def core_arrays(self) -> dict[str, np.ndarray]:
        """The three label arrays, by name (for segment publication)."""
        return {"indptr": self.indptr, "hubs": self.hubs, "dists": self.dists}


# ----------------------------------------------------------------------
# Build
# ----------------------------------------------------------------------
def build_hub_labels(ch: ContractionHierarchy) -> HubLabelIndex:
    """Compute hub labels from a built contraction hierarchy.

    One stall-filtered upward search per vertex — the identical
    primitive (and identical code path) as one many-to-many backward
    sweep over all ``n`` vertices, so the build cost equals roughly one
    ``many_to_many(ch, V, V)`` sweep phase.
    """
    started = time.perf_counter()
    n = ch.index.n
    with obs.span("labels.build"):
        ucsr = _flat_engine(ch)
        if ucsr is not None:
            with obs.span("labels.sweep"):
                store = _EntryStore(BUCKET_CAPACITY_HINT * max(n, 1))
                for base, rows, verts, dists in _settled_spaces(
                    ucsr, list(range(n)), SEARCH_CHUNK
                ):
                    store.append_block(verts, rows + base, dists)
            with obs.span("labels.pack"):
                # _settled_spaces yields row-major chunks in source order
                # with hub ids ascending inside each row, so the store
                # is already vertex-grouped and hub-sorted.
                verts, searches, dvals = store.views()
                counts = np.bincount(searches, minlength=n)
                indptr = np.zeros(n + 1, dtype=np.int64)
                np.cumsum(counts, out=indptr[1:])
                hubs = verts.astype(np.int32)
                dists_arr = dvals.astype(np.float64)
        else:
            with obs.span("labels.pack"):
                indptr = np.zeros(n + 1, dtype=np.int64)
                all_hubs: list[int] = []
                all_dists: list[float] = []
                for v in range(n):
                    space = sorted(ch.upward_search(v).items())
                    indptr[v + 1] = indptr[v] + len(space)
                    all_hubs.extend(h for h, _ in space)
                    all_dists.extend(d for _, d in space)
                hubs = np.asarray(all_hubs, dtype=np.int32)
                dists_arr = np.asarray(all_dists, dtype=np.float64)

    sizes = np.diff(indptr)
    stats = LabelStats(
        seconds=time.perf_counter() - started,
        entries=int(indptr[-1]),
        mean_label=float(sizes.mean()) if n else 0.0,
        max_label=int(sizes.max()) if n else 0,
    )
    if obs.ENABLED:
        reg = obs.registry()
        reg.add_counters("labels.build", {"runs": 1, "entries": stats.entries})
        hist = reg.histogram("labels.label_size")
        for size, count in zip(*np.unique(sizes, return_counts=True)):
            hist.observe(float(size), n=int(count))
    return HubLabelIndex(
        n=n, indptr=indptr, hubs=hubs, dists=dists_arr, stats=stats
    )


# ----------------------------------------------------------------------
# Query kernels (pure functions over an index — shared by the
# in-process technique and the zero-copy serving view)
# ----------------------------------------------------------------------
def point_query(index: HubLabelIndex, source: int, target: int) -> float:
    """One sorted-array merge: min over common hubs of the two labels."""
    if source == target:
        return 0.0
    ha, da = index.label(source)
    hb, db = index.label(target)
    if len(ha) == 0 or len(hb) == 0:
        return INF
    idx = np.searchsorted(hb, ha)
    safe = np.minimum(idx, len(hb) - 1)
    match = (idx < len(hb)) & (hb[safe] == ha)
    if obs.ENABLED:
        obs.registry().add_counters(
            "labels.query",
            {"queries": 1, "hubs_scanned": len(ha) + len(hb),
             "candidates": int(match.sum())},
        )
    if not match.any():
        return INF
    return float((da[match] + db[safe[match]]).min())


def query_pairs(
    index: HubLabelIndex,
    sources: Sequence[int],
    targets: Sequence[int],
) -> np.ndarray:
    """Vectorised pair batch: ``out[k] = dist(sources[k], targets[k])``.

    Both sides flatten into owner-major ``(pair, hub)`` key arrays —
    globally sorted because pairs are enumerated in order and hubs are
    sorted within each label — so a single ``searchsorted`` matches
    every pair's common hubs at once and ``np.minimum.reduceat``
    collapses the candidate sums per pair. No per-pair Python work.
    """
    src = np.asarray(sources, dtype=np.int64)
    tgt = np.asarray(targets, dtype=np.int64)
    if src.shape != tgt.shape:
        raise ValueError("sources and targets must have equal length")
    k = len(src)
    out = np.full(k, INF, dtype=np.float64)
    if k == 0:
        return out

    indptr, hubs, dists = index.indptr, index.hubs, index.dists
    stride = np.int64(index.n)

    def flatten(endpoints: np.ndarray):
        lo = indptr[endpoints]
        ln = indptr[endpoints + 1] - lo
        total = int(ln.sum())
        owner = np.repeat(np.arange(k, dtype=np.int64), ln)
        within = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(ln) - ln, ln
        )
        pos = lo[owner] + within
        keys = owner * stride + hubs[pos]
        return owner, keys, dists[pos]

    owner_a, keys_a, dist_a = flatten(src)
    _owner_b, keys_b, dist_b = flatten(tgt)
    if len(keys_a) == 0 or len(keys_b) == 0:
        out[src == tgt] = 0.0
        return out
    idx = np.searchsorted(keys_b, keys_a)
    safe = np.minimum(idx, len(keys_b) - 1)
    match = (idx < len(keys_b)) & (keys_b[safe] == keys_a)
    cand = dist_a[match] + dist_b[safe[match]]
    owners = owner_a[match]
    counts = np.bincount(owners, minlength=k)
    nonempty = counts > 0
    starts = np.zeros(k, dtype=np.int64)
    np.cumsum(counts[:-1], out=starts[1:])
    if nonempty.any():
        out[nonempty] = np.minimum.reduceat(cand, starts[nonempty])
    out[src == tgt] = 0.0
    if obs.ENABLED:
        obs.registry().add_counters(
            "labels.query", {"pair_batches": 1, "pairs": k,
                             "candidates": int(len(cand))},
        )
    return out


def label_table(
    index: HubLabelIndex,
    sources: Sequence[int],
    targets: Sequence[int],
) -> np.ndarray:
    """Dense table ``table[i][j] = dist(sources[i], targets[j])``.

    Label entries grouped by hub are exactly many-to-many buckets, so
    the battle-tested three-regime fold finishes the job — this is the
    many-to-many serve path with its dominant cost (the upward sweeps)
    replaced by an O(entries) gather of precomputed labels.
    """
    src = [int(s) for s in sources]
    tgt = [int(t) for t in targets]
    table = np.full((len(src), len(tgt)), INF, dtype=np.float64)
    if not src or not tgt:
        return table

    with obs.span("labels.table"):
        fwd = _grouped_labels(index, src)
        bwd = fwd if src == tgt else _grouped_labels(index, tgt)
        _fold_grouped(table, fwd, bwd)
    if obs.ENABLED:
        obs.registry().add_counters(
            "labels.query", {"tables": 1, "pairs": len(src) * len(tgt)}
        )
    return table


def _grouped_labels(index: HubLabelIndex, endpoints: list[int]):
    """Hub-grouped ``(indptr, search, dist)`` triple over ``endpoints``
    — the same shape :func:`_group_by_vertex` gives the m2m fold."""
    ids = np.asarray(endpoints, dtype=np.int64)
    lo = index.indptr[ids]
    ln = index.indptr[ids + 1] - lo
    total = int(ln.sum())
    search = np.repeat(np.arange(len(ids), dtype=np.int64), ln)
    within = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(ln) - ln, ln
    )
    pos = lo[search] + within
    return _group_by_vertex(
        index.hubs[pos].astype(np.int64), search, index.dists[pos], index.n
    )


# ----------------------------------------------------------------------
# The technique object (registry / harness / protocol surface)
# ----------------------------------------------------------------------
class HubLabels:
    """Hub-labelling query technique over a :class:`HubLabelIndex`.

    A pure *distance* oracle: :meth:`path` raises — labels store no
    parent information (the paper's §2 distance-query operation only).
    """

    name = "HL"

    def __init__(self, graph: Graph, index: HubLabelIndex) -> None:
        if graph.n != index.n:
            raise ValueError("index was built for a different graph")
        self.graph = graph
        self.index = index

    @classmethod
    def build(
        cls, graph: Graph, ch: ContractionHierarchy | None = None
    ) -> "HubLabels":
        """Build labels for ``graph`` (reusing ``ch`` when given)."""
        if ch is None:
            ch = ContractionHierarchy.build(graph)
        return cls(graph, build_hub_labels(ch))

    @property
    def preprocessing_seconds(self) -> float:
        return self.index.stats.seconds

    def distance(self, source: int, target: int) -> float:
        return point_query(self.index, source, target)

    def distances(self, pairs: Sequence[tuple[int, int]]) -> np.ndarray:
        """Vectorised pair-list queries (:func:`query_pairs`)."""
        if not len(pairs):
            return np.empty(0, dtype=np.float64)
        arr = np.asarray(pairs, dtype=np.int64)
        return query_pairs(self.index, arr[:, 0], arr[:, 1])

    def distance_table(self, sources, targets) -> np.ndarray:
        return label_table(self.index, sources, targets)

    def path(self, source: int, target: int):
        raise NotImplementedError(
            "hub labels are a distance-only oracle; use CH for paths"
        )
