"""Hub labelling (2-hop labels): the post-2012 state of the art.

The paper's 2012 evaluation stops at CH/TNR/SILC/PCPD; label-based
distance oracles — Abraham et al.'s hub labels ("Towards Bridging
Theory and Practice", arXiv:1304.2576) and their descendants
(arXiv:2311.11063) — have since beaten every hierarchy-traversal
oracle on road networks. A query is a single merge of two sorted
arrays: no heap, no graph traversal, embarrassingly batchable.

This package builds hub labels from the repo's existing CH (each
vertex's stall-filtered upward search space is a valid label) and
answers queries over flat int32 hub-id / float64 distance arrays; see
:mod:`repro.core.labels.index` for the layout and the exactness
argument.
"""

from repro.core.labels.index import (
    HubLabelIndex,
    HubLabels,
    LabelStats,
    build_hub_labels,
    label_table,
    point_query,
    query_pairs,
)

__all__ = [
    "HubLabelIndex",
    "HubLabels",
    "LabelStats",
    "build_hub_labels",
    "label_table",
    "point_query",
    "query_pairs",
]
