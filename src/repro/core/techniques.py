"""The technique registry: one canonical list of query techniques.

Everything that enumerates techniques — the cross-technique agreement
suite, the serving CLI, the bench builders — reads this module instead
of hard-coding names, so a new technique added here is enrolled in the
differential tests and the serving stack automatically (the PR-6
satellite that made the labels technique land with full coverage).

Two entry points:

- :func:`build_on_graph` constructs a technique directly on a small
  graph (what the hypothesis suites need — no registry, no cache);
- :func:`registry_builders` maps each name to the
  :class:`~repro.harness.registry.Registry` accessor that builds it
  with caching (what the harness, serve bench and CLI use).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.graph import Graph

#: Every query technique, in the paper's order plus post-2012 additions.
TECHNIQUES: tuple[str, ...] = (
    "dijkstra", "ch", "tnr", "silc", "pcpd", "labels",
)

#: Report names (`technique.name`) keyed by registry name.
DISPLAY_NAMES: dict[str, str] = {
    "dijkstra": "Dijkstra",
    "ch": "CH",
    "tnr": "TNR",
    "silc": "SILC",
    "pcpd": "PCPD",
    "labels": "HL",
}

#: Default TNR grid for the small test graphs ``build_on_graph`` serves.
_TEST_TNR_GRID = 16


def build_on_graph(name: str, graph: "Graph", ch=None):
    """Build technique ``name`` on ``graph`` (for tests / small graphs).

    ``ch`` optionally supplies a prebuilt
    :class:`~repro.core.ch.ContractionHierarchy` shared between the
    techniques that consume one (ch, tnr, labels) so a parametrised
    suite contracts each graph once.
    """
    if name == "dijkstra":
        from repro.core.bidirectional import BidirectionalDijkstra

        return BidirectionalDijkstra(graph)
    if name == "silc":
        from repro.core.silc import SILC

        return SILC.build(graph)
    if name == "pcpd":
        from repro.core.pcpd import PCPD

        return PCPD.build(graph)
    if name in ("ch", "tnr", "labels"):
        from repro.core.ch import ContractionHierarchy

        if ch is None:
            ch = ContractionHierarchy.build(graph)
        if name == "ch":
            return ch
        if name == "tnr":
            from repro.core.tnr import TransitNodeRouting, build_tnr

            return TransitNodeRouting(
                graph, build_tnr(graph, ch, _TEST_TNR_GRID), ch
            )
        from repro.core.labels import HubLabels

        return HubLabels.build(graph, ch=ch)
    raise ValueError(f"unknown technique {name!r} (known: {list(TECHNIQUES)})")


def registry_builders(registry) -> dict[str, Callable[[str], object]]:
    """``name -> builder(dataset)`` over a harness registry's accessors."""
    return {
        "dijkstra": registry.bidijkstra,
        "ch": registry.ch,
        "tnr": registry.tnr,
        "silc": registry.silc,
        "pcpd": registry.pcpd,
        "labels": registry.hub_labels,
    }
