"""Dijkstra's algorithm [9] and its one-to-many / first-hop variants.

This is the classic solution the paper measures everything against
(§1), and also the workhorse inside the preprocessing of TNR, SILC and
PCPD. The hot loops use :mod:`heapq` with lazy deletion — measurably
faster in CPython than an addressable heap, and every technique shares
these same routines ("common subroutines for similar tasks", §4.1).

Tie-breaking
------------
SILC and PCPD need *the* shortest path between two vertices to be a
well-defined function (their indexes store one first hop / one common
edge per pair). All routines here therefore break equal-distance ties
deterministically: a relaxation replaces the current parent only if it
strictly improves the distance, or matches it with a smaller
predecessor id. Any consistent rule keeps the "first hop lies on a
shortest path" invariant those indexes rely on.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Iterable, Sequence

from repro.graph.graph import Graph

INF = math.inf


def dijkstra_sssp(g: Graph, source: int) -> tuple[list[float], list[int]]:
    """Full single-source shortest paths.

    Returns ``(dist, parent)`` where ``parent[source] == source`` and
    ``parent[v] == -1`` for unreachable ``v``.
    """
    n = g.n
    dist = [INF] * n
    parent = [-1] * n
    dist[source] = 0.0
    parent[source] = source
    heap: list[tuple[float, int]] = [(0.0, source)]
    neighbors = g.neighbors
    while heap:
        d, u = heappop(heap)
        if d > dist[u]:
            continue
        for v, w in neighbors(u):
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                heappush(heap, (nd, v))
            elif nd == dist[v] and u < parent[v]:
                parent[v] = u
    return dist, parent


def dijkstra_distance(g: Graph, source: int, target: int) -> float:
    """Distance query with early termination at the target.

    Returns ``math.inf`` when ``target`` is unreachable.
    """
    if source == target:
        return 0.0
    dist: dict[int, float] = {source: 0.0}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, source)]
    neighbors = g.neighbors
    while heap:
        d, u = heappop(heap)
        if u in settled:
            continue
        if u == target:
            return d
        settled.add(u)
        for v, w in neighbors(u):
            nd = d + w
            if nd < dist.get(v, INF):
                dist[v] = nd
                heappush(heap, (nd, v))
    return INF


def dijkstra_path(g: Graph, source: int, target: int) -> tuple[float, list[int] | None]:
    """Shortest path query; returns ``(distance, vertex_path)``.

    The path includes both endpoints; ``(inf, None)`` if unreachable.
    """
    if source == target:
        return 0.0, [source]
    dist: dict[int, float] = {source: 0.0}
    parent: dict[int, int] = {source: source}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, source)]
    neighbors = g.neighbors
    while heap:
        d, u = heappop(heap)
        if u in settled:
            continue
        if u == target:
            return d, _walk_parents(parent, source, target)
        settled.add(u)
        for v, w in neighbors(u):
            nd = d + w
            old = dist.get(v, INF)
            if nd < old:
                dist[v] = nd
                parent[v] = u
                heappush(heap, (nd, v))
            elif nd == old and v not in settled and u < parent[v]:
                parent[v] = u
    return INF, None


def dijkstra_to_targets(
    g: Graph, source: int, targets: Iterable[int]
) -> dict[int, float]:
    """One-to-many distances, terminating once every target settles.

    Unreachable targets map to ``math.inf``. This is the building block
    of TNR's access-node computation (each vertex in a cell needs its
    distances to the outer-shell vertex set, §3.3 Remarks).
    """
    remaining = set(targets)
    result: dict[int, float] = {}
    if source in remaining:
        remaining.discard(source)
        result[source] = 0.0
    if not remaining:
        return result
    dist: dict[int, float] = {source: 0.0}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, source)]
    neighbors = g.neighbors
    while heap and remaining:
        d, u = heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        if u in remaining:
            remaining.discard(u)
            result[u] = d
        for v, w in neighbors(u):
            nd = d + w
            if nd < dist.get(v, INF):
                dist[v] = nd
                heappush(heap, (nd, v))
    for t in remaining:
        result[t] = INF
    return result


def first_hop_table(g: Graph, source: int) -> list[int]:
    """First hop of the (tie-broken) shortest path from ``source``.

    ``hop[v]`` is the neighbour of ``source`` that starts the shortest
    path to ``v``; ``hop[source] == source``; ``-1`` for unreachable
    vertices. This is exactly the per-vertex partition SILC compresses
    (§3.4): the equivalence class of ``v`` is ``hop[v]``.

    The first hop is propagated during relaxation rather than recovered
    by parent-chasing afterwards, which keeps the whole table one
    Dijkstra pass.
    """
    n = g.n
    dist = [INF] * n
    parent = [-1] * n
    hop = [-1] * n
    dist[source] = 0.0
    parent[source] = source
    hop[source] = source
    heap: list[tuple[float, int]] = [(0.0, source)]
    neighbors = g.neighbors
    while heap:
        d, u = heappop(heap)
        if d > dist[u]:
            continue
        first = u if u == source else hop[u]
        for v, w in neighbors(u):
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                hop[v] = v if u == source else first
                heappush(heap, (nd, v))
            elif nd == dist[v] and u < parent[v]:
                # Equal-distance tie: adopt the smaller predecessor (and
                # its first hop) without re-queuing — v's distance label
                # is unchanged, so its own relaxations stay valid.
                parent[v] = u
                hop[v] = v if u == source else first
    return hop


def settled_count(g: Graph, source: int, target: int) -> int:
    """Number of vertices Dijkstra settles before reaching ``target``.

    The paper's §1 argument for why Dijkstra is slow ("has to visit all
    vertices closer to s than t"); used by tests and the analysis docs
    rather than by any query path.
    """
    if source == target:
        return 0
    dist: dict[int, float] = {source: 0.0}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, source)]
    neighbors = g.neighbors
    while heap:
        d, u = heappop(heap)
        if u in settled:
            continue
        if u == target:
            return len(settled)
        settled.add(u)
        for v, w in neighbors(u):
            nd = d + w
            if nd < dist.get(v, INF):
                dist[v] = nd
                heappush(heap, (nd, v))
    return len(settled)


def _walk_parents(parent: dict[int, int], source: int, target: int) -> list[int]:
    """Reconstruct the source→target path from a parent map."""
    path = [target]
    node = target
    while node != source:
        node = parent[node]
        path.append(node)
    path.reverse()
    return path


def tree_path(parent: Sequence[int], source: int, target: int) -> list[int] | None:
    """Path through a full SSSP ``parent`` array; ``None`` if unreachable."""
    if parent[target] == -1:
        return None
    path = [target]
    node = target
    while node != source:
        node = parent[node]
        path.append(node)
    path.reverse()
    return path
