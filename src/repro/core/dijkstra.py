"""Dijkstra's algorithm [9] and its one-to-many / first-hop variants.

This is the classic solution the paper measures everything against
(§1), and also the workhorse inside the preprocessing of TNR, SILC and
PCPD. Each public routine dispatches to one of two implementations:

- **CSR kernels** (:mod:`repro.graph.csr`): flat-array labels over the
  frozen graph's CSR backend. Full SSSP / first-hop passes run inside
  scipy's compiled Dijkstra with parents and hops derived by exact
  vectorised algebra; early-exit point queries keep preallocated
  dist/parent arrays borrowed from the per-graph scratch pool instead
  of building dicts and sets per call.
- **Legacy pure-Python loops** (the ``_*_py`` functions): :mod:`heapq`
  with lazy deletion and dict labels. Still used for unfrozen or tiny
  graphs, when scipy is missing, or when ``REPRO_NO_CSR=1`` disables
  the kernels (the differential property tests run both and compare).

Returns are array-likes: the kernel paths hand back NumPy arrays, the
legacy paths plain lists — both index and iterate identically.

Tie-breaking
------------
SILC and PCPD need *the* shortest path between two vertices to be a
well-defined function (their indexes store one first hop / one common
edge per pair). All routines here therefore break equal-distance ties
deterministically: a relaxation replaces the current parent only if it
strictly improves the distance, or matches it with a smaller
predecessor id. Any consistent rule keeps the "first hop lies on a
shortest path" invariant those indexes rely on; the CSR kernels
reproduce this exact rule (``parent[v] = min{u : dist[u] + w(u,v) ==
dist[v]}``), verified bit-for-bit by ``tests/test_csr_kernels.py``.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Iterable, Sequence

import numpy as np

from repro import obs
from repro.graph.csr import MIN_N_BATCH, MIN_N_SINGLE, kernel_for
from repro.graph.graph import Graph

INF = math.inf


# ----------------------------------------------------------------------
# Public API (dispatching)
# ----------------------------------------------------------------------
def dijkstra_sssp(g: Graph, source: int):
    """Full single-source shortest paths.

    Returns ``(dist, parent)`` where ``parent[source] == source`` and
    ``parent[v] == -1`` for unreachable ``v``.
    """
    csr = kernel_for(g, MIN_N_SINGLE)
    if csr is not None:
        return csr.sssp(source)
    return _sssp_py(g, source)


def dijkstra_sssp_many(g: Graph, sources: Sequence[int]):
    """Batched SSSP: ``(k, n)`` float64 distance / int32 parent matrices.

    The batched kernel amortises call overhead across sources (one
    compiled pass per chunk); the fallback stacks legacy rows so the
    return type is uniform.
    """
    csr = kernel_for(g, MIN_N_BATCH)
    if csr is not None:
        return csr.sssp_many(sources)
    dist = np.empty((len(sources), g.n), dtype=np.float64)
    parent = np.empty((len(sources), g.n), dtype=np.int32)
    for i, s in enumerate(sources):
        d, p = _sssp_py(g, s)
        dist[i] = d
        parent[i] = p
    return dist, parent


def dijkstra_distance(g: Graph, source: int, target: int) -> float:
    """Distance query with early termination at the target.

    Returns ``math.inf`` when ``target`` is unreachable.
    """
    csr = kernel_for(g, 0)
    if obs.ENABLED:
        # Instrumented twins: same loops plus settled/heap-push
        # counters. The plain bodies below stay untouched so the
        # disabled path costs exactly this one flag check
        # (scripts/obs_overhead.py gates it below 2%).
        if csr is not None:
            return _distance_kernel_obs(g, csr, source, target)
        return _distance_py_obs(g, source, target)
    if csr is not None:
        return _distance_kernel(g, csr, source, target)
    return _distance_py(g, source, target)


def dijkstra_path(g: Graph, source: int, target: int) -> tuple[float, list[int] | None]:
    """Shortest path query; returns ``(distance, vertex_path)``.

    The path includes both endpoints; ``(inf, None)`` if unreachable.
    """
    csr = kernel_for(g, 0)
    if csr is not None:
        return _path_kernel(g, csr, source, target)
    return _path_py(g, source, target)


def dijkstra_to_targets(
    g: Graph, source: int, targets: Iterable[int]
) -> dict[int, float]:
    """One-to-many distances, terminating once every target settles.

    Unreachable targets map to ``math.inf``. This is the building block
    of TNR's access-node computation (each vertex in a cell needs its
    distances to the outer-shell vertex set, §3.3 Remarks).
    """
    csr = kernel_for(g, 0)
    if csr is not None:
        return _to_targets_kernel(g, csr, source, targets)
    return _to_targets_py(g, source, targets)


def first_hop_table(g: Graph, source: int):
    """First hop of the (tie-broken) shortest path from ``source``.

    ``hop[v]`` is the neighbour of ``source`` that starts the shortest
    path to ``v``; ``hop[source] == source``; ``-1`` for unreachable
    vertices. This is exactly the per-vertex partition SILC compresses
    (§3.4): the equivalence class of ``v`` is ``hop[v]``.
    """
    csr = kernel_for(g, MIN_N_SINGLE)
    if csr is not None:
        return csr.first_hops_many([source])[0]
    return _first_hop_py(g, source)


def first_hop_tables(g: Graph, sources: Sequence[int]):
    """Batched first-hop tables: ``(k, n)`` int32, row ``i`` for
    ``sources[i]``. The SILC builder's hot pass."""
    csr = kernel_for(g, MIN_N_BATCH)
    if csr is not None:
        return csr.first_hops_many(sources)
    hops = np.empty((len(sources), g.n), dtype=np.int32)
    for i, s in enumerate(sources):
        hops[i] = _first_hop_py(g, s)
    return hops


def settled_count(g: Graph, source: int, target: int) -> int:
    """Number of vertices Dijkstra settles before reaching ``target``.

    The paper's §1 argument for why Dijkstra is slow ("has to visit all
    vertices closer to s than t"); used by tests and the analysis docs
    rather than by any query path.
    """
    if source == target:
        return 0
    dist: dict[int, float] = {source: 0.0}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, source)]
    neighbors = g.neighbors
    while heap:
        d, u = heappop(heap)
        if u in settled:
            continue
        if u == target:
            return len(settled)
        settled.add(u)
        for v, w in neighbors(u):
            nd = d + w
            if nd < dist.get(v, INF):
                dist[v] = nd
                heappush(heap, (nd, v))
    return len(settled)


# ----------------------------------------------------------------------
# CSR kernels: early-exit point queries on pooled flat-array labels
# ----------------------------------------------------------------------
def _distance_kernel(g: Graph, csr, source: int, target: int) -> float:
    if source == target:
        return 0.0
    labels = csr.borrow_labels()
    try:
        dist = labels.dist
        touched = labels.touched
        dist[source] = 0.0
        touched.append(source)
        heap: list[tuple[float, int]] = [(0.0, source)]
        neighbors = g.neighbors
        while heap:
            d, u = heappop(heap)
            if d > dist[u]:
                continue
            if u == target:
                return d
            for v, w in neighbors(u):
                nd = d + w
                if nd < dist[v]:
                    if dist[v] == INF:
                        touched.append(v)
                    dist[v] = nd
                    heappush(heap, (nd, v))
        return INF
    finally:
        csr.release_labels(labels)


def _path_kernel(
    g: Graph, csr, source: int, target: int
) -> tuple[float, list[int] | None]:
    if source == target:
        return 0.0, [source]
    labels = csr.borrow_labels()
    try:
        dist = labels.dist
        parent = labels.parent
        settled = labels.mark
        touched = labels.touched
        marked = labels.marked
        dist[source] = 0.0
        parent[source] = source
        touched.append(source)
        heap: list[tuple[float, int]] = [(0.0, source)]
        neighbors = g.neighbors
        while heap:
            d, u = heappop(heap)
            if settled[u]:
                continue
            if u == target:
                return d, _walk_parents(parent, source, target)
            settled[u] = 1
            marked.append(u)
            for v, w in neighbors(u):
                nd = d + w
                old = dist[v]
                if nd < old:
                    if old == INF:
                        touched.append(v)
                    dist[v] = nd
                    parent[v] = u
                    heappush(heap, (nd, v))
                elif nd == old and not settled[v] and u < parent[v]:
                    parent[v] = u
        return INF, None
    finally:
        csr.release_labels(labels)


def _to_targets_kernel(
    g: Graph, csr, source: int, targets: Iterable[int]
) -> dict[int, float]:
    labels = csr.borrow_labels()
    try:
        mark = labels.mark
        marked = labels.marked
        remaining = 0
        for t in targets:
            if not mark[t]:
                mark[t] = 1
                marked.append(t)
                remaining += 1
        result: dict[int, float] = {}
        if mark[source]:
            mark[source] = 0
            remaining -= 1
            result[source] = 0.0
        if remaining == 0:
            return result
        dist = labels.dist
        touched = labels.touched
        dist[source] = 0.0
        touched.append(source)
        heap: list[tuple[float, int]] = [(0.0, source)]
        neighbors = g.neighbors
        while heap and remaining:
            d, u = heappop(heap)
            if d > dist[u]:
                continue
            if mark[u]:
                mark[u] = 0
                remaining -= 1
                result[u] = d
            for v, w in neighbors(u):
                nd = d + w
                if nd < dist[v]:
                    if dist[v] == INF:
                        touched.append(v)
                    dist[v] = nd
                    heappush(heap, (nd, v))
        if remaining:
            for t in marked:
                if mark[t]:
                    result[t] = INF
        return result
    finally:
        csr.release_labels(labels)


# ----------------------------------------------------------------------
# Legacy pure-Python implementations (REPRO_NO_CSR=1 / fallback path)
# ----------------------------------------------------------------------
def _sssp_py(g: Graph, source: int) -> tuple[list[float], list[int]]:
    n = g.n
    dist = [INF] * n
    parent = [-1] * n
    dist[source] = 0.0
    parent[source] = source
    heap: list[tuple[float, int]] = [(0.0, source)]
    neighbors = g.neighbors
    while heap:
        d, u = heappop(heap)
        if d > dist[u]:
            continue
        for v, w in neighbors(u):
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                heappush(heap, (nd, v))
            elif nd == dist[v] and u < parent[v]:
                parent[v] = u
    return dist, parent


def _distance_py(g: Graph, source: int, target: int) -> float:
    if source == target:
        return 0.0
    dist: dict[int, float] = {source: 0.0}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, source)]
    neighbors = g.neighbors
    while heap:
        d, u = heappop(heap)
        if u in settled:
            continue
        if u == target:
            return d
        settled.add(u)
        for v, w in neighbors(u):
            nd = d + w
            if nd < dist.get(v, INF):
                dist[v] = nd
                heappush(heap, (nd, v))
    return INF


def _path_py(g: Graph, source: int, target: int) -> tuple[float, list[int] | None]:
    if source == target:
        return 0.0, [source]
    dist: dict[int, float] = {source: 0.0}
    parent: dict[int, int] = {source: source}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, source)]
    neighbors = g.neighbors
    while heap:
        d, u = heappop(heap)
        if u in settled:
            continue
        if u == target:
            return d, _walk_parents(parent, source, target)
        settled.add(u)
        for v, w in neighbors(u):
            nd = d + w
            old = dist.get(v, INF)
            if nd < old:
                dist[v] = nd
                parent[v] = u
                heappush(heap, (nd, v))
            elif nd == old and v not in settled and u < parent[v]:
                parent[v] = u
    return INF, None


def _to_targets_py(
    g: Graph, source: int, targets: Iterable[int]
) -> dict[int, float]:
    remaining = set(targets)
    result: dict[int, float] = {}
    if source in remaining:
        remaining.discard(source)
        result[source] = 0.0
    if not remaining:
        return result
    dist: dict[int, float] = {source: 0.0}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, source)]
    neighbors = g.neighbors
    while heap and remaining:
        d, u = heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        if u in remaining:
            remaining.discard(u)
            result[u] = d
        for v, w in neighbors(u):
            nd = d + w
            if nd < dist.get(v, INF):
                dist[v] = nd
                heappush(heap, (nd, v))
    for t in remaining:
        result[t] = INF
    return result


def _first_hop_py(g: Graph, source: int) -> list[int]:
    n = g.n
    dist = [INF] * n
    parent = [-1] * n
    hop = [-1] * n
    dist[source] = 0.0
    parent[source] = source
    hop[source] = source
    heap: list[tuple[float, int]] = [(0.0, source)]
    neighbors = g.neighbors
    while heap:
        d, u = heappop(heap)
        if d > dist[u]:
            continue
        first = u if u == source else hop[u]
        for v, w in neighbors(u):
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                hop[v] = v if u == source else first
                heappush(heap, (nd, v))
            elif nd == dist[v] and u < parent[v]:
                # Equal-distance tie: adopt the smaller predecessor (and
                # its first hop) without re-queuing — v's distance label
                # is unchanged, so its own relaxations stay valid.
                parent[v] = u
                hop[v] = v if u == source else first
    return hop


# ----------------------------------------------------------------------
# Instrumented point-query twins (obs.ENABLED dispatch)
# ----------------------------------------------------------------------
# Same loops as _distance_kernel / _distance_py plus two algorithmic
# counters, with identical semantics on both implementations so the
# differential suite (tests/test_obs.py) can assert parity:
#
# - ``settled``: pops that pass the stale/settled check (including the
#   target's final pop). Relaxations only push on a *strict* distance
#   improvement, so each vertex carries at most one heap entry with its
#   final label — both loops therefore count exactly the distinct
#   vertices whose label was finalised.
# - ``heap_pushes``: successful relaxations (the initial source push is
#   not counted). The relaxation rule is identical on both sides.
def _record_point_query(settled: int, pushes: int) -> None:
    reg = obs.registry()
    reg.counter("dijkstra.point.queries").inc()
    reg.counter("dijkstra.point.settled").inc(settled)
    reg.counter("dijkstra.point.heap_pushes").inc(pushes)


def _distance_kernel_obs(g: Graph, csr, source: int, target: int) -> float:
    if source == target:
        _record_point_query(0, 0)
        return 0.0
    labels = csr.borrow_labels()
    n_settled = 0
    n_pushes = 0
    try:
        dist = labels.dist
        touched = labels.touched
        dist[source] = 0.0
        touched.append(source)
        heap: list[tuple[float, int]] = [(0.0, source)]
        neighbors = g.neighbors
        while heap:
            d, u = heappop(heap)
            if d > dist[u]:
                continue
            n_settled += 1
            if u == target:
                return d
            for v, w in neighbors(u):
                nd = d + w
                if nd < dist[v]:
                    if dist[v] == INF:
                        touched.append(v)
                    dist[v] = nd
                    n_pushes += 1
                    heappush(heap, (nd, v))
        return INF
    finally:
        _record_point_query(n_settled, n_pushes)
        csr.release_labels(labels)


def _distance_py_obs(g: Graph, source: int, target: int) -> float:
    if source == target:
        _record_point_query(0, 0)
        return 0.0
    dist: dict[int, float] = {source: 0.0}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, source)]
    neighbors = g.neighbors
    n_settled = 0
    n_pushes = 0
    try:
        while heap:
            d, u = heappop(heap)
            if u in settled:
                continue
            n_settled += 1
            if u == target:
                return d
            settled.add(u)
            for v, w in neighbors(u):
                nd = d + w
                if nd < dist.get(v, INF):
                    dist[v] = nd
                    n_pushes += 1
                    heappush(heap, (nd, v))
        return INF
    finally:
        _record_point_query(n_settled, n_pushes)


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _walk_parents(parent, source: int, target: int) -> list[int]:
    """Reconstruct the source→target path from a parent map/array."""
    path = [target]
    node = target
    while node != source:
        node = parent[node]
        path.append(node)
    path.reverse()
    return path


def tree_path(parent: Sequence[int], source: int, target: int) -> list[int] | None:
    """Path through a full SSSP ``parent`` array; ``None`` if unreachable."""
    if parent[target] == -1:
        return None
    path = [target]
    node = target
    while node != source:
        node = parent[node]
        path.append(node)
    path.reverse()
    return path
