"""PCPD queries: recursive decomposition through pair links (§3.5).

    "First, we retrieve the unique path-coherent pair (X1, Y1, ψ1) in
    Spcp that covers s and t. ... we can decompose the shortest path
    between s and t into two components ... By applying the above
    procedure recursively, we can compute the shortest path from s to
    t with O(k) lookups in Spcp."

Since our links are directed edges, each lookup contributes exactly one
edge of the answer: ``path(s, t) = path(s, u) + (u → v) + path(v, t)``,
with empty sub-problems when ``s == u`` or ``v == t``. Distances sum
the same walk (§3.5: PCPD answers a distance query by computing the
path first), which is why PCPD's distance queries inherit the same
distance-proportional cost as SILC's.
"""

from __future__ import annotations

import math

from repro.core.pcpd.index import PCPDIndex
from repro.graph.graph import Graph

INF = math.inf


class PCPD:
    """The PCPD query object; implements the common technique interface."""

    name = "PCPD"

    def __init__(self, graph: Graph, index: PCPDIndex) -> None:
        if graph is not index.graph:
            raise ValueError("index was built for a different graph")
        self.graph = graph
        self.index = index

    @classmethod
    def build(cls, graph: Graph) -> "PCPD":
        from repro.core.pcpd.index import build_pcpd

        return cls(graph, build_pcpd(graph))

    @property
    def preprocessing_seconds(self) -> float:
        return self.index.stats.seconds

    # ------------------------------------------------------------------
    def path(self, source: int, target: int) -> tuple[float, list[int] | None]:
        """Shortest path via recursive link decomposition; O(k) lookups.

        Iterative with an explicit work stack — recursion depth equals
        the path length in the worst case, which would overflow
        CPython's recursion limit on long paths.
        """
        if source == target:
            return 0.0, [source]
        graph = self.graph
        lookup = self.index.lookup
        path = [source]
        total = 0.0
        # Work items in left-to-right output order (top of stack =
        # leftmost open piece): either an unresolved path segment or a
        # resolved link edge awaiting emission.
        SEG, EDGE = 0, 1
        stack: list[tuple[int, int, int]] = [(SEG, source, target)]
        while stack:
            kind, a, b = stack.pop()
            if kind == EDGE:
                total += graph.edge_weight(a, b)
                path.append(b)
                continue
            if a == b:
                continue
            try:
                u, v = lookup(a, b)
            except KeyError:
                return INF, None
            # Emit order: path(a, u), edge(u, v), path(v, b).
            stack.append((SEG, v, b))
            stack.append((EDGE, u, v))
            if a != u:
                stack.append((SEG, a, u))
        return total, path

    def distance(self, source: int, target: int) -> float:
        """Distance by computing the path and returning its length."""
        total, path = self.path(source, target)
        return total if path is not None else INF
