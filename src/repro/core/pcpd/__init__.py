"""PCPD — Path-Coherent Pairs Decomposition (Sankaranarayanan et al. [25]).

PCPD pre-computes a set of *path-coherent pairs* — triplets
``(X, Y, ψ)`` of two disjoint square regions and a link ``ψ`` lying on
the shortest path from any vertex in ``X`` to any vertex in ``Y``
(§3.5). Queries decompose the path recursively through the links, one
O(log n) lookup per path vertex.

The construction follows Appendix D: start from a pair of squares
covering all vertices, test whether all pairwise shortest paths share a
common link (maintaining a running intersection with early abort), and
split both squares into quadrants (16 sub-pairs) when they do not.
"""

from repro.core.pcpd.index import PCPDIndex, build_pcpd
from repro.core.pcpd.query import PCPD

__all__ = ["PCPD", "PCPDIndex", "build_pcpd"]
