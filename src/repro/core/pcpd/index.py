"""The PCPD index: the pair-decomposition tree plus lookup descent."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro import obs
from repro.core.pcpd.pairs import APSPTables, PCPNode, build_pair_tree, quadrant_of
from repro.graph.coords import BoundingBox
from repro.graph.graph import Graph


@dataclass
class PCPDBuildStats:
    """Preprocessing diagnostics."""

    seconds_apsp: float = 0.0
    seconds_pairs: float = 0.0
    n_pairs: int = 0

    @property
    def seconds(self) -> float:
        return self.seconds_apsp + self.seconds_pairs


@dataclass
class PCPDIndex:
    """The decomposition tree and the geometry needed to descend it.

    Lookup recomputes quadrant boxes on the fly from ``hull`` — the
    same closed-open arithmetic as construction — so the tree stores
    no geometry, only links and children (the paper's O(log |Spcp|)
    lookup is the descent depth).
    """

    graph: Graph
    root: PCPNode
    hull: BoundingBox
    stats: PCPDBuildStats = field(default_factory=PCPDBuildStats)

    def lookup(self, source: int, target: int) -> tuple[int, int]:
        """The link ψ of the unique pair covering ``(source, target)``.

        Returns a directed edge ``(u, v)``: every canonical path from
        ``source``'s square to ``target``'s square traverses u then v.
        Raises :class:`KeyError` for uncovered pairs (same vertex, or a
        disconnected pair pruned at build time).
        """
        if source == target:
            raise KeyError("the trivial pair (v, v) carries no link")
        g = self.graph
        sx, sy = g.xs[source], g.ys[source]
        tx, ty = g.xs[target], g.ys[target]
        node = self.root
        box_x, box_y = self.hull, self.hull
        while not node.is_leaf:
            if node.children is None:
                raise KeyError(f"pair ({source}, {target}) not covered")
            qi = quadrant_of(box_x, sx, sy)
            qj = quadrant_of(box_y, tx, ty)
            child = node.children.get((qi, qj))
            if child is None:
                raise KeyError(f"pair ({source}, {target}) not covered")
            node = child
            box_x = box_x.quadrants()[qi]
            box_y = box_y.quadrants()[qj]
        assert node.psi is not None
        return node.psi

    @property
    def n_pairs(self) -> int:
        return self.stats.n_pairs


def build_pcpd(graph: Graph, workers: int | None = None) -> PCPDIndex:
    """Run PCPD preprocessing: all-pairs trees, then the decomposition.

    ``workers`` parallelises the APSP phase (the decomposition itself
    is sequential); identical output for any worker count.
    """
    if not graph.frozen:
        raise ValueError("freeze() the graph before building an index")
    stats = PCPDBuildStats()

    with obs.span("pcpd.build"):
        start = time.perf_counter()
        with obs.span("pcpd.apsp"):
            tables = APSPTables.compute(graph, workers=workers)
        stats.seconds_apsp = time.perf_counter() - start

        start = time.perf_counter()
        with obs.span("pcpd.pairs"):
            root, hull = build_pair_tree(graph, tables)
        stats.seconds_pairs = time.perf_counter() - start
        stats.n_pairs = root.count_pairs()

    if obs.ENABLED:
        obs.registry().add_counters(
            "pcpd.build", {"runs": 1, "pairs": stats.n_pairs}
        )
    return PCPDIndex(graph=graph, root=root, hull=hull, stats=stats)
