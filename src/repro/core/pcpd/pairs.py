"""Path-coherent pair construction (Appendix D).

    "First, we construct a pair of square regions (X, Y), such that
    both X and Y cover all vertices in V. After that, we compute the
    shortest path from any vertex in X to any vertex in Y. If all
    shortest paths share a common vertex or edge, we construct a
    path-coherent pair (X, Y, ψ) ... Otherwise, we divide X (resp. Y)
    into four quadrants ... and we replace (X, Y) with 16 pairs. ...
    we implement the test as a nested loop over the vertices in Xi and
    Yj, and we maintain the set of vertices and edges shared by the
    shortest paths that we have examined. Once the set becomes empty,
    we declare that Xi and Yj cannot form a path-coherent pair."

Design choices (recorded in DESIGN.md):

- **ψ is always a directed edge.** The paper allows ψ ∈ V ∪ E; storing
  an edge guarantees query-time progress — each lookup consumes one
  edge of the answer, so the recursion provably terminates even when
  ψ would coincide with the query's own source or target (a vertex-ψ
  there would recurse forever). Any two distinct vertices' canonical
  shortest path has at least one edge, so the edge-intersection test
  terminates at singleton squares at the latest.
- **Canonical paths.** "The" shortest path between two vertices is the
  one in the source's deterministically tie-broken Dijkstra tree
  (:func:`repro.core.dijkstra.dijkstra_sssp`), with paths always
  extracted from the tree of the pair's X-side vertex. Prefixes of
  canonical paths are canonical, which the query's recursive
  decomposition relies on.

The all-pairs trees (parent and distance matrices) are materialised
once up front — this is the Θ(n²) preprocessing wall that keeps PCPD
(like SILC) off the larger datasets in §4.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.dijkstra import dijkstra_sssp_many
from repro.graph.coords import BoundingBox, square_hull
from repro.graph.graph import Graph
from repro.parallel import map_with_context

#: APSP rows per work item — one batched kernel call per chunk, and the
#: unit the multiprocess fan-out ships to workers.
_CHUNK = 64


def _sssp_rows(graph: Graph, chunk: list[int]):
    """A block of APSP rows (top level for the worker pool)."""
    return dijkstra_sssp_many(graph, chunk)


#: Hard cap on quadrant recursion depth. Distinct vertices on the
#: generators' integer lattice separate after at most ~21 splits; the
#: cap only guards against degenerate inputs (duplicate coordinates).
MAX_DEPTH = 48


@dataclass
class APSPTables:
    """All-pairs canonical shortest-path trees.

    ``parent[s][v]`` is v's predecessor in s's canonical tree
    (``parent[s][s] == s``; -1 when unreachable); ``dist[s][v]`` the
    distance (int64; our weights are integral travel times).
    """

    parent: np.ndarray
    dist: np.ndarray

    @staticmethod
    def compute(graph: Graph, workers: int | None = None) -> "APSPTables":
        n = graph.n
        parent = np.empty((n, n), dtype=np.int32)
        dist = np.empty((n, n), dtype=np.float64)
        chunks = [list(range(a, min(a + _CHUNK, n))) for a in range(0, n, _CHUNK)]
        blocks = map_with_context(_sssp_rows, graph, chunks, workers=workers)
        row = 0
        for d, p in blocks:
            dist[row : row + d.shape[0]] = d
            parent[row : row + d.shape[0]] = p
            row += d.shape[0]
        return APSPTables(parent=parent, dist=dist)

    def path_edges(self, source: int, target: int) -> Iterator[tuple[int, int]]:
        """Directed edges of the canonical path source → target."""
        edges: list[tuple[int, int]] = []
        row = self.parent[source]
        node = target
        while node != source:
            prev = int(row[node])
            if prev < 0:
                return iter(())  # unreachable
            edges.append((prev, node))
            node = prev
        return reversed(edges)


class PCPNode:
    """A node of the pair-decomposition tree.

    Either a *leaf* carrying the link ``psi`` (a directed edge
    ``(u, v)``: every canonical X→Y path traverses u then v), or an
    internal node with up to 16 children keyed by the (X-quadrant,
    Y-quadrant) index pair.
    """

    __slots__ = ("psi", "children")

    def __init__(self) -> None:
        self.psi: tuple[int, int] | None = None
        self.children: dict[tuple[int, int], "PCPNode"] | None = None

    @property
    def is_leaf(self) -> bool:
        return self.psi is not None

    def count_pairs(self) -> int:
        """Number of path-coherent pairs (leaves) under this node."""
        if self.is_leaf:
            return 1
        if self.children is None:
            return 0
        return sum(child.count_pairs() for child in self.children.values())


def _common_link(
    tables: APSPTables, xs: list[int], ys: list[int]
) -> tuple[int, int] | None:
    """Directed edge shared by all canonical X→Y paths, or ``None``.

    The Appendix D test — a running intersection over the pairwise
    paths with early abort — exploiting the tree structure: for a fixed
    source ``a``, the canonical paths to all of Y are branches of one
    shortest-path tree, so their edge-set intersection is simply the
    common *prefix*, the path from ``a`` down to the deepest vertex
    shared by every branch. That prefix is found by walking each target
    up to the first previously-marked vertex, with no per-pair set
    materialisation. Pairs ``(a, a)`` (possible while the squares still
    overlap) have empty paths and force a split immediately.
    """
    shared: set[tuple[int, int]] | None = None
    for a in xs:
        parent = tables.parent[a].tolist()
        # Chain from a to the first target; pos[v] = index of v on it.
        b0 = ys[0]
        if a == b0:
            return None
        chain = [b0]
        node = b0
        while node != a:
            node = parent[node]
            if node < 0:
                return None  # unreachable pair
            chain.append(node)
        chain.reverse()  # chain[0] == a
        pos = {v: i for i, v in enumerate(chain)}
        meet = len(chain) - 1  # prefix currently extends to b0
        uphit: dict[int, int] = {}  # off-chain vertex -> its chain hit
        for b in ys[1:]:
            if a == b:
                return None
            node = b
            trail: list[int] = []
            while True:
                hit = pos.get(node)
                if hit is None:
                    hit = uphit.get(node)
                if hit is not None:
                    for t in trail:
                        uphit[t] = hit
                    if hit < meet:
                        meet = hit
                    break
                trail.append(node)
                node = parent[node]
                if node < 0:
                    return None  # unreachable pair
            if meet == 0:
                return None  # paths diverge immediately at a
        if meet == 0:
            return None
        prefix = {(chain[i], chain[i + 1]) for i in range(meet)}
        shared = prefix if shared is None else (shared & prefix)
        if not shared:
            return None
    if not shared:
        return None
    # Deterministic representative: the lexicographically smallest link.
    return min(shared)


def quadrant_split(
    box: BoundingBox, vertices: list[int], graph: Graph
) -> list[tuple[BoundingBox, list[int]]]:
    """Partition ``vertices`` among the four quadrants of ``box``.

    Points on a shared boundary go to the higher quadrant (the same
    closed-open rule the lookup descent uses, so construction and query
    always agree on which quadrant holds a vertex).
    """
    cx = (box.xmin + box.xmax) / 2.0
    cy = (box.ymin + box.ymax) / 2.0
    quads = box.quadrants()
    buckets: list[list[int]] = [[], [], [], []]
    for v in vertices:
        qx = 1 if graph.xs[v] >= cx else 0
        qy = 1 if graph.ys[v] >= cy else 0
        buckets[2 * qy + qx].append(v)
    return [(quads[i], buckets[i]) for i in range(4)]


def quadrant_of(box: BoundingBox, x: float, y: float) -> int:
    """Quadrant index of a point under the closed-open split rule."""
    cx = (box.xmin + box.xmax) / 2.0
    cy = (box.ymin + box.ymax) / 2.0
    return (2 if y >= cy else 0) + (1 if x >= cx else 0)


def build_pair_tree(graph: Graph, tables: APSPTables) -> tuple[PCPNode, BoundingBox]:
    """Run the recursive 16-way decomposition from the covering square.

    Returns the tree root and the root square (both X and Y start as
    the square hull of the network, per Appendix D).
    """
    hull = square_hull(graph.bounding_box())
    all_vertices = list(range(graph.n))
    root = PCPNode()

    stack: list[tuple[PCPNode, BoundingBox, list[int], BoundingBox, list[int], int]] = [
        (root, hull, all_vertices, hull, all_vertices, 0)
    ]
    while stack:
        node, box_x, xs, box_y, ys, depth = stack.pop()
        link = _common_link(tables, xs, ys)
        if link is not None:
            node.psi = link
            continue
        if len(xs) == 1 and len(ys) == 1:
            # Distinct singletons with no link are an unreachable pair
            # (disconnected input); leave the node uncovered so lookups
            # report "not covered" instead of splitting forever.
            continue
        if depth >= MAX_DEPTH:
            raise RuntimeError(
                "pair decomposition exceeded maximum depth; the graph "
                "has duplicate vertex coordinates"
            )
        node.children = {}
        x_parts = quadrant_split(box_x, xs, graph)
        y_parts = quadrant_split(box_y, ys, graph)
        for qi, (bx, vx) in enumerate(x_parts):
            if not vx:
                continue
            for qj, (by, vy) in enumerate(y_parts):
                if not vy:
                    continue
                if len(vx) == 1 and len(vy) == 1 and vx[0] == vy[0]:
                    continue  # the trivial (a, a) pair needs no link
                child = PCPNode()
                node.children[(qi, qj)] = child
                stack.append((child, bx, vx, by, vy, depth + 1))
    return root, hull
