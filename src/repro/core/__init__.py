"""The five evaluated techniques plus shared traversal primitives.

- :mod:`repro.core.dijkstra` — Dijkstra's algorithm (the classic
  solution, §1) in one-to-one / one-to-many / SSSP / first-hop forms;
- :mod:`repro.core.bidirectional` — the bidirectional baseline (§3.1);
- :mod:`repro.core.ch` — Contraction Hierarchies (§3.2);
- :mod:`repro.core.tnr` — Transit Node Routing (§3.3, Appendices B, E.1);
- :mod:`repro.core.silc` — SILC (§3.4);
- :mod:`repro.core.pcpd` — PCPD (§3.5, Appendix D).

All query implementations are exact; tests cross-check every one of
them against plain Dijkstra.
"""

from repro.core.bidirectional import BidirectionalDijkstra
from repro.core.dijkstra import (
    dijkstra_distance,
    dijkstra_path,
    dijkstra_sssp,
    dijkstra_to_targets,
    first_hop_table,
)

__all__ = [
    "BidirectionalDijkstra",
    "dijkstra_distance",
    "dijkstra_path",
    "dijkstra_sssp",
    "dijkstra_to_targets",
    "first_hop_table",
]
