"""Bucket-based many-to-many distances on a contraction hierarchy.

TNR preprocessing needs the pairwise distances among all access nodes
(§3.3), and the paper computes them with CH (§4.1: "we employed CH to
accelerate the shortest path computation required in the preprocessing
steps of SILC, PCPD, and TNR"). The standard tool for that is the
bucket-based many-to-many algorithm of Knopp et al.:

1. for every target ``t``, run a full (backward) upward search and drop
   an entry ``(t, d)`` into the bucket of every settled vertex;
2. for every source ``s``, run a full (forward) upward search; for each
   settled vertex ``v`` with distance ``d``, scan ``bucket[v]`` and
   lower ``table[s][t]`` to ``d + d_t``.

On an undirected graph the two searches are the same primitive
(:meth:`ContractionHierarchy.upward_search`). The result is exact: the
highest vertex of the optimal up-down path appears in both searches'
settled sets.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.ch.query import ContractionHierarchy


def many_to_many(
    ch: ContractionHierarchy,
    sources: Sequence[int],
    targets: Sequence[int],
) -> np.ndarray:
    """Exact distance table ``table[i][j] = dist(sources[i], targets[j])``.

    ``float32`` output (the paper's TNR tables store distances compactly;
    our integer travel-time weights fit float32 exactly up to 2^24, and
    the tests compare against Dijkstra at full precision before the
    cast). Unreachable pairs hold ``inf``.

    When ``sources`` and ``targets`` are the same sequence (the TNR
    access-node table), each upward search is run once and reused on
    both sides. Bucket scans are vectorised: the per-vertex buckets are
    ``(indices, distances)`` array pairs folded into each row with
    ``np.minimum.at``.
    """
    symmetric = list(sources) == list(targets)
    searches: list[dict[int, float]] = [
        ch.upward_search(t) for t in targets
    ]

    buckets_raw: dict[int, tuple[list[int], list[float]]] = {}
    for j, space in enumerate(searches):
        for v, d in space.items():
            entry = buckets_raw.get(v)
            if entry is None:
                buckets_raw[v] = ([j], [d])
            else:
                entry[0].append(j)
                entry[1].append(d)
    buckets = {
        v: (np.array(idx, dtype=np.intp), np.array(ds, dtype=np.float64))
        for v, (idx, ds) in buckets_raw.items()
    }

    table = np.full((len(sources), len(targets)), np.inf, dtype=np.float64)
    for i, s in enumerate(sources):
        space = searches[i] if symmetric else ch.upward_search(s)
        row = table[i]
        for v, d in space.items():
            idx, ds = buckets[v] if v in buckets else (None, None)
            if idx is None:
                continue
            if len(idx) > 8:
                np.minimum.at(row, idx, ds + d)
            else:
                for j, dt in zip(idx.tolist(), ds.tolist()):
                    total = d + dt
                    if total < row[j]:
                        row[j] = total
    return table.astype(np.float32)


def many_to_many_sparse(
    ch: ContractionHierarchy,
    nodes: Sequence[int],
    wanted: Callable[[int, int], bool],
) -> dict[tuple[int, int], float]:
    """Pairwise distances among ``nodes``, keeping only wanted pairs.

    ``wanted(i, j)`` (indices into ``nodes``) selects which entries to
    retain; the search work is the same as :func:`many_to_many`, but the
    output is a dict instead of a dense matrix — used by the hybrid
    grid of Appendix E.1, which stores fine-grid access-node distances
    only for cells whose outer shells overlap.

    Keys are ``(i, j)`` index pairs with ``wanted(i, j)`` true;
    unreachable wanted pairs are absent (treat as ``inf``).
    """
    buckets: dict[int, list[tuple[int, float]]] = {}
    for j, t in enumerate(nodes):
        for v, d in ch.upward_search(t).items():
            buckets.setdefault(v, []).append((j, d))

    result: dict[tuple[int, int], float] = {}
    for i, s in enumerate(nodes):
        best: dict[int, float] = {}
        for v, d in ch.upward_search(s).items():
            entries = buckets.get(v)
            if entries is None:
                continue
            for j, dt in entries:
                total = d + dt
                if total < best.get(j, np.inf):
                    best[j] = total
        for j, d in best.items():
            if wanted(i, j):
                result[(i, j)] = d
    return result
