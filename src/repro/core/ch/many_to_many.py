"""Bucket-based many-to-many distances on a contraction hierarchy.

TNR preprocessing needs the pairwise distances among all access nodes
(§3.3), and the paper computes them with CH (§4.1: "we employed CH to
accelerate the shortest path computation required in the preprocessing
steps of SILC, PCPD, and TNR"). The standard tool for that is the
bucket-based many-to-many algorithm of Knopp et al.:

1. for every target ``t``, run a full (backward) upward search and drop
   an entry ``(t, d)`` into the bucket of every settled vertex;
2. for every source ``s``, run a full (forward) upward search; for each
   settled vertex ``v`` with distance ``d``, scan ``bucket[v]`` and
   lower ``table[s][t]`` to ``d + d_t``.

On an undirected graph the two searches are the same primitive, and the
result is exact: the highest vertex of the optimal up-down path appears
in both searches' settled sets.

Flat-array engine
-----------------
The default implementation runs on the upward graph's
:class:`~repro.graph.csr.DirectedCSR` view:

- all upward searches of a phase run as chunked calls into scipy's
  compiled Dijkstra over the upward arc arrays;
- stalling is applied as a vectorised post-filter
  (:meth:`DirectedCSR.neighbor_min_bounds`): a settled label beaten by
  a higher neighbour's label plus the connecting arc is dropped. A
  stalled vertex cannot top an optimal up-down path (the §3.2 stall
  argument), so dropping it never changes a table entry — it only
  shrinks the buckets;
- bucket entries ``(vertex, target, d)`` append into preallocated flat
  arrays (:class:`_EntryStore`) that *grow geometrically* when the
  per-target estimate is exceeded — entries are never truncated;
- forward sweeps fold into the table per meeting vertex: the long tail
  of small buckets as one batched ``np.minimum.at`` scatter over whole
  settled-set rows, and the few peak vertices — whose buckets hold
  nearly every search and dominate the candidate count — as dense
  outer ``np.minimum`` blocks (see :func:`_fold_grouped`).

The pre-rewrite pure-Python implementation is kept verbatim as the
differential control; ``REPRO_NO_CSR=1`` (or a missing scipy) routes
every call through it, and ``tests/test_many_to_many.py`` asserts the
two produce bit-identical tables. Exactness of the flat engine does not
depend on which stall filter runs: every candidate ``d_up(s,v) +
d_up(v,t)`` is the length of a real s–t walk, and the optimal up-down
path's peak vertex is present (and unstalled) on both sides, so the
minimum is exactly ``dist(s, t)`` — bit-for-bit, since our integer
travel-time weights make every float64 sum exact.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

import numpy as np

from repro import obs
from repro.core.ch.query import ContractionHierarchy
from repro.graph.csr import HAVE_SCIPY, MIN_N_BATCH, DirectedCSR, _env_set

INF = float("inf")

#: Initial bucket-entry preallocation per target: the store starts at
#: ``hint * len(targets)`` entries. Purely a sizing estimate — stores
#: grow (doubling) when a search space overflows it; see
#: ``tests/test_many_to_many.py::TestBucketGrowth``.
BUCKET_CAPACITY_HINT = 48

#: Minimum upward searches per scipy call. Bounds the dense scratch to
#: ``chunk × n`` distance labels plus ``chunk × nnz`` stall candidates.
SEARCH_CHUNK = 64

#: Distance-label budget per sweep chunk (~4 MiB of float64): on small
#: graphs the chunk widens to amortise the per-call overhead, on large
#: graphs ``SEARCH_CHUNK`` keeps the dense scratch bounded.
_SWEEP_BUDGET = 1 << 19

#: ``np.minimum.at`` scatter block, in fold candidates.
_FOLD_BLOCK = 1 << 20

#: Per-vertex fold-candidate cutoff (``|fwd bucket| * |bwd bucket|``)
#: between the batched ``np.minimum.at`` scatter (the long tail of
#: small buckets) and the dense fancy-indexed fold (mid buckets).
_DENSE_CUTOFF = 512

#: Candidate fraction of the full table above which a bucket counts as
#: a near-universal peak and folds via inf-padded row sweeps instead of
#: fancy indexing (padding inflates the work by at most ~1/frac).
_PEAK_FRAC = 0.16

#: Table elements per row block of the dense peak fold (~512 KiB of
#: float64 — sized so the block stays cache-resident across all peaks
#: while keeping the per-peak call count low).
_PEAK_BLOCK = 1 << 16


def _flat_engine(ch: ContractionHierarchy) -> DirectedCSR | None:
    """The upward-graph CSR view when the flat engine should run.

    ``None`` (→ legacy pure-Python path) when scipy is unavailable,
    ``REPRO_NO_CSR=1`` is set, or the graph is below the batch cutoff
    and ``REPRO_FORCE_CSR=1`` does not override it — the same dispatch
    contract as :func:`repro.graph.csr.kernel_for`.
    """
    if not HAVE_SCIPY or _env_set("REPRO_NO_CSR"):
        return None
    index = ch.index
    if index.n < MIN_N_BATCH and not _env_set("REPRO_FORCE_CSR"):
        return None
    return index.upward_csr()


class _EntryStore:
    """Preallocated flat ``(vertex, search, dist)`` bucket-entry arrays.

    ``append_block`` grows the arrays geometrically whenever an append
    would overflow the current capacity. Growth — never truncation: a
    target set whose search spaces exceed the preallocation estimate
    must still contribute every entry (the silent-truncation hazard the
    PR-2 ``effective_chunksize`` fix guarded against in the parallel
    layer).
    """

    __slots__ = ("vertex", "search", "dist", "size")

    def __init__(self, capacity: int) -> None:
        cap = max(16, int(capacity))
        self.vertex = np.empty(cap, dtype=np.int64)
        self.search = np.empty(cap, dtype=np.int64)
        self.dist = np.empty(cap, dtype=np.float64)
        self.size = 0

    def append_block(self, vertex, search, dist) -> None:
        k = len(vertex)
        need = self.size + k
        cap = len(self.vertex)
        if need > cap:
            while cap < need:
                cap *= 2
            for name in ("vertex", "search", "dist"):
                old = getattr(self, name)
                new = np.empty(cap, dtype=old.dtype)
                new[: self.size] = old[: self.size]
                setattr(self, name, new)
        self.vertex[self.size : need] = vertex
        self.search[self.size : need] = search
        self.dist[self.size : need] = dist
        self.size = need

    def views(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return (
            self.vertex[: self.size],
            self.search[: self.size],
            self.dist[: self.size],
        )


def _settled_spaces(
    ucsr: DirectedCSR, nodes: Sequence[int], chunk: int
) -> Iterator[tuple[int, np.ndarray, np.ndarray, np.ndarray]]:
    """Stall-filtered upward search spaces, ``chunk`` sources at a time.

    Yields ``(base, rows, verts, dists)``: search ``base + rows[k]``
    settled vertex ``verts[k]`` at distance ``dists[k]`` (row-major, so
    entries of one search are contiguous and searches appear in input
    order).
    """
    from scipy.sparse.csgraph import dijkstra as _scipy_dijkstra

    mat = ucsr.matrix()
    idx = np.asarray(nodes, dtype=np.int64)
    chunk = max(chunk, _SWEEP_BUDGET // max(1, ucsr.n))
    for a in range(0, len(idx), chunk):
        dist = _scipy_dijkstra(mat, directed=True, indices=idx[a : a + chunk])
        rows, verts = np.nonzero(np.isfinite(dist))
        labels = dist[rows, verts]
        keep = ~ucsr.stalled_entries(dist, rows, verts, labels)
        yield a, rows[keep], verts[keep], labels[keep]


def _group_by_vertex(
    vertex: np.ndarray, search: np.ndarray, dist: np.ndarray, n: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Group ``(vertex, search, dist)`` entries into CSR-style buckets."""
    order = np.argsort(vertex, kind="stable")  # per-vertex: search-ordered
    counts = np.bincount(vertex, minlength=n)
    indptr = np.empty(n + 1, dtype=np.int64)
    indptr[0] = 0
    np.cumsum(counts, out=indptr[1:])
    return indptr, search[order], dist[order]


def _fold_grouped(
    table: np.ndarray,
    fwd: tuple[np.ndarray, np.ndarray, np.ndarray],
    bwd: tuple[np.ndarray, np.ndarray, np.ndarray],
) -> None:
    """Lower ``table[s, t]`` to ``d_s + d_t`` over every meeting vertex.

    Both sides are vertex-grouped bucket triples from
    :func:`_group_by_vertex`; a vertex ``v`` contributes the cross
    product of its forward entries ``(s, d_s)`` and backward entries
    ``(t, d_t)``. Three regimes, split per vertex by candidate count:

    - the long tail of small buckets folds as one batched
      ``np.minimum.at`` scatter over all their candidates (blocked to
      bound the temporary index arrays);
    - mid-sized buckets fold as dense outer blocks through flat fancy
      indexing — within one vertex each search index appears at most
      once, so the gathered read-modify-write block touches unique
      cells and is exact;
    - near-universal peaks — the top of the hierarchy sits in nearly
      every search space, so its buckets hold ~|T| entries and dominate
      the candidate count — fold as inf-padded row vectors (a pad entry
      never lowers a cell) swept over the table in L2-sized row blocks:
      the table block stays hot across all peaks, so each peak costs
      two fused passes over cached memory instead of a strided scatter.

    When both sides are the *same* grouping (the symmetric TNR table),
    the candidate set is symmetric — ``d_i + d_j`` at ``v`` serves both
    ``(i, j)`` and ``(j, i)`` — so every tier folds only ``i <= j`` and
    one ``min(table, table.T)`` mirror finishes the job at half the
    candidate volume.

    The fold is a pure minimum over float64 candidate sums, so the
    result is independent of evaluation order and tiering —
    bit-identical to the legacy per-vertex scatter.
    """
    f_indptr, f_search, f_dist = fwd
    b_indptr, b_search, b_dist = bwd
    symmetric = fwd is bwd
    nf = np.diff(f_indptr)
    nb = np.diff(b_indptr)
    active = np.flatnonzero((nf > 0) & (nb > 0))
    if len(active) == 0:
        return
    prod = nf[active] * nb[active]
    n_sources, n_targets = table.shape
    small = active[prod <= _DENSE_CUTOFF]
    rest = active[prod > _DENSE_CUTOFF]
    full = rest[prod[prod > _DENSE_CUTOFF] >= _PEAK_FRAC * n_sources * n_targets]
    mid = rest[prod[prod > _DENSE_CUTOFF] < _PEAK_FRAC * n_sources * n_targets]
    flat_table = table.ravel()

    if obs.ENABLED:
        # The three-regime split is the whole point of the fold; the
        # tallies explain where candidate volume went on a given table.
        obs.registry().add_counters(
            "m2m.fold",
            {
                "folds": 1,
                "small_vertices": len(small),
                "mid_vertices": len(mid),
                "peak_vertices": len(full),
                "candidates": int(prod.sum()),
            },
        )

    def cross_block(sel: np.ndarray):
        """Flat candidate (count-per-vertex, table index, value) arrays
        for the cross products of ``sel``'s buckets, vertex-major; in
        the symmetric case only the ``i <= j`` half is emitted."""
        mf = nf[sel].astype(np.int64)
        mb = nb[sel].astype(np.int64)
        c = mf * mb
        # Two-level repeat, no per-element division: enumerate forward
        # positions row-major (each repeated by its vertex's backward
        # count), then lay the backward positions out cyclically per row.
        n_rows = int(mf.sum())
        row_owner = np.repeat(np.arange(len(sel)), mf)
        row_within = np.arange(n_rows, dtype=np.int64) - np.repeat(
            np.cumsum(mf) - mf, mf
        )
        fpos_row = f_indptr[sel][row_owner] + row_within
        reps = mb[row_owner]
        total = int(c.sum())
        owner = np.repeat(row_owner, reps)
        fpos = np.repeat(fpos_row, reps)
        col_within = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(reps) - reps, reps
        )
        bpos = np.repeat(b_indptr[sel][row_owner], reps) + col_within
        rows = f_search[fpos]
        cols = b_search[bpos]
        vals = f_dist[fpos] + b_dist[bpos]
        if symmetric:
            keep = rows <= cols
            c = np.bincount(owner[keep], minlength=len(sel)).astype(np.int64)
            rows, cols, vals = rows[keep], cols[keep], vals[keep]
        return c, rows * np.int64(n_targets) + cols, vals

    def blocks(sel: np.ndarray):
        """Split ``sel`` into runs whose cross products stay under the
        ``_FOLD_BLOCK`` temporary-array budget."""
        ends = np.cumsum((nf[sel] * nb[sel]).astype(np.int64))
        lo = 0
        while lo < len(sel):
            hi = int(
                np.searchsorted(ends, (ends[lo - 1] if lo else 0) + _FOLD_BLOCK,
                                "left")
            ) + 1
            hi = min(max(hi, lo + 1), len(sel))
            yield sel[lo:hi]
            lo = hi

    # Small tier: one np.minimum.at scatter per block of candidates.
    for sel in blocks(small):
        _, idx, vals = cross_block(sel)
        if len(idx):
            np.minimum.at(flat_table, idx, vals)

    # Mid tier: per vertex, a dense outer fold through flat fancy
    # indexing — within one vertex each search index appears at most
    # once, so the gathered read-modify-write touches unique cells.
    if len(mid):
        triu_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for v in mid.tolist():
            fsl = slice(f_indptr[v], f_indptr[v + 1])
            rows, dr = f_search[fsl], f_dist[fsl]
            if symmetric:
                m = len(rows)
                iu = triu_cache.get(m)
                if iu is None:
                    iu = triu_cache[m] = np.triu_indices(m)
                idx = rows[iu[0]] * n_targets + rows[iu[1]]
                vals = dr[iu[0]] + dr[iu[1]]
            else:
                bsl = slice(b_indptr[v], b_indptr[v + 1])
                cols, dc = b_search[bsl], b_dist[bsl]
                idx = (rows[:, None] * n_targets + cols[None, :]).ravel()
                vals = (dr[:, None] + dc[None, :]).ravel()
            sub = flat_table[idx]
            np.minimum(sub, vals, out=sub)
            flat_table[idx] = sub

    if len(full):
        p = len(full)
        df = np.full((p, n_sources), INF)
        for k, v in enumerate(full.tolist()):
            sl = slice(f_indptr[v], f_indptr[v + 1])
            df[k, f_search[sl]] = f_dist[sl]
        if symmetric:
            db = df
        else:
            db = np.full((p, n_targets), INF)
            for k, v in enumerate(full.tolist()):
                sl = slice(b_indptr[v], b_indptr[v + 1])
                db[k, b_search[sl]] = b_dist[sl]
        blk = min(n_sources, max(16, _PEAK_BLOCK // max(1, n_targets)))
        scratch = np.empty(blk * n_targets)
        for a in range(0, n_sources, blk):
            b = min(a + blk, n_sources)
            cl = a if symmetric else 0  # upper-triangle blocks only
            tblk = table[a:b, cl:]
            sblk = scratch[: (b - a) * (n_targets - cl)].reshape(
                b - a, n_targets - cl
            )
            for k in range(p):
                np.add(df[k, a:b, None], db[k, None, cl:], out=sblk)
                np.minimum(tblk, sblk, out=tblk)

    if symmetric:
        np.minimum(table, table.T, out=table)


def _many_to_many_csr(
    ch: ContractionHierarchy,
    ucsr: DirectedCSR,
    sources: Sequence[int],
    targets: Sequence[int],
    dtype,
    chunk: int,
) -> np.ndarray:
    src = [int(s) for s in sources]
    tgt = [int(t) for t in targets]
    table = np.full((len(src), len(tgt)), INF, dtype=np.float64)
    if not src or not tgt:
        return table.astype(dtype)

    with obs.span("m2m.sweep_backward"):
        store = _EntryStore(BUCKET_CAPACITY_HINT * len(tgt))
        for base, rows, verts, dists in _settled_spaces(ucsr, tgt, chunk):
            store.append_block(verts, rows + base, dists)
        bwd = _group_by_vertex(*store.views(), ucsr.n)
    bucket_entries = store.size

    if src == tgt:
        # Symmetric (the TNR access-node table): the backward sweep's
        # buckets double as the forward settled sets.
        fwd = bwd
    else:
        with obs.span("m2m.sweep_forward"):
            fstore = _EntryStore(BUCKET_CAPACITY_HINT * len(src))
            for base, rows, verts, dists in _settled_spaces(ucsr, src, chunk):
                fstore.append_block(verts, rows + base, dists)
            fwd = _group_by_vertex(*fstore.views(), ucsr.n)
        bucket_entries += fstore.size
    with obs.span("m2m.fold"):
        _fold_grouped(table, fwd, bwd)
    if obs.ENABLED:
        obs.registry().add_counters(
            "m2m", {"tables": 1, "bucket_entries": bucket_entries}
        )
    return table.astype(dtype)


def many_to_many(
    ch: ContractionHierarchy,
    sources: Sequence[int],
    targets: Sequence[int],
    dtype=np.float32,
    chunk: int = SEARCH_CHUNK,
) -> np.ndarray:
    """Exact distance table ``table[i][j] = dist(sources[i], targets[j])``.

    ``float32`` output by default (the paper's TNR tables store
    distances compactly; our integer travel-time weights fit float32
    exactly up to 2^24) — pass ``dtype=np.float64`` for the serve path,
    where answers must match per-pair queries bit-for-bit at any
    magnitude. Unreachable pairs hold ``inf``.

    Runs on the flat-array engine (module docstring) unless
    ``REPRO_NO_CSR=1`` / missing scipy routes it through the legacy
    pure-Python buckets; both produce bit-identical tables.
    """
    ucsr = _flat_engine(ch)
    if ucsr is not None:
        return _many_to_many_csr(ch, ucsr, sources, targets, dtype, chunk)
    with obs.span("m2m.legacy"):
        return _many_to_many_py(ch, sources, targets, dtype)


def _many_to_many_py(
    ch: ContractionHierarchy,
    sources: Sequence[int],
    targets: Sequence[int],
    dtype=np.float32,
) -> np.ndarray:
    """Legacy dict-bucket implementation (the differential control).

    When ``sources`` and ``targets`` are the same sequence (the TNR
    access-node table), each upward search is run once and reused on
    both sides. Bucket scans are vectorised: the per-vertex buckets are
    ``(indices, distances)`` array pairs folded into each row with
    ``np.minimum.at``.
    """
    symmetric = list(sources) == list(targets)
    searches: list[dict[int, float]] = [
        ch.upward_search(t) for t in targets
    ]

    buckets_raw: dict[int, tuple[list[int], list[float]]] = {}
    for j, space in enumerate(searches):
        for v, d in space.items():
            entry = buckets_raw.get(v)
            if entry is None:
                buckets_raw[v] = ([j], [d])
            else:
                entry[0].append(j)
                entry[1].append(d)
    buckets = {
        v: (np.array(idx, dtype=np.intp), np.array(ds, dtype=np.float64))
        for v, (idx, ds) in buckets_raw.items()
    }

    table = np.full((len(sources), len(targets)), np.inf, dtype=np.float64)
    for i, s in enumerate(sources):
        space = searches[i] if symmetric else ch.upward_search(s)
        row = table[i]
        for v, d in space.items():
            idx, ds = buckets[v] if v in buckets else (None, None)
            if idx is None:
                continue
            if len(idx) > 8:
                np.minimum.at(row, idx, ds + d)
            else:
                for j, dt in zip(idx.tolist(), ds.tolist()):
                    total = d + dt
                    if total < row[j]:
                        row[j] = total
    return table.astype(dtype)


def many_to_many_sparse(
    ch: ContractionHierarchy,
    nodes: Sequence[int],
    wanted: Callable[[int, int], bool],
    chunk: int = SEARCH_CHUNK,
) -> dict[tuple[int, int], float]:
    """Pairwise distances among ``nodes``, keeping only wanted pairs.

    ``wanted(i, j)`` (indices into ``nodes``) selects which entries to
    retain; the search work is the same as :func:`many_to_many`, but the
    output is a dict instead of a dense matrix — used by the hybrid
    grid of Appendix E.1, which stores fine-grid access-node distances
    only for cells whose outer shells overlap.

    Keys are ``(i, j)`` index pairs with ``wanted(i, j)`` true;
    unreachable wanted pairs are absent (treat as ``inf``).
    """
    ucsr = _flat_engine(ch)
    if ucsr is not None:
        return _many_to_many_sparse_csr(ch, ucsr, nodes, wanted, chunk)
    return _many_to_many_sparse_py(ch, nodes, wanted)


def _many_to_many_sparse_csr(
    ch: ContractionHierarchy,
    ucsr: DirectedCSR,
    nodes: Sequence[int],
    wanted: Callable[[int, int], bool],
    chunk: int,
) -> dict[tuple[int, int], float]:
    """Flat-engine sparse variant: fold in row blocks, filter, discard.

    Never materialises the dense ``k × k`` table — row blocks are
    folded, their finite wanted entries copied out, and the block
    dropped, keeping peak memory at ``O(block × k)``.
    """
    ids = [int(v) for v in nodes]
    result: dict[tuple[int, int], float] = {}
    k = len(ids)
    if k == 0:
        return result

    store = _EntryStore(BUCKET_CAPACITY_HINT * k)
    for base, rows, verts, dists in _settled_spaces(ucsr, ids, chunk):
        store.append_block(verts, rows + base, dists)
    bwd = _group_by_vertex(*store.views(), ucsr.n)

    verts, searches, dists = store.views()  # searches are non-decreasing
    block = max(1, min(k, (1 << 21) // k))
    for lo in range(0, k, block):
        hi = min(lo + block, k)
        a = int(np.searchsorted(searches, lo, "left"))
        b = int(np.searchsorted(searches, hi, "left"))
        sub = np.full((hi - lo, k), INF, dtype=np.float64)
        fwd = _group_by_vertex(
            verts[a:b], searches[a:b] - lo, dists[a:b], ucsr.n
        )
        _fold_grouped(sub, fwd, bwd)
        for i in range(lo, hi):
            row = sub[i - lo]
            for j in np.flatnonzero(np.isfinite(row)).tolist():
                if wanted(i, j):
                    result[(i, j)] = float(row[j])
    return result


def _many_to_many_sparse_py(
    ch: ContractionHierarchy,
    nodes: Sequence[int],
    wanted: Callable[[int, int], bool],
) -> dict[tuple[int, int], float]:
    """Legacy dict-bucket sparse variant (the differential control)."""
    buckets: dict[int, list[tuple[int, float]]] = {}
    for j, t in enumerate(nodes):
        for v, d in ch.upward_search(t).items():
            buckets.setdefault(v, []).append((j, d))

    result: dict[tuple[int, int], float] = {}
    for i, s in enumerate(nodes):
        best: dict[int, float] = {}
        for v, d in ch.upward_search(s).items():
            entries = buckets.get(v)
            if entries is None:
                continue
            for j, dt in entries:
                total = d + dt
                if total < best.get(j, np.inf):
                    best[j] = total
        for j, d in best.items():
            if wanted(i, j):
                result[(i, j)] = d
    return result
