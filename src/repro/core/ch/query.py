"""CH queries: bidirectional upward search and shortcut unpacking (§3.2).

A distance query runs two Dijkstra instances that only relax edges
leading to *higher-ranked* vertices (the modification described in
§3.2). The searches do not stop at the first meeting vertex — "there
exist a few conditions that a traversal should fulfill before it can
terminate" — each direction keeps running until its frontier's lower
bound reaches the best connection found so far.

A shortest-path query additionally records parent pointers, yielding a
path in the *augmented* graph that may contain shortcuts; the shortcut
tags are then expanded recursively ("CH removes c from the path, and
replaces it with two edges") until only original edges remain. The
paper measures exactly this extra unpacking cost in §4.6.
"""

from __future__ import annotations

import math
import time
from heapq import heappop, heappush

from repro import obs
from repro.core.ch.contraction import ORIGINAL_EDGE, CHIndex, build_ch
from repro.core.ch.ordering import OrderingConfig
from repro.graph.graph import Graph

INF = math.inf


class ContractionHierarchy:
    """The CH query object; implements the common technique interface.

    >>> from repro.graph.generators import paper_example_graph
    >>> ch = ContractionHierarchy.build(
    ...     paper_example_graph(),
    ...     OrderingConfig(strategy="fixed", fixed_order=tuple(range(8))))
    >>> ch.distance(2, 6)   # v3 -> v7, the §3.2 walkthrough
    6.0
    >>> [v + 1 for v in ch.path(2, 6)[1]]   # unpacked to original edges
    [3, 1, 8, 6, 5, 7]
    """

    name = "CH"

    def __init__(self, graph: Graph, index: CHIndex, use_stalling: bool = True) -> None:
        if graph.n != index.n:
            raise ValueError("index was built for a different graph")
        self.graph = graph
        self.index = index
        self.use_stalling = use_stalling
        self.last_settled = 0

    @classmethod
    def build(
        cls,
        graph: Graph,
        config: OrderingConfig | None = None,
        witness_settle_limit: int = 40,
        use_stalling: bool = True,
    ) -> "ContractionHierarchy":
        """Preprocess ``graph`` and return the query object."""
        index = build_ch(graph, config, witness_settle_limit)
        return cls(graph, index, use_stalling)

    @property
    def preprocessing_seconds(self) -> float:
        return self.index.stats.seconds

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def distance(self, source: int, target: int) -> float:
        """Distance query over the augmented upward graph."""
        best, _, _, _ = self._search(source, target)
        return best

    def distance_table(self, sources, targets) -> "np.ndarray":
        """Batched distances: ``table[i][j] = dist(sources[i], targets[j])``.

        Runs the bucket-based many-to-many algorithm (one upward sweep
        per endpoint instead of one bidirectional search per pair) in
        float64, so every entry equals the per-pair :meth:`distance`
        answer exactly. Unreachable pairs hold ``inf``.
        """
        import numpy as np

        from repro.core.ch.many_to_many import many_to_many

        return many_to_many(self, sources, targets, dtype=np.float64)

    def path(self, source: int, target: int) -> tuple[float, list[int] | None]:
        """Shortest path query: upward search, then shortcut expansion."""
        best, meet, fparent, bparent = self._search(source, target)
        if best is INF or meet is None:
            return INF, None
        augmented: list[int] = [meet]
        node = meet
        while node != source:
            node = fparent[node]
            augmented.append(node)
        augmented.reverse()
        node = meet
        while node != target:
            node = bparent[node]
            augmented.append(node)
        return best, self.unpack_path(augmented)

    def augmented_path(self, source: int, target: int) -> tuple[float, list[int] | None]:
        """Like :meth:`path` but *without* unpacking shortcuts.

        Exposed so the harness can measure the unpacking overhead the
        paper discusses in §4.6 as a separate ablation.
        """
        best, meet, fparent, bparent = self._search(source, target)
        if best is INF or meet is None:
            return INF, None
        augmented = [meet]
        node = meet
        while node != source:
            node = fparent[node]
            augmented.append(node)
        augmented.reverse()
        node = meet
        while node != target:
            node = bparent[node]
            augmented.append(node)
        return best, augmented

    # ------------------------------------------------------------------
    # Unpacking
    # ------------------------------------------------------------------
    def unpack_path(self, augmented: list[int]) -> list[int]:
        """Expand every shortcut in an augmented path to original edges."""
        if len(augmented) < 2:
            return list(augmented)
        result = [augmented[0]]
        for u, v in zip(augmented, augmented[1:]):
            result.extend(self.unpack_edge(u, v)[1:])
        return result

    def unpack_edge(self, u: int, v: int) -> list[int]:
        """Expand one CH edge to the original-edge path it represents.

        Iterative (explicit stack): augmented paths on big networks can
        expand to thousands of edges, which would overflow Python's
        recursion limit.
        """
        middle = self.index.middle
        out = [u]
        stack = [(u, v)]
        while stack:
            a, b = stack.pop()
            via = middle.get((a, b) if a < b else (b, a))
            if via is None:
                raise KeyError(f"({a}, {b}) is not an edge of the hierarchy")
            if via == ORIGINAL_EDGE:
                out.append(b)
            else:
                # Expand left half first: push right, then left.
                stack.append((via, b))
                stack.append((a, via))
        return out

    # ------------------------------------------------------------------
    # Search internals
    # ------------------------------------------------------------------
    def _search(
        self, source: int, target: int
    ) -> tuple[float, int | None, dict[int, int], dict[int, int]]:
        """Bidirectional upward Dijkstra with stall-on-demand."""
        if source == target:
            self.last_settled = 0
            return 0.0, source, {source: source}, {target: target}
        up = self.index.up
        stalling = self.use_stalling
        counting = obs.ENABLED  # one check per query, not per settle
        n_stalls = 0

        dist = ({source: 0.0}, {target: 0.0})
        parent = ({source: source}, {target: target})
        settled: tuple[set[int], set[int]] = (set(), set())
        heaps: tuple[list, list] = ([(0.0, source)], [(0.0, target)])
        best = INF
        meet: int | None = None

        while heaps[0] or heaps[1]:
            # Pick the direction with the smaller frontier key; a
            # direction whose key already exceeds `best` is finished.
            key0 = heaps[0][0][0] if heaps[0] else INF
            key1 = heaps[1][0][0] if heaps[1] else INF
            if min(key0, key1) >= best:
                break
            side = 0 if key0 <= key1 else 1
            d, u = heappop(heaps[side])
            my_dist, other_dist = dist[side], dist[1 - side]
            if u in settled[side]:
                continue
            settled[side].add(u)

            du_other = other_dist.get(u)
            if du_other is not None and d + du_other < best:
                best = d + du_other
                meet = u

            edges = up[u]
            if stalling:
                stalled = False
                for v, w, _ in edges:
                    dv = my_dist.get(v)
                    if dv is not None and dv + w < d:
                        stalled = True
                        break
                if stalled:
                    if counting:
                        n_stalls += 1
                    continue
            for v, w, _ in edges:
                nd = d + w
                if nd < my_dist.get(v, INF):
                    my_dist[v] = nd
                    parent[side][v] = u
                    heappush(heaps[side], (nd, v))

        self.last_settled = len(settled[0]) + len(settled[1])
        if counting:
            obs.registry().add_counters(
                "ch.query",
                {
                    "queries": 1,
                    "settled": self.last_settled,
                    "stalls": n_stalls,
                },
            )
        if best is INF:
            return INF, None, parent[0], parent[1]
        return best, meet, parent[0], parent[1]

    # ------------------------------------------------------------------
    def upward_search(self, source: int, stall: bool = True) -> dict[int, float]:
        """Full upward search space of ``source``: ``{vertex: dist}``.

        The primitive under the bucket-based many-to-many algorithm
        (:mod:`repro.core.ch.many_to_many`). With ``stall`` (default), a
        settled vertex whose label is beaten by a higher neighbour's
        label plus the connecting edge is *stalled*: it is neither
        relaxed nor reported. A stalled vertex cannot be the top of the
        optimal up-down path (its label is not the true distance), so
        many-to-many results stay exact while search spaces shrink
        substantially.
        """
        up = self.index.up
        dist: dict[int, float] = {source: 0.0}
        settled: dict[int, float] = {}
        heap: list[tuple[float, int]] = [(0.0, source)]
        dist_get = dist.get
        while heap:
            d, u = heappop(heap)
            if u in settled or d > dist[u]:
                continue
            edges = up[u]
            if stall:
                stalled = False
                for v, w, _ in edges:
                    dv = dist_get(v)
                    if dv is not None and dv + w < d:
                        stalled = True
                        break
                if stalled:
                    continue
            settled[u] = d
            for v, w, _ in edges:
                nd = d + w
                if nd < dist_get(v, INF):
                    dist[v] = nd
                    heappush(heap, (nd, v))
        return settled


def timed_build(
    graph: Graph,
    config: OrderingConfig | None = None,
    witness_settle_limit: int = 40,
) -> tuple[ContractionHierarchy, float]:
    """Build a CH and return it with the wall-clock build time."""
    start = time.perf_counter()
    ch = ContractionHierarchy.build(graph, config, witness_settle_limit)
    return ch, time.perf_counter() - start
