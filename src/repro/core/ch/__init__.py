"""Contraction Hierarchies (Geisberger et al. [11], paper §3.2).

The preprocessing step imposes a total order on the vertices, contracts
them in that order, and records the shortcuts needed to preserve all
pairwise distances among not-yet-contracted vertices. Queries run a
bidirectional Dijkstra that only ever climbs to higher-ranked vertices.

Public entry points:

- :func:`build_ch` / :class:`ContractionHierarchy` — preprocessing + the
  query object (``distance``/``path``);
- :func:`many_to_many` — the bucket-based many-to-many table algorithm
  used by TNR preprocessing (paper §4.1);
- :mod:`~repro.core.ch.ordering` — the vertex-ordering heuristics
  ("existing work on CH has suggested several heuristic approaches",
  §3.2), exposed for the ordering ablation bench.
"""

from repro.core.ch.contraction import build_ch
from repro.core.ch.many_to_many import many_to_many
from repro.core.ch.ordering import OrderingConfig
from repro.core.ch.query import ContractionHierarchy

__all__ = ["ContractionHierarchy", "OrderingConfig", "build_ch", "many_to_many"]
