"""Vertex-ordering heuristics for Contraction Hierarchies.

The paper (§3.2) notes that CH's efficiency hinges on the total order:
"an inferior ordering can lead to O(n²) shortcuts", and refers to the
heuristics of Geisberger et al. [11]. We implement the standard lazy
priority scheme:

- each uncontracted vertex carries a priority combining its *edge
  difference* (shortcuts a contraction would create minus edges it
  removes), its count of already-contracted neighbours (spreads the
  contraction evenly over the map), and the hop width of its shortcuts;
- vertices sit in an addressable heap; when one is popped its priority
  is recomputed ("lazy update") and it is re-queued if it is no longer
  minimal;
- after a contraction only the ex-neighbours' priorities are refreshed.

Alternative strategies (``random``, ``degree``, ``edge_difference`` with
no tie terms, or a caller-supplied fixed order) exist for the ordering
ablation bench, which reproduces the paper's O(n²)-shortcut warning
empirically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

#: Recognised strategy names, mirrored in the ablation bench.
STRATEGIES = ("edge_difference", "edge_difference_only", "degree", "random", "fixed")


@dataclass(frozen=True)
class OrderingConfig:
    """How the contraction order is derived.

    Parameters
    ----------
    strategy:
        One of :data:`STRATEGIES`. The default ``edge_difference`` is
        the [11]-style combined heuristic.
    edge_difference_weight, deleted_neighbours_weight, hops_weight:
        Coefficients of the combined priority (only used by the
        ``edge_difference`` strategy).
    seed:
        RNG seed for the ``random`` strategy.
    fixed_order:
        Contraction order for the ``fixed`` strategy —
        ``fixed_order[i]`` is the vertex contracted ``i``-th. The
        paper's Figure 1 walkthrough uses a fixed order v1 < ... < v8.
    """

    strategy: str = "edge_difference"
    edge_difference_weight: float = 4.0
    deleted_neighbours_weight: float = 1.0
    hops_weight: float = 1.0
    seed: int = 0
    fixed_order: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown ordering strategy {self.strategy!r}; pick from {STRATEGIES}"
            )
        if self.strategy == "fixed" and self.fixed_order is None:
            raise ValueError("fixed strategy requires fixed_order")

    def is_lazy(self) -> bool:
        """Whether priorities change as contraction proceeds."""
        return self.strategy in ("edge_difference", "edge_difference_only", "degree")

    def initial_priority(
        self,
        vertex: int,
        n: int,
        rng: np.random.Generator,
    ) -> float:
        """Static priority for the non-adaptive strategies."""
        if self.strategy == "random":
            return float(rng.random())
        if self.strategy == "fixed":
            order = self.fixed_order
            assert order is not None
            try:
                return float(order.index(vertex))
            except ValueError:
                raise ValueError(f"fixed_order is missing vertex {vertex}") from None
        raise AssertionError("lazy strategies compute priorities dynamically")

    def combine(
        self,
        shortcuts: int,
        removed_edges: int,
        deleted_neighbours: int,
        shortcut_hops: int,
    ) -> float:
        """Dynamic priority for the lazy strategies (lower = sooner)."""
        if self.strategy == "degree":
            return float(removed_edges)
        edge_difference = shortcuts - removed_edges
        if self.strategy == "edge_difference_only":
            return float(edge_difference)
        return (
            self.edge_difference_weight * edge_difference
            + self.deleted_neighbours_weight * deleted_neighbours
            + self.hops_weight * shortcut_hops
        )


def validate_fixed_order(order: Sequence[int], n: int) -> tuple[int, ...]:
    """Check that ``order`` is a permutation of ``range(n)``."""
    order = tuple(order)
    if sorted(order) != list(range(n)):
        raise ValueError(f"fixed order must be a permutation of range({n})")
    return order


PriorityFn = Callable[[int], float]
