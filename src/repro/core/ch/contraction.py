"""CH preprocessing: witness search and vertex contraction (§3.2).

Contracting a vertex ``v`` inspects each pair of current neighbours
``(a, b)`` and asks whether the shortest ``a``–``b`` path (in the
*remaining* overlay graph) passes through ``v``. If no *witness path*
avoiding ``v`` of length ≤ ``w(a,v) + w(v,b)`` exists, a shortcut
``(a, b)`` with that weight is inserted, tagged with ``v`` ("the tags of
shortcuts are crucial for shortest path queries", §3.2).

The witness search is a budgeted Dijkstra: it may *miss* a witness (the
settle budget runs out), which merely adds a redundant shortcut, but it
can never fabricate one — so the hierarchy is always exact regardless
of the budget.

The final structure keeps, for every vertex, its *upward* edges (to
neighbours contracted later) with their shortcut tags; that is all the
query side (:mod:`repro.core.ch.query`) needs.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from heapq import heappop, heappush

import numpy as np

from repro import obs
from repro.core.ch.ordering import OrderingConfig, validate_fixed_order
from repro.graph.csr import DirectedCSR, ScratchLabels
from repro.graph.graph import Graph
from repro.graph.pqueue import AddressableHeap

INF = math.inf

#: ``via`` tag marking an original (non-shortcut) edge.
ORIGINAL_EDGE = -1


@dataclass
class BuildStats:
    """Diagnostics of one preprocessing run."""

    seconds: float = 0.0
    shortcuts_added: int = 0
    witness_settles: int = 0
    priority_recomputations: int = 0


@dataclass
class CHIndex:
    """The product of CH preprocessing.

    Attributes
    ----------
    rank:
        ``rank[v]`` is v's position in the total order (0 = contracted
        first = least important).
    up:
        ``up[v]`` lists ``(neighbour, weight, via)`` for every edge or
        shortcut between ``v`` and a *higher-ranked* neighbour, frozen
        at the moment ``v`` was contracted. ``via`` is the contracted
        vertex a shortcut bypasses, or :data:`ORIGINAL_EDGE`.
    middle:
        ``(min(u,v), max(u,v)) -> via`` for every edge in ``up`` —
        the shortcut tags used by recursive path unpacking.
    """

    n: int
    rank: list[int]
    up: list[list[tuple[int, float, int]]]
    middle: dict[tuple[int, int], int]
    stats: BuildStats = field(default_factory=BuildStats)
    #: Lazily built flat-array view of the upward graph (not part of
    #: the index identity; rebuilt on demand after unpickling).
    _upward: object = field(default=None, repr=False, compare=False)

    @property
    def n_shortcuts(self) -> int:
        return self.stats.shortcuts_added

    @property
    def n_up_edges(self) -> int:
        return sum(len(edges) for edges in self.up)

    def order(self) -> list[int]:
        """Vertices in contraction order (least important first)."""
        result = [0] * self.n
        for v, r in enumerate(self.rank):
            result[r] = v
        return result

    def upward_csr(self) -> DirectedCSR:
        """The upward graph as flat directed-CSR arrays (cached).

        One arc per ``up`` entry — every edge or shortcut from a vertex
        to a higher-ranked neighbour, rows head-sorted. This is the
        layout the flat-array many-to-many engine sweeps
        (:mod:`repro.core.ch.many_to_many`); ``rank`` stays available
        on the index for callers that need rank-ordered traversal.
        """
        if self._upward is None:
            self._upward = DirectedCSR.from_rows(
                [[(v, w) for v, w, _ in edges] for edges in self.up]
            )
        return self._upward


class _Contractor:
    """Mutable overlay graph plus the contraction machinery."""

    def __init__(self, graph: Graph, config: OrderingConfig, witness_settle_limit: int):
        self.config = config
        self.witness_settle_limit = witness_settle_limit
        self.stats = BuildStats()
        n = graph.n
        # adj[u][v] = (weight, via, hops); hops counts original edges a
        # shortcut spans, feeding the ordering heuristic.
        self.adj: list[dict[int, tuple[float, int, int]]] = [dict() for _ in range(n)]
        for u in range(n):
            for v, w in graph.neighbors(u):
                self.adj[u][v] = (w, ORIGINAL_EDGE, 1)
        self.contracted = [False] * n
        self.deleted_neighbours = [0] * n
        # One flat label set reused by every witness search (contraction
        # is single-threaded); dist doubles as the tentative labels and
        # mark as the settled flags, reset in O(touched) per search.
        self._scratch = ScratchLabels(n)

    # ------------------------------------------------------------------
    def witness_distances(
        self, source: int, targets: set[int], excluded: int, cutoff: float
    ) -> dict[int, float]:
        """Budgeted Dijkstra from ``source`` avoiding ``excluded``.

        Returns settled distances for the targets it reached within the
        budget and ``cutoff``; absent targets mean "no witness found".
        """
        scratch = self._scratch
        dist = scratch.dist
        settled = scratch.mark
        touched = scratch.touched
        marked = scratch.marked
        found: dict[int, float] = {}
        dist[source] = 0.0
        touched.append(source)
        heap: list[tuple[float, int]] = [(0.0, source)]
        budget = self.witness_settle_limit
        remaining = len(targets)
        adj = self.adj
        contracted = self.contracted
        settles = 0
        try:
            while heap and budget > 0 and remaining > 0:
                d, u = heappop(heap)
                if settled[u]:
                    continue
                settled[u] = 1
                marked.append(u)
                budget -= 1
                settles += 1
                if u in targets and u not in found:
                    found[u] = d
                    remaining -= 1
                for v, (w, _, _) in adj[u].items():
                    if v == excluded or contracted[v]:
                        continue
                    nd = d + w
                    if nd <= cutoff and nd < dist[v]:
                        if dist[v] == INF:
                            touched.append(v)
                        dist[v] = nd
                        heappush(heap, (nd, v))
            return found
        finally:
            self.stats.witness_settles += settles
            scratch.reset()

    def required_shortcuts(self, v: int) -> list[tuple[int, int, float, int]]:
        """Shortcuts contraction of ``v`` would need: ``(a, b, w, hops)``.

        For every unordered neighbour pair ``(a, b)``, a shortcut is
        required unless a witness path of length ≤ ``w(a,v) + w(v,b)``
        avoids ``v`` (ties favour the witness, matching the Figure 1/2
        walkthrough where no v3–v4 shortcut appears).
        """
        neighbours = [
            (u, w, hops)
            for u, (w, _, hops) in self.adj[v].items()
            if not self.contracted[u]
        ]
        if len(neighbours) < 2:
            return []
        shortcuts: list[tuple[int, int, float, int]] = []
        for i, (a, wa, ha) in enumerate(neighbours):
            rest = neighbours[i + 1 :]
            if not rest:
                break
            targets = {b for b, _, _ in rest}
            cutoff = wa + max(wb for _, wb, _ in rest)
            witness = self.witness_distances(a, targets, v, cutoff)
            for b, wb, hb in rest:
                through = wa + wb
                if witness.get(b, INF) > through:
                    shortcuts.append((a, b, through, ha + hb))
        return shortcuts

    def priority(self, v: int) -> float:
        """Current contraction priority of ``v`` (lazy strategies)."""
        self.stats.priority_recomputations += 1
        shortcuts = self.required_shortcuts(v)
        removed = sum(1 for u in self.adj[v] if not self.contracted[u])
        hops = sum(h for _, _, _, h in shortcuts)
        return self.config.combine(
            shortcuts=len(shortcuts),
            removed_edges=removed,
            deleted_neighbours=self.deleted_neighbours[v],
            shortcut_hops=hops,
        )

    def contract(self, v: int) -> list[int]:
        """Contract ``v``; returns its former (live) neighbours."""
        shortcuts = self.required_shortcuts(v)
        adj = self.adj
        for a, b, w, hops in shortcuts:
            existing = adj[a].get(b)
            if existing is not None and existing[0] <= w:
                # A lighter-or-equal parallel edge exists; the witness
                # search only missed it because its settle budget ran
                # out. The existing edge subsumes the shortcut.
                continue
            adj[a][b] = (w, v, hops)
            adj[b][a] = (w, v, hops)
            self.stats.shortcuts_added += 1
        self.contracted[v] = True
        neighbours = [u for u in adj[v] if not self.contracted[u]]
        for u in neighbours:
            self.deleted_neighbours[u] += 1
        return neighbours

    def frozen_up_edges(self, v: int) -> list[tuple[int, float, int]]:
        """``(neighbour, weight, via)`` of ``v`` at its contraction."""
        return [
            (u, w, via)
            for u, (w, via, _) in self.adj[v].items()
            if not self.contracted[u]
        ]


def build_ch(
    graph: Graph,
    config: OrderingConfig | None = None,
    witness_settle_limit: int = 40,
) -> CHIndex:
    """Run CH preprocessing on a frozen graph.

    Parameters
    ----------
    graph:
        The road network; must be frozen (indexes assume immutability).
    config:
        Ordering strategy; defaults to the [11]-style lazy
        edge-difference heuristic.
    witness_settle_limit:
        Settle budget per witness search. Smaller builds faster but
        adds redundant shortcuts; exactness is unaffected.

    >>> from repro.graph.generators import paper_example_graph
    >>> idx = build_ch(paper_example_graph(),
    ...                OrderingConfig(strategy="fixed",
    ...                               fixed_order=tuple(range(8))))
    >>> idx.n_shortcuts  # c1, c2, c3 from Figure 2
    3
    """
    if not graph.frozen:
        raise ValueError("freeze() the graph before building an index")
    config = config or OrderingConfig()
    start = time.perf_counter()
    n = graph.n
    with obs.span("ch.build"):
        contractor = _Contractor(graph, config, witness_settle_limit)

        rank = [0] * n
        up: list[list[tuple[int, float, int]]] = [[] for _ in range(n)]

        if config.strategy == "fixed":
            with obs.span("ch.contract"):
                order = validate_fixed_order(config.fixed_order or (), n)
                for position, v in enumerate(order):
                    rank[v] = position
                    up[v] = contractor.frozen_up_edges(v)
                    contractor.contract(v)
        else:
            rng = np.random.default_rng(config.seed)
            heap: AddressableHeap[int] = AddressableHeap()
            with obs.span("ch.order_init"):
                if config.is_lazy():
                    for v in range(n):
                        heap.push(v, contractor.priority(v))
                else:
                    for v in range(n):
                        heap.push(v, config.initial_priority(v, n, rng))
            with obs.span("ch.contract"):
                position = 0
                while heap:
                    v, prio = heap.pop()
                    if config.is_lazy() and heap:
                        fresh = contractor.priority(v)
                        if fresh > heap.peek()[1]:
                            heap.push(v, fresh)
                            continue
                    rank[v] = position
                    position += 1
                    up[v] = contractor.frozen_up_edges(v)
                    neighbours = contractor.contract(v)
                    if config.is_lazy():
                        for u in neighbours:
                            heap.update(u, contractor.priority(u))

        with obs.span("ch.shortcut_tags"):
            middle: dict[tuple[int, int], int] = {}
            for v in range(n):
                for u, w, via in up[v]:
                    middle[(v, u) if v < u else (u, v)] = via

    contractor.stats.seconds = time.perf_counter() - start
    if obs.ENABLED:
        obs.registry().add_counters(
            "ch.build",
            {
                "runs": 1,
                "shortcuts_added": contractor.stats.shortcuts_added,
                "witness_settles": contractor.stats.witness_settles,
                "priority_recomputations": contractor.stats.priority_recomputations,
            },
        )
    return CHIndex(n=n, rank=rank, up=up, middle=middle, stats=contractor.stats)
