"""The hybrid two-level TNR grid of Appendix E.1.

The hybrid combines a coarse ``g × g`` grid (``D128`` in the paper)
with a fine ``2g × 2g`` grid (``D256``):

- access nodes are computed on *both* grids;
- the coarse grid stores its full pairwise access-node table;
- the fine grid stores pairwise distances only between access nodes of
  cells whose outer shells overlap — exactly the band where the coarse
  grid cannot answer but the fine grid can. Far pairs are redundant
  ("the distance ... can be derived using the access nodes on D128").

A distance query uses the fine grid in the near-but-answerable band
(fine cell distance 5..2·OUTER+2), the coarse table beyond it, and the
fallback technique inside the fine outer shell. The net effect, which
Figure 13/14 report, is space *between* the two single grids and a few
query sets (Q5/Q6 analogues) answered without the fallback.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from repro.core.base import QueryTechnique
from repro.core.ch.many_to_many import many_to_many_sparse
from repro.core.ch.query import ContractionHierarchy
from repro.core.tnr.access_nodes import compute_access_nodes
from repro.core.tnr.grid import OUTER_RADIUS, TNRGrid
from repro.core.tnr.index import TNRIndex, build_tnr
from repro.core.tnr.query import TNRQueryStats, greedy_path
from repro.graph.graph import Graph

INF = math.inf

#: Fine-grid pairs are stored up to this cell distance. Beyond
#: 2*OUTER_RADIUS + 2 the coarse grid is provably answerable
#: (fine distance >= 11 forces coarse distance >= 5), so nothing
#: more is ever needed.
FINE_KEEP_RADIUS = 2 * OUTER_RADIUS + 2


class FinePairTable:
    """Compact sparse store for the fine grid's near access-node pairs.

    Keys are ``i * size + j`` in one sorted int64 array with a parallel
    float32 value array — 12 bytes per pair, which is what keeps the
    hybrid's space *between* the two single grids (Appendix E.1's
    Figure 13); a Python dict would cost ~15x that and invert the
    figure. Lookups are vectorised binary searches.
    """

    __slots__ = ("size", "keys", "vals")

    def __init__(self, size: int, pairs: dict[tuple[int, int], float]) -> None:
        self.size = size
        flat = np.fromiter(
            (i * size + j for i, j in pairs), dtype=np.int64, count=len(pairs)
        )
        order = np.argsort(flat)
        self.keys = flat[order]
        self.vals = np.fromiter(
            pairs.values(), dtype=np.float32, count=len(pairs)
        )[order]

    def __len__(self) -> int:
        return len(self.keys)

    def lookup_grid(self, ai: np.ndarray, aj: np.ndarray) -> np.ndarray:
        """Distance matrix for all (ai x aj) pairs; inf where unstored."""
        wanted = (ai.astype(np.int64)[:, None] * self.size + aj[None, :]).ravel()
        pos = np.searchsorted(self.keys, wanted)
        pos_clipped = np.minimum(pos, len(self.keys) - 1)
        hit = (len(self.keys) > 0) & (self.keys[pos_clipped] == wanted)
        out = np.where(hit, self.vals[pos_clipped], np.inf).astype(np.float64)
        return out.reshape(len(ai), len(aj))


@dataclass
class HybridBuildStats:
    """Preprocessing diagnostics of the hybrid index."""

    seconds_coarse: float = 0.0
    seconds_fine_access: float = 0.0
    seconds_fine_table: float = 0.0
    n_fine_transit_nodes: int = 0
    n_fine_pairs: int = 0

    @property
    def seconds(self) -> float:
        return self.seconds_coarse + self.seconds_fine_access + self.seconds_fine_table


class HybridTNR:
    """Two-level TNR (Appendix E.1); same interface as plain TNR."""

    name = "TNR-hybrid"

    def __init__(
        self,
        graph: Graph,
        coarse: TNRIndex,
        fine_grid: TNRGrid,
        fine_vertex_access: list[np.ndarray],
        fine_vertex_access_dist: list[np.ndarray],
        fine_pairs: FinePairTable,
        fallback: QueryTechnique,
        stats: HybridBuildStats,
    ) -> None:
        self.graph = graph
        self.coarse = coarse
        self.fine_grid = fine_grid
        self.fine_vertex_access = fine_vertex_access
        self.fine_vertex_access_dist = fine_vertex_access_dist
        self.fine_pairs = fine_pairs
        self.fallback = fallback
        self.build_stats = stats
        self.stats = TNRQueryStats()

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: Graph,
        ch: ContractionHierarchy,
        grid_g: int,
        fallback: QueryTechnique,
    ) -> "HybridTNR":
        """Build the coarse (``grid_g``) + fine (``2*grid_g``) hybrid."""
        stats = HybridBuildStats()

        start = time.perf_counter()
        coarse = build_tnr(graph, ch, grid_g)
        stats.seconds_coarse = time.perf_counter() - start

        start = time.perf_counter()
        fine_grid = TNRGrid(graph, 2 * grid_g)
        cell_access = compute_access_nodes(graph, fine_grid)
        stats.seconds_fine_access = time.perf_counter() - start

        transit: set[int] = set()
        for info in cell_access.values():
            transit.update(info.access_nodes)
        transit_nodes = sorted(transit)
        t_index = {v: i for i, v in enumerate(transit_nodes)}
        stats.n_fine_transit_nodes = len(transit_nodes)

        # Cells each access node serves, reduced to a cell-coordinate
        # bounding box for a cheap conservative "outer shells overlap"
        # test (a superset of needed pairs is stored, never a subset).
        boxes: dict[int, tuple[int, int, int, int]] = {}
        for cell, info in cell_access.items():
            cx, cy = fine_grid.cell_xy(cell)
            for a in info.access_nodes:
                box = boxes.get(a)
                if box is None:
                    boxes[a] = (cx, cy, cx, cy)
                else:
                    boxes[a] = (
                        min(box[0], cx), min(box[1], cy),
                        max(box[2], cx), max(box[3], cy),
                    )

        def wanted(i: int, j: int) -> bool:
            bi = boxes[transit_nodes[i]]
            bj = boxes[transit_nodes[j]]
            gap_x = max(bi[0] - bj[2], bj[0] - bi[2], 0)
            gap_y = max(bi[1] - bj[3], bj[1] - bi[3], 0)
            return max(gap_x, gap_y) <= FINE_KEEP_RADIUS

        start = time.perf_counter()
        fine_pairs = FinePairTable(
            len(transit_nodes), many_to_many_sparse(ch, transit_nodes, wanted)
        )
        stats.seconds_fine_table = time.perf_counter() - start
        stats.n_fine_pairs = len(fine_pairs)

        empty_idx = np.empty(0, dtype=np.int32)
        empty_dist = np.empty(0, dtype=np.float64)
        fine_vertex_access: list[np.ndarray] = [empty_idx] * graph.n
        fine_vertex_access_dist: list[np.ndarray] = [empty_dist] * graph.n
        for info in cell_access.values():
            idx = np.array([t_index[a] for a in info.access_nodes], dtype=np.int32)
            for v, dists in info.vertex_distances.items():
                fine_vertex_access[v] = idx
                fine_vertex_access_dist[v] = np.array(dists, dtype=np.float64)

        return cls(
            graph=graph,
            coarse=coarse,
            fine_grid=fine_grid,
            fine_vertex_access=fine_vertex_access,
            fine_vertex_access_dist=fine_vertex_access_dist,
            fine_pairs=fine_pairs,
            fallback=fallback,
            stats=stats,
        )

    # ------------------------------------------------------------------
    def distance(self, source: int, target: int) -> float:
        """Fine band → sparse fine table; far → coarse table; near → fallback."""
        if source == target:
            return 0.0
        fine_d = self.fine_grid.vertex_cell_distance(source, target)
        if fine_d <= OUTER_RADIUS:
            self.stats.answered_by_fallback += 1
            return self.fallback.distance(source, target)
        self.stats.answered_by_table += 1
        if fine_d <= FINE_KEEP_RADIUS:
            return self._fine_distance(source, target)
        # fine_d >= FINE_KEEP_RADIUS + 1 = 11 implies a coarse cell
        # distance of at least 5, so the coarse table is answerable.
        return self.coarse_distance(source, target)

    def path(self, source: int, target: int) -> tuple[float, list[int] | None]:
        """Shortest path by the shared §3.3 greedy walk."""
        fine_grid = self.fine_grid
        return greedy_path(
            graph=self.graph,
            distance=self.distance,
            keep_walking=lambda u, t: fine_grid.vertex_cell_distance(u, t)
            > OUTER_RADIUS,
            fallback=self.fallback,
            source=source,
            target=target,
            stats=self.stats,
        )

    # ------------------------------------------------------------------
    def coarse_distance(self, source: int, target: int) -> float:
        """Equation 1 on the coarse grid's dense table."""
        coarse = self.coarse
        ai = coarse.vertex_access[source]
        aj = coarse.vertex_access[target]
        if len(ai) == 0 or len(aj) == 0:
            return INF
        ds = coarse.vertex_access_dist[source]
        dt = coarse.vertex_access_dist[target]
        middle = coarse.table[np.ix_(ai, aj)].astype(np.float64)
        return float((ds[:, None] + middle + dt[None, :]).min())

    def _fine_distance(self, source: int, target: int) -> float:
        """Equation 1 on the fine grid's sparse pair store."""
        ai = self.fine_vertex_access[source]
        aj = self.fine_vertex_access[target]
        if len(ai) == 0 or len(aj) == 0:
            return INF
        ds = self.fine_vertex_access_dist[source]
        dt = self.fine_vertex_access_dist[target]
        middle = self.fine_pairs.lookup_grid(ai, aj)
        return float((ds[:, None] + middle + dt[None, :]).min())
