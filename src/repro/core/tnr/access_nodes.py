"""Access-node computation: a provably exact variant and Bast et al.'s.

The paper's §3.3 Remarks describe the authors' corrected method: compute
the shortest path from each cell vertex to every endpoint of an edge
crossing the outer shell, and take an endpoint of each path's
inner-shell crossing edge as an access node.

Examining *one* shortest path per pair is enough only when shortest
paths are essentially unique. Our networks use integer travel-time
weights, where equal-length ties are pervasive, and at reproduction
scale the grid cells are coarse enough that single edges can jump
several cells — both of which break the one-path-per-pair construction
(an untested tie path can leave the cell uncovered). We therefore
strengthen the construction while keeping the paper's access-node
*concept* intact:

    ``A(C)`` = the inside endpoints of every **first-crossing edge** of
    the shortest-path **DAG** of each cell vertex ``v`` — the edges
    ``(p, u)`` with ``dist(v,p) + w(p,u) == dist(v,u)``, where ``p``
    still has an all-inside shortest path from ``v`` (cell distance ≤
    2, i.e. within the inner 5×5 block) and ``u`` lies outside it.

Every vertex of ``A(C)`` is an endpoint of an edge intersecting the
inner shell, as the paper requires, and *every* shortest path from
``v ∈ C`` to any vertex beyond the block is covered at its first
crossing. Exactness of Equation 1 follows for any pair of cells at
Chebyshev distance ≥ 5: take any shortest path P from s to t; its first
Cs-crossing inside endpoint ``a_s`` and its last Ct-entry inside
endpoint ``a_t`` are both on P with ``a_s`` no later than ``a_t`` (the
5×5 blocks are disjoint), so
``dist(s,a_s) + dist(a_s,a_t) + dist(a_t,t) = dist(s,t)``. This holds
even in the degenerate case where one long edge crosses both inner
shells — precisely the case where taking *outside* endpoints (or
examining a single path per pair) can return an overestimate.

:func:`flawed_cell_access` implements Bast et al.'s faster method,
which only admits a vertex ``v ∈ Sin`` as an access node if ``v``
minimises ``dist(vi, v) + dist(v, vk)`` for some pair of a cell vertex
``vi`` and an outer-shell vertex ``vk``. Appendix B's counter-example
(a vertex whose only outward link bypasses ``Sup``) shows this set can
be incomplete, producing wrong query answers; we keep the flawed
variant so :mod:`repro.analysis.defect` can demonstrate the bug and the
fix side by side.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from heapq import heappop, heappush

import numpy as np

from repro.core.dijkstra import dijkstra_to_targets
from repro.core.tnr.grid import INNER_RADIUS, OUTER_RADIUS, TNRGrid
from repro.graph.csr import MIN_N_BATCH, kernel_for
from repro.graph.graph import Graph
from repro.parallel import map_with_context

INF = math.inf


@dataclass
class CellAccess:
    """Access information of one grid cell.

    ``access_nodes`` is sorted; ``vertex_distances[v][i]`` is
    ``dist(v, access_nodes[i])`` for every vertex ``v`` of the cell.
    """

    cell: int
    access_nodes: list[int]
    vertex_distances: dict[int, list[float]]


def _block_dijkstra(
    graph: Graph, source: int, block: set[int]
) -> tuple[dict[int, float], list[int]]:
    """Dijkstra from ``source`` until every ``block`` vertex settles.

    Returns the label map and the settle order. Labels of vertices in
    the settle order are exact; labels of fringe vertices are upper
    bounds — except that a fringe vertex adjacent to a settled vertex
    via a shortest-path DAG edge already carries its exact distance
    (the relaxation across that edge set it), which is precisely the
    property the access-node DAG test needs.
    """
    dist: dict[int, float] = {source: 0.0}
    order: list[int] = []
    remaining = len(block)  # the source itself decrements at its pop
    heap: list[tuple[float, int]] = [(0.0, source)]
    neighbors = graph.neighbors
    dist_get = dist.get
    while heap:
        d, u = heappop(heap)
        if d > dist[u]:
            continue  # stale entry
        order.append(u)
        if u in block:
            remaining -= 1
            if remaining <= 0:
                # Settling u relaxed its edges already below? No — do
                # the relaxations, then stop: fringe labels across u's
                # edges must be in place for the DAG test.
                for v, w in neighbors(u):
                    nd = d + w
                    if nd < dist_get(v, INF):
                        dist[v] = nd
                break
        for v, w in neighbors(u):
            nd = d + w
            if nd < dist_get(v, INF):
                dist[v] = nd
                heappush(heap, (nd, v))
    if not order or order[0] != source:
        order.insert(0, source)
    return dist, order


def _inner_block(grid: TNRGrid, cell: int) -> set[int]:
    """Vertices within the inner 5×5 block of ``cell``."""
    cx, cy = grid.cell_xy(cell)
    g = grid.g
    block: set[int] = set()
    for iy in range(max(0, cy - INNER_RADIUS), min(g, cy + INNER_RADIUS + 1)):
        for ix in range(max(0, cx - INNER_RADIUS), min(g, cx + INNER_RADIUS + 1)):
            block.update(grid.vertices_in(grid.cell_id(ix, iy)))
    return block


def correct_cell_access(graph: Graph, grid: TNRGrid, cell: int) -> CellAccess:
    """Exact access nodes for one cell (module docstring for the why).

    Dispatches to the vectorised CSR variant when the kernels are
    available. Both variants return the first-crossing-DAG access set;
    the CSR one tests DAG edges against *exact* one-to-many distances,
    so it never admits the redundant fringe-equality nodes the legacy
    incremental labels occasionally do — the set stays exact (it covers
    every shortest path at its first crossing) and is never larger.
    """
    csr = kernel_for(graph, MIN_N_BATCH)
    if csr is not None:
        return _correct_cell_access_csr(graph, csr, grid, cell)
    return _correct_cell_access_py(graph, grid, cell)


def _correct_cell_access_csr(graph: Graph, csr, grid: TNRGrid, cell: int) -> CellAccess:
    """Vectorised exact access nodes (see :func:`_cell_access_csr_with_radius`)."""
    return _cell_access_csr_with_radius(csr, grid, cell)[0]


def _cell_access_csr_with_radius(
    csr, grid: TNRGrid, cell: int
) -> tuple[CellAccess, float]:
    """Vectorised exact access nodes: block-restricted APSP + one
    radius-limited batched one-to-many pass.

    ``pure[i, p]`` ("some shortest path from member i to p stays inside
    the block") holds iff the block-restricted distance equals the full
    distance; a first-crossing DAG edge is an exit arc ``(p, u)`` with
    ``dist(i, p) + w == dist(i, u)`` and ``p`` pure. The full search is
    limited to ``max(block dist) + max(exit weight)``, which bounds
    every distance the two tests and the output table consult.

    Also returns that limit — the cell's *consultation radius*: a weight
    change on an arc whose tail stays farther than the radius from every
    member (under the old and the new metric alike) cannot change this
    cell's output. The dynamics subsystem (:mod:`repro.dynamic`) keys
    its dirty-cell test on it: ``-inf`` when the block has no exit arcs
    (the output is weight-independent), ``inf`` when the search ran
    unbounded.
    """
    from scipy.sparse.csgraph import dijkstra as _sp_dijkstra

    members = grid.vertices_in(cell)
    block_ids = np.array(sorted(_inner_block(grid, cell)), dtype=np.int64)
    n = csr.n
    bmask = np.zeros(n, dtype=bool)
    bmask[block_ids] = True
    local = np.full(n, -1, dtype=np.int64)
    local[block_ids] = np.arange(len(block_ids))

    esrc = csr.edge_sources()
    edst = csr.indices
    src_in = bmask[esrc]
    inner = src_in & bmask[edst]
    exit_arcs = src_in & ~bmask[edst]
    pe = esrc[exit_arcs].astype(np.int64)
    ue = edst[exit_arcs].astype(np.int64)
    we = csr.weights[exit_arcs]
    if len(pe) == 0:
        # Nothing ever leaves the block: no access nodes needed.
        return CellAccess(cell, [], {v: [] for v in members}), -INF

    # Block-restricted search on the full-shape masked template: arcs
    # leaving the block are set to inf (scipy never relaxes them), which
    # skips building a per-cell subgraph matrix — the dominant cost when
    # the grid is fine and cells are small.
    mm = csr.masked_matrix()
    mm.data[:] = INF
    mm.data[inner] = csr.weights[inner]
    members_arr = np.asarray(members, dtype=np.int64)
    block_dist = _sp_dijkstra(mm, directed=True, indices=members_arr)[:, block_ids]

    finite = np.isfinite(block_dist)
    # +1 keeps boundary-equal labels on the safe side of scipy's limit
    # cutoff; a larger radius only costs a few extra settles.
    limit = float(block_dist[finite].max() + we.max()) + 1.0 if finite.all() else None
    dist = csr.distances(members_arr, limit=limit)

    pure = (block_dist == dist[:, block_ids]) & finite
    crossing = (dist[:, ue] == dist[:, pe] + we) & pure[:, local[pe]]
    access_nodes = sorted(set(pe[crossing.any(axis=0)].tolist()))

    cols = np.asarray(access_nodes, dtype=np.int64)
    vertex_distances = {
        int(v): dist[i, cols].tolist() for i, v in enumerate(members)
    }
    return CellAccess(cell, access_nodes, vertex_distances), (
        limit if limit is not None else INF
    )


def _correct_cell_access_py(graph: Graph, grid: TNRGrid, cell: int) -> CellAccess:
    """Legacy incremental-label implementation (REPRO_NO_CSR path)."""
    members = grid.vertices_in(cell)
    block = _inner_block(grid, cell)

    access: set[int] = set()
    label_maps: dict[int, dict[int, float]] = {}
    for v in members:
        labels, order = _block_dijkstra(graph, v, block)
        label_maps[v] = labels
        # pure[p]: some shortest path v -> p stays entirely inside the
        # block. Settle order guarantees predecessors appear first, and
        # all block vertices are settled, so their labels are exact.
        pure: set[int] = set()
        for u in order:
            if u not in block:
                continue
            if u == v:
                pure.add(u)
                continue
            du = labels[u]
            for q, w in graph.neighbors(u):
                if q in pure and labels.get(q, INF) + w == du:
                    pure.add(u)
                    break
        # First-crossing DAG edges: pure inside endpoint, outside head.
        # A fringe label equal to dp + w is exact whenever (p, u) really
        # is a DAG edge; spurious equalities only add a redundant
        # access node, never break exactness.
        for p in pure:
            dp = labels[p]
            for u, w in graph.neighbors(p):
                if u not in block and labels.get(u, INF) == dp + w:
                    access.add(p)
                    break

    access_nodes = sorted(access)
    vertex_distances: dict[int, list[float]] = {}
    for v in members:
        labels = label_maps[v]
        # Every access node is inside the block, hence settled by every
        # member's search; .get guards the disconnected corner case.
        vertex_distances[v] = [labels.get(a, INF) for a in access_nodes]
    return CellAccess(cell, access_nodes, vertex_distances)


_SIDES = ("top", "bottom", "left", "right")


def _crossing_sides(
    grid: TNRGrid, cell: int, outside_vertex: int, radius: int
) -> list[str]:
    """Which block sides an edge leaving the ``radius`` block exits by.

    A diagonal jump past a corner exits through two sides at once; both
    are reported (Bast et al. process the four boundaries separately).
    """
    cx, cy = grid.cell_xy(cell)
    ox, oy = grid.cell_xy(grid.cell_of_vertex[outside_vertex])
    sides = []
    if oy > cy + radius:
        sides.append("top")
    if oy < cy - radius:
        sides.append("bottom")
    if ox < cx - radius:
        sides.append("left")
    if ox > cx + radius:
        sides.append("right")
    return sides


def flawed_cell_access(graph: Graph, grid: TNRGrid, cell: int) -> CellAccess:
    """Bast et al.'s faster — but incomplete — access-node computation.

    Appendix B: the four boundaries of the shells are processed
    separately. For one side, ``Sin`` holds the endpoints of edges
    crossing that side of the inner shell and ``Sup`` those crossing
    the same side of the outer shell; a vertex ``vj ∈ Sin`` is marked
    as an access node only when it minimises
    ``dist(vi, vj) + dist(vj, vk)`` for some cell vertex ``vi`` and
    some ``vk ∈ Sup`` *of that side*.

    The per-side pairing is exactly what Figure 12(b) breaks: a vertex
    whose inner crossing is on one side but whose only outward
    continuation leaves the outer shell on a *different* side is on no
    shortest path to its own side's ``Sup``, so it is never marked —
    and queries that must pass through it get overestimates.
    """
    members = grid.vertices_in(cell)
    member_set = set(members)

    # Boundary vertex sets per side: the *outside* endpoint of each
    # crossing edge — the vertices sitting on the shell line itself.
    # (The cell's own vertices never belong to Sin: making every cell
    # vertex its own access node would defeat the optimisation Bast et
    # al. were after.)
    sin_by_side: dict[str, set[int]] = {s: set() for s in _SIDES}
    sup_by_side: dict[str, set[int]] = {s: set() for s in _SIDES}
    for _, v, _ in grid.crossing_edges(cell, INNER_RADIUS):
        for side in _crossing_sides(grid, cell, v, INNER_RADIUS):
            sin_by_side[side].add(v)
    for _, v, _ in grid.crossing_edges(cell, OUTER_RADIUS):
        for side in _crossing_sides(grid, cell, v, OUTER_RADIUS):
            sup_by_side[side].add(v)

    all_sin: set[int] = set().union(*sin_by_side.values())
    all_sup: set[int] = set().union(*sup_by_side.values())
    if not all_sin or not all_sup:
        return CellAccess(cell, [], {v: [] for v in members})

    dist_via: dict[int, dict[int, float]] = {}
    for vj in sorted(all_sin):
        dist_via[vj] = dijkstra_to_targets(graph, vj, member_set | all_sup)

    access: set[int] = set()
    for side in _SIDES:
        s_in = sorted(sin_by_side[side])
        s_up = sup_by_side[side]
        if not s_in or not s_up:
            continue
        for vi in members:
            for vk in s_up:
                best_j, best_d = -1, INF
                for vj in s_in:
                    dj = dist_via[vj]
                    d = dj.get(vi, INF) + dj.get(vk, INF)
                    if d < best_d or (d == best_d and vj < best_j):
                        best_j, best_d = vj, d
                if best_j >= 0 and best_d < INF:
                    access.add(best_j)

    access_nodes = sorted(access)
    vertex_distances = {
        v: [dist_via[a].get(v, INF) for a in access_nodes] for v in members
    }
    return CellAccess(cell, access_nodes, vertex_distances)


def transit_nodes(cell_access: dict[int, CellAccess]) -> list[int]:
    """Sorted union of every cell's access nodes — the global transit
    node set of §3.3, i.e. the row/column order of the ``I1`` table."""
    transit: set[int] = set()
    for info in cell_access.values():
        transit.update(info.access_nodes)
    return sorted(transit)


def _cell_job(context, cell: int) -> CellAccess:
    """One cell's access computation (top level for the worker pool)."""
    graph, grid, flawed = context
    builder = flawed_cell_access if flawed else correct_cell_access
    return builder(graph, grid, cell)


def compute_access_nodes(
    graph: Graph, grid: TNRGrid, flawed: bool = False, workers: int | None = None
) -> dict[int, CellAccess]:
    """Access information for every non-empty cell of the grid.

    ``workers`` fans the per-cell computation over processes (see
    :mod:`repro.parallel`); identical output for any worker count.
    """
    cells = list(grid.nonempty_cells())
    results = map_with_context(
        _cell_job, (graph, grid, flawed), cells, workers=workers
    )
    return dict(zip(cells, results))
