"""TNR queries (§3.3): table lookups far out, fallback near in.

A distance query between vertices whose cells lie beyond each other's
outer shells is answered by Equation 1:

    dist(s, t) = min over (a_s, a_t) of
                 dist(s, a_s) + dist(a_s, a_t) + dist(a_t, t)

— a handful of lookups in the pre-computed arrays. Anything closer
falls back to the alternative technique (CH or bidirectional Dijkstra;
the paper settles on CH after the Appendix E.1 comparison).

A shortest-path query walks greedily from the source: at each step it
picks the neighbour ``v`` minimising ``w(cur, v) + dist(v, t)`` — each
step is O(neighbours) distance queries, giving the paper's O(k)
distance-query cost (§4.6). Once the walk enters the target's outer
shell the remaining (short, local) stretch is delegated to the
fallback, which is the same "resort to an alternative method" rule the
paper applies; the output path is identical either way because every
step provably stays on a shortest path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.base import QueryTechnique
from repro.core.tnr.index import TNRIndex
from repro.graph.graph import Graph

INF = math.inf


@dataclass
class TNRQueryStats:
    """How often the last queries used the table vs the fallback."""

    answered_by_table: int = 0
    answered_by_fallback: int = 0
    walk_steps: int = 0

    def reset(self) -> None:
        self.answered_by_table = 0
        self.answered_by_fallback = 0
        self.walk_steps = 0


def greedy_path(
    graph: Graph,
    distance,
    keep_walking,
    fallback: QueryTechnique,
    source: int,
    target: int,
    stats: TNRQueryStats,
) -> tuple[float, list[int] | None]:
    """The §3.3 shortest-path walk, shared by plain and hybrid TNR.

    ``distance(u, v)`` must be exact for every pair it is asked about
    (it may internally fall back); ``keep_walking(u, target)`` decides
    whether the table-driven walk continues from ``u`` or the rest of
    the path is delegated to ``fallback``. Every accepted step ``v``
    satisfies ``w(cur, v) + dist(v, t) == dist(cur, t)``, i.e. stays on
    a shortest path, so the concatenated result is exact.
    """
    if source == target:
        return 0.0, [source]
    total = distance(source, target)
    if math.isinf(total):
        return INF, None

    path = [source]
    current = source
    remaining = total
    while current != target and keep_walking(current, target):
        best_v, best_d = -1, INF
        for v, w in graph.neighbors(current):
            candidate = w + distance(v, target)
            if candidate < best_d or (candidate == best_d and v < best_v):
                best_v, best_d = v, candidate
        if best_v < 0 or best_d > remaining + 1e-6:
            # Defensive: a correct index never hits this (the neighbour
            # on the shortest path always matches), but a *flawed*
            # index (Appendix B) can — degrade gracefully.
            break
        stats.walk_steps += 1
        if obs.ENABLED:
            obs.registry().counter("tnr.walk_steps").inc()
        path.append(best_v)
        remaining -= graph.edge_weight(current, best_v)
        current = best_v

    if current != target:
        _, tail = fallback.path(current, target)
        if tail is None:
            return INF, None
        path.extend(tail[1:])
    return total, path


class TransitNodeRouting:
    """The TNR query object; implements the common technique interface.

    Parameters
    ----------
    graph:
        The road network.
    index:
        A built :class:`TNRIndex`.
    fallback:
        Any :class:`~repro.core.base.QueryTechnique` used for pairs the
        table cannot answer — CH in the paper's recommended setup,
        bidirectional Dijkstra in the Appendix E.1 ablation.
    """

    name = "TNR"

    def __init__(self, graph: Graph, index: TNRIndex, fallback: QueryTechnique):
        self.graph = graph
        self.index = index
        self.fallback = fallback
        self.stats = TNRQueryStats()

    # ------------------------------------------------------------------
    def distance(self, source: int, target: int) -> float:
        """Distance query: Equation 1 when answerable, else fallback."""
        if source == target:
            return 0.0
        if not self.index.answerable(source, target):
            self.stats.answered_by_fallback += 1
            if obs.ENABLED:
                obs.registry().counter("tnr.locality.fallback").inc()
            return self.fallback.distance(source, target)
        self.stats.answered_by_table += 1
        if obs.ENABLED:
            obs.registry().counter("tnr.locality.table_hits").inc()
        return self._table_distance(source, target)

    def distance_table(self, sources, targets) -> np.ndarray:
        """Batched distances ``table[i][j] = dist(sources[i], targets[j])``.

        Answerable pairs (Equation 1) read the transit table directly;
        the rest are delegated to the fallback *in one batch* — its
        ``distance_table`` over the distinct unanswerable sources ×
        targets when it has one, per-pair queries otherwise. Entries
        equal the per-pair :meth:`distance` answers exactly.
        """
        src = [int(s) for s in sources]
        tgt = [int(t) for t in targets]
        out = np.empty((len(src), len(tgt)), dtype=np.float64)
        n_table_before = self.stats.answered_by_table
        n_fallback_before = self.stats.answered_by_fallback
        pending: list[tuple[int, int]] = []
        for i, s in enumerate(src):
            row = out[i]
            for j, t in enumerate(tgt):
                if s == t:
                    row[j] = 0.0
                elif self.index.answerable(s, t):
                    self.stats.answered_by_table += 1
                    row[j] = self._table_distance(s, t)
                else:
                    self.stats.answered_by_fallback += 1
                    pending.append((i, j))
        if pending:
            f_src = sorted({src[i] for i, _ in pending})
            f_tgt = sorted({tgt[j] for _, j in pending})
            table_fn = getattr(self.fallback, "distance_table", None)
            if table_fn is not None:
                sub = np.asarray(table_fn(f_src, f_tgt), dtype=np.float64)
            else:
                sub = np.array(
                    [[self.fallback.distance(a, b) for b in f_tgt] for a in f_src],
                    dtype=np.float64,
                )
            si = {v: k for k, v in enumerate(f_src)}
            ti = {v: k for k, v in enumerate(f_tgt)}
            for i, j in pending:
                out[i, j] = sub[si[src[i]], ti[tgt[j]]]
        if obs.ENABLED:
            obs.registry().add_counters(
                "tnr.locality",
                {
                    "table_hits": self.stats.answered_by_table - n_table_before,
                    "fallback": self.stats.answered_by_fallback - n_fallback_before,
                },
            )
        return out

    def distance_pairs(self, pairs) -> np.ndarray:
        """Per-pair batched distances, linear in the batch size.

        TNR's ``distance_table`` grid is the wrong shape for pair
        serving: a batch of ``b`` mostly-distinct pairs costs ``b x b``
        Equation-1 gathers for ``b`` answers. This path evaluates only
        the requested pairs — one table gather per answerable pair,
        one *batched* fallback ``distance_table`` over the remainder —
        so batching amortises instead of compounding.
        """
        arr = [(int(s), int(t)) for s, t in pairs]
        out = np.zeros(len(arr), dtype=np.float64)
        n_table = n_fallback = 0
        pending: list[int] = []
        for k, (s, t) in enumerate(arr):
            if s == t:
                continue
            if self.index.answerable(s, t):
                n_table += 1
                out[k] = self._table_distance(s, t)
            else:
                n_fallback += 1
                pending.append(k)
        if pending:
            f_src = sorted({arr[k][0] for k in pending})
            f_tgt = sorted({arr[k][1] for k in pending})
            table_fn = getattr(self.fallback, "distance_table", None)
            if table_fn is not None:
                sub = np.asarray(table_fn(f_src, f_tgt), dtype=np.float64)
            else:
                sub = np.array(
                    [[self.fallback.distance(a, b) for b in f_tgt] for a in f_src],
                    dtype=np.float64,
                )
            si = {v: i for i, v in enumerate(f_src)}
            ti = {v: i for i, v in enumerate(f_tgt)}
            for k in pending:
                out[k] = sub[si[arr[k][0]], ti[arr[k][1]]]
        self.stats.answered_by_table += n_table
        self.stats.answered_by_fallback += n_fallback
        if obs.ENABLED:
            obs.registry().add_counters(
                "tnr.locality",
                {"table_hits": n_table, "fallback": n_fallback},
            )
        return out

    def path(self, source: int, target: int) -> tuple[float, list[int] | None]:
        """Shortest path query by greedy neighbour walking (§3.3)."""
        grid = self.index.grid
        return greedy_path(
            graph=self.graph,
            distance=self.distance,
            keep_walking=lambda u, t: grid.beyond_outer_shell(
                grid.cell_of_vertex[u], grid.cell_of_vertex[t]
            ),
            fallback=self.fallback,
            source=source,
            target=target,
            stats=self.stats,
        )

    # ------------------------------------------------------------------
    def _table_distance(self, source: int, target: int) -> float:
        """Equation 1 over the access nodes of both endpoint cells."""
        index = self.index
        ai = index.vertex_access[source]
        aj = index.vertex_access[target]
        if len(ai) == 0 or len(aj) == 0:
            # No access nodes: nothing beyond the outer shell was
            # reachable at build time, so the pair is disconnected.
            return INF
        ds = index.vertex_access_dist[source]
        dt = index.vertex_access_dist[target]
        # float64 throughout: the table stores exactly-representable
        # integer travel times, so sums stay exact.
        middle = index.table[np.ix_(ai, aj)].astype(np.float64)
        totals = ds[:, None] + middle + dt[None, :]
        return float(totals.min())
