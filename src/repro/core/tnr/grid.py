"""The TNR grid and its inner/outer shells (§3.3).

A ``g × g`` grid is imposed on the network's (square-hulled) bounding
box. For a cell ``C``, the paper defines:

- the **inner shell**: the boundary of the 5×5 cell block centred at
  ``C`` — cells at Chebyshev cell-distance exactly 2;
- the **outer shell**: the boundary of the 9×9 block — distance 4.

An edge *crosses* a shell when its endpoints lie on opposite sides of
the corresponding block. We classify crossings by cell membership
(endpoint distances ≤ k vs ≥ k+1), which is robust for edges that skip
several cells and keeps every shell predicate integral.

A target is "beyond the outer shell" of a source cell when its cell
distance is ≥ 5; that is exactly the TNR answerability test for
distance queries.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.graph.coords import square_hull
from repro.graph.graph import Graph

#: Inner shell radius in cells (boundary of the 5x5 block).
INNER_RADIUS = 2
#: Outer shell radius in cells (boundary of the 9x9 block).
OUTER_RADIUS = 4


class TNRGrid:
    """A ``g × g`` grid over a road network's square bounding hull.

    Also memoises each vertex's cell and the per-cell vertex lists —
    all downstream computations iterate "the vertices of cell C".
    """

    def __init__(self, graph: Graph, g: int) -> None:
        if g < 2 * OUTER_RADIUS:
            raise ValueError(
                f"grid must be at least {2 * OUTER_RADIUS} cells per side "
                f"for the 9x9 outer shell to be meaningful; got {g}"
            )
        self.graph = graph
        self.g = g
        hull = square_hull(graph.bounding_box())
        self._x0 = hull.xmin
        self._y0 = hull.ymin
        side = hull.side or 1.0
        self._cell_size = side / g
        self.cell_of_vertex: list[int] = [
            self.cell_id(*self.cell_coords(graph.xs[v], graph.ys[v]))
            for v in range(graph.n)
        ]
        self._members: dict[int, list[int]] = {}
        for v, c in enumerate(self.cell_of_vertex):
            self._members.setdefault(c, []).append(v)

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def cell_size(self) -> float:
        return self._cell_size

    def cell_coords(self, x: float, y: float) -> tuple[int, int]:
        """``(ix, iy)`` cell of a point, clamped into the grid."""
        ix = min(self.g - 1, max(0, int((x - self._x0) / self._cell_size)))
        iy = min(self.g - 1, max(0, int((y - self._y0) / self._cell_size)))
        return ix, iy

    def cell_id(self, ix: int, iy: int) -> int:
        """Dense id of cell ``(ix, iy)``."""
        return iy * self.g + ix

    def cell_xy(self, cell: int) -> tuple[int, int]:
        """Inverse of :meth:`cell_id`."""
        return cell % self.g, cell // self.g

    def cell_distance(self, cell_a: int, cell_b: int) -> int:
        """Chebyshev distance between two cells."""
        ax, ay = self.cell_xy(cell_a)
        bx, by = self.cell_xy(cell_b)
        return max(abs(ax - bx), abs(ay - by))

    def vertex_cell_distance(self, u: int, v: int) -> int:
        """Chebyshev cell distance between two vertices' cells."""
        return self.cell_distance(self.cell_of_vertex[u], self.cell_of_vertex[v])

    # ------------------------------------------------------------------
    # Membership / answerability
    # ------------------------------------------------------------------
    def nonempty_cells(self) -> Iterator[int]:
        """Cells that contain at least one vertex, ascending id."""
        return iter(sorted(self._members))

    def vertices_in(self, cell: int) -> list[int]:
        """Vertices whose coordinates fall into ``cell``."""
        return self._members.get(cell, [])

    def beyond_outer_shell(self, cell_a: int, cell_b: int) -> bool:
        """Whether ``cell_b`` lies outside the 9×9 block of ``cell_a``.

        This is the §3.3 condition under which a distance query from a
        vertex in ``cell_a`` to one in ``cell_b`` is TNR-answerable.
        """
        return self.cell_distance(cell_a, cell_b) > OUTER_RADIUS

    def answerable(self, u: int, v: int) -> bool:
        """TNR answerability of the vertex pair (distance queries)."""
        return self.beyond_outer_shell(
            self.cell_of_vertex[u], self.cell_of_vertex[v]
        )

    def outer_shells_disjoint(self, cell_a: int, cell_b: int) -> bool:
        """Whether the two 9×9 blocks share no cell (path-query regime).

        §3.3: "TNR can derive the shortest path between s and t using
        the pre-computed distances, as long as the outer shells of Cs
        and Ct do not intersect."
        """
        return self.cell_distance(cell_a, cell_b) > 2 * OUTER_RADIUS

    # ------------------------------------------------------------------
    # Shell-crossing edges
    # ------------------------------------------------------------------
    def crossing_edges(
        self, center: int, radius: int
    ) -> Iterator[tuple[int, int, float]]:
        """Edges crossing the shell of ``center`` at ``radius`` cells.

        Yields ``(inside_endpoint, outside_endpoint, weight)`` where the
        inside endpoint's cell distance to ``center`` is ≤ ``radius``
        and the outside endpoint's is > ``radius``. Scans only vertices
        within ``radius + 1`` cells, not the whole graph.
        """
        cx, cy = self.cell_xy(center)
        g = self.g
        cell_of = self.cell_of_vertex
        for iy in range(max(0, cy - radius), min(g, cy + radius + 1)):
            for ix in range(max(0, cx - radius), min(g, cx + radius + 1)):
                for u in self._members.get(self.cell_id(ix, iy), ()):
                    for v, w in self.graph.neighbors(u):
                        if self.cell_distance(center, cell_of[v]) > radius:
                            yield u, v, w

    def shell_endpoint_sets(self, center: int, radius: int) -> tuple[set[int], set[int]]:
        """Inside/outside endpoints of edges crossing a shell.

        The paper's ``Vout`` (for the outer shell) is the union of the
        two sets: "the endpoints of those edges".
        """
        inside: set[int] = set()
        outside: set[int] = set()
        for u, v, _ in self.crossing_edges(center, radius):
            inside.add(u)
            outside.add(v)
        return inside, outside


def max_cell_distance(grid: TNRGrid, pairs: Iterable[tuple[int, int]]) -> int:
    """Largest cell distance among the given vertex pairs (diagnostics)."""
    return max(
        (grid.vertex_cell_distance(u, v) for u, v in pairs),
        default=0,
    )
