"""The TNR index: per-vertex access-node distances + transit table.

TNR pre-computes two bodies of distance information (§3.3):

- ``I2``: for every vertex ``v``, the distances to the access nodes of
  the cell containing ``v`` (O(n) space — the dominant cost on large
  networks, §4.3);
- ``I1``: the pairwise distances among all access nodes of all cells
  (size independent of n once the per-cell access count saturates —
  the dominant cost on small networks, §4.3).

``I1`` is computed with the CH bucket-based many-to-many algorithm,
mirroring §4.1's use of CH to accelerate TNR preprocessing.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.core.ch.many_to_many import many_to_many
from repro.core.ch.query import ContractionHierarchy
from repro.core.tnr.access_nodes import (
    CellAccess,
    compute_access_nodes,
    transit_nodes as collect_transit_nodes,
)
from repro.core.tnr.grid import TNRGrid
from repro.graph.graph import Graph

INF = math.inf


@dataclass
class TNRBuildStats:
    """Preprocessing diagnostics."""

    seconds_access_nodes: float = 0.0
    seconds_table: float = 0.0
    n_transit_nodes: int = 0
    mean_access_per_cell: float = 0.0
    flawed: bool = False

    @property
    def seconds(self) -> float:
        return self.seconds_access_nodes + self.seconds_table


@dataclass
class TNRIndex:
    """Everything a TNR query needs.

    Attributes
    ----------
    grid:
        The imposed grid (owns vertex → cell mapping).
    transit_nodes:
        Sorted global ids of all access nodes of all cells.
    table:
        ``table[i][j] = dist(transit_nodes[i], transit_nodes[j])`` —
        the paper's ``I1``, float32 (exact for integer travel times up
        to 2^24; see :func:`repro.core.ch.many_to_many.many_to_many`).
    vertex_access / vertex_access_dist:
        The paper's ``I2``: for every vertex, the *transit indexes* of
        its cell's access nodes and the matching distances.
    """

    grid: TNRGrid
    transit_nodes: list[int]
    table: np.ndarray
    vertex_access: list[np.ndarray]
    vertex_access_dist: list[np.ndarray]
    stats: TNRBuildStats = field(default_factory=TNRBuildStats)

    @property
    def n_transit_nodes(self) -> int:
        return len(self.transit_nodes)

    def answerable(self, source: int, target: int) -> bool:
        """Whether Equation 1 applies to this vertex pair."""
        return self.grid.answerable(source, target)


def build_tnr(
    graph: Graph,
    ch: ContractionHierarchy,
    grid_g: int,
    flawed: bool = False,
    workers: int | None = None,
) -> TNRIndex:
    """Build a TNR index over ``graph`` with a ``grid_g × grid_g`` grid.

    ``ch`` is the contraction hierarchy used to accelerate the
    all-access-node distance table (§4.1). ``flawed=True`` swaps in
    Bast et al.'s incomplete access-node computation so Appendix B's
    defect can be demonstrated; never use it for real queries.
    """
    grid = TNRGrid(graph, grid_g)
    stats = TNRBuildStats(flawed=flawed)
    build_span = obs.span("tnr.build")
    build_span.__enter__()

    start = time.perf_counter()
    with obs.span("tnr.access_nodes"):
        cell_access: dict[int, CellAccess] = compute_access_nodes(
            graph, grid, flawed, workers=workers
        )
    stats.seconds_access_nodes = time.perf_counter() - start

    transit_nodes = collect_transit_nodes(cell_access)
    t_index = {v: i for i, v in enumerate(transit_nodes)}
    stats.n_transit_nodes = len(transit_nodes)
    nonempty = [info for info in cell_access.values() if info.access_nodes]
    if nonempty:
        stats.mean_access_per_cell = sum(
            len(info.access_nodes) for info in nonempty
        ) / len(nonempty)

    start = time.perf_counter()
    with obs.span("tnr.table"):
        table = many_to_many(ch, transit_nodes, transit_nodes, dtype=np.float32)
    stats.seconds_table = time.perf_counter() - start

    with obs.span("tnr.vertex_tables"):
        empty_idx = np.empty(0, dtype=np.int32)
        empty_dist = np.empty(0, dtype=np.float64)
        vertex_access: list[np.ndarray] = [empty_idx] * graph.n
        vertex_access_dist: list[np.ndarray] = [empty_dist] * graph.n
        for info in cell_access.values():
            idx = np.array([t_index[a] for a in info.access_nodes], dtype=np.int32)
            for v, dists in info.vertex_distances.items():
                vertex_access[v] = idx
                vertex_access_dist[v] = np.array(dists, dtype=np.float64)

    build_span.__exit__(None, None, None)
    if obs.ENABLED:
        reg = obs.registry()
        reg.counter("tnr.build.runs").inc()
        reg.gauge("tnr.build.transit_nodes").set(stats.n_transit_nodes)
        reg.gauge("tnr.build.mean_access_per_cell").set(stats.mean_access_per_cell)

    return TNRIndex(
        grid=grid,
        transit_nodes=transit_nodes,
        table=table,
        vertex_access=vertex_access,
        vertex_access_dist=vertex_access_dist,
        stats=stats,
    )
