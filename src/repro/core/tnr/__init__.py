"""Transit Node Routing (Bast et al. [5], paper §3.3).

TNR imposes a grid on the road network and pre-computes, for every grid
cell, a set of *access nodes* covering all shortest paths that leave the
cell's neighbourhood, plus the pairwise distances among all access
nodes. Far-apart queries then reduce to a few table lookups
(Equation 1); near queries fall back to CH or bidirectional Dijkstra.

This package contains:

- :mod:`~repro.core.tnr.grid` — the grid with the paper's 5×5 inner and
  9×9 outer shells;
- :mod:`~repro.core.tnr.access_nodes` — the *corrected* access-node
  computation (§3.3 Remarks) **and** Bast et al.'s flawed original
  (Appendix B), kept for the defect demonstration;
- :mod:`~repro.core.tnr.index` / :mod:`~repro.core.tnr.query` — the
  index and the distance / shortest-path query algorithms;
- :mod:`~repro.core.tnr.hybrid` — the two-level hybrid grid of
  Appendix E.1.
"""

from repro.core.tnr.access_nodes import compute_access_nodes
from repro.core.tnr.grid import TNRGrid
from repro.core.tnr.hybrid import HybridTNR
from repro.core.tnr.index import TNRIndex, build_tnr
from repro.core.tnr.query import TransitNodeRouting

__all__ = [
    "HybridTNR",
    "TNRGrid",
    "TNRIndex",
    "TransitNodeRouting",
    "build_tnr",
    "compute_access_nodes",
]
