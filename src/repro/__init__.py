"""Reproduction of *Shortest Path and Distance Queries on Road
Networks: An Experimental Evaluation* (Wu et al., PVLDB 5(5), 2012).

The package implements, from scratch, the five techniques the paper
evaluates — bidirectional Dijkstra, Contraction Hierarchies, Transit
Node Routing (with the corrected access-node preprocessing of
Appendix B), SILC and PCPD — plus the road-network substrate, the
workload generators of §4.2/E.2, the analyses of Appendices B and C,
and a harness that regenerates every table and figure.

Quickstart
----------
>>> import repro
>>> g = repro.load_dataset("DE", tier="tiny")
>>> ch = repro.ContractionHierarchy.build(g)
>>> ch.distance(0, g.n - 1) > 0
True

See ``examples/quickstart.py`` for a guided tour and ``repro-harness
--list`` for the experiment runners.
"""

from repro.core.bidirectional import BidirectionalDijkstra, UnidirectionalDijkstra
from repro.core.ch import ContractionHierarchy, OrderingConfig, build_ch
from repro.core.labels import HubLabels, build_hub_labels
from repro.core.pcpd import PCPD, build_pcpd
from repro.core.silc import SILC, build_silc
from repro.core.tnr import HybridTNR, TransitNodeRouting, build_tnr
from repro.datasets import (
    DATASET_NAMES,
    PAPER_TABLE1,
    dataset_spec,
    load_dataset,
)
from repro.graph.generators import (
    RoadNetworkSpec,
    generate_road_network,
    grid_graph,
    paper_example_graph,
)
from repro.graph.graph import Edge, Graph
from repro.queries.workloads import distance_query_sets, linf_query_sets

__version__ = "1.0.0"

__all__ = [
    "BidirectionalDijkstra",
    "ContractionHierarchy",
    "DATASET_NAMES",
    "Edge",
    "Graph",
    "HubLabels",
    "HybridTNR",
    "OrderingConfig",
    "PAPER_TABLE1",
    "PCPD",
    "RoadNetworkSpec",
    "SILC",
    "TransitNodeRouting",
    "UnidirectionalDijkstra",
    "__version__",
    "build_ch",
    "build_hub_labels",
    "build_pcpd",
    "build_silc",
    "build_tnr",
    "dataset_spec",
    "distance_query_sets",
    "generate_road_network",
    "grid_graph",
    "linf_query_sets",
    "load_dataset",
    "paper_example_graph",
]
