"""Experiment plumbing: result container and the experiment registry."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.harness.registry import Registry

#: key -> runner, populated by the @experiment decorator in figures.py.
EXPERIMENTS: dict[str, Callable[..., "Experiment"]] = {}


@dataclass
class Experiment:
    """One reproduced table/figure: rendered rows plus raw data.

    ``data`` holds the raw numbers keyed by (series, dataset, ...) so
    tests and EXPERIMENTS.md generation can assert on shapes without
    re-parsing strings.
    """

    key: str
    title: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)
    data: dict = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        """ASCII table in the style of the paper's tables."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: list[str]) -> str:
            return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

        out = [f"== {self.key}: {self.title} =="]
        out.append(line(self.headers))
        out.append(line(["-" * w for w in widths]))
        out.extend(line(row) for row in self.rows)
        for note in self.notes:
            out.append(f"note: {note}")
        return "\n".join(out)


def experiment(key: str) -> Callable:
    """Register a runner under ``key`` (e.g. ``fig8``, ``table2``)."""

    def wrap(fn: Callable[..., Experiment]) -> Callable[..., Experiment]:
        EXPERIMENTS[key] = fn
        return fn

    return wrap


def run(key: str, registry: Registry, **kwargs) -> Experiment:
    """Run one registered experiment."""
    # Import for the registration side effect.
    from repro.harness import figures  # noqa: F401

    if key not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {key!r}; known: {known}")
    return EXPERIMENTS[key](registry, **kwargs)


def all_keys() -> list[str]:
    from repro.harness import figures  # noqa: F401

    return sorted(EXPERIMENTS)
