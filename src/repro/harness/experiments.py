"""Experiment plumbing: result container, registry, batched serving.

Besides the per-figure experiment registry this module hosts the
*batched distance endpoint*: :func:`distance_table` answers a full
``sources × targets`` grid through whichever technique is given, and
:func:`batched_distances` serves an arbitrary pair list in fixed-size
batches (default 64), deduplicating each batch's endpoints so the
underlying many-to-many machinery (CH buckets, TNR table gathers, CSR
SSSP sweeps) amortises its per-endpoint work across the batch — the
batched-serving idea of Zhu et al. 2013. Techniques without a native
``distance_table`` degrade to per-pair queries, so every registered
technique can be served through the same entry points.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro import obs
from repro.harness.registry import Registry

#: key -> runner, populated by the @experiment decorator in figures.py.
EXPERIMENTS: dict[str, Callable[..., "Experiment"]] = {}

#: Pairs served per :func:`batched_distances` chunk. 64 keeps the
#: deduplicated endpoint sets (≤ 64 each) comfortably inside one
#: many-to-many sweep while bounding the table scratch to 64×64.
DEFAULT_BATCH = 64


def distance_table(technique, sources, targets) -> np.ndarray:
    """``table[i][j] = dist(sources[i], targets[j])`` via ``technique``.

    Uses the technique's native ``distance_table`` when it has one
    (CH many-to-many buckets, TNR table gathers, CSR SSSP sweeps);
    otherwise falls back to one ``distance`` call per pair. Either way
    every entry equals the technique's per-pair answer; unreachable
    pairs hold ``inf``.
    """
    native = getattr(technique, "distance_table", None)
    if native is not None:
        return np.asarray(native(sources, targets), dtype=np.float64)
    out = np.empty((len(sources), len(targets)), dtype=np.float64)
    for i, s in enumerate(sources):
        for j, t in enumerate(targets):
            out[i, j] = technique.distance(s, t)
    return out


def batched_distances(
    technique,
    pairs: Sequence[tuple[int, int]],
    batch_size: int = DEFAULT_BATCH,
) -> np.ndarray:
    """Serve ``pairs`` in batches of ``batch_size`` through a technique.

    Each batch deduplicates its sources and targets, answers the small
    cross-product grid with :func:`distance_table`, and gathers the
    requested entries — so a batch with repeated endpoints (the common
    case for workload Q-sets) costs one sweep per *distinct* endpoint,
    not per pair. Returns distances in input order.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    with obs.span("serve.batched"):
        out = np.empty(len(pairs), dtype=np.float64)
        counting = obs.ENABLED
        native_pairs = getattr(technique, "distance_pairs", None)
        if native_pairs is not None:
            # A native per-pair batch path (TNR): linear in the batch,
            # so the dedup grid below — quadratic for mostly-distinct
            # endpoints — would only hurt.
            for a in range(0, len(pairs), batch_size):
                start = time.perf_counter() if counting else 0.0
                chunk = pairs[a : a + batch_size]
                out[a : a + len(chunk)] = native_pairs(chunk)
                if counting and len(chunk):
                    elapsed_us = (time.perf_counter() - start) * 1e6
                    reg = obs.registry()
                    reg.counter("serve.batches").inc()
                    reg.counter("serve.pairs").inc(len(chunk))
                    reg.histogram("serve.batch_us").observe(elapsed_us)
                    reg.histogram("serve.request_us").observe(
                        elapsed_us / len(chunk), n=len(chunk)
                    )
            return out
        native = getattr(technique, "distance_table", None)
        if native is None:
            start = time.perf_counter() if counting else 0.0
            for k, (s, t) in enumerate(pairs):
                out[k] = technique.distance(s, t)
            if counting and len(pairs):
                elapsed_us = (time.perf_counter() - start) * 1e6
                reg = obs.registry()
                reg.counter("serve.pairs").inc(len(pairs))
                reg.histogram("serve.request_us").observe(
                    elapsed_us / len(pairs), n=len(pairs)
                )
            return out
        dedup_saved = 0
        for a in range(0, len(pairs), batch_size):
            start = time.perf_counter() if counting else 0.0
            chunk = pairs[a : a + batch_size]
            srcs = sorted({int(s) for s, _ in chunk})
            tgts = sorted({int(t) for _, t in chunk})
            table = distance_table(technique, srcs, tgts)
            si = {v: k for k, v in enumerate(srcs)}
            ti = {v: k for k, v in enumerate(tgts)}
            for k, (s, t) in enumerate(chunk):
                out[a + k] = table[si[int(s)], ti[int(t)]]
            if counting:
                # A batch of p pairs costs one sweep per *distinct*
                # endpoint; the saving is the per-side duplicate count.
                dedup_saved += 2 * len(chunk) - len(srcs) - len(tgts)
                elapsed_us = (time.perf_counter() - start) * 1e6
                reg = obs.registry()
                reg.counter("serve.batches").inc()
                reg.counter("serve.pairs").inc(len(chunk))
                reg.counter("serve.distinct_sources").inc(len(srcs))
                reg.counter("serve.distinct_targets").inc(len(tgts))
                reg.histogram("serve.batch_us").observe(elapsed_us)
                reg.histogram("serve.request_us").observe(
                    elapsed_us / len(chunk), n=len(chunk)
                )
        if counting:
            obs.registry().counter("serve.dedup_saved").inc(dedup_saved)
    return out


def request_stream(
    pairs: Sequence[tuple[int, int]], request_size: int
) -> list[list[tuple[int, int]]]:
    """Split a pair workload into request-sized chunks, in order.

    This models how clients actually arrive at a service: many small
    independent requests, not one giant batch. The serving scheduler
    (:mod:`repro.serve.scheduler`) re-coalesces such streams; the bench
    scripts use the same chunking for the single-process per-request
    baseline so the comparison is apples to apples.
    """
    if request_size < 1:
        raise ValueError(f"request_size must be >= 1, got {request_size}")
    return [
        list(pairs[a : a + request_size])
        for a in range(0, len(pairs), request_size)
    ]


@dataclass
class Experiment:
    """One reproduced table/figure: rendered rows plus raw data.

    ``data`` holds the raw numbers keyed by (series, dataset, ...) so
    tests and EXPERIMENTS.md generation can assert on shapes without
    re-parsing strings.
    """

    key: str
    title: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)
    data: dict = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        """ASCII table in the style of the paper's tables."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: list[str]) -> str:
            return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

        out = [f"== {self.key}: {self.title} =="]
        out.append(line(self.headers))
        out.append(line(["-" * w for w in widths]))
        out.extend(line(row) for row in self.rows)
        for note in self.notes:
            out.append(f"note: {note}")
        return "\n".join(out)


def experiment(key: str) -> Callable:
    """Register a runner under ``key`` (e.g. ``fig8``, ``table2``)."""

    def wrap(fn: Callable[..., Experiment]) -> Callable[..., Experiment]:
        EXPERIMENTS[key] = fn
        return fn

    return wrap


def run(key: str, registry: Registry, **kwargs) -> Experiment:
    """Run one registered experiment."""
    # Import for the registration side effect.
    from repro.harness import figures  # noqa: F401

    if key not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {key!r}; known: {known}")
    return EXPERIMENTS[key](registry, **kwargs)


def all_keys() -> list[str]:
    from repro.harness import figures  # noqa: F401

    return sorted(EXPERIMENTS)
