"""Hardened disk cache for experiment artifacts.

Every table and figure in the reproduction flows through the registry's
disk cache — a corrupt, truncated, or stale entry used to abort the run
with a raw ``UnpicklingError``. This module replaces the bare
``pickle.load`` with a small, verifiable container format plus the
operational plumbing around it:

**integrity** — each entry carries a header with the cache format
version, the repro package version, the payload's sha256, its byte
length, and build metadata; everything is verified on load.

**recovery** — *any* load failure (bad magic, truncation, checksum
mismatch, version skew, ``AttributeError`` from a renamed class, …) is
treated as a miss: the bad file is quarantined and the artifact is
rebuilt transparently by the caller.

**concurrency** — writes go to a unique per-process temp file and land
via ``os.replace``; manifest updates are serialised by an advisory
``flock`` so parallel benchmark workers and pytest sessions never
clobber or half-read each other's entries.

**introspection** — a JSON manifest records per-entry size, checksum
and build time plus cumulative hit/miss/rebuild counters, surfaced by
``python -m repro.harness cache {list,verify,clear,stats}``.

Entry layout (format ``v2``)::

    MAGIC (8 bytes)  |  header length (4 bytes, big-endian)
    header JSON      |  pickled payload

Bump :data:`CACHE_VERSION` whenever an index layout changes — entries
live under ``<root>/v<CACHE_VERSION>/`` so a bump simply starts a fresh
namespace and old entries are never misread.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
import sys
import time
import uuid
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Iterator

try:  # advisory locking is POSIX-only; degrade gracefully elsewhere
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

from repro import obs
from repro.harness.timing import fmt_bytes, fmt_cache_stats, fmt_seconds

MAGIC = b"RRNQCCH2"  # repro road-network query cache, container format 2
CACHE_VERSION = 2
MANIFEST_NAME = "manifest.json"
_HEADER_LIMIT = 1 << 20  # a sane upper bound; headers are ~300 bytes
_QUARANTINE_LOG_LIMIT = 50

#: Sentinel returned by :meth:`DiskCache.load` when there is no usable entry.
MISSING = object()


class CacheIntegrityError(RuntimeError):
    """An entry failed verification (corrupt, truncated, or stale)."""


def _repro_version() -> str:
    try:  # lazy: keeps this module importable mid-refactor
        from repro import __version__

        return __version__
    except Exception:  # pragma: no cover
        return "unknown"


def sha256_hex(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def unique_tmp_path(path: str | os.PathLike) -> str:
    """A sibling temp name no other process can collide on.

    The pid + random suffix matters: a *shared* ``.tmp`` name lets two
    concurrent writers interleave into one file before the rename.
    """
    return f"{os.fspath(path)}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp"


def atomic_write_bytes(path: str | os.PathLike, data: bytes) -> None:
    """Write ``data`` to ``path`` via a unique temp file + ``os.replace``."""
    tmp = unique_tmp_path(path)
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


# ----------------------------------------------------------------------
# Entry format
# ----------------------------------------------------------------------
def write_entry(
    path: Path,
    value: Any,
    key: tuple,
    build_seconds: float,
    cache_version: int = CACHE_VERSION,
) -> dict:
    """Pickle ``value`` and write a checksummed entry; returns the header."""
    payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    return write_entry_payload(path, payload, key, build_seconds, cache_version)


def write_entry_payload(
    path: Path,
    payload: bytes,
    key: tuple,
    build_seconds: float,
    cache_version: int = CACHE_VERSION,
) -> dict:
    """Write already-pickled ``payload`` bytes (split out for tests)."""
    header = {
        "cache_version": cache_version,
        "repro_version": _repro_version(),
        "key": [str(part) for part in key],
        "sha256": sha256_hex(payload),
        "payload_bytes": len(payload),
        "build_seconds": round(float(build_seconds), 6),
        "built_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "writer_pid": os.getpid(),
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    blob = MAGIC + len(header_bytes).to_bytes(4, "big") + header_bytes + payload
    atomic_write_bytes(path, blob)
    return header


def read_header(path: Path) -> dict:
    """Parse just the header (cheap: no payload read, no checksum)."""
    with open(path, "rb") as fh:
        return _read_header_fh(path, fh)


def _read_header_fh(path: Path, fh) -> dict:
    magic = fh.read(len(MAGIC))
    if magic != MAGIC:
        raise CacheIntegrityError(f"{path.name}: bad magic (not a cache entry)")
    raw_len = fh.read(4)
    if len(raw_len) != 4:
        raise CacheIntegrityError(f"{path.name}: truncated header length")
    header_len = int.from_bytes(raw_len, "big")
    if not 0 < header_len <= _HEADER_LIMIT:
        raise CacheIntegrityError(f"{path.name}: implausible header length {header_len}")
    header_bytes = fh.read(header_len)
    if len(header_bytes) != header_len:
        raise CacheIntegrityError(f"{path.name}: truncated header")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise CacheIntegrityError(f"{path.name}: unparsable header ({exc})") from exc
    if not isinstance(header, dict):
        raise CacheIntegrityError(f"{path.name}: header is not an object")
    return header


def read_entry(path: Path, expected_version: int = CACHE_VERSION) -> tuple[Any, dict]:
    """Read and fully verify one entry; raises :class:`CacheIntegrityError`.

    Verification order: magic → header → cache version → payload length
    → sha256 → unpickle. Renamed-class ``AttributeError`` and any other
    unpickling explosion are wrapped, so callers have exactly one
    exception type to treat as "rebuild this".
    """
    try:
        with open(path, "rb") as fh:
            header = _read_header_fh(path, fh)
            payload = fh.read()
    except OSError as exc:
        raise CacheIntegrityError(f"{path.name}: unreadable ({exc})") from exc
    version = header.get("cache_version")
    if version != expected_version:
        raise CacheIntegrityError(
            f"{path.name}: cache version skew ({version} != {expected_version})"
        )
    if header.get("payload_bytes") != len(payload):
        raise CacheIntegrityError(
            f"{path.name}: truncated payload "
            f"({len(payload)} of {header.get('payload_bytes')} bytes)"
        )
    if sha256_hex(payload) != header.get("sha256"):
        raise CacheIntegrityError(f"{path.name}: payload checksum mismatch")
    try:
        value = pickle.loads(payload)
    except Exception as exc:  # UnpicklingError, EOFError, AttributeError, ...
        raise CacheIntegrityError(
            f"{path.name}: payload does not unpickle "
            f"({type(exc).__name__}: {exc})"
        ) from exc
    return value, header


# ----------------------------------------------------------------------
# Counters
# ----------------------------------------------------------------------
@dataclass
class CacheStats:
    """Structured hit/miss/rebuild counters for one cache handle.

    Deltas are mirrored into the process-wide metrics registry under
    ``cache.<name>`` (when observability is on), so ``repro-harness
    stats`` and :func:`fmt_cache_stats` read from one source of truth.
    """

    hits: int = 0
    misses: int = 0
    rebuilds: int = 0
    writes: int = 0
    quarantined: int = 0

    def as_dict(self) -> dict[str, int]:
        return asdict(self)

    def add(self, **deltas: int) -> None:
        for name, delta in deltas.items():
            setattr(self, name, getattr(self, name) + delta)
        if obs.ENABLED:
            obs.registry().add_counters("cache", deltas)

    def __str__(self) -> str:
        return fmt_cache_stats(self.as_dict())


@dataclass
class EntryInfo:
    """One entry as seen by ``cache list`` / ``cache verify``."""

    name: str
    size: int
    header: dict | None = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


# ----------------------------------------------------------------------
# The cache proper
# ----------------------------------------------------------------------
@dataclass
class DiskCache:
    """A versioned, checksummed, multi-process-safe pickle cache.

    ``root`` is the cache directory (``.cache/repro`` by default);
    entries live under ``root/v<version>/``, corrupt files end up under
    ``root/quarantine/``, and ``root/manifest.json`` holds per-entry
    metadata plus cumulative counters shared across processes.
    """

    root: Path
    version: int = CACHE_VERSION
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    # -- paths ----------------------------------------------------------
    @property
    def entries_dir(self) -> Path:
        return self.root / f"v{self.version}"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    def entry_path(self, key: tuple) -> Path:
        name = "-".join(str(part) for part in key)
        return self.entries_dir / f"{name}.pkl"

    # -- locking & manifest ---------------------------------------------
    @contextmanager
    def _locked(self) -> Iterator[None]:
        """Advisory exclusive lock serialising manifest read-modify-write."""
        self.root.mkdir(parents=True, exist_ok=True)
        with open(self.root / ".lock", "a+b") as fh:
            if fcntl is not None:
                fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                if fcntl is not None:
                    fcntl.flock(fh.fileno(), fcntl.LOCK_UN)

    def manifest(self) -> dict:
        """The manifest as a dict (empty skeleton if absent/corrupt)."""
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
            if isinstance(data, dict):
                data.setdefault("entries", {})
                data.setdefault("counters", {})
                data.setdefault("quarantine_log", [])
                return data
        except (OSError, ValueError):
            pass
        return {
            "cache_version": self.version,
            "entries": {},
            "counters": {},
            "quarantine_log": [],
        }

    def _mutate_manifest(self, mutate) -> None:
        """Locked read-modify-write of the manifest (atomic replace)."""
        with self._locked():
            data = self.manifest()
            mutate(data)
            data["cache_version"] = self.version
            data["updated_at"] = time.strftime("%Y-%m-%dT%H:%M:%S")
            atomic_write_bytes(
                self.manifest_path,
                json.dumps(data, sort_keys=True, indent=1).encode("utf-8"),
            )

    def _count(self, **deltas: int) -> None:
        """Bump in-memory counters and fold the delta into the manifest."""
        self.stats.add(**deltas)

        def mutate(data: dict) -> None:
            counters = data["counters"]
            for name, delta in deltas.items():
                counters[name] = int(counters.get(name, 0)) + delta

        try:
            self._mutate_manifest(mutate)
        except OSError as exc:  # counters are best-effort; never kill a run
            print(f"[cache] manifest update failed: {exc}", file=sys.stderr)

    # -- core operations -------------------------------------------------
    def load(self, key: tuple) -> Any:
        """The cached value, or :data:`MISSING`.

        Never raises for a bad entry: corruption of any kind quarantines
        the file, counts a rebuild, and reports a miss so the caller
        rebuilds transparently.
        """
        path = self.entry_path(key)
        if not path.exists():
            self._count(misses=1)
            return MISSING
        try:
            value, _header = read_entry(path, self.version)
        except CacheIntegrityError as exc:
            self.quarantine(path, reason=str(exc))
            self._count(rebuilds=1, quarantined=1)
            return MISSING
        except Exception as exc:  # belt and braces: *any* failure is a miss
            self.quarantine(path, reason=f"{type(exc).__name__}: {exc}")
            self._count(rebuilds=1, quarantined=1)
            return MISSING
        self._count(hits=1)
        return value

    def store(self, key: tuple, value: Any, build_seconds: float = 0.0) -> None:
        """Write an entry (best-effort: cache I/O never fails the build)."""
        path = self.entry_path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            header = write_entry(path, value, key, build_seconds, self.version)
        except Exception as exc:
            print(f"[cache] failed to store {key}: {exc}", file=sys.stderr)
            return

        def mutate(data: dict) -> None:
            data["entries"][path.name] = {
                "key": header["key"],
                "bytes": len(MAGIC) + 4 + header["payload_bytes"],
                "payload_bytes": header["payload_bytes"],
                "sha256": header["sha256"],
                "build_seconds": header["build_seconds"],
                "built_at": header["built_at"],
                "repro_version": header["repro_version"],
            }

        try:
            self._mutate_manifest(mutate)
        except OSError as exc:
            print(f"[cache] manifest update failed: {exc}", file=sys.stderr)
        self._count(writes=1)

    def quarantine(self, path: Path, reason: str) -> None:
        """Move a bad entry aside (or drop it) so it is never read again."""
        qname = f"{path.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}.bad"
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, self.quarantine_dir / qname)
        except OSError:
            try:  # cross-device or racing quarantine: just delete
                os.unlink(path)
            except OSError:
                pass
        print(f"[cache] quarantined {path.name}: {reason}", file=sys.stderr)

        def mutate(data: dict) -> None:
            log = data["quarantine_log"]
            log.append({"file": qname, "reason": reason,
                        "at": time.strftime("%Y-%m-%dT%H:%M:%S")})
            del log[:-_QUARANTINE_LOG_LIMIT]
            data["entries"].pop(path.name, None)

        try:
            self._mutate_manifest(mutate)
        except OSError:
            pass

    # -- introspection ---------------------------------------------------
    def entry_files(self) -> list[Path]:
        if not self.entries_dir.is_dir():
            return []
        return sorted(p for p in self.entries_dir.glob("*.pkl") if p.is_file())

    def list_entries(self) -> list[EntryInfo]:
        """Header-level view of every entry (no checksum verification)."""
        infos = []
        for path in self.entry_files():
            size = path.stat().st_size
            try:
                infos.append(EntryInfo(path.name, size, header=read_header(path)))
            except CacheIntegrityError as exc:
                infos.append(EntryInfo(path.name, size, error=str(exc)))
        return infos

    def verify(self, quarantine: bool = False) -> list[EntryInfo]:
        """Fully re-read every entry: checksum, version and unpickle.

        With ``quarantine=True`` bad entries are moved aside, so the
        next run rebuilds them and a re-verify comes back clean.
        """
        infos = []
        for path in self.entry_files():
            size = path.stat().st_size
            try:
                _value, header = read_entry(path, self.version)
                infos.append(EntryInfo(path.name, size, header=header))
            except CacheIntegrityError as exc:
                infos.append(EntryInfo(path.name, size, error=str(exc)))
                if quarantine:
                    self.quarantine(path, reason=str(exc))
                    self._count(quarantined=1)
        return infos

    def clear(self) -> int:
        """Delete the whole cache directory; returns files removed."""
        if not self.root.is_dir():
            return 0
        removed = sum(1 for p in self.root.rglob("*") if p.is_file())
        shutil.rmtree(self.root, ignore_errors=True)
        return removed

    def totals(self) -> tuple[int, int]:
        """(entry count, total bytes) of the live entry directory."""
        files = self.entry_files()
        return len(files), sum(p.stat().st_size for p in files)

    def describe(self) -> str:
        """Multi-line human summary used by ``cache stats``."""
        count, size = self.totals()
        counters = self.manifest().get("counters", {})
        quarantined = len(list(self.quarantine_dir.glob("*.bad"))) \
            if self.quarantine_dir.is_dir() else 0
        lines = [
            f"cache root     {self.root}",
            f"format         v{self.version} (magic {MAGIC.decode('ascii')})",
            f"entries        {count} ({fmt_bytes(size)})",
            f"quarantined    {quarantined} file(s)",
            f"lifetime       {fmt_cache_stats(counters)}",
            f"this process   {fmt_cache_stats(self.stats.as_dict())}",
        ]
        build = sum(
            e.get("build_seconds", 0.0)
            for e in self.manifest().get("entries", {}).values()
        )
        lines.insert(3, f"build time     {fmt_seconds(build)} amortised in entries")
        return "\n".join(lines)
