"""The experiment registry: one place that builds and caches indexes.

Every bench and harness experiment asks the registry for graphs,
indexes and query workloads. Results are cached at two levels:

- in-process (a dict), so one pytest session builds everything once;
- on disk (:class:`repro.harness.cache.DiskCache` under
  ``.cache/repro``), so repeated benchmark runs skip preprocessing
  entirely — pure-Python index builds are the expensive part of
  reproducing the paper.

The disk layer is hardened: entries are checksummed and versioned, any
load failure (corruption, truncation, version skew, renamed classes)
quarantines the file and rebuilds transparently, and writes are safe
under parallel workers. ``python -m repro.harness cache stats`` shows
the hit/miss/rebuild counters.

Build *times* are part of the cached artifacts (each index carries its
``stats``), so Figure 6(b)-style preprocessing numbers survive the
cache. Bump :data:`repro.harness.cache.CACHE_VERSION` whenever an
index layout changes.

Environment knobs (also exposed as CLI flags):

- ``REPRO_TIER`` — dataset tier (default ``small``);
- ``REPRO_PAIRS`` — pairs per query set (default 100);
- ``REPRO_CACHE`` — cache directory (default ``<cwd>/.cache/repro``);
  set to ``off`` to disable the disk layer.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro import datasets
from repro.harness.cache import MISSING, CacheStats, DiskCache
from repro.core.bidirectional import BidirectionalDijkstra
from repro.core.ch import ContractionHierarchy
from repro.core.ch.contraction import CHIndex, build_ch
from repro.core.labels import HubLabelIndex, HubLabels, build_hub_labels
from repro.core.pcpd import PCPD, build_pcpd
from repro.core.silc import SILC, build_silc
from repro.core.tnr import HybridTNR, TransitNodeRouting, build_tnr
from repro.graph.graph import Graph
from repro.queries.workloads import (
    QuerySet,
    distance_query_sets,
    linf_query_sets,
)

DEFAULT_PAIRS = int(os.environ.get("REPRO_PAIRS", "100"))
DEFAULT_TIER = os.environ.get("REPRO_TIER", datasets.DEFAULT_TIER)
DEFAULT_WORKERS = int(os.environ.get("REPRO_WORKERS", "1"))


def _default_cache_dir() -> Path | None:
    raw = os.environ.get("REPRO_CACHE", "")
    if raw.lower() == "off":
        return None
    if raw:
        return Path(raw)
    return Path.cwd() / ".cache" / "repro"


@dataclass
class Registry:
    """Builds, caches and hands out everything an experiment needs.

    ``cache`` is ``"auto"`` (honour ``REPRO_CACHE`` / default location),
    ``"off"`` (in-memory only), or an explicit directory path.
    """

    tier: str = DEFAULT_TIER
    pairs_per_set: int = DEFAULT_PAIRS
    cache: str = "auto"
    verbose: bool = True
    #: Worker processes for the parallel build passes (``REPRO_WORKERS``).
    workers: int = DEFAULT_WORKERS

    def __post_init__(self) -> None:
        if self.cache == "auto":
            self.cache_dir = _default_cache_dir()
        elif self.cache == "off":
            self.cache_dir = None
        else:
            self.cache_dir = Path(self.cache)
        self.disk_cache: DiskCache | None = (
            DiskCache(self.cache_dir) if self.cache_dir is not None else None
        )
        self._memory: dict[tuple, Any] = {}

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    @property
    def cache_stats(self) -> CacheStats | None:
        """This process's hit/miss/rebuild counters (None when cache off)."""
        return self.disk_cache.stats if self.disk_cache is not None else None

    def _cached(self, key: tuple, builder: Callable[[], Any]) -> Any:
        if key in self._memory:
            return self._memory[key]
        if self.disk_cache is not None:
            value = self.disk_cache.load(key)
            if value is not MISSING:
                self._memory[key] = value
                return value
        started = time.perf_counter()
        value = builder()
        elapsed = time.perf_counter() - started
        if self.verbose and elapsed > 1.0:
            print(f"[registry] built {key} in {elapsed:.1f}s")
        self._memory[key] = value
        if self.disk_cache is not None:
            self.disk_cache.store(key, value, build_seconds=elapsed)
        return value

    # ------------------------------------------------------------------
    # Graphs and workloads
    # ------------------------------------------------------------------
    def graph(self, name: str) -> Graph:
        """The dataset graph (generation itself is cached in-memory)."""
        key = ("graph", self.tier, name)
        return self._cached(key, lambda: datasets.load_dataset(name, self.tier))

    def spec(self, name: str) -> datasets.DatasetSpec:
        return datasets.dataset_spec(name, self.tier)

    def q_sets(self, name: str) -> list[QuerySet]:
        """Q1..Q10 for a dataset (§4.2)."""
        key = ("qsets", self.tier, name, self.pairs_per_set)
        return self._cached(
            key,
            lambda: linf_query_sets(
                self.graph(name), self.pairs_per_set, seed=self.spec(name).seed
            ),
        )

    def r_sets(self, name: str) -> list[QuerySet]:
        """R1..R10 for a dataset (Appendix E.2)."""
        key = ("rsets", self.tier, name, self.pairs_per_set)
        return self._cached(
            key,
            lambda: distance_query_sets(
                self.graph(name), self.pairs_per_set, seed=self.spec(name).seed
            ),
        )

    # ------------------------------------------------------------------
    # Techniques
    # ------------------------------------------------------------------
    def bidijkstra(self, name: str) -> BidirectionalDijkstra:
        return BidirectionalDijkstra(self.graph(name))

    def ch_index(self, name: str) -> CHIndex:
        key = ("ch", self.tier, name)
        return self._cached(key, lambda: build_ch(self.graph(name)))

    def ch(self, name: str) -> ContractionHierarchy:
        return ContractionHierarchy(self.graph(name), self.ch_index(name))

    def tnr(
        self,
        name: str,
        grid: int | None = None,
        fallback: str = "ch",
        flawed: bool = False,
    ) -> TransitNodeRouting:
        """TNR with the dataset's default grid (or an explicit one).

        ``fallback`` is ``"ch"`` (the paper's recommended setup) or
        ``"dijkstra"`` (the Appendix E.1 alternative).
        """
        grid = grid if grid is not None else self.spec(name).tnr_grid
        key = ("tnr", self.tier, name, grid, flawed)
        index = self._cached(
            key,
            lambda: build_tnr(
                self.graph(name), self.ch(name), grid, flawed, workers=self.workers
            ),
        )
        return TransitNodeRouting(self.graph(name), index, self._fallback(name, fallback))

    def hybrid_tnr(self, name: str, grid: int | None = None, fallback: str = "ch") -> HybridTNR:
        """The Appendix E.1 two-level hybrid (coarse ``grid``, fine ``2·grid``)."""
        grid = grid if grid is not None else self.spec(name).tnr_grid
        key = ("tnr-hybrid", self.tier, name, grid)
        hybrid = self._cached(
            key,
            lambda: HybridTNR.build(
                self.graph(name), self.ch(name), grid, self.ch(name)
            ),
        )
        hybrid.fallback = self._fallback(name, fallback)
        return hybrid

    def hub_labels_index(self, name: str) -> HubLabelIndex:
        key = ("labels", self.tier, name)
        return self._cached(key, lambda: build_hub_labels(self.ch(name)))

    def hub_labels(self, name: str) -> HubLabels:
        return HubLabels(self.graph(name), self.hub_labels_index(name))

    def silc(self, name: str) -> SILC:
        key = ("silc", self.tier, name)
        index = self._cached(
            key, lambda: build_silc(self.graph(name), workers=self.workers)
        )
        return SILC(self.graph(name), index)

    def pcpd(self, name: str) -> PCPD:
        key = ("pcpd", self.tier, name)
        graph = self.graph(name)
        index = self._cached(
            key, lambda: build_pcpd(graph, workers=self.workers)
        )
        # The pickled index carries its own Graph copy; rebind to the
        # session's instance so identity checks hold.
        index.graph = graph
        return PCPD(graph, index)

    def _fallback(self, name: str, kind: str):
        if kind == "ch":
            return self.ch(name)
        if kind == "dijkstra":
            return self.bidijkstra(name)
        raise ValueError(f"unknown fallback {kind!r} (use 'ch' or 'dijkstra')")


_default: Registry | None = None


def default_registry() -> Registry:
    """Process-wide registry singleton (benches and harness share it)."""
    global _default
    if _default is None:
        _default = Registry()
    return _default
