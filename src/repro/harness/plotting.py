"""ASCII rendering of the paper's log-log figure series.

The paper's figures are log-log line plots (query time vs n, or vs
query set). ``repro-harness --chart`` renders the measured series the
same way, in the terminal, so the *shape* — who wins, where curves
cross — is visible without any plotting dependency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Plot glyphs per series, in declaration order.
GLYPHS = "o*x+#@%&"


@dataclass(frozen=True)
class Series:
    """One labelled curve: parallel x/y value lists (NaNs are gaps)."""

    label: str
    xs: list[float]
    ys: list[float]

    def finite_points(self) -> list[tuple[float, float]]:
        return [
            (x, y)
            for x, y in zip(self.xs, self.ys)
            if not (math.isnan(y) or math.isinf(y) or y <= 0 or x <= 0)
        ]


def _log_ticks(lo: float, hi: float) -> list[float]:
    """Powers of ten covering [lo, hi]."""
    first = math.floor(math.log10(lo))
    last = math.ceil(math.log10(hi))
    return [10.0**e for e in range(first, last + 1)]


def render_loglog(
    series: list[Series],
    title: str,
    x_label: str,
    y_label: str,
    width: int = 64,
    height: int = 20,
) -> str:
    """A character-grid log-log plot of the given series.

    Mirrors the paper's figure style: log x (n or query-set rank),
    log y (microseconds), one glyph per technique, legend below.
    """
    points = [p for s in series for p in s.finite_points()]
    if not points:
        return f"{title}\n(no finite data to plot)"
    x_lo = min(x for x, _ in points)
    x_hi = max(x for x, _ in points)
    y_lo = min(y for _, y in points)
    y_hi = max(y for _, y in points)
    if x_lo == x_hi:
        x_hi = x_lo * 10
    if y_lo == y_hi:
        y_hi = y_lo * 10

    def col(x: float) -> int:
        f = (math.log10(x) - math.log10(x_lo)) / (math.log10(x_hi) - math.log10(x_lo))
        return min(width - 1, max(0, round(f * (width - 1))))

    def row(y: float) -> int:
        f = (math.log10(y) - math.log10(y_lo)) / (math.log10(y_hi) - math.log10(y_lo))
        return min(height - 1, max(0, round(f * (height - 1))))

    grid = [[" "] * width for _ in range(height)]
    for glyph, s in zip(GLYPHS, series):
        for x, y in s.finite_points():
            r, c = row(y), col(x)
            cell = grid[r][c]
            grid[r][c] = glyph if cell in (" ", glyph) else "?"

    lines = [title, f"{y_label} (log scale)"]
    for r in range(height - 1, -1, -1):
        edge = "+" if r in (0, height - 1) else "|"
        lines.append(edge + "".join(grid[r]))
    lines.append("+" + "-" * width + f"> {x_label} (log scale)")
    lines.append(
        f"x: {x_lo:g} .. {x_hi:g}    y: {y_lo:g} .. {y_hi:g}"
    )
    legend = "   ".join(
        f"{glyph}={s.label}" for glyph, s in zip(GLYPHS, series)
    )
    lines.append(f"legend: {legend}   (?=overlap)")
    return "\n".join(lines)


def _points_to_series(points: dict[float, float], label: str) -> Series:
    xs = sorted(points)
    return Series(label=label, xs=xs, ys=[points[x] for x in xs])


#: Experiments whose panels are per-query-set with x = n.
VS_N_EXPERIMENTS = ("fig8", "fig10", "fig16", "fig17")


def experiment_charts(exp, n_of_dataset: dict[str, float]) -> list[str]:
    """Render an experiment's series as the paper's figure panels.

    For the vs-n figures one panel per query set (x = n); for everything
    else one panel per dataset (x = query-set rank). Experiments without
    ``(technique, dataset, set)`` data yield no charts.
    """
    keyed = [k for k in exp.data if isinstance(k, tuple) and len(k) == 3]
    if not keyed:
        return []
    techniques = sorted({k[0] for k in keyed})
    charts: list[str] = []

    if exp.key in VS_N_EXPERIMENTS:
        for set_name in sorted({k[2] for k in keyed}, key=lambda s: int(s[1:])):
            series = []
            for tech in techniques:
                points = {
                    n_of_dataset[d]: exp.data[(t, d, s)]
                    for (t, d, s) in keyed
                    if t == tech and s == set_name and d in n_of_dataset
                }
                if points:
                    series.append(_points_to_series(points, tech))
            charts.append(render_loglog(
                series, f"{exp.key} — {set_name}", "n", "running time (us)"
            ))
    else:
        for dataset in sorted({k[1] for k in keyed}):
            series = []
            for tech in techniques:
                points = {
                    float(s[1:]): exp.data[(t, d, s)]
                    for (t, d, s) in keyed
                    if t == tech and d == dataset
                }
                if points:
                    series.append(_points_to_series(points, tech))
            charts.append(render_loglog(
                series, f"{exp.key} — {dataset}", "query set", "running time (us)"
            ))
    return charts
