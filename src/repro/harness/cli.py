"""Command-line entry point: ``python -m repro.harness`` / ``repro-harness``.

Examples
--------
List the available experiments::

    repro-harness --list

Reproduce Figure 8 on the default (small) tier::

    repro-harness --experiment fig8

Everything, with a bigger workload, on the tiny tier::

    repro-harness --experiment all --tier tiny --pairs 200
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness.experiments import all_keys, run
from repro.harness.registry import Registry


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-harness",
        description=(
            "Regenerate the tables and figures of 'Shortest Path and "
            "Distance Queries on Road Networks: An Experimental "
            "Evaluation' (Wu et al., VLDB 2012)."
        ),
    )
    parser.add_argument(
        "--experiment", "-e", default=None,
        help="experiment key (e.g. fig8, table2) or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list experiment keys")
    parser.add_argument("--tier", default=None, help="dataset tier (tiny/small/medium)")
    parser.add_argument("--pairs", type=int, default=None, help="pairs per query set")
    parser.add_argument(
        "--datasets", default=None,
        help="comma-separated dataset names overriding the experiment default",
    )
    parser.add_argument("--no-cache", action="store_true", help="disable the disk cache")
    parser.add_argument(
        "--chart", action="store_true",
        help="render the figure's log-log series as ASCII plots",
    )
    return parser


def _print_charts(exp, registry) -> None:
    """Render a figure experiment's series like the paper's plots."""
    from repro.harness.plotting import experiment_charts

    keyed = [k for k in exp.data if isinstance(k, tuple) and len(k) == 3]
    n_of = {k[1]: float(registry.graph(k[1]).n) for k in keyed}
    charts = experiment_charts(exp, n_of)
    if not charts:
        print("(no chartable series in this experiment)\n")
        return
    for chart in charts:
        print(chart)
        print()


def main(argv: list[str] | None = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # Output piped into `head` etc.; exit quietly like a good CLI.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list or not args.experiment:
        print("available experiments:")
        for key in all_keys():
            print(f"  {key}")
        return 0

    kwargs = {}
    if args.tier:
        kwargs["tier"] = args.tier
    if args.pairs:
        kwargs["pairs_per_set"] = args.pairs
    if args.no_cache:
        kwargs["cache"] = "off"
    registry = Registry(**kwargs)

    run_kwargs = {}
    if args.datasets:
        run_kwargs["names"] = tuple(args.datasets.split(","))

    keys = all_keys() if args.experiment == "all" else [args.experiment]
    for key in keys:
        started = time.perf_counter()
        exp = run(key, registry, **(run_kwargs if args.datasets else {}))
        print(exp.render())
        print(f"[{key} completed in {time.perf_counter() - started:.1f}s]\n")
        if args.chart:
            _print_charts(exp, registry)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
