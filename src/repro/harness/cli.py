"""Command-line entry point: ``python -m repro.harness`` / ``repro-harness``.

Examples
--------
List the available experiments::

    repro-harness --list

Reproduce Figure 8 on the default (small) tier::

    repro-harness --experiment fig8

Everything, with a bigger workload, on the tiny tier::

    repro-harness --experiment all --tier tiny --pairs 200

Inspect, verify or reset the disk cache::

    repro-harness cache list
    repro-harness cache verify [--quarantine]
    repro-harness cache stats
    repro-harness cache clear

Serve a workload of distance queries in batches of 64 (the batched
distance endpoint; see docs/PERFORMANCE.md)::

    repro-harness serve --technique ch --dataset DE --pairs 512
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.harness.cache import DiskCache
from repro.harness.experiments import all_keys, run
from repro.harness.registry import Registry, _default_cache_dir


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-harness",
        description=(
            "Regenerate the tables and figures of 'Shortest Path and "
            "Distance Queries on Road Networks: An Experimental "
            "Evaluation' (Wu et al., VLDB 2012)."
        ),
        epilog=(
            "The 'cache' subcommand (repro-harness cache "
            "{list,verify,clear,stats}) manages the disk cache."
        ),
    )
    parser.add_argument(
        "--experiment", "-e", default=None,
        help="experiment key (e.g. fig8, table2) or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list experiment keys")
    parser.add_argument("--tier", default=None, help="dataset tier (tiny/small/medium)")
    parser.add_argument("--pairs", type=int, default=None, help="pairs per query set")
    parser.add_argument(
        "--datasets", default=None,
        help="comma-separated dataset names overriding the experiment default",
    )
    parser.add_argument("--no-cache", action="store_true", help="disable the disk cache")
    parser.add_argument(
        "--chart", action="store_true",
        help="render the figure's log-log series as ASCII plots",
    )
    return parser


def _print_charts(exp, registry) -> None:
    """Render a figure experiment's series like the paper's plots."""
    from repro.harness.plotting import experiment_charts

    keyed = [k for k in exp.data if isinstance(k, tuple) and len(k) == 3]
    n_of = {k[1]: float(registry.graph(k[1]).n) for k in keyed}
    charts = experiment_charts(exp, n_of)
    if not charts:
        print("(no chartable series in this experiment)\n")
        return
    for chart in charts:
        print(chart)
        print()


def main(argv: list[str] | None = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # Output piped into `head` etc.; exit quietly like a good CLI.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def build_cache_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-harness cache",
        description="Inspect, verify, or reset the experiment disk cache.",
    )
    parser.add_argument(
        "action", choices=("list", "verify", "clear", "stats"),
        help="list entries / re-verify checksums / delete everything / counters",
    )
    parser.add_argument(
        "--cache", default=None,
        help="cache directory (default: REPRO_CACHE or <cwd>/.cache/repro)",
    )
    parser.add_argument(
        "--quarantine", action="store_true",
        help="with 'verify': move failing entries aside so they rebuild",
    )
    return parser


def _cache_main(argv: list[str]) -> int:
    args = build_cache_parser().parse_args(argv)
    root = Path(args.cache) if args.cache else _default_cache_dir()
    if root is None:
        print("disk cache is disabled (REPRO_CACHE=off); nothing to do")
        return 0
    cache = DiskCache(root)

    if args.action == "clear":
        removed = cache.clear()
        print(f"cleared {root} ({removed} file(s) removed)")
        return 0

    if args.action == "stats":
        print(cache.describe())
        return 0

    if args.action == "list":
        infos = cache.list_entries()
        if not infos:
            print(f"cache at {root} is empty")
            return 0
        from repro.harness.timing import fmt_bytes, fmt_seconds

        width = max(len(i.name) for i in infos)
        for info in infos:
            if info.header is not None:
                h = info.header
                print(f"{info.name:<{width}}  {fmt_bytes(info.size):>8}  "
                      f"built in {fmt_seconds(h.get('build_seconds', 0.0)):>8}  "
                      f"at {h.get('built_at', '?')}  "
                      f"(repro {h.get('repro_version', '?')})")
            else:  # info.error already leads with the entry name
                print(f"{info.name:<{width}}  {fmt_bytes(info.size):>8}  "
                      f"UNREADABLE ({info.error})")
        count, size = cache.totals()
        print(f"-- {count} entr{'y' if count == 1 else 'ies'}, {fmt_bytes(size)}")
        return 0

    # verify: full re-read of every entry (checksum + unpickle)
    infos = cache.verify(quarantine=args.quarantine)
    bad = [i for i in infos if not i.ok]
    for info in infos:
        if info.ok:
            print(f"OK    {info.name}")
        else:  # info.error already leads with the entry name
            action = " (quarantined)" if args.quarantine else ""
            print(f"FAIL  {info.error}{action}")
    print(f"-- verified {len(infos)} entr{'y' if len(infos) == 1 else 'ies'}, "
          f"{len(bad)} bad")
    return 1 if bad else 0


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-harness serve",
        description=(
            "Answer a workload of distance queries through the batched "
            "endpoint (repro.harness.experiments.batched_distances)."
        ),
    )
    parser.add_argument(
        "--technique", default="ch", choices=("ch", "tnr", "dijkstra"),
        help="which technique serves the batch (default: ch)",
    )
    parser.add_argument("--dataset", default="DE", help="dataset name (default: DE)")
    parser.add_argument("--tier", default=None, help="dataset tier (tiny/small/medium)")
    parser.add_argument(
        "--pairs", type=int, default=512,
        help="how many query pairs to serve (drawn from the Q-sets)",
    )
    parser.add_argument(
        "--batch", type=int, default=None,
        help="pairs per batch (default: 64); 1 degrades to per-pair serving",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="re-answer every pair per-pair and assert exact agreement",
    )
    return parser


def _serve_main(argv: list[str]) -> int:
    args = build_serve_parser().parse_args(argv)
    from repro.harness.experiments import DEFAULT_BATCH, batched_distances

    kwargs = {}
    if args.tier:
        kwargs["tier"] = args.tier
    registry = Registry(**kwargs)
    technique = {
        "ch": registry.ch,
        "tnr": registry.tnr,
        "dijkstra": registry.bidijkstra,
    }[args.technique](args.dataset)

    pairs = [p for qset in registry.q_sets(args.dataset) for p in qset.pairs]
    if not pairs:
        print("no query pairs available for this dataset/tier")
        return 1
    while len(pairs) < args.pairs:
        pairs = pairs + pairs
    pairs = pairs[: args.pairs]

    batch = args.batch if args.batch else DEFAULT_BATCH
    started = time.perf_counter()
    distances = batched_distances(technique, pairs, batch_size=batch)
    elapsed = time.perf_counter() - started
    finite = distances[distances < float("inf")]
    print(
        f"served {len(pairs)} pairs through {technique.name} "
        f"in batches of {batch}: {elapsed:.3f}s "
        f"({len(pairs) / elapsed:.0f} pairs/s)"
    )
    print(
        f"  reachable {len(finite)}/{len(pairs)}, "
        f"mean distance {finite.mean():.1f}" if len(finite)
        else f"  reachable 0/{len(pairs)}"
    )
    if args.check:
        for (s, t), d in zip(pairs, distances.tolist()):
            expect = technique.distance(s, t)
            if d != expect:
                print(f"MISMATCH ({s}, {t}): batched {d} != per-pair {expect}")
                return 1
        print(f"  per-pair check: all {len(pairs)} answers identical")
    return 0


def _main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "cache":
        return _cache_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.list or not args.experiment:
        print("available experiments:")
        for key in all_keys():
            print(f"  {key}")
        return 0

    kwargs = {}
    if args.tier:
        kwargs["tier"] = args.tier
    if args.pairs:
        kwargs["pairs_per_set"] = args.pairs
    if args.no_cache:
        kwargs["cache"] = "off"
    registry = Registry(**kwargs)

    run_kwargs = {}
    if args.datasets:
        run_kwargs["names"] = tuple(args.datasets.split(","))

    keys = all_keys() if args.experiment == "all" else [args.experiment]
    for key in keys:
        started = time.perf_counter()
        exp = run(key, registry, **(run_kwargs if args.datasets else {}))
        print(exp.render())
        print(f"[{key} completed in {time.perf_counter() - started:.1f}s]\n")
        if args.chart:
            _print_charts(exp, registry)
    if registry.cache_stats is not None:
        print(f"[cache] {registry.cache_stats}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
