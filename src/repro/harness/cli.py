"""Command-line entry point: ``python -m repro.harness`` / ``repro-harness``.

Examples
--------
List the available experiments::

    repro-harness --list

Reproduce Figure 8 on the default (small) tier::

    repro-harness --experiment fig8

Everything, with a bigger workload, on the tiny tier::

    repro-harness --experiment all --tier tiny --pairs 200

Inspect, verify or reset the disk cache::

    repro-harness cache list
    repro-harness cache verify [--quarantine]
    repro-harness cache stats
    repro-harness cache clear

Serve a workload of distance queries in batches of 64 (the batched
distance endpoint; see docs/PERFORMANCE.md)::

    repro-harness serve --technique ch --dataset DE --pairs 512

Run the multi-worker query service over shared-memory segments
(docs/SERVING.md)::

    repro-harness service start --dataset DE --workers 2 --techniques ch
    repro-harness service bench --techniques ch,tnr,dijkstra
    repro-harness service status --manifest serve-manifest.json [--json]
    repro-harness service stats --manifest serve-manifest.json --watch

Observability (docs/OBSERVABILITY.md)::

    repro-harness --experiment fig8 --trace run.jsonl
    repro-harness stats [--json] [--prom] [--trace run.jsonl]
    repro-harness stats --merge worker-a.jsonl worker-b.jsonl
    repro-harness trace run.jsonl [--json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro import obs
from repro.core.techniques import TECHNIQUES as _SERVE_TECHNIQUES
from repro.core.techniques import registry_builders as _registry_builders
from repro.harness.cache import DiskCache
from repro.harness.experiments import all_keys, run
from repro.harness.registry import Registry, _default_cache_dir


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-harness",
        description=(
            "Regenerate the tables and figures of 'Shortest Path and "
            "Distance Queries on Road Networks: An Experimental "
            "Evaluation' (Wu et al., VLDB 2012)."
        ),
        epilog=(
            "Subcommands: 'cache {list,verify,clear,stats}' manages the "
            "disk cache; 'serve' runs the batched distance endpoint; "
            "'service {start,bench,status,stats}' runs the multi-worker "
            "query service; 'stats' dumps the metrics registry; "
            "'trace <run.jsonl>' renders a run trace's phase tree."
        ),
    )
    parser.add_argument(
        "--experiment", "-e", default=None,
        help="experiment key (e.g. fig8, table2) or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list experiment keys")
    parser.add_argument("--tier", default=None, help="dataset tier (tiny/small/medium)")
    parser.add_argument("--pairs", type=int, default=None, help="pairs per query set")
    parser.add_argument(
        "--datasets", default=None,
        help="comma-separated dataset names overriding the experiment default",
    )
    parser.add_argument("--no-cache", action="store_true", help="disable the disk cache")
    parser.add_argument(
        "--chart", action="store_true",
        help="render the figure's log-log series as ASCII plots",
    )
    _add_trace_flag(parser)
    return parser


def _add_trace_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", nargs="?", const="auto", default=None, metavar="FILE",
        help="enable instrumentation and write a JSON-lines run trace to "
             "FILE; without FILE, a collision-free default name "
             "(repro-trace-<pid>-<k>.jsonl) is chosen",
    )


def _resolve_trace(value: str | None) -> str | None:
    """Map the --trace flag to a path; bare --trace gets a unique name.

    Default names embed the pid and a per-process counter so concurrent
    runs (CI matrices, the serving pool's workers) never clobber each
    other's trace files; explicit paths are honoured verbatim.
    """
    if not value:
        return None
    if value == "auto":
        return obs.unique_trace_path("repro-trace.jsonl")
    return value


def _print_charts(exp, registry) -> None:
    """Render a figure experiment's series like the paper's plots."""
    from repro.harness.plotting import experiment_charts

    keyed = [k for k in exp.data if isinstance(k, tuple) and len(k) == 3]
    n_of = {k[1]: float(registry.graph(k[1]).n) for k in keyed}
    charts = experiment_charts(exp, n_of)
    if not charts:
        print("(no chartable series in this experiment)\n")
        return
    for chart in charts:
        print(chart)
        print()


def main(argv: list[str] | None = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # Output piped into `head` etc.; exit quietly like a good CLI.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def build_cache_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-harness cache",
        description="Inspect, verify, or reset the experiment disk cache.",
    )
    parser.add_argument(
        "action", choices=("list", "verify", "clear", "stats"),
        help="list entries / re-verify checksums / delete everything / counters",
    )
    parser.add_argument(
        "--cache", default=None,
        help="cache directory (default: REPRO_CACHE or <cwd>/.cache/repro)",
    )
    parser.add_argument(
        "--quarantine", action="store_true",
        help="with 'verify': move failing entries aside so they rebuild",
    )
    return parser


def _cache_main(argv: list[str]) -> int:
    args = build_cache_parser().parse_args(argv)
    root = Path(args.cache) if args.cache else _default_cache_dir()
    if root is None:
        print("disk cache is disabled (REPRO_CACHE=off); nothing to do")
        return 0
    cache = DiskCache(root)

    if args.action == "clear":
        removed = cache.clear()
        print(f"cleared {root} ({removed} file(s) removed)")
        return 0

    if args.action == "stats":
        print(cache.describe())
        return 0

    if args.action == "list":
        infos = cache.list_entries()
        if not infos:
            print(f"cache at {root} is empty")
            return 0
        from repro.harness.timing import fmt_bytes, fmt_seconds

        width = max(len(i.name) for i in infos)
        for info in infos:
            if info.header is not None:
                h = info.header
                print(f"{info.name:<{width}}  {fmt_bytes(info.size):>8}  "
                      f"built in {fmt_seconds(h.get('build_seconds', 0.0)):>8}  "
                      f"at {h.get('built_at', '?')}  "
                      f"(repro {h.get('repro_version', '?')})")
            else:  # info.error already leads with the entry name
                print(f"{info.name:<{width}}  {fmt_bytes(info.size):>8}  "
                      f"UNREADABLE ({info.error})")
        count, size = cache.totals()
        print(f"-- {count} entr{'y' if count == 1 else 'ies'}, {fmt_bytes(size)}")
        return 0

    # verify: full re-read of every entry (checksum + unpickle)
    infos = cache.verify(quarantine=args.quarantine)
    bad = [i for i in infos if not i.ok]
    for info in infos:
        if info.ok:
            print(f"OK    {info.name}")
        else:  # info.error already leads with the entry name
            action = " (quarantined)" if args.quarantine else ""
            print(f"FAIL  {info.error}{action}")
    print(f"-- verified {len(infos)} entr{'y' if len(infos) == 1 else 'ies'}, "
          f"{len(bad)} bad")
    return 1 if bad else 0




def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-harness serve",
        description=(
            "Answer a workload of distance queries through the batched "
            "endpoint (repro.harness.experiments.batched_distances)."
        ),
    )
    parser.add_argument(
        "--technique", default="ch",
        help=f"which technique serves the batch: {'/'.join(_SERVE_TECHNIQUES)} "
             "(default: ch)",
    )
    parser.add_argument("--dataset", default="DE", help="dataset name (default: DE)")
    parser.add_argument("--tier", default=None, help="dataset tier (tiny/small/medium)")
    parser.add_argument(
        "--pairs", type=int, default=512,
        help="how many query pairs to serve (drawn from the Q-sets)",
    )
    parser.add_argument(
        "--pair-file", default=None, metavar="FILE",
        help="serve exactly the 'source target' pairs listed in FILE "
             "(one pair per line, '#' comments) instead of Q-set sampling",
    )
    parser.add_argument(
        "--batch", type=int, default=None,
        help="pairs per batch (default: 64); 1 degrades to per-pair serving",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="re-answer every pair per-pair and assert exact agreement",
    )
    _add_trace_flag(parser)
    return parser


def _read_pair_file(path: str) -> list[tuple[int, int]]:
    """Parse a ``source target`` pair file; ValueError carries a one-line
    ``file:line: reason`` diagnostic for the CLI to print."""
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise ValueError(f"cannot read pair file {path}: {exc.strerror or exc}")
    pairs: list[tuple[int, int]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 2:
            raise ValueError(
                f"{path}:{lineno}: expected 'source target', got {raw.strip()!r}"
            )
        try:
            pairs.append((int(parts[0]), int(parts[1])))
        except ValueError:
            raise ValueError(
                f"{path}:{lineno}: non-integer vertex id in {raw.strip()!r}"
            ) from None
    return pairs


def _serve_main(argv: list[str]) -> int:
    args = build_serve_parser().parse_args(argv)
    from repro.harness.experiments import DEFAULT_BATCH, batched_distances

    if args.technique not in _SERVE_TECHNIQUES:
        print(
            f"error: unknown technique {args.technique!r} "
            f"(choose from {', '.join(_SERVE_TECHNIQUES)})",
            file=sys.stderr,
        )
        return 2

    kwargs = {}
    if args.tier:
        kwargs["tier"] = args.tier
    try:
        registry = Registry(**kwargs)
        graph = registry.graph(args.dataset)
    except KeyError as exc:
        print(f"error: unknown dataset or tier: {exc}", file=sys.stderr)
        return 2

    if args.pair_file is not None:
        try:
            pairs = _read_pair_file(args.pair_file)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        for s, t in pairs:
            if not (0 <= s < graph.n and 0 <= t < graph.n):
                print(
                    f"error: {args.pair_file}: pair ({s}, {t}) out of range "
                    f"for {args.dataset} (n={graph.n})",
                    file=sys.stderr,
                )
                return 2
    else:
        pairs = [p for qset in registry.q_sets(args.dataset) for p in qset.pairs]
        while pairs and len(pairs) < args.pairs:
            pairs = pairs + pairs
        pairs = pairs[: max(args.pairs, 0)]
    if not pairs:
        print("error: no query pairs to serve (empty batch)", file=sys.stderr)
        return 1

    trace = _resolve_trace(args.trace)
    if trace:
        obs.start_trace(trace)
    technique = _registry_builders(registry)[args.technique](args.dataset)

    batch = args.batch if args.batch else DEFAULT_BATCH
    started = time.perf_counter()
    distances = batched_distances(technique, pairs, batch_size=batch)
    elapsed = time.perf_counter() - started
    finite = distances[distances < float("inf")]
    print(
        f"served {len(pairs)} pairs through {technique.name} "
        f"in batches of {batch}: {elapsed:.3f}s "
        f"({len(pairs) / elapsed:.0f} pairs/s)"
    )
    print(
        f"  reachable {len(finite)}/{len(pairs)}, "
        f"mean distance {finite.mean():.1f}" if len(finite)
        else f"  reachable 0/{len(pairs)}"
    )
    if args.check:
        for (s, t), d in zip(pairs, distances.tolist()):
            expect = technique.distance(s, t)
            if d != expect:
                print(f"MISMATCH ({s}, {t}): batched {d} != per-pair {expect}")
                return 1
        print(f"  per-pair check: all {len(pairs)} answers identical")
    if trace:
        print(f"[trace] {obs.stop_trace()}")
    return 0


# ----------------------------------------------------------------------
# The multi-worker query service (docs/SERVING.md)
# ----------------------------------------------------------------------
def build_service_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-harness service",
        description=(
            "Run the multi-worker query service: shared-memory index "
            "segments, a persistent worker pool and a micro-batching "
            "scheduler (see docs/SERVING.md)."
        ),
    )
    sub = parser.add_subparsers(dest="action", required=True)

    def _common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--dataset", default="DE", help="dataset name (default: DE)")
        p.add_argument("--tier", default=None, help="dataset tier (tiny/small/medium)")
        p.add_argument(
            "--techniques", default="ch",
            help="comma-separated techniques to publish/serve (default: ch); "
                 "the graph (dijkstra) is always published",
        )
        p.add_argument(
            "--pairs", type=int, default=512,
            help="how many query pairs to serve (drawn from the Q-sets)",
        )
        p.add_argument(
            "--request-size", type=int, default=8,
            help="pairs per client request before scheduler coalescing",
        )
        p.add_argument(
            "--batch", type=int, default=256,
            help="scheduler micro-batch cap in pairs (default: 256)",
        )
        p.add_argument(
            "--transport", default=None, choices=("ring", "pipe"),
            help="request/reply transport (default: $REPRO_SERVE_TRANSPORT "
                 "or ring)",
        )

    start = sub.add_parser(
        "start", help="serve a Q-set workload through a fresh worker pool"
    )
    _common(start)
    start.add_argument(
        "--workers", type=int, default=2, help="worker processes (default: 2)"
    )
    start.add_argument(
        "--manifest", default=None, metavar="FILE",
        help="also write the segment manifest to FILE (for `service status`)",
    )
    start.add_argument(
        "--check", action="store_true",
        help="assert service answers are bit-identical to the in-process "
             "batched endpoint",
    )
    start.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write the merged (scheduler + workers) metrics snapshot to "
             "FILE in Prometheus text format before shutdown; SIGUSR1 "
             "dumps the same snapshot to FILE at any point while serving",
    )
    _add_trace_flag(start)

    bench = sub.add_parser(
        "bench", help="measure QPS per technique (see scripts/serve_bench.py)"
    )
    _common(bench)
    bench.add_argument(
        "--workers", default="1,2,4,8", metavar="LIST",
        help="comma-separated worker counts to sweep (default: 1,2,4,8)",
    )
    bench.add_argument(
        "--repeats", type=int, default=3,
        help="timing passes per worker count, best kept (default: 3)",
    )
    bench.add_argument(
        "--output", default=None, metavar="FILE",
        help="write the full report as JSON to FILE",
    )

    status = sub.add_parser(
        "status", help="inspect a running service through its manifest file"
    )
    status.add_argument(
        "--manifest", required=True, metavar="FILE",
        help="manifest written by `service start --manifest FILE`",
    )
    status.add_argument(
        "--json", action="store_true",
        help="emit the status as JSON (schema in docs/SERVING.md)",
    )

    stats = sub.add_parser(
        "stats",
        help="live cross-process metrics of a running service "
             "(shared-memory planes; no pipe traffic)",
    )
    stats.add_argument(
        "--manifest", required=True, metavar="FILE",
        help="manifest written by `service start --manifest FILE`",
    )
    stats.add_argument(
        "--watch", action="store_true",
        help="redraw the merged snapshot every --interval seconds "
             "(terminal dashboard; Ctrl-C to stop)",
    )
    stats.add_argument(
        "--interval", type=float, default=1.0, metavar="SECS",
        help="refresh period for --watch (default: 1.0)",
    )
    stats.add_argument(
        "--iterations", type=int, default=0, metavar="N",
        help="with --watch: stop after N redraws (default: run until "
             "interrupted)",
    )
    stats.add_argument(
        "--json", action="store_true", help="emit the merged snapshot as JSON"
    )
    stats.add_argument(
        "--prom", action="store_true",
        help="emit the merged snapshot in Prometheus text format",
    )

    clean = sub.add_parser(
        "clean",
        help="unlink shared-memory segments orphaned by a SIGKILLed "
             "publisher (lists, confirms, then removes)",
    )
    clean.add_argument(
        "--manifest", required=True, metavar="FILE",
        help="manifest written by `service start --manifest FILE`",
    )
    clean.add_argument(
        "--force", action="store_true",
        help="skip the interactive confirmation (for CI and scripts)",
    )
    return parser


def _attach_metric_planes(manifest: dict) -> tuple[list, list[str]]:
    """Attach every metrics plane a manifest advertises (read-only).

    Returns ``(planes, errors)``: a list of ``(label, MetricsPlane)``
    pairs for the scheduler and each worker slot, plus one message per
    entry that could not be attached (service gone, stale manifest).
    Callers must ``close()`` every attached plane.
    """
    from repro.obs.shm import MetricsPlane

    metrics = manifest.get("metrics") or {}
    entries = [("scheduler", metrics.get("scheduler"))]
    entries += [
        (f"worker {i}", e) for i, e in enumerate(metrics.get("workers") or [])
    ]
    planes: list = []
    errors: list[str] = []
    for label, entry in entries:
        if not entry:
            continue
        try:
            planes.append((label, MetricsPlane.attach(entry, foreign=True)))
        except (OSError, ValueError) as exc:
            errors.append(f"{label}: {exc}")
    return planes, errors


def _worker_rows(planes: list) -> list[dict]:
    """Per-worker liveness rows read straight from the plane headers."""
    now_us = int(time.monotonic() * 1e6)
    rows = []
    for label, plane in planes:
        if not label.startswith("worker"):
            continue
        h = plane.header()
        age = (
            round(max(now_us - h["last_batch_us"], 0) / 1e6, 3)
            if h["last_batch_us"] else None
        )
        rows.append(
            {
                "worker": int(label.split()[1]),
                "pid": h["pid"],
                "batches": h["batches"],
                "last_commit_age_s": age,
            }
        )
    return rows


def _merged_plane_snapshot(planes: list) -> dict:
    """One snapshot aggregating every attached plane (scheduler+workers)."""
    merged = obs.MetricsRegistry()
    for _, plane in planes:
        merged.merge_snapshot(plane.snapshot())
    return merged.snapshot()


def _service_status(args, manifest: dict) -> int:
    from repro.serve import SegmentError, attach_segments

    fp = manifest.get("fingerprint", {})
    planes, plane_errors = _attach_metric_planes(manifest)
    try:
        info = {
            "service": manifest.get("service"),
            "dataset": manifest.get("dataset"),
            "tier": manifest.get("tier"),
            "publisher_pid": manifest.get("publisher_pid"),
            "fingerprint": fp,
            "techniques": {},
            "workers": _worker_rows(planes),
            "segments_ok": True,
        }
        seg_error = None
        try:
            with attach_segments(manifest, foreign=True) as segs:
                for tech in segs.techniques:
                    entry = manifest["techniques"][tech]
                    info["techniques"][tech] = {
                        "segment": entry["segment"],
                        "nbytes": entry["nbytes"],
                        "arrays": len(segs.arrays(tech)),
                    }
        except SegmentError as exc:
            info["segments_ok"] = False
            seg_error = str(exc)

        if args.json:
            print(json.dumps(info, indent=1, sort_keys=True))
            return 0 if info["segments_ok"] else 1

        print(
            f"service {info['service']} — "
            f"{info['dataset']}/{info['tier']} "
            f"(n={fp.get('n')}, m={fp.get('m')}), "
            f"publisher pid {info['publisher_pid']}"
        )
        if not info["segments_ok"]:
            print(f"  segments unreachable: {seg_error}")
            return 1
        for tech, t in info["techniques"].items():
            print(
                f"  {tech:<9} {t['segment']:<22} "
                f"{t['nbytes']:>10} bytes  "
                f"{t['arrays']} arrays attached"
            )
        print("all segments attached and released (zero-copy, no unlink)")
        for row in info["workers"]:
            age = row["last_commit_age_s"]
            print(
                f"  worker {row['worker']}: pid {row['pid']}, "
                f"{row['batches']} batch(es), last commit "
                + (f"{age}s ago" if age is not None else "never")
            )
        for err in plane_errors:
            print(f"  metrics plane unreachable: {err}")
        if planes:
            snap = _merged_plane_snapshot(planes)
            if any(snap[k] for k in ("counters", "gauges", "histograms")):
                print()
                print(obs.render_snapshot(snap))
        return 0
    finally:
        for _, plane in planes:
            plane.close()


def _service_stats(args, manifest: dict) -> int:
    """The live dashboard: merged shared-memory metrics, zero pipe traffic."""
    planes, errors = _attach_metric_planes(manifest)
    if not planes:
        detail = "; ".join(errors) or "manifest lists no metrics planes"
        print(f"error: cannot attach metrics planes: {detail}", file=sys.stderr)
        return 1
    try:
        drawn = 0
        while True:
            snap = _merged_plane_snapshot(planes)
            if args.json:
                body = json.dumps(snap, indent=1, sort_keys=True)
            elif args.prom:
                body = obs.to_prometheus(snap).rstrip("\n")
            else:
                lines = [
                    f"service {manifest.get('service')} — "
                    f"{manifest.get('dataset')}/{manifest.get('tier')}, "
                    f"publisher pid {manifest.get('publisher_pid')}"
                ]
                for row in _worker_rows(planes):
                    age = row["last_commit_age_s"]
                    lines.append(
                        f"  worker {row['worker']}: pid {row['pid']}, "
                        f"{row['batches']} batch(es), last commit "
                        + (f"{age}s ago" if age is not None else "never")
                    )
                lines.extend(f"  metrics plane unreachable: {e}" for e in errors)
                lines.append("")
                lines.append(obs.render_snapshot(snap))
                body = "\n".join(lines)
            if args.watch:
                sys.stdout.write("\x1b[2J\x1b[H")  # clear + home
            print(body)
            sys.stdout.flush()
            drawn += 1
            if not args.watch or (args.iterations and drawn >= args.iterations):
                return 0
            time.sleep(max(args.interval, 0.05))
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        print()
        return 0
    finally:
        for _, plane in planes:
            plane.close()


def _service_clean(args, manifest: dict) -> int:
    """Detect and unlink segments a dead publisher left behind.

    A publisher killed with SIGKILL never runs ``close()``, so its
    technique segments, ring and metrics planes stay in ``/dev/shm``
    until reboot. This lists what the manifest (plus a token scan)
    still finds, refuses to touch a *live* service, asks before
    unlinking (``--force`` skips the prompt), and removes the rest.
    """
    from repro.serve.segments import (
        find_orphans,
        publisher_alive,
        unlink_orphans,
    )

    pid = manifest.get("publisher_pid")
    if publisher_alive(manifest):
        print(
            f"error: publisher pid {pid} is still alive — refusing to "
            f"unlink a live service's segments (stop it first)",
            file=sys.stderr,
        )
        return 1
    orphans = find_orphans(manifest)
    print(
        f"service {manifest.get('service')} — publisher pid {pid} is gone"
    )
    if not orphans:
        print("no orphaned segments found; nothing to clean")
        return 0
    for name in orphans:
        print(f"  orphaned: {name}")
    if not args.force:
        reply = input(f"unlink {len(orphans)} segment(s)? [y/N] ")
        if reply.strip().lower() not in ("y", "yes"):
            print("aborted; nothing unlinked")
            return 1
    removed = unlink_orphans(orphans)
    print(f"unlinked {len(removed)} segment(s)")
    return 0


def _service_main(argv: list[str]) -> int:
    args = build_service_parser().parse_args(argv)
    from repro.serve import (
        SegmentError,
        load_manifest,
        save_manifest,
    )

    if args.action == "clean":
        try:
            with open(args.manifest, "r", encoding="utf-8") as fh:
                manifest = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        return _service_clean(args, manifest)

    if args.action in ("status", "stats"):
        try:
            manifest = load_manifest(args.manifest)
        except (OSError, ValueError, SegmentError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if args.action == "stats":
            return _service_stats(args, manifest)
        return _service_status(args, manifest)

    from repro.harness.experiments import (
        batched_distances,
        request_stream,
    )
    from repro.serve import QueryService, ServiceConfig
    from repro.serve.service import bench_serving, serve_workload

    kwargs = {"verbose": False}
    if args.tier:
        kwargs["tier"] = args.tier
    try:
        registry = Registry(**kwargs)
        registry.graph(args.dataset)
    except KeyError as exc:
        print(f"error: unknown dataset or tier: {exc}", file=sys.stderr)
        return 2
    techniques = tuple(t.strip() for t in args.techniques.split(",") if t.strip())

    if args.action == "bench":
        try:
            worker_counts = tuple(
                int(w) for w in args.workers.split(",") if w.strip()
            )
            report = bench_serving(
                registry,
                args.dataset,
                techniques,
                n_pairs=args.pairs,
                request_size=args.request_size,
                max_batch=args.batch,
                worker_counts=worker_counts,
                transport=args.transport,
                repeats=args.repeats,
            )
        except (KeyError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"transport: {report['transport']}")
        for tech, entry in report["techniques"].items():
            print(f"{tech}: " + ", ".join(
                f"{k}={v}" for k, v in entry.items()
            ))
        if args.output:
            Path(args.output).write_text(
                json.dumps(report, indent=1, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            print(f"[bench] wrote {args.output}")
        return 0

    # start
    trace = _resolve_trace(args.trace)
    if trace:
        obs.start_trace(trace)
    pairs = [p for qset in registry.q_sets(args.dataset) for p in qset.pairs]
    while pairs and len(pairs) < args.pairs:
        pairs = pairs + pairs
    pairs = pairs[: max(args.pairs, 0)]
    if not pairs:
        print("error: no query pairs to serve", file=sys.stderr)
        return 1
    requests = request_stream(pairs, args.request_size)
    config = ServiceConfig(
        dataset=args.dataset,
        tier=registry.tier,
        workers=args.workers,
        techniques=techniques,
        max_batch=args.batch,
        transport=args.transport,
    )
    try:
        service = QueryService(config, registry=registry)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    with service:
        print(
            f"published {', '.join(service.published)} for "
            f"{args.dataset}/{registry.tier}; {args.workers} worker(s), "
            f"pids {service.pool.worker_pids}, "
            f"transport {service.transport}"
        )
        service.install_usr1_snapshot(
            args.metrics_out or f"serve-metrics-{os.getpid()}.prom"
        )
        if args.manifest:
            save_manifest(args.manifest, service.manifest)
            print(f"[manifest] {args.manifest}")
        failed = 0
        for tech in techniques:
            futures, elapsed = serve_workload(service, tech, requests)
            print(
                f"{tech}: served {len(pairs)} pairs in {len(requests)} "
                f"requests: {elapsed:.3f}s ({len(pairs) / elapsed:.0f} pairs/s)"
            )
            if args.check:
                import numpy as np

                builders = _registry_builders(registry)
                got = np.array([d for f in futures for d in f.result()])
                want = np.asarray(
                    batched_distances(builders[tech](args.dataset), pairs)
                )
                ok = bool(np.array_equal(got, want))
                print(f"  bit-identical to in-process batched: {ok}")
                failed += 0 if ok else 1
        status = service.status()
        print(
            f"shed {status['shed']}, degraded {status['degraded']}, "
            f"retries {status['retries']}, "
            f"worker restarts {status['worker_restarts']}"
        )
        for row in status["workers"]:
            age = row["last_commit_age_s"]
            print(
                f"  worker {row['worker']}: pid {row['pid']}, "
                f"{row['batches']} batch(es), last commit "
                + (f"{age}s ago" if age is not None else "never")
            )
        if args.metrics_out:
            print(f"[metrics] {service.write_metrics(args.metrics_out)}")
    print("service shut down cleanly")
    if trace:
        print(f"[trace] {obs.stop_trace()}")
    return 1 if failed else 0


# ----------------------------------------------------------------------
# Observability subcommands
# ----------------------------------------------------------------------
def build_stats_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-harness stats",
        description=(
            "Dump the metrics registry (counters, gauges, latency "
            "histograms) as an aligned table or JSON."
        ),
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the raw snapshot as JSON"
    )
    parser.add_argument(
        "--prom", action="store_true",
        help="emit the snapshot in Prometheus text exposition format",
    )
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="read the metrics snapshot embedded in a trace file instead "
             "of the (empty, in a fresh process) live registry",
    )
    parser.add_argument(
        "--merge", nargs="+", default=None, metavar="FILE",
        help="merge the metrics snapshots of several trace files (e.g. "
             "the per-pid worker traces of one service run) into one "
             "rendered snapshot; mutually exclusive with --trace",
    )
    parser.add_argument(
        "--cache", default=None,
        help="cache directory whose lifetime counters to fold in "
             "(default: REPRO_CACHE or <cwd>/.cache/repro)",
    )
    return parser


def _trace_snapshot(path: str) -> dict:
    """The metrics snapshot embedded in a trace file, or ValueError."""
    try:
        events = obs.read_trace(path)
    except OSError as exc:
        raise ValueError(f"{path}: {exc.strerror or exc}") from None
    snapshot = obs.trace_metrics(events)
    if snapshot is None:
        raise ValueError(
            f"{path}: no metrics snapshot "
            "(trace from a crashed or still-running process?)"
        )
    return snapshot


def _stats_main(argv: list[str]) -> int:
    args = build_stats_parser().parse_args(argv)
    if args.merge and args.trace:
        print("error: --merge and --trace are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.merge:
        merged = obs.MetricsRegistry()
        for path in args.merge:
            try:
                snap = _trace_snapshot(path)
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
            try:
                merged.merge_snapshot(snap)
            except ValueError as exc:
                # e.g. a schema-1 trace whose histograms carry no buckets
                print(f"error: {path}: {exc}", file=sys.stderr)
                return 1
        snapshot = merged.snapshot()
    elif args.trace:
        try:
            snapshot = _trace_snapshot(args.trace)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    else:
        snapshot = obs.registry().snapshot()
        # Fold the disk-cache manifest's cross-process lifetime counters
        # in, so `stats` shows cache behaviour even in a fresh process.
        root = Path(args.cache) if args.cache else _default_cache_dir()
        if root is not None and root.is_dir():
            lifetime = DiskCache(root).manifest().get("counters", {})
            for name in sorted(lifetime):
                snapshot["counters"][f"cache.lifetime.{name}"] = int(lifetime[name])
    if args.json:
        print(json.dumps(snapshot, indent=1, sort_keys=True))
    elif args.prom:
        print(obs.to_prometheus(snapshot), end="")
    else:
        print(obs.render_snapshot(snapshot))
    return 0


def build_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-harness trace",
        description=(
            "Render the per-phase rollup tree (with self/total times) "
            "of a JSON-lines run trace."
        ),
    )
    parser.add_argument("trace", help="trace file written via --trace/REPRO_TRACE")
    parser.add_argument(
        "--json", action="store_true", help="emit the rollup as JSON"
    )
    return parser


def _trace_main(argv: list[str]) -> int:
    args = build_trace_parser().parse_args(argv)
    try:
        events = obs.read_trace(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    root = obs.rollup(events)
    if args.json:
        print(json.dumps(obs.tree_summary(root), indent=1, sort_keys=True))
    else:
        print(obs.render_tree(root))
    return 0


def _main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "cache":
        return _cache_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    if argv and argv[0] == "service":
        return _service_main(argv[1:])
    if argv and argv[0] == "stats":
        return _stats_main(argv[1:])
    if argv and argv[0] == "trace":
        return _trace_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.list or not args.experiment:
        print("available experiments:")
        for key in all_keys():
            print(f"  {key}")
        return 0

    kwargs = {}
    if args.tier:
        kwargs["tier"] = args.tier
    if args.pairs:
        kwargs["pairs_per_set"] = args.pairs
    if args.no_cache:
        kwargs["cache"] = "off"
    registry = Registry(**kwargs)

    run_kwargs = {}
    if args.datasets:
        run_kwargs["names"] = tuple(args.datasets.split(","))

    trace = _resolve_trace(args.trace)
    if trace:
        obs.start_trace(trace)
    keys = all_keys() if args.experiment == "all" else [args.experiment]
    for key in keys:
        started = time.perf_counter()
        exp = run(key, registry, **(run_kwargs if args.datasets else {}))
        print(exp.render())
        print(f"[{key} completed in {time.perf_counter() - started:.1f}s]\n")
        if args.chart:
            _print_charts(exp, registry)
    if registry.cache_stats is not None:
        print(f"[cache] {registry.cache_stats}")
    if trace:
        print(f"[trace] {obs.stop_trace()}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
