"""Command-line entry point: ``python -m repro.harness`` / ``repro-harness``.

Examples
--------
List the available experiments::

    repro-harness --list

Reproduce Figure 8 on the default (small) tier::

    repro-harness --experiment fig8

Everything, with a bigger workload, on the tiny tier::

    repro-harness --experiment all --tier tiny --pairs 200

Inspect, verify or reset the disk cache::

    repro-harness cache list
    repro-harness cache verify [--quarantine]
    repro-harness cache stats
    repro-harness cache clear
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.harness.cache import DiskCache
from repro.harness.experiments import all_keys, run
from repro.harness.registry import Registry, _default_cache_dir


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-harness",
        description=(
            "Regenerate the tables and figures of 'Shortest Path and "
            "Distance Queries on Road Networks: An Experimental "
            "Evaluation' (Wu et al., VLDB 2012)."
        ),
        epilog=(
            "The 'cache' subcommand (repro-harness cache "
            "{list,verify,clear,stats}) manages the disk cache."
        ),
    )
    parser.add_argument(
        "--experiment", "-e", default=None,
        help="experiment key (e.g. fig8, table2) or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list experiment keys")
    parser.add_argument("--tier", default=None, help="dataset tier (tiny/small/medium)")
    parser.add_argument("--pairs", type=int, default=None, help="pairs per query set")
    parser.add_argument(
        "--datasets", default=None,
        help="comma-separated dataset names overriding the experiment default",
    )
    parser.add_argument("--no-cache", action="store_true", help="disable the disk cache")
    parser.add_argument(
        "--chart", action="store_true",
        help="render the figure's log-log series as ASCII plots",
    )
    return parser


def _print_charts(exp, registry) -> None:
    """Render a figure experiment's series like the paper's plots."""
    from repro.harness.plotting import experiment_charts

    keyed = [k for k in exp.data if isinstance(k, tuple) and len(k) == 3]
    n_of = {k[1]: float(registry.graph(k[1]).n) for k in keyed}
    charts = experiment_charts(exp, n_of)
    if not charts:
        print("(no chartable series in this experiment)\n")
        return
    for chart in charts:
        print(chart)
        print()


def main(argv: list[str] | None = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # Output piped into `head` etc.; exit quietly like a good CLI.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def build_cache_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-harness cache",
        description="Inspect, verify, or reset the experiment disk cache.",
    )
    parser.add_argument(
        "action", choices=("list", "verify", "clear", "stats"),
        help="list entries / re-verify checksums / delete everything / counters",
    )
    parser.add_argument(
        "--cache", default=None,
        help="cache directory (default: REPRO_CACHE or <cwd>/.cache/repro)",
    )
    parser.add_argument(
        "--quarantine", action="store_true",
        help="with 'verify': move failing entries aside so they rebuild",
    )
    return parser


def _cache_main(argv: list[str]) -> int:
    args = build_cache_parser().parse_args(argv)
    root = Path(args.cache) if args.cache else _default_cache_dir()
    if root is None:
        print("disk cache is disabled (REPRO_CACHE=off); nothing to do")
        return 0
    cache = DiskCache(root)

    if args.action == "clear":
        removed = cache.clear()
        print(f"cleared {root} ({removed} file(s) removed)")
        return 0

    if args.action == "stats":
        print(cache.describe())
        return 0

    if args.action == "list":
        infos = cache.list_entries()
        if not infos:
            print(f"cache at {root} is empty")
            return 0
        from repro.harness.timing import fmt_bytes, fmt_seconds

        width = max(len(i.name) for i in infos)
        for info in infos:
            if info.header is not None:
                h = info.header
                print(f"{info.name:<{width}}  {fmt_bytes(info.size):>8}  "
                      f"built in {fmt_seconds(h.get('build_seconds', 0.0)):>8}  "
                      f"at {h.get('built_at', '?')}  "
                      f"(repro {h.get('repro_version', '?')})")
            else:  # info.error already leads with the entry name
                print(f"{info.name:<{width}}  {fmt_bytes(info.size):>8}  "
                      f"UNREADABLE ({info.error})")
        count, size = cache.totals()
        print(f"-- {count} entr{'y' if count == 1 else 'ies'}, {fmt_bytes(size)}")
        return 0

    # verify: full re-read of every entry (checksum + unpickle)
    infos = cache.verify(quarantine=args.quarantine)
    bad = [i for i in infos if not i.ok]
    for info in infos:
        if info.ok:
            print(f"OK    {info.name}")
        else:  # info.error already leads with the entry name
            action = " (quarantined)" if args.quarantine else ""
            print(f"FAIL  {info.error}{action}")
    print(f"-- verified {len(infos)} entr{'y' if len(infos) == 1 else 'ies'}, "
          f"{len(bad)} bad")
    return 1 if bad else 0


def _main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "cache":
        return _cache_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.list or not args.experiment:
        print("available experiments:")
        for key in all_keys():
            print(f"  {key}")
        return 0

    kwargs = {}
    if args.tier:
        kwargs["tier"] = args.tier
    if args.pairs:
        kwargs["pairs_per_set"] = args.pairs
    if args.no_cache:
        kwargs["cache"] = "off"
    registry = Registry(**kwargs)

    run_kwargs = {}
    if args.datasets:
        run_kwargs["names"] = tuple(args.datasets.split(","))

    keys = all_keys() if args.experiment == "all" else [args.experiment]
    for key in keys:
        started = time.perf_counter()
        exp = run(key, registry, **(run_kwargs if args.datasets else {}))
        print(exp.render())
        print(f"[{key} completed in {time.perf_counter() - started:.1f}s]\n")
        if args.chart:
            _print_charts(exp, registry)
    if registry.cache_stats is not None:
        print(f"[cache] {registry.cache_stats}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
