"""Timing helpers shared by the harness and the pytest benches."""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence


@dataclass(frozen=True)
class Timing:
    """Average per-query wall time over a workload."""

    micros_per_query: float
    queries: int

    def __str__(self) -> str:
        return f"{self.micros_per_query:.1f} us over {self.queries} queries"


def time_queries(
    fn: Callable[[int, int], object],
    pairs: Sequence[tuple[int, int]],
    max_pairs: int | None = None,
) -> Timing:
    """Average wall-clock time of ``fn(s, t)`` over the pairs.

    ``max_pairs`` subsamples evenly (used to keep the Dijkstra baseline
    affordable on the long-range sets; the paper ran 10,000 queries per
    set on C++, we scale down for pure Python).
    """
    work = list(pairs)
    if max_pairs is not None and len(work) > max_pairs:
        step = len(work) / max_pairs
        work = [work[int(i * step)] for i in range(max_pairs)]
    if not work:
        return Timing(micros_per_query=math.nan, queries=0)
    start = time.perf_counter()
    for s, t in work:
        fn(s, t)
    elapsed = time.perf_counter() - start
    return Timing(micros_per_query=elapsed / len(work) * 1e6, queries=len(work))


def fmt_micros(value: float) -> str:
    """Render a microsecond value like the paper's log-scale plots."""
    if math.isnan(value):
        return "-"
    if value >= 1e6:
        return f"{value / 1e6:.2f}s"
    if value >= 1e3:
        return f"{value / 1e3:.1f}ms"
    return f"{value:.1f}us"


def fmt_bytes(n_bytes: float) -> str:
    """Render an index size like Figure 6(a)'s MB axis."""
    if n_bytes >= 1e9:
        return f"{n_bytes / 1e9:.2f}GB"
    if n_bytes >= 1e6:
        return f"{n_bytes / 1e6:.1f}MB"
    return f"{n_bytes / 1e3:.1f}KB"


def fmt_seconds(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}min"
    return f"{seconds:.1f}s"


_CACHE_COUNTER_ORDER = ("hits", "misses", "rebuilds", "writes", "quarantined")


def fmt_cache_stats(counters: Mapping[str, int]) -> str:
    """Render hit/miss/rebuild counters, e.g. ``12 hits, 3 misses, ...``.

    Shared by :class:`repro.harness.cache.CacheStats`, the benchmark
    session summary, and the ``cache stats`` CLI so the counters read
    identically everywhere.
    """
    parts = [
        f"{int(counters.get(name, 0))} {name}" for name in _CACHE_COUNTER_ORDER
    ]
    extras = sorted(set(counters) - set(_CACHE_COUNTER_ORDER))
    parts += [f"{int(counters[name])} {name}" for name in extras]
    return ", ".join(parts)
