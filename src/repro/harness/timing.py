"""Timing helpers shared by the harness and the pytest benches."""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence


@dataclass(frozen=True)
class Timing:
    """Per-query wall time over a workload.

    The percentile fields are ``nan`` unless the run recorded
    per-query samples (``time_queries(..., percentiles=True)``) —
    the default loop times the workload in one block to keep the
    per-query clock overhead out of the mean.
    """

    micros_per_query: float
    queries: int
    p50: float = math.nan
    p90: float = math.nan
    p99: float = math.nan

    def __str__(self) -> str:
        base = f"{self.micros_per_query:.1f} us over {self.queries} queries"
        if math.isnan(self.p50):
            return base
        return (
            f"{base} (p50 {fmt_micros(self.p50)}, "
            f"p90 {fmt_micros(self.p90)}, p99 {fmt_micros(self.p99)})"
        )


def _percentile(samples: list[float], q: float) -> float:
    """Nearest-rank-with-interpolation percentile of sorted samples."""
    if not samples:
        return math.nan
    if len(samples) == 1:
        return samples[0]
    pos = q * (len(samples) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(samples) - 1)
    frac = pos - lo
    return samples[lo] * (1.0 - frac) + samples[hi] * frac


def subsample_evenly(n: int, max_items: int) -> list[int]:
    """``max_items`` distinct, evenly spread indices into ``range(n)``.

    Exact integer arithmetic (``i * n // max_items``): for
    ``max_items <= n`` consecutive picks differ by at least
    ``n // max_items >= 1``, so no index ever repeats — unlike
    ``int(i * (n / max_items))``, where float rounding can collapse
    neighbouring picks for large ``n``.
    """
    if max_items >= n:
        return list(range(n))
    return [i * n // max_items for i in range(max_items)]


def time_queries(
    fn: Callable[[int, int], object],
    pairs: Sequence[tuple[int, int]],
    max_pairs: int | None = None,
    percentiles: bool = False,
) -> Timing:
    """Average wall-clock time of ``fn(s, t)`` over the pairs.

    ``max_pairs`` subsamples evenly (used to keep the Dijkstra baseline
    affordable on the long-range sets; the paper ran 10,000 queries per
    set on C++, we scale down for pure Python). With ``percentiles``,
    every query is timed individually and the returned ``Timing``
    carries p50/p90/p99 alongside the mean (at the cost of one extra
    clock read per query).
    """
    work = list(pairs)
    if max_pairs is not None and len(work) > max_pairs:
        work = [work[i] for i in subsample_evenly(len(work), max_pairs)]
    if not work:
        return Timing(micros_per_query=math.nan, queries=0)
    if percentiles:
        samples: list[float] = []
        total = 0.0
        for s, t in work:
            start = time.perf_counter()
            fn(s, t)
            elapsed = time.perf_counter() - start
            total += elapsed
            samples.append(elapsed * 1e6)
        samples.sort()
        return Timing(
            micros_per_query=total / len(work) * 1e6,
            queries=len(work),
            p50=_percentile(samples, 0.50),
            p90=_percentile(samples, 0.90),
            p99=_percentile(samples, 0.99),
        )
    start = time.perf_counter()
    for s, t in work:
        fn(s, t)
    elapsed = time.perf_counter() - start
    return Timing(micros_per_query=elapsed / len(work) * 1e6, queries=len(work))


def fmt_micros(value: float) -> str:
    """Render a microsecond value like the paper's log-scale plots."""
    if math.isnan(value):
        return "-"
    if value >= 1e6:
        return f"{value / 1e6:.2f}s"
    if value >= 1e3:
        return f"{value / 1e3:.1f}ms"
    return f"{value:.1f}us"


def fmt_bytes(n_bytes: float) -> str:
    """Render an index size like Figure 6(a)'s MB axis."""
    if n_bytes >= 1e9:
        return f"{n_bytes / 1e9:.2f}GB"
    if n_bytes >= 1e6:
        return f"{n_bytes / 1e6:.1f}MB"
    return f"{n_bytes / 1e3:.1f}KB"


def fmt_seconds(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}min"
    return f"{seconds:.1f}s"


_CACHE_COUNTER_ORDER = ("hits", "misses", "rebuilds", "writes", "quarantined")


def fmt_cache_stats(counters: Mapping[str, int]) -> str:
    """Render hit/miss/rebuild counters, e.g. ``12 hits, 3 misses, ...``.

    Shared by :class:`repro.harness.cache.CacheStats`, the benchmark
    session summary, and the ``cache stats`` CLI so the counters read
    identically everywhere.
    """
    parts = [
        f"{int(counters.get(name, 0))} {name}" for name in _CACHE_COUNTER_ORDER
    ]
    extras = sorted(set(counters) - set(_CACHE_COUNTER_ORDER))
    parts += [f"{int(counters[name])} {name}" for name in extras]
    return ", ".join(parts)
