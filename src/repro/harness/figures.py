"""Runners for every table and figure of the paper's evaluation.

Each ``@experiment("…")`` function regenerates one table/figure: it
pulls graphs, indexes and workloads from the :class:`Registry`, times
the queries, and returns an :class:`Experiment` whose rows mirror the
paper's series. ``python -m repro.harness --experiment fig8`` prints
them; the pytest benches under ``benchmarks/`` reuse the same
functions.

Workload sizes are scaled down from the paper's 10,000 pairs per set
(see ``Registry.pairs_per_set``); the bidirectional Dijkstra baseline
is additionally subsampled per set, exactly because it is the
technique the paper shows to be orders of magnitude slower.
"""

from __future__ import annotations

import math

from repro.analysis.defect import demonstrate, stress
from repro.analysis.memory import deep_sizeof
from repro.analysis.redundancy import redundancy_upper_bound
from repro.datasets import (
    DATASET_NAMES,
    PAPER_TABLE1,
    QUERY_SET_FIGURE_DATASETS,
    SPATIAL_METHOD_DATASETS,
)
from repro.harness.experiments import Experiment, experiment
from repro.harness.registry import Registry
from repro.harness.timing import fmt_bytes, fmt_micros, fmt_seconds, time_queries

#: Subsample cap for the index-free baseline (it is orders of magnitude
#: slower than everything else, which is the paper's own point).
MAX_DIJKSTRA_PAIRS = 25

#: Datasets used for the Figure 13 grid-granularity sweep (five sizes).
GRID_SWEEP_DATASETS = ("DE", "ME", "CO", "FL", "E-US")

#: Datasets used for the Figure 14/15 fallback ablations. The paper
#: uses DE/CO/E-US/US; the two-level hybrid on our US analogue costs a
#: disproportionate one-time build, so the default trims it — pass
#: ``names=...`` to the runner for the full set.
TNR_VARIANT_DATASETS = ("DE", "CO", "E-US")


# ----------------------------------------------------------------------
# Table 1 — dataset characteristics
# ----------------------------------------------------------------------
@experiment("table1")
def run_table1(reg: Registry, names: tuple[str, ...] = DATASET_NAMES) -> Experiment:
    """Table 1: the dataset ladder (paper sizes vs our analogues)."""
    exp = Experiment(
        key="table1",
        title="Dataset characteristics (paper -> scaled analogue)",
        headers=["Name", "Region", "paper n", "paper m", "our n", "our m", "TNR grid"],
    )
    for name in names:
        region, paper_n, paper_m = PAPER_TABLE1[name]
        g = reg.graph(name)
        spec = reg.spec(name)
        exp.rows.append(
            [name, region, f"{paper_n:,}", f"{paper_m:,}", f"{g.n:,}", f"{g.m:,}",
             str(spec.tnr_grid)]
        )
        exp.data[name] = {"n": g.n, "m": g.m, "paper_n": paper_n, "paper_m": paper_m}
    exp.notes.append(
        "synthetic analogues at reduced scale; same geometric ladder, "
        "travel-time weights, and road-network structure (DESIGN.md §2)"
    )
    return exp


# ----------------------------------------------------------------------
# Figure 6 — space overhead and preprocessing time vs n
# ----------------------------------------------------------------------
@experiment("fig6")
def run_fig6(reg: Registry, names: tuple[str, ...] = DATASET_NAMES) -> Experiment:
    """Figure 6: index size and preprocessing time for all techniques."""
    exp = Experiment(
        key="fig6",
        title="Space overhead and preprocessing time vs n",
        headers=["Dataset", "n", "CH space", "CH time", "TNR space", "TNR time",
                 "SILC space", "SILC time", "PCPD space", "PCPD time"],
    )
    for name in names:
        g = reg.graph(name)
        row = [name, f"{g.n:,}"]
        ch = reg.ch(name)
        ch_bytes = deep_sizeof(ch.index)
        row += [fmt_bytes(ch_bytes), fmt_seconds(ch.index.stats.seconds)]
        exp.data[("CH", name)] = {"bytes": ch_bytes, "seconds": ch.index.stats.seconds}

        tnr = reg.tnr(name)
        tnr_bytes = deep_sizeof(tnr.index)
        row += [fmt_bytes(tnr_bytes), fmt_seconds(tnr.index.stats.seconds)]
        exp.data[("TNR", name)] = {
            "bytes": tnr_bytes, "seconds": tnr.index.stats.seconds,
            "transit_nodes": tnr.index.n_transit_nodes,
        }

        if reg.spec(name).allows_spatial_methods:
            silc = reg.silc(name)
            silc_bytes = deep_sizeof(silc.index)
            row += [fmt_bytes(silc_bytes), fmt_seconds(silc.index.stats.seconds)]
            exp.data[("SILC", name)] = {
                "bytes": silc_bytes, "seconds": silc.index.stats.seconds,
            }
            pcpd = reg.pcpd(name)
            pcpd_bytes = deep_sizeof(pcpd.index)
            row += [fmt_bytes(pcpd_bytes), fmt_seconds(pcpd.index.stats.seconds)]
            exp.data[("PCPD", name)] = {
                "bytes": pcpd_bytes, "seconds": pcpd.index.stats.seconds,
            }
        else:
            row += ["-", "-", "-", "-"]
        exp.rows.append(row)
    exp.notes.append(
        "SILC/PCPD reported only on the four smallest datasets, mirroring "
        "the paper's 24 GB residency rule (their quadratic preprocessing "
        "is the point of Figure 6)"
    )
    return exp


# ----------------------------------------------------------------------
# Figure 7 — SILC vs PCPD, shortest-path queries, 4 smallest datasets
# ----------------------------------------------------------------------
@experiment("fig7")
def run_fig7(
    reg: Registry, names: tuple[str, ...] = SPATIAL_METHOD_DATASETS
) -> Experiment:
    """Figure 7: SILC vs PCPD shortest-path query time per query set."""
    exp = Experiment(
        key="fig7",
        title="SILC vs PCPD on shortest path queries (Q1..Q10)",
        headers=["Dataset", "Set", "SILC", "PCPD"],
    )
    for name in names:
        silc = reg.silc(name)
        pcpd = reg.pcpd(name)
        for qset in reg.q_sets(name):
            t_silc = time_queries(silc.path, qset.pairs)
            t_pcpd = time_queries(pcpd.path, qset.pairs)
            exp.rows.append(
                [name, qset.name, fmt_micros(t_silc.micros_per_query),
                 fmt_micros(t_pcpd.micros_per_query)]
            )
            exp.data[("SILC", name, qset.name)] = t_silc.micros_per_query
            exp.data[("PCPD", name, qset.name)] = t_pcpd.micros_per_query
    return exp


# ----------------------------------------------------------------------
# Figures 8/10/16/17 — query time vs n
# ----------------------------------------------------------------------
def _vs_n_experiment(
    reg: Registry,
    key: str,
    title: str,
    names: tuple[str, ...],
    set_indexes: tuple[int, ...],
    workload: str,
    operation: str,
) -> Experiment:
    """Shared runner for the four 'running time vs n' figures."""
    exp = Experiment(
        key=key, title=title,
        headers=["Dataset", "n", "Set", "Dijkstra", "SILC", "CH", "TNR"],
    )
    for name in names:
        g = reg.graph(name)
        sets = reg.q_sets(name) if workload == "Q" else reg.r_sets(name)
        chosen = [s for s in sets if s.index in set_indexes]
        techniques: list[tuple[str, object, int | None]] = [
            ("Dijkstra", reg.bidijkstra(name), MAX_DIJKSTRA_PAIRS),
        ]
        if reg.spec(name).allows_spatial_methods:
            techniques.append(("SILC", reg.silc(name), None))
        techniques.append(("CH", reg.ch(name), None))
        techniques.append(("TNR", reg.tnr(name), None))

        for qset in chosen:
            cells: dict[str, str] = {"SILC": "-"}
            for tech_name, tech, cap in techniques:
                fn = getattr(tech, operation)
                t = time_queries(fn, qset.pairs, max_pairs=cap)
                cells[tech_name] = fmt_micros(t.micros_per_query)
                exp.data[(tech_name, name, qset.name)] = t.micros_per_query
            exp.rows.append(
                [name, f"{g.n:,}", qset.name, cells["Dijkstra"], cells["SILC"],
                 cells["CH"], cells["TNR"]]
            )
    exp.notes.append(f"Dijkstra subsampled to {MAX_DIJKSTRA_PAIRS} pairs per set")
    return exp


@experiment("fig8")
def run_fig8(
    reg: Registry,
    names: tuple[str, ...] = DATASET_NAMES,
    set_indexes: tuple[int, ...] = (1, 4, 7, 10),
) -> Experiment:
    """Figure 8: distance-query time vs n on Q1/Q4/Q7/Q10."""
    return _vs_n_experiment(
        reg, "fig8", "Efficiency of distance queries vs n",
        names, set_indexes, "Q", "distance",
    )


@experiment("fig10")
def run_fig10(
    reg: Registry,
    names: tuple[str, ...] = DATASET_NAMES,
    set_indexes: tuple[int, ...] = (1, 4, 7, 10),
) -> Experiment:
    """Figure 10: shortest-path-query time vs n on Q1/Q4/Q7/Q10."""
    return _vs_n_experiment(
        reg, "fig10", "Efficiency of shortest path queries vs n",
        names, set_indexes, "Q", "path",
    )


@experiment("fig16")
def run_fig16(
    reg: Registry,
    names: tuple[str, ...] = DATASET_NAMES,
    set_indexes: tuple[int, ...] = (1, 4, 7, 10),
) -> Experiment:
    """Figure 16: distance queries vs n on the R-sets (Appendix E.2)."""
    return _vs_n_experiment(
        reg, "fig16", "Efficiency of distance queries vs n (R sets)",
        names, set_indexes, "R", "distance",
    )


@experiment("fig17")
def run_fig17(
    reg: Registry,
    names: tuple[str, ...] = DATASET_NAMES,
    set_indexes: tuple[int, ...] = (1, 4, 7, 10),
) -> Experiment:
    """Figure 17: shortest-path queries vs n on the R-sets."""
    return _vs_n_experiment(
        reg, "fig17", "Efficiency of shortest path queries vs n (R sets)",
        names, set_indexes, "R", "path",
    )


# ----------------------------------------------------------------------
# Figures 9/11 — query time vs query set
# ----------------------------------------------------------------------
def _vs_qset_experiment(
    reg: Registry,
    key: str,
    title: str,
    names: tuple[str, ...],
    operation: str,
) -> Experiment:
    exp = Experiment(
        key=key, title=title, headers=["Dataset", "Set", "SILC", "CH", "TNR"],
    )
    for name in names:
        techniques: list[tuple[str, object]] = []
        if reg.spec(name).allows_spatial_methods:
            techniques.append(("SILC", reg.silc(name)))
        techniques.append(("CH", reg.ch(name)))
        techniques.append(("TNR", reg.tnr(name)))
        for qset in reg.q_sets(name):
            cells = {"SILC": "-"}
            for tech_name, tech in techniques:
                t = time_queries(getattr(tech, operation), qset.pairs)
                cells[tech_name] = fmt_micros(t.micros_per_query)
                exp.data[(tech_name, name, qset.name)] = t.micros_per_query
            exp.rows.append(
                [name, qset.name, cells["SILC"], cells["CH"], cells["TNR"]]
            )
    return exp


@experiment("fig9")
def run_fig9(
    reg: Registry, names: tuple[str, ...] = QUERY_SET_FIGURE_DATASETS
) -> Experiment:
    """Figure 9: distance-query time per query set (DE/CO/E-US/US)."""
    return _vs_qset_experiment(
        reg, "fig9", "Efficiency of distance queries vs query sets", names, "distance"
    )


@experiment("fig11")
def run_fig11(
    reg: Registry, names: tuple[str, ...] = QUERY_SET_FIGURE_DATASETS
) -> Experiment:
    """Figure 11: shortest-path-query time per query set."""
    return _vs_qset_experiment(
        reg, "fig11", "Efficiency of shortest path queries vs query sets", names, "path"
    )


# ----------------------------------------------------------------------
# Table 2 — delta-redundancy upper bounds
# ----------------------------------------------------------------------
@experiment("table2")
def run_table2(
    reg: Registry,
    names: tuple[str, ...] = DATASET_NAMES,
    pairs_per_set: int = 10,
) -> Experiment:
    """Table 2: min length(P')/length(P) over the query pairs."""
    exp = Experiment(
        key="table2",
        title="Upper bound of delta (core-disjoint path ratio)",
        headers=["Dataset", "min ratio", "pairs"],
    )
    for name in names:
        g = reg.graph(name)
        pairs: list[tuple[int, int]] = []
        for qset in reg.q_sets(name):
            pairs.extend(qset.pairs[:pairs_per_set])
        bound, contributing = redundancy_upper_bound(g, pairs)
        exp.rows.append(
            [name, "inf" if math.isinf(bound) else f"{bound:.5f}", str(contributing)]
        )
        exp.data[name] = {"bound": bound, "pairs": contributing}
    exp.notes.append(
        "values at or barely above 1 confirm Appendix C: real networks "
        "are not usefully delta-redundant, so PCPD's O(n) bound hides an "
        "enormous constant"
    )
    return exp


# ----------------------------------------------------------------------
# Appendix B — the TNR defect
# ----------------------------------------------------------------------
@experiment("appb")
def run_appb(reg: Registry, stress_dataset: str = "DE", stress_pairs: int = 200) -> Experiment:
    """Appendix B: flawed vs corrected TNR preprocessing."""
    import numpy as np

    exp = Experiment(
        key="appb",
        title="TNR preprocessing defect (Figure 12 counter-example + stress)",
        headers=["Check", "Result"],
    )
    report = demonstrate()
    exp.rows.append(["counter-example true distance", f"{report.true_distance:g}"])
    exp.rows.append(["flawed TNR answer", f"{report.flawed_distance:g}"])
    exp.rows.append(["corrected TNR answer", f"{report.corrected_distance:g}"])
    exp.rows.append(["flawed answer wrong", str(report.flawed_is_wrong)])
    exp.rows.append(["corrected answer exact", str(report.corrected_is_right)])
    exp.data["counterexample"] = report

    g = reg.graph(stress_dataset)
    rng = np.random.default_rng(reg.spec(stress_dataset).seed)
    pairs = [
        (int(rng.integers(g.n)), int(rng.integers(g.n))) for _ in range(stress_pairs)
    ]
    wrong, answerable = stress(g, reg.spec(stress_dataset).tnr_grid, pairs, reg.ch(stress_dataset))
    exp.rows.append(
        [f"random stress on {stress_dataset}", f"{wrong}/{answerable} answerable pairs wrong"]
    )
    exp.data["stress"] = {"wrong": wrong, "answerable": answerable}
    return exp


# ----------------------------------------------------------------------
# Figure 13 — TNR grid granularity: space and preprocessing
# ----------------------------------------------------------------------
@experiment("fig13")
def run_fig13(
    reg: Registry, names: tuple[str, ...] = GRID_SWEEP_DATASETS
) -> Experiment:
    """Figure 13: g-grid vs 2g-grid vs hybrid — space and build time."""
    exp = Experiment(
        key="fig13",
        title="TNR grids: space and preprocessing vs n (g / 2g / hybrid)",
        headers=["Dataset", "n", "grid", "g space", "g time",
                 "2g space", "2g time", "hybrid space", "hybrid time"],
    )
    for name in names:
        g = reg.graph(name)
        base = reg.spec(name).tnr_grid
        coarse = reg.tnr(name, grid=base)
        fine = reg.tnr(name, grid=2 * base)
        hybrid = reg.hybrid_tnr(name, grid=base)
        sizes = {
            "g": deep_sizeof(coarse.index),
            "2g": deep_sizeof(fine.index),
            "hybrid": deep_sizeof(hybrid.coarse)
            + deep_sizeof(hybrid.fine_pairs)
            + deep_sizeof(hybrid.fine_vertex_access)
            + deep_sizeof(hybrid.fine_vertex_access_dist),
        }
        times = {
            "g": coarse.index.stats.seconds,
            "2g": fine.index.stats.seconds,
            "hybrid": hybrid.build_stats.seconds,
        }
        exp.rows.append(
            [name, f"{g.n:,}", str(base),
             fmt_bytes(sizes["g"]), fmt_seconds(times["g"]),
             fmt_bytes(sizes["2g"]), fmt_seconds(times["2g"]),
             fmt_bytes(sizes["hybrid"]), fmt_seconds(times["hybrid"])]
        )
        for variant in ("g", "2g", "hybrid"):
            exp.data[(variant, name)] = {
                "bytes": sizes[variant], "seconds": times[variant],
            }
    return exp


# ----------------------------------------------------------------------
# Figures 14/15 — TNR variants: grids x fallbacks, per query set
# ----------------------------------------------------------------------
def _tnr_variants_experiment(
    reg: Registry, key: str, title: str, names: tuple[str, ...], operation: str
) -> Experiment:
    exp = Experiment(
        key=key, title=title,
        headers=["Dataset", "Set", "g(Dij)", "g(CH)", "hybrid(Dij)", "hybrid(CH)"],
    )
    for name in names:
        base = reg.spec(name).tnr_grid
        variants = [
            ("g(Dij)", reg.tnr(name, grid=base, fallback="dijkstra")),
            ("g(CH)", reg.tnr(name, grid=base, fallback="ch")),
            ("hybrid(Dij)", reg.hybrid_tnr(name, grid=base, fallback="dijkstra")),
            ("hybrid(CH)", reg.hybrid_tnr(name, grid=base, fallback="ch")),
        ]
        for qset in reg.q_sets(name):
            cells = {}
            for label, tech in variants:
                cap = MAX_DIJKSTRA_PAIRS if "Dij" in label else None
                t = time_queries(getattr(tech, operation), qset.pairs, max_pairs=cap)
                cells[label] = fmt_micros(t.micros_per_query)
                exp.data[(label, name, qset.name)] = t.micros_per_query
            exp.rows.append([name, qset.name] + [cells[l] for l, _ in variants])
    exp.notes.append("Dijkstra-fallback variants subsampled like the baseline")
    return exp


@experiment("fig14")
def run_fig14(
    reg: Registry, names: tuple[str, ...] = TNR_VARIANT_DATASETS
) -> Experiment:
    """Figure 14: TNR distance queries across grid/fallback variants."""
    return _tnr_variants_experiment(
        reg, "fig14", "TNR variants on distance queries", names, "distance"
    )


@experiment("fig15")
def run_fig15(
    reg: Registry, names: tuple[str, ...] = TNR_VARIANT_DATASETS
) -> Experiment:
    """Figure 15: TNR shortest-path queries across grid/fallback variants."""
    return _tnr_variants_experiment(
        reg, "fig15", "TNR variants on shortest path queries", names, "path"
    )


# ----------------------------------------------------------------------
# Workload transparency (ours, not a paper figure)
# ----------------------------------------------------------------------
@experiment("workloads")
def run_workloads(
    reg: Registry, names: tuple[str, ...] = DATASET_NAMES
) -> Experiment:
    """Per-dataset workload statistics: bucket fill and TNR coverage.

    Substantiates two reproduction caveats quantitatively: (a) the
    narrow near buckets can be under-populated at small scale (the
    generator reports shortfalls instead of padding); (b) the query-set
    index where TNR's tables start answering depends on the dataset's
    grid (DESIGN.md §6).
    """
    exp = Experiment(
        key="workloads",
        title="Workload population and TNR answerability per query set",
        headers=["Dataset", "Set", "pairs", "shortfall", "TNR answerable"],
    )
    for name in names:
        tnr = reg.tnr(name)
        for qset in reg.q_sets(name):
            answerable = sum(
                1 for s, t in qset.pairs if tnr.index.answerable(s, t)
            )
            frac = answerable / len(qset.pairs) if qset.pairs else 0.0
            exp.rows.append(
                [name, qset.name, str(len(qset.pairs)), str(qset.shortfall),
                 f"{frac:.0%}"]
            )
            exp.data[(name, qset.name)] = {
                "pairs": len(qset.pairs),
                "shortfall": qset.shortfall,
                "answerable_fraction": frac,
            }
    return exp


# ----------------------------------------------------------------------
# §4.7 — qualitative summary checks
# ----------------------------------------------------------------------
@experiment("summary")
def run_summary(reg: Registry) -> Experiment:
    """The §4.7 observations, evaluated as concrete checks.

    Uses the four smallest datasets (where every technique fits) plus
    the largest, mirroring how the paper summarises: preprocessing and
    space from Figure 6, query behaviour from Figures 8–11.
    """
    small = SPATIAL_METHOD_DATASETS[-1]  # CO analogue: largest with all five
    big = DATASET_NAMES[-1]

    ch = reg.ch(small)
    tnr = reg.tnr(small)
    silc = reg.silc(small)
    pcpd = reg.pcpd(small)

    sizes = {
        "CH": deep_sizeof(ch.index),
        "TNR": deep_sizeof(tnr.index),
        "SILC": deep_sizeof(silc.index),
        "PCPD": deep_sizeof(pcpd.index),
    }
    pre = {
        "CH": ch.index.stats.seconds,
        "TNR": tnr.index.stats.seconds,
        "SILC": silc.index.stats.seconds,
        "PCPD": pcpd.index.stats.seconds,
    }

    qsets = reg.q_sets(small)
    far = qsets[-1].pairs
    silc_far = time_queries(silc.path, far).micros_per_query
    pcpd_far = time_queries(pcpd.path, far).micros_per_query
    ch_dist = time_queries(ch.distance, far).micros_per_query
    ch_path = time_queries(ch.path, far).micros_per_query
    silc_path = time_queries(silc.path, far).micros_per_query

    big_far = reg.q_sets(big)[-1].pairs
    ch_big = time_queries(reg.ch(big).distance, big_far).micros_per_query
    tnr_big = time_queries(reg.tnr(big).distance, big_far).micros_per_query

    checks = [
        ("CH has the smallest index", sizes["CH"] == min(sizes.values())),
        ("CH has the smallest preprocessing time", pre["CH"] == min(pre.values())),
        ("SILC beats PCPD on shortest-path queries", silc_far < pcpd_far),
        ("SILC preprocessing beats PCPD's", pre["SILC"] < pre["PCPD"]),
        ("TNR beats CH on far distance queries (largest dataset)", tnr_big < ch_big),
        ("CH shortest-path queries cost more than its distance queries",
         ch_path > ch_dist),
        ("SILC beats CH on shortest-path queries", silc_path < ch_path),
    ]
    exp = Experiment(
        key="summary", title="Section 4.7 observations as checks",
        headers=["Observation", "Holds"],
    )
    for label, ok in checks:
        exp.rows.append([label, "yes" if ok else "NO"])
        exp.data[label] = ok
    return exp
