"""Experiment harness: cached index registry, timers, figure runners.

``python -m repro.harness --experiment fig8`` prints the series of the
paper's Figure 8 (and so on for every table/figure); the pytest-
benchmark suites under ``benchmarks/`` use the same registry so indexes
are built once and shared.
"""

from repro.harness.registry import Registry, default_registry

__all__ = ["Registry", "default_registry"]
