"""Experiment harness: cached index registry, timers, figure runners.

``python -m repro.harness --experiment fig8`` prints the series of the
paper's Figure 8 (and so on for every table/figure); the pytest-
benchmark suites under ``benchmarks/`` use the same registry so indexes
are built once and shared. ``python -m repro.harness cache
{list,verify,clear,stats}`` manages the hardened disk cache behind it.
"""

from repro.harness.cache import CACHE_VERSION, CacheStats, DiskCache
from repro.harness.registry import Registry, default_registry

__all__ = [
    "CACHE_VERSION",
    "CacheStats",
    "DiskCache",
    "Registry",
    "default_registry",
]
