"""Customisable contraction hierarchy: one scaffold, per-epoch metrics.

Why the witness CH cannot be repaired directly
----------------------------------------------
:func:`repro.core.ch.contraction.build_ch` decides which shortcuts to
*insert* with witness searches — a decision that depends on the metric.
Change one weight and the set of shortcuts itself may change, so there
is no well-defined "patch" of a witness CH that is bit-identical to a
from-scratch rebuild. The standard answer (customizable contraction
hierarchies; also the repair style of arXiv:1907.03535's edge
hierarchies) splits the build:

- a **scaffold** (:class:`CCHScaffold`) built once per topology by the
  *elimination game* in a fixed contraction order: contracting ``v``
  inserts an arc between every pair of its not-yet-contracted
  neighbours, no witness searches, so the arc set is metric-independent;
- a **customization** that assigns each scaffold arc ``(x, y)`` the
  weight ``min(base(x, y), min over lower apexes m of w(m,x) + w(m,y))``
  — the *lower-triangle rule* — processed in increasing tail-rank
  order so every input is final when consulted.

The customised scaffold is an exact contraction hierarchy for the
epoch's metric (the classic CCH theorem: every customised arc weight is
a real walk length, and the apex of any shortest up-down path keeps its
exact distance), so the existing query stack — point queries, the
many-to-many engine, hub-label derivation, TNR tables, the serving
``pack_ch`` layout — runs on it unchanged.

Why incremental == full, bit for bit
------------------------------------
Each arc's customised weight is an order-independent ``min`` over exact
float64 sums (integer travel times add exactly in float64), and the
recorded *middle* apex is deterministic: the first apex in rank order
that strictly beats the base weight and every earlier candidate — i.e.
``argmin`` (first occurrence) when the triangle minimum strictly beats
the base. :meth:`CCHScaffold.recustomize` recomputes exactly that
formula for every arc it pops, popping in increasing tail-rank order
seeded by the arcs whose base weight changed and propagating along
upper triangles only when a value actually moved. An arc it never pops
has bit-identical inputs, hence a bit-identical value; an arc it pops
is recomputed by the same formula over final inputs as a full
customization would. Past a damage threshold it simply falls back to
:meth:`CCHScaffold.customize` — the two paths are interchangeable by
construction.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.ch.contraction import ORIGINAL_EDGE, CHIndex
from repro.core.ch.query import ContractionHierarchy
from repro.graph.csr import CSRGraph, DirectedCSR
from repro.graph.graph import Graph

INF = math.inf


class CCHScaffold:
    """Metric-independent elimination-game scaffold in a fixed order.

    Flat layout (``A`` = number of scaffold arcs, each tail-to-head with
    ``rank[tail] < rank[head]``, rows sorted by head id):

    - ``uindptr``/``uheads`` — CSR of the up-graph topology;
    - ``tails`` — per-arc tail vertex (the CSR row, flattened);
    - ``base_arc`` — the underlying directed base-CSR arc id, or ``-1``
      for a pure shortcut;
    - lower triangles, grouped per target arc in increasing apex rank
      (``t_indptr``/``t_apex``/``t_lo1``/``t_lo2``): target
      ``(x, y)``, apex ``m`` with ``rank[m] < rank[x] < rank[y]``, and
      the two lower arcs ``(m, x)``/``(m, y)``;
    - the transpose, grouped per *lower* arc
      (``in_indptr``/``in_target``): which targets consult an arc — the
      propagation fan-out of :meth:`recustomize`.

    The per-epoch state is just ``w`` (customised float64 weights) and
    ``mid`` (the middle apex per arc, :data:`ORIGINAL_EDGE` when the
    base edge wins).
    """

    def __init__(self, csr: CSRGraph, rank: list[int]) -> None:
        if len(rank) != csr.n:
            raise ValueError("rank must order every vertex of the graph")
        self.n = csr.n
        self.rank = np.asarray(rank, dtype=np.int64)
        self._csr = csr
        self._build_topology(csr)
        self._build_triangles()
        self.w = np.empty(self.n_arcs, dtype=np.float64)
        self.mid = np.empty(self.n_arcs, dtype=np.int64)
        self.customize(csr.weights)

    # ------------------------------------------------------------------
    # Topology (metric-independent, built once)
    # ------------------------------------------------------------------
    def _build_topology(self, csr: CSRGraph) -> None:
        n, rank = self.n, self.rank
        order = np.argsort(rank)  # order[r] = vertex contracted r-th
        up: list[set[int]] = [set() for _ in range(n)]
        esrc = csr.edge_sources()
        heads = csr.indices
        fwd = rank[esrc] < rank[heads]
        for t, h in zip(esrc[fwd].tolist(), heads[fwd].tolist()):
            up[t].add(h)
        # The elimination game: contracting v (in rank order) inserts an
        # arc between every pair of its higher-ranked neighbours. up[v]
        # is final when v is processed — arcs into a vertex's row are
        # only ever added by strictly lower-ranked apexes.
        rk = rank.tolist()
        for v in order.tolist():
            nb = sorted(up[v], key=rk.__getitem__)
            for i, x in enumerate(nb):
                row = up[x]
                for y in nb[i + 1 :]:
                    row.add(y)

        counts = np.fromiter((len(s) for s in up), dtype=np.int64, count=n)
        self.uindptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=self.uindptr[1:])
        self.n_arcs = int(self.uindptr[-1])
        self.uheads = np.empty(self.n_arcs, dtype=np.int32)
        for v in range(n):
            lo = int(self.uindptr[v])
            for k, h in enumerate(sorted(up[v])):
                self.uheads[lo + k] = h
        self.tails = np.repeat(
            np.arange(n, dtype=np.int32), counts
        )
        # Base-arc id per scaffold arc (-1 for pure shortcuts): the base
        # CSR rows are head-sorted, so one searchsorted per arc finds it.
        self.base_arc = np.full(self.n_arcs, -1, dtype=np.int64)
        indptr, indices = csr.indptr, csr.indices
        for a in range(self.n_arcs):
            t, h = int(self.tails[a]), int(self.uheads[a])
            lo, hi = int(indptr[t]), int(indptr[t + 1])
            k = lo + int(np.searchsorted(indices[lo:hi], h))
            if k < hi and int(indices[k]) == h:
                self.base_arc[a] = k
        self.tail_rank = self.rank[self.tails]

    def _arc_id(self, t: int, h: int) -> int:
        lo, hi = int(self.uindptr[t]), int(self.uindptr[t + 1])
        k = lo + int(np.searchsorted(self.uheads[lo:hi], h))
        if k >= hi or int(self.uheads[k]) != h:  # pragma: no cover
            raise KeyError(f"scaffold arc ({t}, {h}) missing")
        return k

    def _build_triangles(self) -> None:
        """Enumerate every lower triangle, grouped both ways.

        The elimination game guarantees the target arc of each apex's
        neighbour pair exists — that is exactly the clique it inserted.
        """
        rk = self.rank.tolist()
        apexes: list[int] = []
        targets: list[int] = []
        lo1s: list[int] = []
        lo2s: list[int] = []
        for m in range(self.n):
            lo, hi = int(self.uindptr[m]), int(self.uindptr[m + 1])
            nb = sorted(range(lo, hi), key=lambda a: rk[self.uheads[a]])
            for i, a1 in enumerate(nb):
                x = int(self.uheads[a1])
                for a2 in nb[i + 1 :]:
                    y = int(self.uheads[a2])
                    apexes.append(m)
                    targets.append(self._arc_id(x, y))
                    lo1s.append(a1)
                    lo2s.append(a2)
        apex = np.asarray(apexes, dtype=np.int64)
        target = np.asarray(targets, dtype=np.int64)
        lo1 = np.asarray(lo1s, dtype=np.int64)
        lo2 = np.asarray(lo2s, dtype=np.int64)
        # Group per target arc, apexes in increasing rank within a group
        # (stable sort keeps the deterministic first-wins scan order).
        grp = np.lexsort((self.rank[apex], target))
        self.t_apex = apex[grp]
        self.t_lo1 = lo1[grp]
        self.t_lo2 = lo2[grp]
        counts = np.bincount(target, minlength=self.n_arcs)
        self.t_indptr = np.zeros(self.n_arcs + 1, dtype=np.int64)
        np.cumsum(counts, out=self.t_indptr[1:])
        # Transpose: per lower arc, the (deduplicated) targets it feeds.
        in_arc = np.concatenate([lo1, lo2])
        in_tgt = np.concatenate([target, target])
        grp2 = np.lexsort((in_tgt, in_arc))
        in_arc, in_tgt = in_arc[grp2], in_tgt[grp2]
        counts2 = np.bincount(in_arc, minlength=self.n_arcs)
        self.in_indptr = np.zeros(self.n_arcs + 1, dtype=np.int64)
        np.cumsum(counts2, out=self.in_indptr[1:])
        self.in_target = in_tgt
        self.n_triangles = len(self.t_apex)
        # Arc processing order for full customization: increasing tail
        # rank, so every lower arc is final when its targets compute.
        self.arc_order = np.argsort(self.tail_rank, kind="stable")

    # ------------------------------------------------------------------
    # Customization
    # ------------------------------------------------------------------
    def _recompute_arc(self, a: int, base_weights: np.ndarray) -> None:
        """The customization formula for one arc, inputs assumed final."""
        b = int(self.base_arc[a])
        if b >= 0:
            val, mid = float(base_weights[b]), ORIGINAL_EDGE
        else:
            val, mid = INF, ORIGINAL_EDGE
        lo, hi = int(self.t_indptr[a]), int(self.t_indptr[a + 1])
        if hi > lo:
            cand = self.w[self.t_lo1[lo:hi]] + self.w[self.t_lo2[lo:hi]]
            k = int(np.argmin(cand))  # first occurrence = lowest apex rank
            if cand[k] < val:
                val, mid = float(cand[k]), int(self.t_apex[lo + k])
        self.w[a] = val
        self.mid[a] = mid

    def customize(self, base_weights: np.ndarray) -> None:
        """Full bottom-up customization for one epoch's base weights."""
        for a in self.arc_order.tolist():
            self._recompute_arc(a, base_weights)

    def recustomize(
        self,
        base_weights: np.ndarray,
        changed_base_arcs: np.ndarray,
        damage_threshold: float = 0.25,
    ) -> bool:
        """Incremental customization; returns False on damage fallback.

        Seeds the work heap with the scaffold arcs whose base weight
        changed, pops in increasing tail-rank order (an arc's lower
        triangles all have strictly lower-ranked tails, so its inputs
        are final at pop), recomputes by the full formula, and pushes an
        arc's upper triangles only when its value moved. When the seed
        set already exceeds ``damage_threshold`` of all arcs, repair
        would touch most of the hierarchy anyway — fall back to
        :meth:`customize` (same result bit for bit, by construction).
        """
        from heapq import heappop, heappush

        seeds = np.nonzero(np.isin(self.base_arc, changed_base_arcs))[0].tolist()
        if len(seeds) > damage_threshold * max(self.n_arcs, 1):
            self.customize(base_weights)
            return False
        heap: list[tuple[int, int]] = []
        queued = set()
        for a in seeds:
            heappush(heap, (int(self.tail_rank[a]), a))
            queued.add(a)
        while heap:
            _, a = heappop(heap)
            old = self.w[a]
            self._recompute_arc(a, base_weights)
            if self.w[a] != old:
                lo, hi = int(self.in_indptr[a]), int(self.in_indptr[a + 1])
                for t in self.in_target[lo:hi].tolist():
                    if t not in queued:
                        queued.add(t)
                        heappush(heap, (int(self.tail_rank[t]), t))
        return True

    # ------------------------------------------------------------------
    # Export to the existing CH query stack
    # ------------------------------------------------------------------
    def export_index(
        self,
        prev: CHIndex | None = None,
        changed_arcs: np.ndarray | None = None,
    ) -> CHIndex:
        """A genuine :class:`CHIndex` over the current customised state.

        ``up`` rows come out head-sorted (the scaffold's own row order),
        and the cached upward :class:`DirectedCSR` is installed directly
        from the flat arrays — ``pack_ch``, the many-to-many engine and
        the hub-label build all read that view zero-copy.

        With ``prev`` (the previous epoch's export of *this* scaffold)
        and ``changed_arcs`` (arc ids whose value or middle moved since
        then), the export is copy-on-write: unchanged ``up`` rows and
        ``middle`` entries are shared with ``prev``, only the touched
        tails' rows are rebuilt. Shared rows are bit-equal by
        definition (the flat arrays did not move at those positions),
        so the result compares equal to a full export.
        """
        if prev is not None and changed_arcs is not None:
            up = list(prev.up)
            for v in np.unique(self.tails[changed_arcs]).tolist():
                lo, hi = int(self.uindptr[v]), int(self.uindptr[v + 1])
                up[v] = list(
                    zip(
                        self.uheads[lo:hi].tolist(),
                        self.w[lo:hi].tolist(),
                        self.mid[lo:hi].tolist(),
                    )
                )
            middle = dict(prev.middle)
            for a in changed_arcs.tolist():
                t, h = int(self.tails[a]), int(self.uheads[a])
                middle[(t, h) if t < h else (h, t)] = int(self.mid[a])
            index = CHIndex(n=self.n, rank=prev.rank, up=up, middle=middle)
        else:
            heads = self.uheads.tolist()
            ws = self.w.tolist()
            mids = self.mid.tolist()
            indptr = self.uindptr.tolist()
            up = [
                list(zip(heads[indptr[v] : indptr[v + 1]], ws[indptr[v] : indptr[v + 1]],
                         mids[indptr[v] : indptr[v + 1]]))
                for v in range(self.n)
            ]
            middle = {
                (t, h) if t < h else (h, t): mid
                for t, h, mid in zip(self.tails.tolist(), heads, mids)
            }
            index = CHIndex(
                n=self.n, rank=self.rank.tolist(), up=up, middle=middle
            )
        index._upward = DirectedCSR(
            self.uindptr.astype(np.int32), self.uheads, self.w.copy()
        )
        return index

    def upward_csr(self) -> DirectedCSR:
        """The current up-graph view alone (no Python tuple lists)."""
        return DirectedCSR(
            self.uindptr.astype(np.int32), self.uheads, self.w.copy()
        )


class DynamicCH:
    """Per-epoch :class:`ContractionHierarchy` views over one scaffold."""

    def __init__(self, graph: Graph, scaffold: CCHScaffold) -> None:
        self.graph = graph
        self.scaffold = scaffold

    def hierarchy(self) -> ContractionHierarchy:
        """Export the current epoch's metric as a query-ready CH."""
        return ContractionHierarchy(self.graph, self.scaffold.export_index())
