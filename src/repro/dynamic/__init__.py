"""Dynamic edge weights: epochs, incremental repair, live swap support.

Road networks change metric (travel times) far more often than topology.
This package keeps the repo's query indexes current across **weight
epochs** without from-scratch preprocessing:

- :mod:`repro.dynamic.epochs` — immutable per-epoch weight arrays over
  the one frozen CSR topology, fingerprint-versioned;
- :mod:`repro.dynamic.cch` — a customizable contraction hierarchy
  scaffold: metric-independent shortcut topology built once, then
  (re-)customised per epoch, incrementally where damage is local;
- :mod:`repro.dynamic.repair` — :class:`DynamicState`, the per-technique
  repair orchestrator (CH, hub labels, TNR, plain weight views) with a
  from-scratch comparator for the differential correctness suite.

The serving integration (atomic epoch swap between micro-batches) lives
in :mod:`repro.serve.service`.
"""

from repro.dynamic.cch import CCHScaffold
from repro.dynamic.epochs import (
    WeightEpoch,
    arc_ids,
    changed_endpoints,
    next_epoch,
    reweight_graph,
)
from repro.dynamic.repair import (
    REPAIRABLE,
    DynamicState,
    RepairReport,
    build_labels_flat,
)

__all__ = [
    "CCHScaffold",
    "DynamicState",
    "RepairReport",
    "REPAIRABLE",
    "WeightEpoch",
    "arc_ids",
    "build_labels_flat",
    "changed_endpoints",
    "next_epoch",
    "reweight_graph",
]
