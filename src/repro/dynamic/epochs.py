"""Versioned weight epochs over a frozen CSR topology.

A road network's *topology* is effectively static; its *metric* is not —
travel times move with traffic every few minutes. The dynamics
subsystem models that as a sequence of **weight epochs**: immutable
per-epoch ``float64`` arc-weight arrays over the one frozen CSR
topology, keyed by a monotonically increasing epoch counter that is
folded into :class:`~repro.persistence.GraphFingerprint` (so an index
customised for epoch ``k`` can never be mistaken for one valid at
``k+1``).

An epoch step (:func:`next_epoch`) takes a batch of undirected edges
with their new weights, validates them against the topology, and
produces the next :class:`WeightEpoch` — a new :class:`CSRGraph` that
*shares* ``indptr``/``indices``/``xs``/``ys`` with its predecessor and
owns only a fresh weight array (both directed arcs of each updated edge
are rewritten). Everything downstream — the incremental repairs in
:mod:`repro.dynamic.cch` and :mod:`repro.dynamic.repair`, the serving
swap in :mod:`repro.serve.service` — consumes these epochs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph
from repro.persistence import GraphFingerprint

INF = math.inf


@dataclass(frozen=True)
class WeightEpoch:
    """One immutable weight version of the frozen topology.

    ``csr`` shares the topology arrays of every other epoch of the same
    graph and owns its weight array; ``fingerprint`` carries the epoch
    counter, so segment manifests and persistence headers distinguish
    epochs of the same topology.
    """

    epoch: int
    csr: CSRGraph
    fingerprint: GraphFingerprint

    @staticmethod
    def zero(csr: CSRGraph) -> "WeightEpoch":
        """Epoch 0: the dataset's frozen metric, weights shared as-is."""
        return WeightEpoch(
            epoch=0, csr=csr, fingerprint=GraphFingerprint.of_csr(csr, epoch=0)
        )


def arc_ids(csr: CSRGraph, edges: Sequence[tuple[int, int]]) -> np.ndarray:
    """``(k, 2)`` arc positions of each undirected edge's two arcs.

    Column 0 is the ``u -> v`` arc, column 1 the ``v -> u`` arc. Raises
    ``KeyError`` for an edge that is not in the topology — dynamic
    updates reweight existing edges, they never change the topology.
    """
    indptr, indices = csr.indptr, csr.indices
    out = np.empty((len(edges), 2), dtype=np.int64)
    for i, (u, v) in enumerate(edges):
        for col, (a, b) in enumerate(((u, v), (v, u))):
            if not 0 <= a < csr.n:
                raise KeyError(f"vertex {a} is not in the graph")
            lo, hi = int(indptr[a]), int(indptr[a + 1])
            k = lo + int(np.searchsorted(indices[lo:hi], b))
            if k >= hi or int(indices[k]) != b:
                raise KeyError(f"edge ({u}, {v}) is not in the topology")
            out[i, col] = k
    return out


def next_epoch(
    prev: WeightEpoch,
    edges: Sequence[tuple[int, int]],
    new_weights: Sequence[float],
) -> tuple[WeightEpoch, np.ndarray]:
    """Apply one update batch; returns ``(epoch, changed_arc_ids)``.

    ``changed_arc_ids`` holds the directed-arc positions whose weight
    actually moved (an "update" to the current weight is a no-op and is
    excluded), sorted ascending — the seed set for every incremental
    repair. Weights must be positive and finite, like
    :meth:`~repro.graph.graph.Graph.add_edge` demands at build time.
    """
    if len(edges) != len(new_weights):
        raise ValueError("edges and new_weights must have equal length")
    pos = arc_ids(prev.csr, edges)
    weights = prev.csr.weights.copy()
    for (u, v), w in zip(edges, new_weights):
        w = float(w)
        if not (w > 0.0 and math.isfinite(w)):
            raise ValueError(
                f"edge ({u}, {v}): weight must be positive and finite, got {w}"
            )
    weights[pos[:, 0]] = np.asarray(new_weights, dtype=np.float64)
    weights[pos[:, 1]] = np.asarray(new_weights, dtype=np.float64)
    changed = np.nonzero(weights != prev.csr.weights)[0]
    csr = CSRGraph(
        prev.csr.indptr, prev.csr.indices, weights, prev.csr.xs, prev.csr.ys
    )
    epoch = prev.epoch + 1
    return (
        WeightEpoch(
            epoch=epoch,
            csr=csr,
            fingerprint=GraphFingerprint.of_csr(csr, epoch=epoch),
        ),
        changed,
    )


def changed_endpoints(csr: CSRGraph, changed_arcs: np.ndarray) -> np.ndarray:
    """Sorted unique vertex ids touching any changed arc."""
    if len(changed_arcs) == 0:
        return np.empty(0, dtype=np.int64)
    esrc = csr.edge_sources()
    return np.unique(
        np.concatenate(
            [esrc[changed_arcs].astype(np.int64), csr.indices[changed_arcs].astype(np.int64)]
        )
    )


def reweight_graph(graph: Graph, csr: CSRGraph) -> Graph:
    """A fresh frozen :class:`Graph` carrying an epoch's weights.

    The from-scratch comparator for the differential harness: the
    weight-oblivious techniques (Dijkstra, bidirectional) and the full
    index rebuilds run on this graph exactly as they would on a dataset
    that shipped with the epoch's metric.
    """
    esrc = csr.edge_sources()
    fwd = esrc < csr.indices
    out = Graph(
        graph.xs,
        graph.ys,
        zip(
            esrc[fwd].tolist(),
            csr.indices[fwd].tolist(),
            csr.weights[fwd].tolist(),
        ),
    )
    return out.freeze()
