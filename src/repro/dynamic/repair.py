"""Per-technique incremental index repair across weight epochs.

:class:`DynamicState` owns one :class:`~repro.dynamic.cch.CCHScaffold`
plus the current epoch's query indexes and, on every
:meth:`~DynamicState.apply_updates`, produces the next epoch with a
repair plan per technique:

- **dijkstra / bidirectional** — nothing to repair: both answer off the
  epoch's weight view directly;
- **CH** — incremental re-customization of the scaffold, seeded by the
  changed base arcs and propagated along lower triangles
  (:meth:`CCHScaffold.recustomize`), falling back to a full
  customization past the damage threshold;
- **hub labels** — re-derivation of only the *dirty* vertices' labels.
  A vertex ``v``'s label is its stall-filtered upward search space, and
  that search consults exactly the arcs whose tails ``v`` reaches in
  the (metric-independent) up-graph; so ``v`` is dirty iff it reaches
  the tail of some customised arc whose value moved — one BFS over the
  precomputed reversed up-graph. Clean labels are provably bit-equal to
  a from-scratch build, dirty ones rerun the identical search kernel;
- **TNR** — per-cell patching. A cell's access computation consults
  (a) arcs whose tail sits within the inner 5×5 block (structural:
  Chebyshev distance ≤ ``INNER_RADIUS`` from the cell) and (b) arcs
  inside the limited one-to-many ball around its members, whose radius
  :func:`~repro.core.tnr.access_nodes._cell_access_csr_with_radius`
  reports. A cell is dirty iff a changed edge endpoint violates (a) or
  sits within the radius of (b) under the old *or* new metric (one
  multi-source ``min_only`` sweep each); every other cell's
  ``CellAccess`` is bit-identical under both metrics. The transit table
  re-derives only the rows/columns of transit nodes whose CH search
  spaces changed (the labels dirty set) — every other entry's
  candidate set is unchanged — and falls back to a full
  ``many_to_many`` when the transit set itself changes or the damage
  threshold trips.

The differential contract (``tests/test_dynamic.py``): after any
sequence of update batches, every repaired index compares bit-identical
to :meth:`DynamicState.rebuilt`, which builds the same indexes from
scratch at the same epoch.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import Sequence

import numpy as np

from repro import obs
from repro.core.ch.many_to_many import SEARCH_CHUNK, _settled_spaces, many_to_many
from repro.core.ch.query import ContractionHierarchy
from repro.core.labels.index import HubLabelIndex
from repro.core.tnr.access_nodes import (
    CellAccess,
    _cell_access_csr_with_radius,
    transit_nodes as collect_transit_nodes,
)
from repro.core.tnr.grid import INNER_RADIUS, TNRGrid
from repro.core.tnr.index import TNRIndex
from repro.dynamic.cch import CCHScaffold
from repro.dynamic.epochs import WeightEpoch, changed_endpoints, next_epoch
from repro.graph.csr import HAVE_SCIPY, CSRGraph
from repro.graph.graph import Graph

INF = math.inf

#: Repair techniques this module knows how to keep current.
REPAIRABLE = ("dijkstra", "bidijkstra", "ch", "labels", "tnr")


def _now_us() -> float:
    return time.perf_counter_ns() / 1e3


@dataclass
class RepairReport:
    """What one :meth:`DynamicState.apply_updates` call did, and how fast."""

    epoch: int
    changed_edges: int
    changed_arcs: int
    repair_us: dict[str, float] = field(default_factory=dict)
    full_rebuild: dict[str, bool] = field(default_factory=dict)
    ch_changed_arcs: int = 0
    labels_dirty: int = 0
    tnr_dirty_cells: int = 0
    tnr_dirty_transit: int = 0


# ----------------------------------------------------------------------
# Hub-label building blocks (engine-pinned: always the flat kernels)
# ----------------------------------------------------------------------
def _label_rows(ucsr, nodes: Sequence[int]):
    """Flat ``(indptr, hubs, dists)`` of the given vertices' labels.

    Runs :func:`_settled_spaces` directly (not through the
    ``_flat_engine`` size gate), so repair and full rebuild use the
    *same* kernel on any graph size — the differential bit-identity
    depends on that.
    """
    k = len(nodes)
    counts = np.zeros(k, dtype=np.int64)
    hub_parts: list[np.ndarray] = []
    dist_parts: list[np.ndarray] = []
    for base, rows, verts, dists in _settled_spaces(ucsr, nodes, SEARCH_CHUNK):
        counts += np.bincount(rows + base, minlength=k)
        hub_parts.append(verts)
        dist_parts.append(dists)
    indptr = np.zeros(k + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    hubs = (
        np.concatenate(hub_parts).astype(np.int32)
        if hub_parts
        else np.empty(0, dtype=np.int32)
    )
    dists_arr = (
        np.concatenate(dist_parts).astype(np.float64)
        if dist_parts
        else np.empty(0, dtype=np.float64)
    )
    return indptr, hubs, dists_arr


def build_labels_flat(ucsr, n: int) -> HubLabelIndex:
    """Full hub-label build over the flat upward CSR (all ``n`` vertices)."""
    indptr, hubs, dists = _label_rows(ucsr, list(range(n)))
    return HubLabelIndex(n=n, indptr=indptr, hubs=hubs, dists=dists)


def _splice_labels(
    old: HubLabelIndex, dirty: np.ndarray, rows
) -> HubLabelIndex:
    """New index = old with the ``dirty`` vertices' rows replaced."""
    d_indptr, d_hubs, d_dists = rows
    n = old.n
    sizes = np.diff(old.indptr)
    new_sizes = sizes.copy()
    new_sizes[dirty] = np.diff(d_indptr)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(new_sizes, out=indptr[1:])
    is_dirty = np.zeros(n, dtype=bool)
    is_dirty[dirty] = True
    src_start = old.indptr[:-1].copy()
    src_start[dirty] = d_indptr[:-1]
    total = int(indptr[-1])
    flat_src = np.repeat(src_start, new_sizes) + (
        np.arange(total, dtype=np.int64) - np.repeat(indptr[:-1], new_sizes)
    )
    mask = np.repeat(is_dirty, new_sizes)
    hubs = np.empty(total, dtype=np.int32)
    dists = np.empty(total, dtype=np.float64)
    hubs[mask] = d_hubs[flat_src[mask]]
    hubs[~mask] = old.hubs[flat_src[~mask]]
    dists[mask] = d_dists[flat_src[mask]]
    dists[~mask] = old.dists[flat_src[~mask]]
    return HubLabelIndex(n=n, indptr=indptr, hubs=hubs, dists=dists)


# ----------------------------------------------------------------------
# TNR building blocks
# ----------------------------------------------------------------------
def _assemble_tnr(
    grid: TNRGrid,
    cell_access: dict[int, CellAccess],
    ch: ContractionHierarchy,
    table: np.ndarray | None = None,
) -> TNRIndex:
    """Assemble a :class:`TNRIndex` from per-cell access information.

    Mirrors the tail of :func:`repro.core.tnr.index.build_tnr`; pass a
    precomputed ``table`` to skip the many-to-many (the patch path).
    """
    transit = collect_transit_nodes(cell_access)
    t_index = {v: i for i, v in enumerate(transit)}
    if table is None:
        table = many_to_many(ch, transit, transit, dtype=np.float32)
    n = grid.graph.n
    empty_idx = np.empty(0, dtype=np.int32)
    empty_dist = np.empty(0, dtype=np.float64)
    vertex_access: list[np.ndarray] = [empty_idx] * n
    vertex_access_dist: list[np.ndarray] = [empty_dist] * n
    for info in cell_access.values():
        idx = np.array([t_index[a] for a in info.access_nodes], dtype=np.int32)
        for v, dists in info.vertex_distances.items():
            vertex_access[v] = idx
            vertex_access_dist[v] = np.array(dists, dtype=np.float64)
    return TNRIndex(
        grid=grid,
        transit_nodes=transit,
        table=table,
        vertex_access=vertex_access,
        vertex_access_dist=vertex_access_dist,
    )


def _compute_cells(grid: TNRGrid, csr: CSRGraph, cells) -> tuple[dict, dict]:
    """``(cell_access, radius)`` of the given cells under ``csr``'s metric."""
    access: dict[int, CellAccess] = {}
    radius: dict[int, float] = {}
    for cell in cells:
        access[cell], radius[cell] = _cell_access_csr_with_radius(csr, grid, cell)
    return access, radius


# ----------------------------------------------------------------------
# The dynamic state
# ----------------------------------------------------------------------
class DynamicState:
    """Current-epoch indexes over one frozen topology, repaired in place.

    Parameters
    ----------
    graph:
        The frozen base graph (epoch 0's metric).
    ch:
        A witness CH of the base graph; only its contraction *order* is
        used (the scaffold re-derives the arc set metric-independently).
        Built on demand when omitted.
    with_labels / tnr_grid:
        Which optional techniques to maintain; ``tnr_grid`` is the TNR
        grid side length (``None`` disables TNR).
    damage_threshold:
        Fraction of arcs (CH), vertices (labels) or transit nodes (TNR)
        past which repair falls back to the full path.
    """

    def __init__(
        self,
        graph: Graph,
        ch: ContractionHierarchy | None = None,
        *,
        with_labels: bool = True,
        tnr_grid: int | None = None,
        damage_threshold: float = 0.25,
    ) -> None:
        if not HAVE_SCIPY:
            raise RuntimeError(
                "the dynamics subsystem needs scipy's compiled Dijkstra; "
                "install scipy or serve static epochs only"
            )
        if not graph.frozen:
            raise ValueError("freeze() the graph before building DynamicState")
        self.graph = graph
        self.damage_threshold = float(damage_threshold)
        base_csr = graph.csr()
        if ch is None:
            ch = ContractionHierarchy.build(graph)
        self.current = WeightEpoch.zero(base_csr)
        self.scaffold = CCHScaffold(base_csr, list(ch.index.rank))
        self.ch = ContractionHierarchy(graph, self.scaffold.export_index())
        # Reversed up-graph (topology-only, reused every epoch) for the
        # labels dirty-vertex BFS.
        order = np.argsort(self.scaffold.uheads, kind="stable")
        self._rev_tails = self.scaffold.tails[order]
        rev_counts = np.bincount(
            self.scaffold.uheads, minlength=self.scaffold.n
        )
        self._rev_indptr = np.zeros(self.scaffold.n + 1, dtype=np.int64)
        np.cumsum(rev_counts, out=self._rev_indptr[1:])

        self.labels: HubLabelIndex | None = None
        if with_labels:
            self.labels = build_labels_flat(
                self.ch.index.upward_csr(), graph.n
            )
        self.tnr: TNRIndex | None = None
        self._cell_access: dict[int, CellAccess] = {}
        self._cell_radius: dict[int, float] = {}
        if tnr_grid is not None:
            grid = TNRGrid(graph, tnr_grid)
            self._cell_access, self._cell_radius = _compute_cells(
                grid, base_csr, grid.nonempty_cells()
            )
            self.tnr = _assemble_tnr(grid, self._cell_access, self.ch)

    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        return self.current.epoch

    @property
    def csr(self) -> CSRGraph:
        """The current epoch's weight view (the Dijkstra "repair")."""
        return self.current.csr

    # ------------------------------------------------------------------
    def _dirty_vertices(self, changed_up_arcs: np.ndarray) -> np.ndarray:
        """Vertices whose upward search space consults a changed arc:
        everything that reaches a changed arc's tail in the up-graph
        (BFS over the reversed topology)."""
        n = self.scaffold.n
        seen = np.zeros(n, dtype=bool)
        stack = np.unique(self.scaffold.tails[changed_up_arcs]).tolist()
        for v in stack:
            seen[v] = True
        rev_indptr, rev_tails = self._rev_indptr, self._rev_tails
        while stack:
            x = stack.pop()
            for t in rev_tails[rev_indptr[x] : rev_indptr[x + 1]].tolist():
                if not seen[t]:
                    seen[t] = True
                    stack.append(t)
        return np.nonzero(seen)[0]

    # ------------------------------------------------------------------
    def apply_updates(
        self,
        edges: Sequence[tuple[int, int]],
        new_weights: Sequence[float],
    ) -> RepairReport:
        """Advance one epoch and repair every maintained index."""
        old_csr = self.current.csr
        t0 = _now_us()
        self.current, changed = next_epoch(self.current, edges, new_weights)
        new_csr = self.current.csr
        report = RepairReport(
            epoch=self.current.epoch,
            changed_edges=len(edges),
            changed_arcs=len(changed),
        )
        report.repair_us["dijkstra"] = _now_us() - t0

        # CH: incremental customization (the changed customised-arc set
        # is taken from a vectorised before/after compare, so it is the
        # same whether the incremental or the fallback path ran).
        t0 = _now_us()
        w_prev = self.scaffold.w.copy()
        mid_prev = self.scaffold.mid.copy()
        incremental = self.scaffold.recustomize(
            new_csr.weights, changed, self.damage_threshold
        )
        # Value changes drive search-space dirtiness (labels, TNR); a
        # middle can also flip while the value holds (the base arc
        # overtakes a tied triangle or vice versa), which matters only
        # to path unpacking — i.e. to the export.
        changed_up = np.nonzero(self.scaffold.w != w_prev)[0]
        changed_export = np.nonzero(
            (self.scaffold.w != w_prev) | (self.scaffold.mid != mid_prev)
        )[0]
        index = self.scaffold.export_index(self.ch.index, changed_export)
        self.ch = ContractionHierarchy(self.graph, index)
        report.repair_us["ch"] = _now_us() - t0
        report.full_rebuild["ch"] = not incremental
        report.ch_changed_arcs = len(changed_up)

        dirty = (
            self._dirty_vertices(changed_up)
            if len(changed_up)
            else np.empty(0, dtype=np.int64)
        )
        if self.labels is not None:
            t0 = _now_us()
            self._repair_labels(dirty, report)
            report.repair_us["labels"] = _now_us() - t0
        if self.tnr is not None:
            t0 = _now_us()
            self._repair_tnr(old_csr, new_csr, changed, dirty, report)
            report.repair_us["tnr"] = _now_us() - t0

        if obs.ENABLED:
            reg = obs.registry()
            reg.counter("dynamic.updates").inc()
            reg.gauge("dynamic.epoch").set(self.current.epoch)
            for tech, us in report.repair_us.items():
                reg.histogram(f"dynamic.repair_us.{tech}").observe(us)
        return report

    def _repair_labels(self, dirty: np.ndarray, report: RepairReport) -> None:
        report.labels_dirty = len(dirty)
        if len(dirty) == 0:
            report.full_rebuild["labels"] = False
            return
        ucsr = self.ch.index.upward_csr()
        if len(dirty) > self.damage_threshold * self.scaffold.n:
            self.labels = build_labels_flat(ucsr, self.scaffold.n)
            report.full_rebuild["labels"] = True
            return
        rows = _label_rows(ucsr, dirty.tolist())
        self.labels = _splice_labels(self.labels, dirty, rows)
        report.full_rebuild["labels"] = False

    def _repair_tnr(
        self,
        old_csr: CSRGraph,
        new_csr: CSRGraph,
        changed: np.ndarray,
        dirty_vertices: np.ndarray,
        report: RepairReport,
    ) -> None:
        from scipy.sparse.csgraph import dijkstra as _sp_dijkstra

        grid = self.tnr.grid
        endpoints = changed_endpoints(new_csr, changed)
        if len(endpoints) == 0 and len(dirty_vertices) == 0:
            report.full_rebuild["tnr"] = False
            return
        # (a) structural: every arc a cell's access computation
        # enumerates (inner block + exit arcs, including the weights
        # that size its search radius) has its tail within INNER_RADIUS
        # cells, so any cell that close to a changed endpoint recomputes.
        end_cells = {grid.cell_of_vertex[int(v)] for v in endpoints}
        dirty_cells = [
            c
            for c in self._cell_access
            if any(grid.cell_distance(c, e) <= INNER_RADIUS for e in end_cells)
        ]
        # (b) metric ball: a farther changed arc matters only if it sits
        # inside the cell's limited one-to-many search under the old or
        # the new metric. d(v, endpoint) is symmetric (undirected), so
        # two multi-source min-only sweeps bound every cell at once.
        if len(endpoints):
            idx = endpoints.astype(np.int64)
            dmin = np.minimum(
                _sp_dijkstra(
                    old_csr.matrix(), directed=True, indices=idx, min_only=True
                ),
                _sp_dijkstra(
                    new_csr.matrix(), directed=True, indices=idx, min_only=True
                ),
            )
            structural = set(dirty_cells)
            for c, radius in self._cell_radius.items():
                if c in structural:
                    continue
                near = dmin[grid.vertices_in(c)].min()
                if np.isfinite(near) and near <= radius:
                    dirty_cells.append(c)
        report.tnr_dirty_cells = len(dirty_cells)

        old_transit = self.tnr.transit_nodes
        if dirty_cells:
            fresh_access, fresh_radius = _compute_cells(
                grid, new_csr, sorted(dirty_cells)
            )
            self._cell_access.update(fresh_access)
            self._cell_radius.update(fresh_radius)
        transit = collect_transit_nodes(self._cell_access)

        dirty_set = set(dirty_vertices.tolist())
        dirty_t = [i for i, t in enumerate(old_transit) if t in dirty_set]
        report.tnr_dirty_transit = len(dirty_t)
        full_table = transit != old_transit or len(dirty_t) > (
            self.damage_threshold * max(len(old_transit), 1)
        )
        report.full_rebuild["tnr"] = full_table
        if full_table:
            self.tnr = _assemble_tnr(grid, self._cell_access, self.ch)
            return
        # Patch: rows/columns of transit nodes whose CH search spaces
        # changed — any entry with two clean endpoints has an unchanged
        # candidate set, hence the identical float32 value.
        table = self.tnr.table
        if dirty_t:
            table = table.copy()
            nodes = [old_transit[i] for i in dirty_t]
            sub = many_to_many(self.ch, nodes, old_transit, dtype=np.float32)
            table[np.asarray(dirty_t), :] = sub
            table[:, np.asarray(dirty_t)] = sub.T
        if dirty_cells or dirty_t:
            self.tnr = _assemble_tnr(grid, self._cell_access, self.ch, table=table)

    # ------------------------------------------------------------------
    def rebuilt(self) -> SimpleNamespace:
        """From-scratch indexes at the *current* epoch (the comparator).

        Re-customises a fresh scaffold at the current weights and builds
        labels and TNR with the same engine-pinned kernels the repair
        path uses — the differential suite asserts bit-identity between
        these and the repaired indexes.
        """
        scaffold = CCHScaffold(self.current.csr, self.scaffold.rank.tolist())
        ch = ContractionHierarchy(self.graph, scaffold.export_index())
        labels = (
            build_labels_flat(ch.index.upward_csr(), self.graph.n)
            if self.labels is not None
            else None
        )
        tnr = None
        if self.tnr is not None:
            grid = self.tnr.grid
            access, _ = _compute_cells(grid, self.current.csr, grid.nonempty_cells())
            tnr = _assemble_tnr(grid, access, ch)
        return SimpleNamespace(ch=ch, labels=labels, tnr=tnr)
