"""Shared-memory metrics planes: cross-process instrument mirroring.

Forked serving workers (:mod:`repro.serve.pool`) observe counters and
histograms into their own process-local :class:`MetricsRegistry`, which
dies with the worker. A :class:`MetricsPlane` is a small named
shared-memory segment the parent creates per worker slot; the worker
installs a :class:`PlaneMirror` on its registry so every instrument
write also lands in the plane as an *absolute* value (one int64/float64
store, no locks, no pipe traffic), and the parent reconstructs a
schema-versioned snapshot at any time with :meth:`MetricsPlane.snapshot`
and folds it into an aggregate via
:meth:`MetricsRegistry.merge_snapshot`.

Layout (all offsets 8-byte aligned)::

    header      16 int64 words: schema, pid, n_counters, n_gauges,
                n_hists, batches, last_batch_us, dropped, spares
    counter     name table (NAME_BYTES per row) + int64 value per row
    gauge       name table + float64 value per row
    histogram   name table + count row (len(BUCKET_BOUNDS)+1 bucket
                words + 1 total-count word, int64) + stats triple
                (sum, min, max as float64) per row

Single-writer discipline: only the owning worker writes instrument rows;
the parent only reads. Rows become visible by bumping the header count
*last*, so a reader never sees a half-initialised row. Concurrent reads
may be torn across words (count vs. buckets) — fine for live dashboards;
reads of a quiescent (dead or idle) worker are exact, which is what the
harvest-on-reap path relies on.

Stdlib-only, like the rest of :mod:`repro.obs`.
"""

from __future__ import annotations

import math
import time
from multiprocessing import resource_tracker, shared_memory

from repro.obs.registry import BUCKET_BOUNDS, METRICS_SCHEMA, Histogram

#: Layout version of the plane segment itself.
PLANE_SCHEMA = 1

#: Bytes reserved per instrument name (NUL-padded UTF-8; longer names
#: are truncated at an encoding boundary).
NAME_BYTES = 80

_N_COUNTS = len(BUCKET_BOUNDS) + 1
#: int64 words per histogram count row: every bucket plus a trailing
#: total-count word.
HIST_COUNT_WORDS = _N_COUNTS + 1
#: float64 words per histogram stats row: (sum, min, max).
HIST_STAT_WORDS = 3

_HEADER_WORDS = 16
# Header word indices.
_H_SCHEMA = 0
_H_PID = 1
_H_N_COUNTERS = 2
_H_N_GAUGES = 3
_H_N_HISTS = 4
_H_BATCHES = 5
_H_LAST_US = 6
_H_DROPPED = 7


def _now_us() -> int:
    return time.monotonic_ns() // 1000


def _attach_shm(name: str, foreign: bool) -> shared_memory.SharedMemory:
    """Attach an existing plane without double-registering it.

    Same contract as the segment attach in :mod:`repro.serve.segments`
    (duplicated here to keep ``repro.obs`` stdlib-only): ``foreign``
    attachments must not let this process's resource tracker unlink the
    plane at exit — the owner unlinks explicitly.
    """
    try:
        return shared_memory.SharedMemory(name=name, create=False, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13
        shm = shared_memory.SharedMemory(name=name, create=False)
        if foreign:
            try:
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass
        return shm


class MetricsPlane:
    """One worker's shared-memory metrics segment.

    The parent creates it (``MetricsPlane(name)``) and records
    :attr:`entry` in the service manifest; the worker — and any foreign
    observer such as ``repro-harness service stats`` — attaches with
    :meth:`attach`.
    """

    def __init__(
        self,
        name: str,
        *,
        max_counters: int = 256,
        max_gauges: int = 64,
        max_hists: int = 128,
    ) -> None:
        self.name = name
        self.max_counters = max_counters
        self.max_gauges = max_gauges
        self.max_hists = max_hists
        self._owner = True
        self._views: list[memoryview] = []
        nbytes = self._layout()
        self._shm = shared_memory.SharedMemory(
            name=name, create=True, size=nbytes
        )
        self._shm.buf[: self.nbytes] = bytes(self.nbytes)
        self._map_views()
        self._header[_H_SCHEMA] = PLANE_SCHEMA

    def _layout(self) -> int:
        off = _HEADER_WORDS * 8
        self._off_cnames = off
        off += self.max_counters * NAME_BYTES
        self._off_cvals = off
        off += self.max_counters * 8
        self._off_gnames = off
        off += self.max_gauges * NAME_BYTES
        self._off_gvals = off
        off += self.max_gauges * 8
        self._off_hnames = off
        off += self.max_hists * NAME_BYTES
        self._off_hcounts = off
        off += self.max_hists * HIST_COUNT_WORDS * 8
        self._off_hstats = off
        off += self.max_hists * HIST_STAT_WORDS * 8
        self.nbytes = off
        return off

    def _view(self, start: int, stop: int, fmt: str | None = None):
        mv = self._shm.buf[start:stop]
        self._views.append(mv)
        if fmt is not None:
            mv = mv.cast(fmt)
            self._views.append(mv)
        return mv

    def _map_views(self) -> None:
        self._header = self._view(0, _HEADER_WORDS * 8, "q")
        self._body = self._view(_HEADER_WORDS * 8, self.nbytes)
        self._cnames = self._view(self._off_cnames, self._off_cvals)
        self._cvals = self._view(self._off_cvals, self._off_gnames, "q")
        self._gnames = self._view(self._off_gnames, self._off_gvals)
        self._gvals = self._view(self._off_gvals, self._off_hnames, "d")
        self._hnames = self._view(self._off_hnames, self._off_hcounts)
        self._hcounts = self._view(self._off_hcounts, self._off_hstats, "q")
        self._hstats = self._view(self._off_hstats, self.nbytes, "d")

    @classmethod
    def attach(cls, entry: dict, *, foreign: bool = True) -> "MetricsPlane":
        """Attach an existing plane from its manifest ``entry`` dict.

        ``foreign=False`` is for the owning service's own worker
        processes; observers from other processes pass the default.
        """
        self = cls.__new__(cls)
        self.name = entry["segment"]
        self.max_counters = int(entry["max_counters"])
        self.max_gauges = int(entry["max_gauges"])
        self.max_hists = int(entry["max_hists"])
        self._owner = False
        self._views = []
        nbytes = self._layout()
        self._shm = _attach_shm(self.name, foreign)
        if self._shm.size < nbytes:
            shm = self._shm
            self._shm = None
            shm.close()
            raise ValueError(
                f"metrics plane {self.name!r}: segment is {shm.size} bytes, "
                f"layout needs {nbytes}"
            )
        self._map_views()
        schema = int(self._header[_H_SCHEMA])
        if schema != PLANE_SCHEMA:
            self.close()
            raise ValueError(
                f"metrics plane {self.name!r}: schema {schema}, "
                f"expected {PLANE_SCHEMA}"
            )
        return self

    @property
    def entry(self) -> dict:
        """JSON-able manifest entry from which :meth:`attach` rebuilds."""
        return {
            "kind": "metrics",
            "segment": self.name,
            "nbytes": self.nbytes,
            "max_counters": self.max_counters,
            "max_gauges": self.max_gauges,
            "max_hists": self.max_hists,
        }

    # -- header ----------------------------------------------------------
    def set_pid(self, pid: int) -> None:
        self._header[_H_PID] = int(pid)

    def note_batch(self) -> None:
        """Record one served batch (worker liveness heartbeat)."""
        self._header[_H_BATCHES] += 1
        self._header[_H_LAST_US] = _now_us()

    def header(self) -> dict:
        h = self._header
        return {
            "schema": int(h[_H_SCHEMA]),
            "pid": int(h[_H_PID]),
            "counters": int(h[_H_N_COUNTERS]),
            "gauges": int(h[_H_N_GAUGES]),
            "hists": int(h[_H_N_HISTS]),
            "batches": int(h[_H_BATCHES]),
            "last_batch_us": int(h[_H_LAST_US]),
            "dropped": int(h[_H_DROPPED]),
        }

    # -- row allocation (worker side, via PlaneMirror) -------------------
    def _write_name(self, table: memoryview, row: int, name: str) -> None:
        raw = name.encode("utf-8", "replace")[: NAME_BYTES - 1]
        start = row * NAME_BYTES
        table[start : start + len(raw)] = raw

    def _read_name(self, table: memoryview, row: int) -> str:
        start = row * NAME_BYTES
        raw = bytes(table[start : start + NAME_BYTES])
        return raw.split(b"\0", 1)[0].decode("utf-8", "replace")

    def alloc_counter(self, name: str):
        row = int(self._header[_H_N_COUNTERS])
        if row >= self.max_counters:
            self._header[_H_DROPPED] += 1
            return None
        self._write_name(self._cnames, row, name)
        self._cvals[row] = 0
        self._header[_H_N_COUNTERS] = row + 1
        view = self._cvals[row : row + 1]
        self._views.append(view)
        return view

    def alloc_gauge(self, name: str):
        row = int(self._header[_H_N_GAUGES])
        if row >= self.max_gauges:
            self._header[_H_DROPPED] += 1
            return None
        self._write_name(self._gnames, row, name)
        self._gvals[row] = 0.0
        self._header[_H_N_GAUGES] = row + 1
        view = self._gvals[row : row + 1]
        self._views.append(view)
        return view

    def alloc_histogram(self, name: str):
        row = int(self._header[_H_N_HISTS])
        if row >= self.max_hists:
            self._header[_H_DROPPED] += 1
            return None
        self._write_name(self._hnames, row, name)
        cstart = row * HIST_COUNT_WORDS
        counts = self._hcounts[cstart : cstart + HIST_COUNT_WORDS]
        sstart = row * HIST_STAT_WORDS
        stats = self._hstats[sstart : sstart + HIST_STAT_WORDS]
        self._views.extend((counts, stats))
        for i in range(HIST_COUNT_WORDS):
            counts[i] = 0
        stats[0] = 0.0
        stats[1] = math.inf
        stats[2] = -math.inf
        self._header[_H_N_HISTS] = row + 1
        return counts, stats

    # -- reading (parent / observer side) --------------------------------
    def snapshot(self) -> dict:
        """Rebuild a registry-style snapshot dict from the plane.

        Torn reads are possible while the worker is live (monitoring
        only); a quiescent plane reads back exactly.
        """
        snap: dict = {
            "schema": METRICS_SCHEMA,
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for row in range(int(self._header[_H_N_COUNTERS])):
            snap["counters"][self._read_name(self._cnames, row)] = int(
                self._cvals[row]
            )
        for row in range(int(self._header[_H_N_GAUGES])):
            snap["gauges"][self._read_name(self._gnames, row)] = float(
                self._gvals[row]
            )
        for row in range(int(self._header[_H_N_HISTS])):
            h = Histogram()
            cstart = row * HIST_COUNT_WORDS
            h.counts = [
                int(self._hcounts[cstart + i]) for i in range(_N_COUNTS)
            ]
            h.count = int(self._hcounts[cstart + _N_COUNTS])
            sstart = row * HIST_STAT_WORDS
            h.total = float(self._hstats[sstart])
            h.vmin = float(self._hstats[sstart + 1])
            h.vmax = float(self._hstats[sstart + 2])
            snap["histograms"][self._read_name(self._hnames, row)] = (
                h.as_dict()
            )
        return snap

    # -- lifecycle --------------------------------------------------------
    def reset(self) -> None:
        """Zero every instrument row and header stat (schema word stays).

        The parent calls this after harvesting a dead worker's plane so
        the respawned worker starts from zero on the same fixed name.
        """
        h = self._header
        for word in (_H_PID, _H_N_COUNTERS, _H_N_GAUGES, _H_N_HISTS,
                     _H_BATCHES, _H_LAST_US, _H_DROPPED):
            h[word] = 0
        self._body[:] = bytes(len(self._body))

    def close(self) -> None:
        """Release every exported view, unmap, and (if owner) unlink."""
        views, self._views = self._views, []
        for mv in reversed(views):
            try:
                mv.release()
            except Exception:
                pass
        shm, self._shm = self._shm, None
        if shm is None:
            return
        try:
            shm.close()
        except BufferError:  # pragma: no cover - stray exported view
            pass
        if self._owner:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "MetricsPlane":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class PlaneMirror:
    """Adapter wiring a :class:`MetricsPlane` into a registry.

    Implements the mirror duck-type consumed by
    :meth:`MetricsRegistry.set_mirror`: attach calls hand out plane
    buffer slices (seeding them with the instrument's current value so a
    mid-flight install stays consistent) and ``on_reset`` zeroes the
    plane alongside the registry.
    """

    def __init__(self, plane: MetricsPlane) -> None:
        self.plane = plane

    def attach_counter(self, name: str, value: int):
        view = self.plane.alloc_counter(name)
        if view is not None:
            view[0] = int(value)
        return view

    def attach_gauge(self, name: str, value: float):
        view = self.plane.alloc_gauge(name)
        if view is not None:
            view[0] = float(value)
        return view

    def attach_histogram(self, name: str, hist: Histogram):
        pair = self.plane.alloc_histogram(name)
        if pair is None:
            return None, None
        counts, stats = pair
        for i, c in enumerate(hist.counts):
            if c:
                counts[i] = c
        counts[_N_COUNTS] = hist.count
        stats[0] = hist.total
        stats[1] = hist.vmin
        stats[2] = hist.vmax
        return counts, stats

    def on_reset(self) -> None:
        pid = int(self.plane._header[_H_PID])
        self.plane.reset()
        if pid:
            self.plane.set_pid(pid)
