"""Instrumentation layer: metrics registry + phase spans + run traces.

Three pieces, wired through every layer of the reproduction:

- a process-wide :class:`~repro.obs.registry.MetricsRegistry` of
  counters, gauges and fixed-bucket latency histograms
  (:func:`registry`);
- nestable :func:`span` phase timers that roll up into the registry
  (histogram ``span.<name>`` in microseconds) and, when a trace is
  active, emit one JSON-lines event per completed span
  (:mod:`repro.obs.trace`);
- a **no-op fast path**: the module-level :data:`ENABLED` flag is
  checked once per call site, so disabled instrumentation costs one
  attribute load + branch on the hot query paths (gated below 2% on
  the Dijkstra point-query microbench by ``scripts/obs_overhead.py``).

Call-site contract
------------------
Hot paths (per-query code) guard every obs interaction::

    from repro import obs
    ...
    if obs.ENABLED:
        obs.registry().counter("ch.query.settled").inc(n)

Phase-level code (preprocessing, batch serving) may call :func:`span`
unconditionally — when disabled it returns a shared no-op context
manager and costs one function call per *phase*, which is noise::

    with obs.span("tnr.table"):
        table = many_to_many(ch, nodes, nodes)

Environment knobs:

- ``REPRO_OBS=1`` — enable instrumentation at import (default off);
- ``REPRO_TRACE=<path>`` — enable instrumentation *and* stream span
  events to ``<path>`` as JSON lines (implies ``REPRO_OBS=1``).

This package is stdlib-only: the core modules import it without
pulling in numpy/scipy or the rest of the package.
"""

from __future__ import annotations

import os
import time
from typing import Any

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_snapshot,
    to_prometheus,
)
from repro.obs.trace import (
    TRACE_SCHEMA,
    SpanNode,
    TraceWriter,
    read_trace,
    render_tree,
    rollup,
    trace_metrics,
    tree_summary,
)

__all__ = [
    "Counter",
    "ENABLED",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanNode",
    "TRACE_SCHEMA",
    "TraceWriter",
    "detach_trace",
    "enabled",
    "read_trace",
    "registry",
    "render_snapshot",
    "render_tree",
    "reset",
    "rollup",
    "set_enabled",
    "span",
    "start_trace",
    "stop_trace",
    "to_prometheus",
    "trace_metrics",
    "tree_summary",
    "unique_trace_path",
]


def _env_truthy(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() not in ("", "0", "off", "false")


#: THE flag. Hot call sites read ``obs.ENABLED`` (module attribute, so
#: toggles via :func:`set_enabled` are seen immediately); everything
#: else in this module also honours it.
ENABLED: bool = _env_truthy("REPRO_OBS") or bool(os.environ.get("REPRO_TRACE"))

_registry = MetricsRegistry()
_trace: TraceWriter | None = None

#: Stack of active span names in this process (spans are emitted from
#: the single-threaded core; worker processes carry their own stack).
_span_stack: list[str] = []


def enabled() -> bool:
    return ENABLED


def set_enabled(flag: bool) -> None:
    """Flip instrumentation on/off for the whole process."""
    global ENABLED
    ENABLED = bool(flag)


def registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _registry


def reset() -> None:
    """Clear every instrument and drop any active span nesting (tests)."""
    _registry.reset()
    _span_stack.clear()


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class _Span:
    """A live phase timer; use via :func:`span`, not directly."""

    __slots__ = ("name", "path", "_start")

    def __init__(self, name: str) -> None:
        self.name = name
        _span_stack.append(name)
        self.path = "/".join(_span_stack)
        self._start = time.perf_counter()

    def __enter__(self) -> "_Span":
        return self

    def __exit__(self, *exc: Any) -> None:
        dur_us = (time.perf_counter() - self._start) * 1e6
        if _span_stack and _span_stack[-1] == self.name:
            _span_stack.pop()
        _registry.histogram(f"span.{self.name}").observe(dur_us)
        if _trace is not None:
            _trace.event(
                {
                    "t": "span",
                    "name": self.name,
                    "path": self.path,
                    "depth": self.path.count("/"),
                    "dur_us": round(dur_us, 1),
                }
            )


class _NoopSpan:
    """Shared do-nothing context manager returned while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


_NOOP = _NoopSpan()


def span(name: str):
    """A nestable phase timer: ``with obs.span("ch.contract"): ...``.

    When instrumentation is disabled this returns a shared no-op
    context manager — cheap enough for phase-level call sites to use
    unconditionally. Hot per-query paths should gate on
    ``obs.ENABLED`` instead and skip the call entirely.
    """
    if not ENABLED:
        return _NOOP
    return _Span(name)


# ----------------------------------------------------------------------
# Traces
# ----------------------------------------------------------------------
def start_trace(path: str | os.PathLike) -> TraceWriter:
    """Open a run trace at ``path`` and enable instrumentation.

    One trace per process; starting a new one closes the old (with its
    final metrics snapshot).
    """
    global _trace
    if _trace is not None:
        _trace.close(_registry.snapshot())
    _trace = TraceWriter(path)
    set_enabled(True)
    return _trace


def stop_trace() -> str | None:
    """Close the active trace (embedding the final registry snapshot).

    Returns the trace path, or ``None`` when no trace was active.
    Instrumentation stays enabled — only the file stream stops.
    """
    global _trace
    if _trace is None:
        return None
    path = _trace.path
    _trace.close(_registry.snapshot())
    _trace = None
    return path


def trace_path() -> str | None:
    """Path of the active trace file, if any."""
    return _trace.path if _trace is not None else None


def detach_trace() -> None:
    """Drop the trace writer *without* closing its file.

    For forked children that inherit an open trace: the file handle
    (and its path) belong to the parent, so the child must neither
    write a metrics tail into it nor close it — it just forgets the
    writer, then typically opens its own file at
    :func:`unique_trace_path`. No-op when no trace is active.
    """
    global _trace
    _trace = None


#: Monotonic per-process counter appended to default trace names.
_trace_seq = 0


def unique_trace_path(base: str | os.PathLike) -> str:
    """A collision-free variant of a trace path: pid + counter.

    ``run.jsonl`` becomes ``run-<pid>-<k>.jsonl`` with ``k`` counting
    up per process, so pool workers and concurrent runs that derive
    their trace names from one configured base never clobber each
    other's files.
    """
    global _trace_seq
    root, ext = os.path.splitext(os.fspath(base))
    path = f"{root}-{os.getpid()}-{_trace_seq}{ext or '.jsonl'}"
    _trace_seq += 1
    return path


# REPRO_TRACE autostart. The first process to import under a given
# REPRO_TRACE claims the configured path and records its pid; any
# *other* process importing with the same environment (spawned build
# workers, subprocess tests) sees a foreign claim and writes to a
# pid-unique variant instead of clobbering the claimant's file.
# Long-lived serving workers are forked after import and re-route
# explicitly via detach_trace()/unique_trace_path() (repro.serve.pool).
_env_trace = os.environ.get("REPRO_TRACE", "").strip()
if _env_trace:  # pragma: no cover - exercised via subprocess tests
    _claim = os.environ.get("REPRO_TRACE_PID", "")
    if _claim and _claim != str(os.getpid()):
        _env_trace = unique_trace_path(_env_trace)
    else:
        os.environ["REPRO_TRACE_PID"] = str(os.getpid())
    start_trace(_env_trace)
