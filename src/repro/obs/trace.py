"""JSON-lines trace files: one run, one file, schema-versioned.

A trace is an append-only sequence of JSON objects, one per line:

- ``{"t": "header", "schema": 1, ...}`` — always the first line;
  readers reject files whose schema they do not understand.
- ``{"t": "span", "path": "tnr.build/tnr.table", "name": "tnr.table",
  "start_us": ..., "dur_us": ..., "depth": 1}`` — one per completed
  span, emitted at span *exit* (so a crashed run keeps every span that
  finished). ``path`` joins the enclosing span names with ``/`` —
  the rollup tree is rebuilt from paths alone.
- ``{"t": "metrics", "snapshot": {...}}`` — the final registry
  snapshot, written when the trace is closed cleanly.

The format is deliberately dumb: greppable, diffable, tolerant of
truncation (a torn last line is skipped, everything before it parses).
``repro-harness trace <run.jsonl>`` renders the per-phase rollup with
self/total times; :func:`rollup` and :func:`render_tree` are the
library form of the same computation.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, TextIO

#: Trace file schema; readers reject anything else.
TRACE_SCHEMA = 1


class TraceWriter:
    """Appends schema-versioned JSON-lines events to one run file."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = os.fspath(path)
        self._fh: TextIO | None = open(self.path, "w", encoding="utf-8")
        self.event(
            {
                "t": "header",
                "schema": TRACE_SCHEMA,
                "pid": os.getpid(),
                "started_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
            }
        )

    @property
    def closed(self) -> bool:
        return self._fh is None

    def event(self, record: dict) -> None:
        """Write one event (ignored after close); flushed per line so a
        crash loses at most the line being written."""
        if self._fh is None:
            return
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._fh.flush()

    def close(self, snapshot: dict | None = None) -> None:
        if self._fh is None:
            return
        if snapshot is not None:
            self.event({"t": "metrics", "snapshot": snapshot})
        self._fh.close()
        self._fh = None


def read_trace(path: str | os.PathLike) -> list[dict]:
    """Parse a trace file; raises ``ValueError`` on a bad header.

    A truncated (torn) trailing line is skipped silently — every event
    before it is returned.
    """
    events: list[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for i, line in enumerate(fh):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                if i == 0:
                    raise ValueError(f"{path}: not a trace file (bad header line)")
                continue  # torn tail from a crashed writer
            if i == 0:
                if not isinstance(record, dict) or record.get("t") != "header":
                    raise ValueError(f"{path}: not a trace file (no header)")
                schema = record.get("schema")
                if schema != TRACE_SCHEMA:
                    raise ValueError(
                        f"{path}: unsupported trace schema {schema!r} "
                        f"(this reader understands {TRACE_SCHEMA})"
                    )
            if isinstance(record, dict):
                events.append(record)
    if not events:
        raise ValueError(f"{path}: empty trace file")
    return events


def trace_metrics(events: Iterable[dict]) -> dict | None:
    """The final registry snapshot embedded in the trace, if any."""
    snapshot = None
    for record in events:
        if record.get("t") == "metrics":
            snapshot = record.get("snapshot")
    return snapshot


@dataclass
class SpanNode:
    """One node of the rollup tree (aggregated over same-path spans)."""

    name: str
    path: str
    count: int = 0
    total_us: float = 0.0
    children: dict[str, "SpanNode"] = field(default_factory=dict)

    @property
    def child_us(self) -> float:
        return sum(c.total_us for c in self.children.values())

    @property
    def self_us(self) -> float:
        """Time inside this span not covered by child spans.

        Clamped at zero: aggregation over repeated spans can make the
        children's sum marginally exceed the parent's on timer jitter.
        """
        return max(0.0, self.total_us - self.child_us)


def rollup(events: Iterable[dict]) -> SpanNode:
    """Aggregate span events into a tree keyed by span path.

    Spans with the same path merge (count goes up, durations add) —
    a build with 40 ``ch.contract`` rounds shows one node with
    ``count=40``, not 40 siblings.
    """
    root = SpanNode(name="(run)", path="")
    for record in events:
        if record.get("t") != "span":
            continue
        path = record.get("path") or record.get("name", "?")
        node = root
        walked = []
        for part in path.split("/"):
            walked.append(part)
            child = node.children.get(part)
            if child is None:
                child = node.children[part] = SpanNode(
                    name=part, path="/".join(walked)
                )
            node = child
        node.count += 1
        node.total_us += float(record.get("dur_us", 0.0))
    root.count = 1
    root.total_us = root.child_us
    return root


def _fmt_us(us: float) -> str:
    if us >= 1e6:
        return f"{us / 1e6:.2f}s"
    if us >= 1e3:
        return f"{us / 1e3:.1f}ms"
    return f"{us:.0f}us"


def render_tree(root: SpanNode) -> str:
    """ASCII rollup tree with total/self times, largest subtree first."""
    lines = [f"{'span':<44} {'count':>6} {'total':>9} {'self':>9}"]
    lines.append("-" * len(lines[0]))

    def walk(node: SpanNode, depth: int) -> None:
        label = ("  " * depth + node.name)[:44]
        lines.append(
            f"{label:<44} {node.count:>6} "
            f"{_fmt_us(node.total_us):>9} {_fmt_us(node.self_us):>9}"
        )
        for child in sorted(
            node.children.values(), key=lambda c: -c.total_us
        ):
            walk(child, depth + 1)

    if not root.children:
        return "(no spans in trace)"
    for child in sorted(root.children.values(), key=lambda c: -c.total_us):
        walk(child, 0)
    return "\n".join(lines)


def tree_summary(root: SpanNode) -> dict:
    """JSON-able rollup (the form attached to ``BENCH_kernels.json``)."""

    def walk(node: SpanNode) -> dict:
        out: dict[str, Any] = {
            "count": node.count,
            "total_ms": round(node.total_us / 1e3, 3),
            "self_ms": round(node.self_us / 1e3, 3),
        }
        if node.children:
            out["children"] = {
                name: walk(child) for name, child in sorted(node.children.items())
            }
        return out

    return {name: walk(child) for name, child in sorted(root.children.items())}
