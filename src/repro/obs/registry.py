"""The process-wide metrics registry: counters, gauges, histograms.

The paper is an *experimental evaluation*: its claims are tables of
preprocessing times, index sizes and query times. Reproducing those
numbers is only half the job — explaining them needs the algorithmic
counters underneath (vertices settled, locality-filter hits, fold-regime
tallies), which is what this registry collects. Design constraints:

- **no samples stored** — latency histograms use fixed log-spaced
  buckets, so p50/p90/p99 are derivable by interpolation at O(buckets)
  memory regardless of how many observations land;
- **cheap when idle** — a counter increment is one dict-free attribute
  add; instruments are created once and cached by name;
- **JSON-able** — :meth:`MetricsRegistry.snapshot` emits a
  schema-versioned dict that the trace writer embeds verbatim and the
  ``repro-harness stats`` CLI renders;
- **mirrorable** — every instrument carries an optional *mirror* slot (a
  writable buffer handed out by :class:`repro.obs.shm.PlaneMirror`) so a
  forked worker can publish absolute values into shared memory on every
  write, letting the parent aggregate worker registries without any pipe
  traffic. Snapshots carry sparse bucket lists so two registries merge
  exactly (:meth:`MetricsRegistry.merge_snapshot`).

Everything here is stdlib-only so the hot core modules can import it
without dragging in numpy/scipy (or the rest of the package).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Iterator

#: Version of the snapshot dict layout (bump on incompatible change).
#: Schema 2 adds sparse ``"buckets"`` lists to histogram dicts, which is
#: what makes snapshots mergeable across processes.
METRICS_SCHEMA = 2

#: Histogram bucket boundaries: eight per decade from 1e-2 to 1e8 —
#: a 1.33x ratio, so interpolated quantiles carry at most ~15% relative
#: error, plenty for latency distributions spanning microseconds to
#: minutes. Values are unit-agnostic; span timers record microseconds.
_DECADES = range(-2, 8)
BUCKET_BOUNDS: tuple[float, ...] = tuple(
    10.0 ** (d + i / 8.0) for d in _DECADES for i in range(8)
) + (10.0 ** _DECADES.stop,)


class Counter:
    """A monotonically increasing integer.

    ``mirror``, when set, is a one-element writable int64 buffer (a
    shared-memory slice) that receives the absolute value on every
    increment — O(1), no serialization.
    """

    __slots__ = ("value", "mirror")

    def __init__(self) -> None:
        self.value = 0
        self.mirror = None

    def inc(self, n: int = 1) -> None:
        self.value += n
        m = self.mirror
        if m is not None:
            m[0] = self.value


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value", "mirror")

    def __init__(self) -> None:
        self.value = 0.0
        self.mirror = None

    def set(self, value: float) -> None:
        self.value = float(value)
        m = self.mirror
        if m is not None:
            m[0] = self.value


class Histogram:
    """Fixed-bucket histogram with exact count/sum/min/max.

    ``observe(v, n)`` folds ``n`` observations of value ``v`` in O(1);
    quantiles interpolate linearly inside the containing bucket, clamped
    by the exact min/max, so single-observation histograms report the
    exact value and heavy-tailed ones stay within the bucket ratio.
    """

    __slots__ = ("counts", "count", "total", "vmin", "vmax",
                 "mirror_counts", "mirror_stats")

    def __init__(self) -> None:
        self.counts = [0] * (len(BUCKET_BOUNDS) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf
        # Mirror buffers: counts row is len(self.counts) bucket words plus
        # one trailing total-count word (int64); stats is (sum, min, max)
        # as float64. Handed out by a PlaneMirror, None otherwise.
        self.mirror_counts = None
        self.mirror_stats = None

    def observe(self, value: float, n: int = 1) -> None:
        i = bisect_right(BUCKET_BOUNDS, value)
        self.counts[i] += n
        self.count += n
        self.total += value * n
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value
        mc = self.mirror_counts
        if mc is not None:
            mc[i] = self.counts[i]
            mc[len(self.counts)] = self.count
            ms = self.mirror_stats
            ms[0] = self.total
            ms[1] = self.vmin
            ms[2] = self.vmax

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (exact: bucket-wise add)."""
        counts = self.counts
        for i, c in enumerate(other.counts):
            if c:
                counts[i] += c
        self.count += other.count
        self.total += other.total
        if other.vmin < self.vmin:
            self.vmin = other.vmin
        if other.vmax > self.vmax:
            self.vmax = other.vmax
        mc = self.mirror_counts
        if mc is not None:
            for i, c in enumerate(counts):
                mc[i] = c
            mc[len(counts)] = self.count
            ms = self.mirror_stats
            ms[0] = self.total
            ms[1] = self.vmin
            ms[2] = self.vmax

    @classmethod
    def from_dict(cls, d: dict) -> "Histogram":
        """Rebuild a histogram from an :meth:`as_dict` snapshot.

        Needs the sparse ``"buckets"`` list (schema >= 2); raises
        :class:`ValueError` for non-empty schema-1 dicts, which recorded
        only derived quantiles and cannot be merged exactly.
        """
        h = cls()
        count = int(d.get("count") or 0)
        if count == 0:
            return h
        buckets = d.get("buckets")
        if buckets is None:
            raise ValueError(
                "histogram snapshot lacks bucket data (schema < "
                f"{METRICS_SCHEMA}); cannot merge"
            )
        for i, c in buckets:
            h.counts[int(i)] = int(c)
        h.count = count
        h.total = float(d.get("sum") or 0.0)
        vmin = d.get("min")
        vmax = d.get("max")
        h.vmin = math.inf if vmin is None else float(vmin)
        h.vmax = -math.inf if vmax is None else float(vmax)
        return h

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Interpolated quantile in [0, 1]; NaN when empty."""
        if self.count == 0:
            return math.nan
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            if seen + c >= rank:
                lo = BUCKET_BOUNDS[i - 1] if i > 0 else 0.0
                hi = (
                    BUCKET_BOUNDS[i]
                    if i < len(BUCKET_BOUNDS)
                    else max(self.vmax, lo)
                )
                frac = (rank - seen) / c
                est = lo + (hi - lo) * frac
                return min(max(est, self.vmin), self.vmax)
            seen += c
        return self.vmax

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p90(self) -> float:
        return self.quantile(0.90)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.vmin if self.count else None,
            "max": self.vmax if self.count else None,
            "mean": self.mean if self.count else None,
            "p50": self.p50 if self.count else None,
            "p90": self.p90 if self.count else None,
            "p99": self.p99 if self.count else None,
            # Sparse non-zero buckets: what makes snapshots mergeable.
            "buckets": [[i, c] for i, c in enumerate(self.counts) if c],
        }


class MetricsRegistry:
    """Named instruments, created on first use and cached forever.

    Names are dotted paths (``tnr.locality.table_hits``); the renderers
    sort by name so related instruments group naturally.
    """

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}
        self._mirror = None

    # -- instrument accessors (create-or-get) ---------------------------
    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter()
            if self._mirror is not None:
                c.mirror = self._mirror.attach_counter(name, 0)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge()
            if self._mirror is not None:
                g.mirror = self._mirror.attach_gauge(name, 0.0)
        return g

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram()
            if self._mirror is not None:
                h.mirror_counts, h.mirror_stats = (
                    self._mirror.attach_histogram(name, h)
                )
        return h

    # -- shared-memory mirroring -----------------------------------------
    def set_mirror(self, mirror) -> None:
        """Install (or remove, with ``None``) a shared-memory mirror.

        The mirror duck-type is :class:`repro.obs.shm.PlaneMirror`:
        ``attach_counter(name, value)`` / ``attach_gauge(name, value)``
        return a one-element writable buffer (or None when the plane is
        full), ``attach_histogram(name, hist)`` returns a
        ``(counts, stats)`` buffer pair, and ``on_reset()`` zeroes the
        plane. Existing instruments are re-attached immediately;
        instruments created later attach on creation.
        """
        self._mirror = mirror
        for name, c in self.counters.items():
            c.mirror = (
                mirror.attach_counter(name, c.value)
                if mirror is not None else None
            )
        for name, g in self.gauges.items():
            g.mirror = (
                mirror.attach_gauge(name, g.value)
                if mirror is not None else None
            )
        for name, h in self.histograms.items():
            if mirror is not None:
                h.mirror_counts, h.mirror_stats = (
                    mirror.attach_histogram(name, h)
                )
            else:
                h.mirror_counts = None
                h.mirror_stats = None

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` dict into this registry.

        Counters add, gauges take the incoming value (last write wins),
        histograms merge bucket-wise. Non-empty histograms without
        bucket data (schema-1 snapshots) raise :class:`ValueError`.
        """
        if not isinstance(snapshot, dict):
            raise ValueError(f"not a metrics snapshot: {snapshot!r}")
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, d in snapshot.get("histograms", {}).items():
            h = self.histogram(name)
            if d.get("count"):
                try:
                    h.merge(Histogram.from_dict(d))
                except ValueError as exc:
                    raise ValueError(f"histogram {name!r}: {exc}") from None

    # -- bulk operations -------------------------------------------------
    def add_counters(self, prefix: str, values: dict[str, int]) -> None:
        """Fold a ``{name: delta}`` mapping under ``prefix.``."""
        for name, delta in values.items():
            self.counter(f"{prefix}.{name}").inc(int(delta))

    def counter_values(self, prefix: str = "") -> dict[str, int]:
        """``{name: value}`` of every counter under ``prefix``."""
        return {
            name: c.value
            for name, c in self.counters.items()
            if name.startswith(prefix)
        }

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        if self._mirror is not None:
            self._mirror.on_reset()

    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges) + len(self.histograms)

    # -- output ----------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-able dump of every instrument (schema-versioned)."""
        return {
            "schema": METRICS_SCHEMA,
            "counters": {k: self.counters[k].value for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k].value for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].as_dict() for k in sorted(self.histograms)
            },
        }

    def render(self) -> str:
        """Aligned ASCII table of the registry (``repro-harness stats``)."""
        return render_snapshot(self.snapshot())


def _fmt(value: float | None) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    if isinstance(value, float) and math.isinf(value):
        return str(value)
    if abs(value) >= 1e6:
        # Engineering notation (exponent a multiple of 3) keeps
        # microsecond sums readable: 12345678 -> "12.35e6".
        exp = int(math.floor(math.log10(abs(value)))) // 3 * 3
        return f"{value / 10 ** exp:.4g}e{exp}"
    if value == int(value):
        return str(int(value))
    return f"{value:.1f}"


def _rows(snapshot: dict) -> Iterator[tuple[str, str, str]]:
    for name, value in snapshot.get("counters", {}).items():
        yield name, "counter", _fmt(value)
    for name, value in snapshot.get("gauges", {}).items():
        yield name, "gauge", _fmt(value)
    for name, h in snapshot.get("histograms", {}).items():
        detail = (
            f"count={h['count']} mean={_fmt(h.get('mean'))} "
            f"min={_fmt(h.get('min'))} p50={_fmt(h.get('p50'))} "
            f"p90={_fmt(h.get('p90'))} p99={_fmt(h.get('p99'))} "
            f"max={_fmt(h.get('max'))}"
        )
        yield name, "histogram", detail


def render_snapshot(snapshot: dict) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict as an ASCII table."""
    rows = list(_rows(snapshot))
    if not rows:
        return "(registry is empty)"
    name_w = max(len(r[0]) for r in rows)
    kind_w = max(len(r[1]) for r in rows)
    return "\n".join(
        f"{name:<{name_w}}  {kind:<{kind_w}}  {detail}"
        for name, kind, detail in rows
    )


def _prom_name(name: str, prefix: str) -> str:
    safe = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"{prefix}_{safe}"


def _prom_num(value: float) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)


def to_prometheus(snapshot: dict, prefix: str = "repro") -> str:
    """Render a snapshot dict in the Prometheus text exposition format.

    Histograms emit cumulative ``_bucket{le="..."}`` series from the
    sparse bucket lists plus ``_sum``/``_count``; schema-1 histogram
    dicts (no buckets) degrade to ``_sum``/``_count`` only.
    """
    lines: list[str] = []
    for name in sorted(snapshot.get("counters", {})):
        pn = _prom_name(name, prefix)
        lines.append(f"# TYPE {pn} counter")
        lines.append(f"{pn} {_prom_num(snapshot['counters'][name])}")
    for name in sorted(snapshot.get("gauges", {})):
        pn = _prom_name(name, prefix)
        lines.append(f"# TYPE {pn} gauge")
        lines.append(f"{pn} {_prom_num(snapshot['gauges'][name])}")
    for name in sorted(snapshot.get("histograms", {})):
        h = snapshot["histograms"][name]
        pn = _prom_name(name, prefix)
        lines.append(f"# TYPE {pn} histogram")
        buckets = h.get("buckets")
        if buckets is not None:
            sparse = {int(i): int(c) for i, c in buckets}
            cum = 0
            for i, bound in enumerate(BUCKET_BOUNDS):
                c = sparse.get(i)
                if c:
                    cum += c
                    lines.append(
                        f'{pn}_bucket{{le="{_prom_num(bound)}"}} {cum}'
                    )
            lines.append(f'{pn}_bucket{{le="+Inf"}} {h["count"]}')
        lines.append(f"{pn}_sum {_prom_num(h.get('sum', 0.0))}")
        lines.append(f"{pn}_count {h.get('count', 0)}")
    return "\n".join(lines) + "\n"
