"""The process-wide metrics registry: counters, gauges, histograms.

The paper is an *experimental evaluation*: its claims are tables of
preprocessing times, index sizes and query times. Reproducing those
numbers is only half the job — explaining them needs the algorithmic
counters underneath (vertices settled, locality-filter hits, fold-regime
tallies), which is what this registry collects. Design constraints:

- **no samples stored** — latency histograms use fixed log-spaced
  buckets, so p50/p90/p99 are derivable by interpolation at O(buckets)
  memory regardless of how many observations land;
- **cheap when idle** — a counter increment is one dict-free attribute
  add; instruments are created once and cached by name;
- **JSON-able** — :meth:`MetricsRegistry.snapshot` emits a
  schema-versioned dict that the trace writer embeds verbatim and the
  ``repro-harness stats`` CLI renders.

Everything here is stdlib-only so the hot core modules can import it
without dragging in numpy/scipy (or the rest of the package).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Iterator

#: Version of the snapshot dict layout (bump on incompatible change).
METRICS_SCHEMA = 1

#: Histogram bucket boundaries: eight per decade from 1e-2 to 1e8 —
#: a 1.33x ratio, so interpolated quantiles carry at most ~15% relative
#: error, plenty for latency distributions spanning microseconds to
#: minutes. Values are unit-agnostic; span timers record microseconds.
_DECADES = range(-2, 8)
BUCKET_BOUNDS: tuple[float, ...] = tuple(
    10.0 ** (d + i / 8.0) for d in _DECADES for i in range(8)
) + (10.0 ** _DECADES.stop,)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with exact count/sum/min/max.

    ``observe(v, n)`` folds ``n`` observations of value ``v`` in O(1);
    quantiles interpolate linearly inside the containing bucket, clamped
    by the exact min/max, so single-observation histograms report the
    exact value and heavy-tailed ones stay within the bucket ratio.
    """

    __slots__ = ("counts", "count", "total", "vmin", "vmax")

    def __init__(self) -> None:
        self.counts = [0] * (len(BUCKET_BOUNDS) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf

    def observe(self, value: float, n: int = 1) -> None:
        self.counts[bisect_right(BUCKET_BOUNDS, value)] += n
        self.count += n
        self.total += value * n
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Interpolated quantile in [0, 1]; NaN when empty."""
        if self.count == 0:
            return math.nan
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            if seen + c >= rank:
                lo = BUCKET_BOUNDS[i - 1] if i > 0 else 0.0
                hi = (
                    BUCKET_BOUNDS[i]
                    if i < len(BUCKET_BOUNDS)
                    else max(self.vmax, lo)
                )
                frac = (rank - seen) / c
                est = lo + (hi - lo) * frac
                return min(max(est, self.vmin), self.vmax)
            seen += c
        return self.vmax

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p90(self) -> float:
        return self.quantile(0.90)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.vmin if self.count else None,
            "max": self.vmax if self.count else None,
            "mean": self.mean if self.count else None,
            "p50": self.p50 if self.count else None,
            "p90": self.p90 if self.count else None,
            "p99": self.p99 if self.count else None,
        }


class MetricsRegistry:
    """Named instruments, created on first use and cached forever.

    Names are dotted paths (``tnr.locality.table_hits``); the renderers
    sort by name so related instruments group naturally.
    """

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- instrument accessors (create-or-get) ---------------------------
    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram()
        return h

    # -- bulk operations -------------------------------------------------
    def add_counters(self, prefix: str, values: dict[str, int]) -> None:
        """Fold a ``{name: delta}`` mapping under ``prefix.``."""
        for name, delta in values.items():
            self.counter(f"{prefix}.{name}").inc(int(delta))

    def counter_values(self, prefix: str = "") -> dict[str, int]:
        """``{name: value}`` of every counter under ``prefix``."""
        return {
            name: c.value
            for name, c in self.counters.items()
            if name.startswith(prefix)
        }

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()

    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges) + len(self.histograms)

    # -- output ----------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-able dump of every instrument (schema-versioned)."""
        return {
            "schema": METRICS_SCHEMA,
            "counters": {k: self.counters[k].value for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k].value for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].as_dict() for k in sorted(self.histograms)
            },
        }

    def render(self) -> str:
        """Aligned ASCII table of the registry (``repro-harness stats``)."""
        return render_snapshot(self.snapshot())


def _fmt(value: float | None) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.1f}"


def _rows(snapshot: dict) -> Iterator[tuple[str, str, str]]:
    for name, value in snapshot.get("counters", {}).items():
        yield name, "counter", _fmt(value)
    for name, value in snapshot.get("gauges", {}).items():
        yield name, "gauge", _fmt(value)
    for name, h in snapshot.get("histograms", {}).items():
        detail = (
            f"count={h['count']} mean={_fmt(h.get('mean'))} "
            f"p50={_fmt(h.get('p50'))} p90={_fmt(h.get('p90'))} "
            f"p99={_fmt(h.get('p99'))} max={_fmt(h.get('max'))}"
        )
        yield name, "histogram", detail


def render_snapshot(snapshot: dict) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict as an ASCII table."""
    rows = list(_rows(snapshot))
    if not rows:
        return "(registry is empty)"
    name_w = max(len(r[0]) for r in rows)
    kind_w = max(len(r[1]) for r in rows)
    return "\n".join(
        f"{name:<{name_w}}  {kind:<{kind_w}}  {detail}"
        for name, kind, detail in rows
    )
