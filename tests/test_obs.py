"""The observability layer: registry, spans, traces, and counter parity.

The differential suite at the bottom is the load-bearing part: the CSR
kernels and the legacy ``_*_py`` loops must not only agree on answers
(tests/test_csr_kernels.py) but on the *algorithmic counters* — settled
vertices and heap pushes — so instrumented runs are comparable across
dispatch modes.
"""

from __future__ import annotations

import json
import math
import re

import pytest

from repro import obs
from repro.core.dijkstra import dijkstra_distance
from repro.harness.cli import main as cli_main
from repro.obs.registry import (
    BUCKET_BOUNDS,
    Histogram,
    MetricsRegistry,
    render_snapshot,
    to_prometheus,
)
from repro.obs.shm import MetricsPlane, PlaneMirror
from repro.obs.trace import read_trace, rollup, render_tree, tree_summary

from tests.conftest import random_pairs


@pytest.fixture()
def obs_on():
    """Enable instrumentation on a clean registry; restore after."""
    was = obs.ENABLED
    obs.reset()
    obs.set_enabled(True)
    yield obs.registry()
    obs.set_enabled(was)
    obs.reset()


class TestRegistry:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        reg.counter("a.b").inc()
        reg.counter("a.b").inc(4)
        reg.gauge("g").set(2.5)
        assert reg.counter("a.b").value == 5
        assert reg.gauge("g").value == 2.5
        assert reg.counter("a.b") is reg.counter("a.b")

    def test_add_counters_and_prefix_query(self):
        reg = MetricsRegistry()
        reg.add_counters("ch.query", {"settled": 7, "stalls": 2})
        reg.add_counters("ch.query", {"settled": 3})
        assert reg.counter_values("ch.query") == {
            "ch.query.settled": 10,
            "ch.query.stalls": 2,
        }

    def test_histogram_exact_single_observation(self):
        h = Histogram()
        h.observe(42.0)
        assert h.count == 1
        assert h.mean == 42.0
        # min/max clamping makes a single observation exact at every q.
        assert h.p50 == h.p90 == h.p99 == 42.0

    def test_histogram_quantiles_within_bucket_ratio(self):
        h = Histogram()
        for v in range(1, 101):
            h.observe(float(v))
        # True p50 is ~50; buckets are 1.33x wide so the interpolated
        # estimate must land within one bucket ratio of the truth.
        assert 50 / 1.34 <= h.quantile(0.5) <= 50 * 1.34
        assert h.quantile(1.0) == 100.0
        assert h.quantile(0.0) >= 1.0

    def test_histogram_empty_is_nan(self):
        h = Histogram()
        assert math.isnan(h.mean)
        assert math.isnan(h.p50)
        assert h.as_dict()["min"] is None

    def test_histogram_weighted_observe(self):
        h = Histogram()
        h.observe(10.0, n=5)
        assert h.count == 5 and h.total == 50.0

    def test_bucket_bounds_monotonic(self):
        assert list(BUCKET_BOUNDS) == sorted(BUCKET_BOUNDS)
        assert len(set(BUCKET_BOUNDS)) == len(BUCKET_BOUNDS)

    def test_snapshot_and_render(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.histogram("h").observe(5.0)
        snap = reg.snapshot()
        assert snap["schema"] == 2
        assert snap["counters"] == {"c": 3}
        # Schema 2: histograms carry their sparse buckets, so snapshots
        # from different processes can be merged loss-free.
        assert snap["histograms"]["h"]["buckets"]
        json.dumps(snap)  # snapshot must be JSON-able as-is
        rendered = reg.render()
        assert "c" in rendered and "histogram" in rendered
        assert MetricsRegistry().render() == "(registry is empty)"

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.reset()
        assert len(reg) == 0


class TestSpans:
    def test_disabled_span_is_shared_noop(self):
        obs.set_enabled(False)
        s1 = obs.span("a")
        s2 = obs.span("b")
        assert s1 is s2  # the shared no-op singleton: zero allocation

    def test_span_rolls_up_into_registry(self, obs_on):
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        assert obs_on.histogram("span.outer").count == 1
        assert obs_on.histogram("span.inner").count == 1

    def test_nesting_paths(self, obs_on, tmp_path):
        trace_file = tmp_path / "run.jsonl"
        obs.start_trace(trace_file)
        with obs.span("build"):
            with obs.span("phase"):
                pass
            with obs.span("phase"):
                pass
        obs.stop_trace()
        events = read_trace(trace_file)
        spans = [e for e in events if e["t"] == "span"]
        # Children exit before the parent; same-path spans both recorded.
        assert [s["path"] for s in spans] == [
            "build/phase", "build/phase", "build",
        ]
        assert spans[0]["depth"] == 1 and spans[-1]["depth"] == 0


class TestTrace:
    def _write_trace(self, tmp_path):
        trace_file = tmp_path / "run.jsonl"
        obs.start_trace(trace_file)
        obs.registry().counter("demo.counter").inc(9)
        with obs.span("build"):
            with obs.span("contract"):
                pass
        with obs.span("serve"):
            pass
        obs.stop_trace()
        return trace_file

    def test_roundtrip_with_metrics(self, obs_on, tmp_path):
        trace_file = self._write_trace(tmp_path)
        events = read_trace(trace_file)
        assert events[0]["t"] == "header" and events[0]["schema"] == 1
        from repro.obs.trace import trace_metrics

        snapshot = trace_metrics(events)
        assert snapshot["counters"]["demo.counter"] == 9

    def test_rollup_tree(self, obs_on, tmp_path):
        events = read_trace(self._write_trace(tmp_path))
        root = rollup(events)
        assert set(root.children) == {"build", "serve"}
        build = root.children["build"]
        assert set(build.children) == {"contract"}
        assert build.self_us >= 0.0
        assert build.total_us >= build.children["contract"].total_us
        rendered = render_tree(root)
        assert "contract" in rendered and "self" in rendered
        summary = tree_summary(root)
        assert summary["build"]["children"]["contract"]["count"] == 1
        json.dumps(summary)

    def test_torn_tail_is_skipped(self, obs_on, tmp_path):
        trace_file = self._write_trace(tmp_path)
        with open(trace_file, "a", encoding="utf-8") as fh:
            fh.write('{"t": "span", "name": "torn')  # crashed writer
        events = read_trace(trace_file)
        assert all("torn" not in str(e.get("name", "")) for e in events)

    def test_rejects_non_trace_files(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("this is not json\n")
        with pytest.raises(ValueError, match="bad header"):
            read_trace(bad)
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_trace(empty)
        skewed = tmp_path / "skew.jsonl"
        skewed.write_text('{"t": "header", "schema": 999}\n')
        with pytest.raises(ValueError, match="schema"):
            read_trace(skewed)


class TestCounterParity:
    """Settled/heap-push counts must agree between CSR and legacy paths.

    Pushes happen only on strict distance improvement on both sides, so
    every vertex carries at most one heap entry with its final label —
    the kernel's lazy-deletion pops and the legacy settled-set pops
    then biject (ROADMAP: the differential control checks counters,
    not just answers).
    """

    def _point_counters(self, monkeypatch, mode_env, graph, pairs):
        monkeypatch.setenv(mode_env, "1")
        obs.reset()
        obs.set_enabled(True)
        results = [dijkstra_distance(graph, s, t) for s, t in pairs]
        counters = obs.registry().counter_values("dijkstra.point")
        monkeypatch.delenv(mode_env)
        return results, counters

    def test_point_query_parity(self, monkeypatch, co_tiny, rng):
        pairs = random_pairs(co_tiny, rng, 25) + [(0, 0), (1, 1)]
        try:
            d_csr, c_csr = self._point_counters(
                monkeypatch, "REPRO_FORCE_CSR", co_tiny, pairs
            )
            d_py, c_py = self._point_counters(
                monkeypatch, "REPRO_NO_CSR", co_tiny, pairs
            )
        finally:
            obs.set_enabled(False)
            obs.reset()
        assert d_csr == d_py
        assert c_csr["dijkstra.point.queries"] == len(pairs)
        assert c_csr == c_py  # settled AND heap_pushes, exactly
        assert c_csr["dijkstra.point.settled"] > 0
        assert c_csr["dijkstra.point.heap_pushes"] > 0

    def test_disabled_records_nothing(self, monkeypatch, co_tiny):
        obs.reset()
        obs.set_enabled(False)
        dijkstra_distance(co_tiny, 0, co_tiny.n - 1)
        assert obs.registry().counter_values("dijkstra.point") == {}


class TestWiring:
    """Spot-checks that build/query layers actually feed the registry."""

    def test_ch_query_counters(self, obs_on, ch_co):
        ch_co.distance(0, ch_co.graph.n - 1)
        values = obs_on.counter_values("ch.query")
        assert values["ch.query.queries"] == 1
        assert values["ch.query.settled"] == ch_co.last_settled > 0

    def test_bidijkstra_counters(self, obs_on, bidij_co):
        bidij_co.distance(1, bidij_co.graph.n - 2)
        values = obs_on.counter_values("bidijkstra")
        assert values["bidijkstra.queries"] == 1
        assert values["bidijkstra.settled"] == bidij_co.last_settled > 0

    def test_tnr_locality_counters(self, obs_on, tnr_co):
        n = tnr_co.graph.n
        for s, t in [(0, n - 1), (1, n - 2), (2, 3)]:
            tnr_co.distance(s, t)
        values = obs_on.counter_values("tnr.locality")
        assert sum(values.values()) == 3
        assert values.get("tnr.locality.table_hits", 0) >= 1  # (0, n-1) is far
        assert values.get("tnr.locality.fallback", 0) >= 1    # (2, 3) is near

    def test_build_spans_cover_five_techniques(self, obs_on, de_tiny, tmp_path):
        from repro.core.bidirectional import BidirectionalDijkstra
        from repro.core.ch import ContractionHierarchy
        from repro.core.pcpd.index import build_pcpd
        from repro.core.silc import build_silc
        from repro.core.tnr import build_tnr

        trace_file = tmp_path / "pipeline.jsonl"
        obs.start_trace(trace_file)
        BidirectionalDijkstra(de_tiny)
        ch = ContractionHierarchy.build(de_tiny)
        build_tnr(de_tiny, ch, 8)
        build_silc(de_tiny, workers=0)
        build_pcpd(de_tiny, workers=0)
        obs.stop_trace()

        root = rollup(read_trace(trace_file))
        top = set(root.children)
        for phase in ("bidijkstra.setup", "ch.build", "tnr.build",
                      "silc.build", "pcpd.build"):
            assert phase in top, f"missing build span {phase}"
        assert "tnr.table" in root.children["tnr.build"].children
        assert "pcpd.apsp" in root.children["pcpd.build"].children
        counters = obs_on.counter_values("")
        assert counters["ch.build.runs"] == 1
        assert counters["silc.build.runs"] == 1
        assert counters["pcpd.build.pairs"] > 0

    def test_serve_histograms(self, obs_on, ch_co):
        from repro.harness.experiments import batched_distances

        pairs = [(0, 5), (1, 5), (0, 7), (2, 9)]
        batched_distances(ch_co, pairs, batch_size=2)
        reg = obs_on
        assert reg.counter("serve.pairs").value == 4
        assert reg.counter("serve.batches").value == 2
        assert reg.histogram("serve.batch_us").count == 2
        assert reg.histogram("serve.request_us").count == 4
        # Batch 1 repeats source 0: one source sweep saved.
        assert reg.counter("serve.dedup_saved").value >= 1

    def test_cache_counters_mirrored(self, obs_on, tmp_path):
        from repro.harness.cache import MISSING, DiskCache

        cache = DiskCache(tmp_path / "c")
        assert cache.load(("k",)) is MISSING
        cache.store(("k",), {"v": 1})
        assert cache.load(("k",)) == {"v": 1}
        values = obs_on.counter_values("cache")
        assert values["cache.misses"] == 1
        assert values["cache.hits"] == 1
        assert values["cache.writes"] == 1


class TestObsCLI:
    @pytest.fixture()
    def trace_file(self, obs_on, tmp_path, ch_co):
        from repro.harness.experiments import batched_distances

        path = tmp_path / "run.jsonl"
        obs.start_trace(path)
        batched_distances(ch_co, [(0, 5), (1, 7)])
        obs.stop_trace()
        return path

    def test_trace_subcommand_renders_tree(self, trace_file, capsys):
        assert cli_main(["trace", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "serve.batched" in out and "self" in out

    def test_trace_subcommand_json(self, trace_file, capsys):
        assert cli_main(["trace", str(trace_file), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["serve.batched"]["count"] == 1

    def test_trace_subcommand_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "nope.jsonl"
        bad.write_text("garbage\n")
        assert cli_main(["trace", str(bad)]) == 1
        err = capsys.readouterr().err.strip()
        assert err.startswith("error:") and len(err.splitlines()) == 1

    def test_stats_from_trace(self, trace_file, capsys):
        assert cli_main(["stats", "--trace", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "serve.pairs" in out
        assert cli_main(["stats", "--trace", str(trace_file), "--json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["counters"]["serve.pairs"] == 2

    def test_stats_live_registry(self, obs_on, tmp_path, capsys):
        obs.registry().counter("demo.live").inc(3)
        assert cli_main(["stats", "--cache", str(tmp_path / "none")]) == 0
        assert "demo.live" in capsys.readouterr().out


class TestServeErrorPaths:
    """`repro-harness serve` must fail with one-line diagnostics."""

    def _err_lines(self, capsys):
        err = capsys.readouterr().err.strip()
        return err.splitlines()

    def test_unknown_technique(self, capsys):
        assert cli_main(["serve", "--technique", "warp"]) == 2
        lines = self._err_lines(capsys)
        assert len(lines) == 1
        assert "unknown technique 'warp'" in lines[0]

    def test_unknown_dataset(self, capsys):
        assert cli_main(["serve", "--dataset", "Atlantis",
                         "--tier", "tiny"]) == 2
        lines = self._err_lines(capsys)
        assert len(lines) == 1 and "unknown dataset" in lines[0]

    def test_malformed_pair_file(self, tmp_path, capsys):
        bad = tmp_path / "pairs.txt"
        bad.write_text("1 2\n3 four\n")
        assert cli_main(["serve", "--tier", "tiny",
                         "--pair-file", str(bad)]) == 2
        lines = self._err_lines(capsys)
        assert len(lines) == 1
        assert f"{bad}:2" in lines[0] and "non-integer" in lines[0]

    def test_pair_file_wrong_arity(self, tmp_path, capsys):
        bad = tmp_path / "pairs.txt"
        bad.write_text("1 2 3\n")
        assert cli_main(["serve", "--tier", "tiny",
                         "--pair-file", str(bad)]) == 2
        assert "expected 'source target'" in self._err_lines(capsys)[0]

    def test_missing_pair_file(self, tmp_path, capsys):
        assert cli_main(["serve", "--tier", "tiny",
                         "--pair-file", str(tmp_path / "nope.txt")]) == 2
        assert "cannot read pair file" in self._err_lines(capsys)[0]

    def test_empty_batch(self, tmp_path, capsys):
        empty = tmp_path / "pairs.txt"
        empty.write_text("# nothing but comments\n\n")
        assert cli_main(["serve", "--tier", "tiny",
                         "--pair-file", str(empty)]) == 1
        lines = self._err_lines(capsys)
        assert len(lines) == 1 and "empty batch" in lines[0]

    def test_out_of_range_pair(self, tmp_path, capsys):
        pairs = tmp_path / "pairs.txt"
        pairs.write_text("0 999999\n")
        assert cli_main(["serve", "--tier", "tiny",
                         "--pair-file", str(pairs)]) == 2
        assert "out of range" in self._err_lines(capsys)[0]

    def test_pair_file_happy_path(self, tmp_path, capsys):
        pairs = tmp_path / "pairs.txt"
        pairs.write_text("0 5\n1 3  # comment\n0 5\n")
        assert cli_main(["serve", "--tier", "tiny",
                         "--pair-file", str(pairs), "--check"]) == 0
        out = capsys.readouterr().out
        assert "served 3 pairs" in out and "answers identical" in out


class TestHistogramMerge:
    """Histogram.merge / merge_snapshot: exact bucket-wise aggregation."""

    def _filled(self, values):
        h = Histogram()
        for v in values:
            h.observe(v)
        return h

    def test_merge_equals_concatenation(self, rng):
        a_vals = [rng.uniform(0.5, 1e5) for _ in range(500)]
        b_vals = [rng.uniform(10.0, 1e7) for _ in range(300)]
        a = self._filled(a_vals)
        a.merge(self._filled(b_vals))
        whole = self._filled(a_vals + b_vals)
        assert a.counts == whole.counts
        assert a.count == whole.count
        assert a.total == pytest.approx(whole.total)
        assert a.vmin == whole.vmin and a.vmax == whole.vmax
        # Merged quantiles are *identical* to the single histogram of
        # the concatenated stream at every q...
        for q in (0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 1.0):
            assert a.quantile(q) == whole.quantile(q)
        # ...and within one bucket ratio (8 buckets/decade => 10^(1/8)
        # ~ 1.334) of the true sample quantile.
        ratio = 10 ** (1 / 8) * 1.001
        ordered = sorted(a_vals + b_vals)
        for q in (0.25, 0.5, 0.9, 0.99):
            true = ordered[min(int(q * len(ordered)), len(ordered) - 1)]
            assert true / ratio <= a.quantile(q) <= true * ratio

    def test_merge_empty_cases(self):
        empty = Histogram()
        empty.merge(Histogram())
        assert empty.count == 0 and math.isnan(empty.p50)
        empty.merge(self._filled([3.0, 4.0]))  # empty += filled
        assert empty.count == 2 and empty.vmin == 3.0 and empty.vmax == 4.0
        filled = self._filled([5.0])
        filled.merge(Histogram())  # filled += empty is a no-op
        assert filled.count == 1 and filled.p50 == 5.0

    def test_nan_observation_lands_in_overflow_bucket(self):
        # bisect_right(bounds, nan) returns len(bounds): NaN falls into
        # the overflow bucket; min/max are untouched (NaN comparisons
        # are all false). Pinned so a refactor can't silently change it.
        h = Histogram()
        h.observe(math.nan)
        assert h.count == 1
        assert h.counts[-1] == 1
        assert h.vmin == math.inf and h.vmax == -math.inf

    def test_from_dict_roundtrip_and_schema1_rejection(self):
        h = self._filled([1.0, 10.0, 100.0])
        clone = Histogram.from_dict(h.as_dict())
        assert clone.counts == h.counts
        assert clone.total == h.total
        assert clone.vmin == h.vmin and clone.vmax == h.vmax
        assert Histogram.from_dict({"count": 0}).count == 0  # empty is fine
        with pytest.raises(ValueError, match="bucket"):
            Histogram.from_dict({"count": 5, "sum": 10.0})  # schema-1 dict

    def test_registry_merge_snapshot(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        b.counter("only_b").inc()
        a.gauge("g").set(1.0)
        b.gauge("g").set(7.0)
        a.histogram("h").observe(5.0)
        b.histogram("h").observe(50.0)
        a.merge_snapshot(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"] == {"c": 5, "only_b": 1}
        assert snap["gauges"]["g"] == 7.0  # last write wins
        assert snap["histograms"]["h"]["count"] == 2
        assert snap["histograms"]["h"]["min"] == 5.0
        assert snap["histograms"]["h"]["max"] == 50.0

    def test_merge_snapshot_rejects_schema1_histograms(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="'h'"):
            reg.merge_snapshot(
                {"histograms": {"h": {"count": 3, "sum": 1.0}}}
            )


class TestRenderAndProm:
    def test_histogram_row_includes_min(self):
        reg = MetricsRegistry()
        reg.histogram("h").observe(2.0)
        reg.histogram("h").observe(8.0)
        assert "min=2 " in reg.render()

    def test_engineering_notation_for_large_values(self):
        reg = MetricsRegistry()
        reg.counter("big").inc(12345678)
        reg.histogram("h").observe(2.5e9)
        rendered = reg.render()
        assert "12.35e6" in rendered   # exponent is a multiple of 3
        assert "2.5e9" in rendered
        # Infinities (an empty histogram's min/max never render, but a
        # merged gauge could carry one) must not hit log10.
        assert "inf" in render_snapshot({"gauges": {"g": math.inf}})

    def test_to_prometheus(self):
        reg = MetricsRegistry()
        reg.counter("serve.pairs").inc(4)
        reg.gauge("serve.worker.0.pid").set(123)
        h = reg.histogram("serve.e2e_us")
        h.observe(5.0)
        h.observe(50.0)
        text = to_prometheus(reg.snapshot())
        assert "# TYPE repro_serve_pairs counter\nrepro_serve_pairs 4" in text
        assert "repro_serve_worker_0_pid 123" in text
        assert "# TYPE repro_serve_e2e_us histogram" in text
        assert 'repro_serve_e2e_us_bucket{le="+Inf"} 2' in text
        assert "repro_serve_e2e_us_sum 55" in text
        assert "repro_serve_e2e_us_count 2" in text
        # Cumulative buckets: the le-bound covering 50 counts both.
        assert text.endswith("\n")

    def test_to_prometheus_schema1_degrades(self):
        text = to_prometheus(
            {"histograms": {"h": {"count": 3, "sum": 6.0}}}
        )
        assert "repro_h_sum 6" in text and "repro_h_count 3" in text
        assert "_bucket" not in text


class TestMetricsPlane:
    """The shared-memory worker metrics plane (repro.obs.shm)."""

    def test_roundtrip_through_foreign_attach(self):
        reg = MetricsRegistry()
        with MetricsPlane(f"rsv-test-{id(self):x}") as plane:
            plane.set_pid(4242)
            reg.set_mirror(PlaneMirror(plane))
            reg.counter("c").inc(7)
            reg.gauge("g").set(2.5)
            reg.histogram("h").observe(5.0)
            reg.histogram("h").observe(500.0)
            plane.note_batch()

            reader = MetricsPlane.attach(plane.entry, foreign=True)
            try:
                head = reader.header()
                assert head["pid"] == 4242
                assert head["batches"] == 1
                snap = reader.snapshot()
            finally:
                reader.close()
            assert snap["counters"] == {"c": 7}
            assert snap["gauges"] == {"g": 2.5}
            want = reg.histogram("h").as_dict()
            assert snap["histograms"]["h"] == want
            reg.set_mirror(None)

    def test_attach_before_and_after_instrument_creation(self):
        reg = MetricsRegistry()
        reg.counter("early").inc(3)  # exists before the mirror
        with MetricsPlane(f"rsv-test2-{id(self):x}") as plane:
            reg.set_mirror(PlaneMirror(plane))
            reg.counter("late").inc(4)  # created after the mirror
            snap = plane.snapshot()
            assert snap["counters"] == {"early": 3, "late": 4}
            reg.set_mirror(None)

    def test_full_table_drops_not_crashes(self):
        reg = MetricsRegistry()
        with MetricsPlane(
            f"rsv-test3-{id(self):x}", max_counters=2
        ) as plane:
            reg.set_mirror(PlaneMirror(plane))
            for i in range(4):
                reg.counter(f"c{i}").inc()
            head = plane.header()
            assert head["counters"] == 2
            assert head["dropped"] == 2  # overflow counted, not fatal
            assert len(plane.snapshot()["counters"]) == 2
            reg.set_mirror(None)

    def test_registry_reset_zeroes_the_plane(self):
        reg = MetricsRegistry()
        with MetricsPlane(f"rsv-test4-{id(self):x}") as plane:
            plane.set_pid(99)
            reg.set_mirror(PlaneMirror(plane))
            reg.counter("c").inc(5)
            reg.histogram("h").observe(1.0)
            reg.reset()
            snap = plane.snapshot()
            assert snap["counters"] == {} and snap["histograms"] == {}
            assert plane.header()["pid"] == 99  # identity survives reset
            reg.set_mirror(None)

    def test_attach_rejects_mismatched_entry(self):
        with MetricsPlane(f"rsv-test5-{id(self):x}") as plane:
            bad = dict(plane.entry, max_counters=9999)
            with pytest.raises(ValueError):
                MetricsPlane.attach(bad, foreign=True)


class TestStatsMergeCLI:
    def _worker_trace(self, tmp_path, name, pairs, latencies):
        path = tmp_path / name
        obs.start_trace(path)
        obs.registry().counter("labels.query.pairs").inc(pairs)
        for v in latencies:
            obs.registry().histogram("serve.e2e_us").observe(v)
        obs.stop_trace()
        obs.reset()
        return path

    def test_merge_two_worker_traces(self, obs_on, tmp_path, capsys):
        a = self._worker_trace(tmp_path, "w-1.jsonl", 30, [10.0, 20.0])
        b = self._worker_trace(tmp_path, "w-2.jsonl", 12, [30.0])
        assert cli_main(["stats", "--merge", str(a), str(b), "--json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["counters"]["labels.query.pairs"] == 42
        assert snap["histograms"]["serve.e2e_us"]["count"] == 3
        assert snap["histograms"]["serve.e2e_us"]["min"] == 10.0
        assert snap["histograms"]["serve.e2e_us"]["max"] == 30.0

    def test_merge_prom_output(self, obs_on, tmp_path, capsys):
        a = self._worker_trace(tmp_path, "w-1.jsonl", 5, [])
        assert cli_main(["stats", "--merge", str(a), "--prom"]) == 0
        assert "repro_labels_query_pairs 5" in capsys.readouterr().out

    def test_merge_and_trace_are_exclusive(self, tmp_path, capsys):
        assert cli_main(
            ["stats", "--merge", "a.jsonl", "--trace", "b.jsonl"]
        ) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_merge_missing_file_errors_cleanly(self, tmp_path, capsys):
        missing = tmp_path / "gone.jsonl"
        assert cli_main(["stats", "--merge", str(missing)]) == 1
        err = capsys.readouterr().err.strip()
        assert err.startswith("error:") and len(err.splitlines()) == 1


# ----------------------------------------------------------------------
# Prometheus exposition-format grammar
# ----------------------------------------------------------------------
# A scraper parses `stats --prom` with the exposition grammar, not with
# substring matches — so the tests here validate the whole output
# against that grammar (metric/label name charsets, sample line shape,
# cumulative `le` buckets with a `+Inf` terminal), catching the classes
# of breakage a "this substring appears" test never would.
_PROM_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_PROM_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_PROM_TYPE_LINE = re.compile(
    r"^# TYPE (?P<name>\S+) (?P<kind>counter|gauge|histogram|summary|untyped)$"
)
_PROM_SAMPLE = re.compile(
    r"^(?P<name>[^{ ]+)(?:\{(?P<labels>[^}]*)\})? (?P<value>\S+)$"
)
_PROM_LABEL_PAIR = re.compile(r'^(?P<key>[^=]+)="(?P<val>[^"\\]*)"$')


def _prom_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)  # accepts "NaN"; raises on garbage


def parse_exposition(text: str):
    """Parse ``text`` strictly; asserts on any grammar violation.

    Returns ``(types, samples)`` — the ``{metric: kind}`` map from the
    ``# TYPE`` comments and the ``[(name, labels, value)]`` sample list.
    """
    assert text.endswith("\n"), "exposition must end with a newline"
    types: dict[str, str] = {}
    samples: list[tuple[str, dict[str, str], float]] = []
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            continue
        assert line == line.strip(), f"line {lineno}: stray whitespace"
        if line.startswith("#"):
            m = _PROM_TYPE_LINE.match(line)
            assert m, f"line {lineno}: malformed comment: {line!r}"
            name = m["name"]
            assert _PROM_METRIC_NAME.match(name), \
                f"line {lineno}: bad metric name {name!r}"
            assert name not in types, f"line {lineno}: duplicate TYPE {name}"
            types[name] = m["kind"]
            continue
        m = _PROM_SAMPLE.match(line)
        assert m, f"line {lineno}: malformed sample: {line!r}"
        name = m["name"]
        assert _PROM_METRIC_NAME.match(name), \
            f"line {lineno}: bad metric name {name!r}"
        labels: dict[str, str] = {}
        if m["labels"]:
            for pair in m["labels"].split(","):
                pm = _PROM_LABEL_PAIR.match(pair)
                assert pm, f"line {lineno}: malformed label: {pair!r}"
                assert _PROM_LABEL_NAME.match(pm["key"]), \
                    f"line {lineno}: bad label name {pm['key']!r}"
                assert pm["key"] not in labels, \
                    f"line {lineno}: duplicate label {pm['key']!r}"
                labels[pm["key"]] = pm["val"]
        samples.append((name, labels, _prom_value(m["value"])))
    return types, samples


def check_exposition(text: str):
    """Full semantic check on top of :func:`parse_exposition`."""
    types, samples = parse_exposition(text)
    by_name: dict[str, list] = {}
    for name, labels, value in samples:
        by_name.setdefault(name, []).append((labels, value))

    for name, entries in by_name.items():
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            stem = name[: -len(suffix)] if name.endswith(suffix) else None
            if stem and types.get(stem) == "histogram":
                base = stem
                break
        assert base in types, f"sample {name} has no # TYPE declaration"
        kind = types[base]
        if kind in ("counter", "gauge"):
            assert name == base
            assert len(entries) == 1, f"{name}: duplicate series"
            labels, value = entries[0]
            assert labels == {}, f"{name}: unexpected labels"
            if kind == "counter":
                assert value >= 0, f"{name}: negative counter"

    for name, kind in types.items():
        if kind != "histogram":
            continue
        count_series = by_name.get(f"{name}_count")
        sum_series = by_name.get(f"{name}_sum")
        assert count_series and sum_series, f"{name}: missing _sum/_count"
        count = count_series[0][1]
        buckets = by_name.get(f"{name}_bucket")
        if buckets is None:
            continue  # schema-1 degradation: _sum/_count only
        les = []
        for labels, value in buckets:
            assert set(labels) == {"le"}, f"{name}_bucket: labels {labels}"
            les.append((_prom_value(labels["le"]), value))
        bounds = [le for le, _ in les]
        counts = [v for _, v in les]
        assert bounds == sorted(bounds) and len(set(bounds)) == len(bounds), \
            f"{name}: le bounds not strictly increasing: {bounds}"
        assert counts == sorted(counts), \
            f"{name}: bucket counts not cumulative: {counts}"
        assert bounds[-1] == math.inf, f"{name}: no +Inf terminal bucket"
        assert counts[-1] == count, \
            f"{name}: +Inf bucket {counts[-1]} != _count {count}"
    return types, by_name


class TestPrometheusGrammar:
    """`stats --prom` output must survive a real exposition parser."""

    def test_registry_output_parses(self):
        reg = MetricsRegistry()
        reg.counter("serve.pairs").inc(41)
        reg.counter("dijkstra.settled").inc(7)
        reg.gauge("serve.epoch").set(3)
        reg.gauge("serve.worker.0.pid").set(1234)
        h = reg.histogram("serve.e2e_us")
        for v in (0.5, 3.0, 3.0, 40.0, 41.0, 5e6):
            h.observe(v)
        reg.histogram("serve.swap_us").observe(120.0)
        types, by_name = check_exposition(to_prometheus(reg.snapshot()))
        assert types["repro_serve_pairs"] == "counter"
        assert types["repro_serve_epoch"] == "gauge"
        assert types["repro_serve_e2e_us"] == "histogram"
        # Six observations land in the +Inf terminal.
        inf_bucket = [
            v for labels, v in by_name["repro_serve_e2e_us_bucket"]
            if labels["le"] == "+Inf"
        ]
        assert inf_bucket == [6.0]

    def test_dotted_names_are_sanitised(self):
        """Dots (and anything outside [a-zA-Z0-9_]) must be mapped into
        the legal charset, never emitted raw."""
        reg = MetricsRegistry()
        reg.counter("a.b-c:d e.pairs").inc()
        types, _ = check_exposition(to_prometheus(reg.snapshot()))
        assert list(types) == ["repro_a_b_c_d_e_pairs"]

    def test_special_values_parse(self):
        """inf/nan gauges render as +Inf/NaN, which the grammar accepts."""
        text = to_prometheus(
            {"gauges": {"up": math.inf, "down": -math.inf, "odd": math.nan}}
        )
        _, by_name = check_exposition(text)
        assert by_name["repro_up"][0][1] == math.inf
        assert by_name["repro_down"][0][1] == -math.inf
        assert math.isnan(by_name["repro_odd"][0][1])

    def test_empty_histogram_still_terminates(self):
        """Zero observations: no finite buckets, but the +Inf terminal
        and _count must still agree (both 0)."""
        reg = MetricsRegistry()
        reg.histogram("h")  # never observed
        types, by_name = check_exposition(to_prometheus(reg.snapshot()))
        assert types["repro_h"] == "histogram"
        assert by_name["repro_h_count"][0][1] == 0
        assert by_name["repro_h_bucket"][-1][1] == 0

    def test_cli_stats_prom_is_grammatical(self, obs_on, tmp_path, capsys):
        """The end-to-end path: a recorded trace merged and exposed via
        `repro-harness stats --prom` parses under the full grammar."""
        path = tmp_path / "w.jsonl"
        obs.start_trace(path)
        obs.registry().counter("labels.query.pairs").inc(17)
        for v in (4.0, 9.0, 1500.0):
            obs.registry().histogram("serve.e2e_us").observe(v)
        obs.registry().gauge("serve.epoch").set(2)
        obs.stop_trace()
        obs.reset()
        assert cli_main(["stats", "--merge", str(path), "--prom"]) == 0
        types, by_name = check_exposition(capsys.readouterr().out)
        assert types["repro_labels_query_pairs"] == "counter"
        assert by_name["repro_serve_e2e_us_count"][0][1] == 3.0
