"""The observability layer: registry, spans, traces, and counter parity.

The differential suite at the bottom is the load-bearing part: the CSR
kernels and the legacy ``_*_py`` loops must not only agree on answers
(tests/test_csr_kernels.py) but on the *algorithmic counters* — settled
vertices and heap pushes — so instrumented runs are comparable across
dispatch modes.
"""

from __future__ import annotations

import json
import math

import pytest

from repro import obs
from repro.core.dijkstra import dijkstra_distance
from repro.harness.cli import main as cli_main
from repro.obs.registry import BUCKET_BOUNDS, Histogram, MetricsRegistry
from repro.obs.trace import read_trace, rollup, render_tree, tree_summary

from tests.conftest import random_pairs


@pytest.fixture()
def obs_on():
    """Enable instrumentation on a clean registry; restore after."""
    was = obs.ENABLED
    obs.reset()
    obs.set_enabled(True)
    yield obs.registry()
    obs.set_enabled(was)
    obs.reset()


class TestRegistry:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        reg.counter("a.b").inc()
        reg.counter("a.b").inc(4)
        reg.gauge("g").set(2.5)
        assert reg.counter("a.b").value == 5
        assert reg.gauge("g").value == 2.5
        assert reg.counter("a.b") is reg.counter("a.b")

    def test_add_counters_and_prefix_query(self):
        reg = MetricsRegistry()
        reg.add_counters("ch.query", {"settled": 7, "stalls": 2})
        reg.add_counters("ch.query", {"settled": 3})
        assert reg.counter_values("ch.query") == {
            "ch.query.settled": 10,
            "ch.query.stalls": 2,
        }

    def test_histogram_exact_single_observation(self):
        h = Histogram()
        h.observe(42.0)
        assert h.count == 1
        assert h.mean == 42.0
        # min/max clamping makes a single observation exact at every q.
        assert h.p50 == h.p90 == h.p99 == 42.0

    def test_histogram_quantiles_within_bucket_ratio(self):
        h = Histogram()
        for v in range(1, 101):
            h.observe(float(v))
        # True p50 is ~50; buckets are 1.33x wide so the interpolated
        # estimate must land within one bucket ratio of the truth.
        assert 50 / 1.34 <= h.quantile(0.5) <= 50 * 1.34
        assert h.quantile(1.0) == 100.0
        assert h.quantile(0.0) >= 1.0

    def test_histogram_empty_is_nan(self):
        h = Histogram()
        assert math.isnan(h.mean)
        assert math.isnan(h.p50)
        assert h.as_dict()["min"] is None

    def test_histogram_weighted_observe(self):
        h = Histogram()
        h.observe(10.0, n=5)
        assert h.count == 5 and h.total == 50.0

    def test_bucket_bounds_monotonic(self):
        assert list(BUCKET_BOUNDS) == sorted(BUCKET_BOUNDS)
        assert len(set(BUCKET_BOUNDS)) == len(BUCKET_BOUNDS)

    def test_snapshot_and_render(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.histogram("h").observe(5.0)
        snap = reg.snapshot()
        assert snap["schema"] == 1
        assert snap["counters"] == {"c": 3}
        json.dumps(snap)  # snapshot must be JSON-able as-is
        rendered = reg.render()
        assert "c" in rendered and "histogram" in rendered
        assert MetricsRegistry().render() == "(registry is empty)"

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.reset()
        assert len(reg) == 0


class TestSpans:
    def test_disabled_span_is_shared_noop(self):
        obs.set_enabled(False)
        s1 = obs.span("a")
        s2 = obs.span("b")
        assert s1 is s2  # the shared no-op singleton: zero allocation

    def test_span_rolls_up_into_registry(self, obs_on):
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        assert obs_on.histogram("span.outer").count == 1
        assert obs_on.histogram("span.inner").count == 1

    def test_nesting_paths(self, obs_on, tmp_path):
        trace_file = tmp_path / "run.jsonl"
        obs.start_trace(trace_file)
        with obs.span("build"):
            with obs.span("phase"):
                pass
            with obs.span("phase"):
                pass
        obs.stop_trace()
        events = read_trace(trace_file)
        spans = [e for e in events if e["t"] == "span"]
        # Children exit before the parent; same-path spans both recorded.
        assert [s["path"] for s in spans] == [
            "build/phase", "build/phase", "build",
        ]
        assert spans[0]["depth"] == 1 and spans[-1]["depth"] == 0


class TestTrace:
    def _write_trace(self, tmp_path):
        trace_file = tmp_path / "run.jsonl"
        obs.start_trace(trace_file)
        obs.registry().counter("demo.counter").inc(9)
        with obs.span("build"):
            with obs.span("contract"):
                pass
        with obs.span("serve"):
            pass
        obs.stop_trace()
        return trace_file

    def test_roundtrip_with_metrics(self, obs_on, tmp_path):
        trace_file = self._write_trace(tmp_path)
        events = read_trace(trace_file)
        assert events[0]["t"] == "header" and events[0]["schema"] == 1
        from repro.obs.trace import trace_metrics

        snapshot = trace_metrics(events)
        assert snapshot["counters"]["demo.counter"] == 9

    def test_rollup_tree(self, obs_on, tmp_path):
        events = read_trace(self._write_trace(tmp_path))
        root = rollup(events)
        assert set(root.children) == {"build", "serve"}
        build = root.children["build"]
        assert set(build.children) == {"contract"}
        assert build.self_us >= 0.0
        assert build.total_us >= build.children["contract"].total_us
        rendered = render_tree(root)
        assert "contract" in rendered and "self" in rendered
        summary = tree_summary(root)
        assert summary["build"]["children"]["contract"]["count"] == 1
        json.dumps(summary)

    def test_torn_tail_is_skipped(self, obs_on, tmp_path):
        trace_file = self._write_trace(tmp_path)
        with open(trace_file, "a", encoding="utf-8") as fh:
            fh.write('{"t": "span", "name": "torn')  # crashed writer
        events = read_trace(trace_file)
        assert all("torn" not in str(e.get("name", "")) for e in events)

    def test_rejects_non_trace_files(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("this is not json\n")
        with pytest.raises(ValueError, match="bad header"):
            read_trace(bad)
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_trace(empty)
        skewed = tmp_path / "skew.jsonl"
        skewed.write_text('{"t": "header", "schema": 999}\n')
        with pytest.raises(ValueError, match="schema"):
            read_trace(skewed)


class TestCounterParity:
    """Settled/heap-push counts must agree between CSR and legacy paths.

    Pushes happen only on strict distance improvement on both sides, so
    every vertex carries at most one heap entry with its final label —
    the kernel's lazy-deletion pops and the legacy settled-set pops
    then biject (ROADMAP: the differential control checks counters,
    not just answers).
    """

    def _point_counters(self, monkeypatch, mode_env, graph, pairs):
        monkeypatch.setenv(mode_env, "1")
        obs.reset()
        obs.set_enabled(True)
        results = [dijkstra_distance(graph, s, t) for s, t in pairs]
        counters = obs.registry().counter_values("dijkstra.point")
        monkeypatch.delenv(mode_env)
        return results, counters

    def test_point_query_parity(self, monkeypatch, co_tiny, rng):
        pairs = random_pairs(co_tiny, rng, 25) + [(0, 0), (1, 1)]
        try:
            d_csr, c_csr = self._point_counters(
                monkeypatch, "REPRO_FORCE_CSR", co_tiny, pairs
            )
            d_py, c_py = self._point_counters(
                monkeypatch, "REPRO_NO_CSR", co_tiny, pairs
            )
        finally:
            obs.set_enabled(False)
            obs.reset()
        assert d_csr == d_py
        assert c_csr["dijkstra.point.queries"] == len(pairs)
        assert c_csr == c_py  # settled AND heap_pushes, exactly
        assert c_csr["dijkstra.point.settled"] > 0
        assert c_csr["dijkstra.point.heap_pushes"] > 0

    def test_disabled_records_nothing(self, monkeypatch, co_tiny):
        obs.reset()
        obs.set_enabled(False)
        dijkstra_distance(co_tiny, 0, co_tiny.n - 1)
        assert obs.registry().counter_values("dijkstra.point") == {}


class TestWiring:
    """Spot-checks that build/query layers actually feed the registry."""

    def test_ch_query_counters(self, obs_on, ch_co):
        ch_co.distance(0, ch_co.graph.n - 1)
        values = obs_on.counter_values("ch.query")
        assert values["ch.query.queries"] == 1
        assert values["ch.query.settled"] == ch_co.last_settled > 0

    def test_bidijkstra_counters(self, obs_on, bidij_co):
        bidij_co.distance(1, bidij_co.graph.n - 2)
        values = obs_on.counter_values("bidijkstra")
        assert values["bidijkstra.queries"] == 1
        assert values["bidijkstra.settled"] == bidij_co.last_settled > 0

    def test_tnr_locality_counters(self, obs_on, tnr_co):
        n = tnr_co.graph.n
        for s, t in [(0, n - 1), (1, n - 2), (2, 3)]:
            tnr_co.distance(s, t)
        values = obs_on.counter_values("tnr.locality")
        assert sum(values.values()) == 3
        assert values.get("tnr.locality.table_hits", 0) >= 1  # (0, n-1) is far
        assert values.get("tnr.locality.fallback", 0) >= 1    # (2, 3) is near

    def test_build_spans_cover_five_techniques(self, obs_on, de_tiny, tmp_path):
        from repro.core.bidirectional import BidirectionalDijkstra
        from repro.core.ch import ContractionHierarchy
        from repro.core.pcpd.index import build_pcpd
        from repro.core.silc import build_silc
        from repro.core.tnr import build_tnr

        trace_file = tmp_path / "pipeline.jsonl"
        obs.start_trace(trace_file)
        BidirectionalDijkstra(de_tiny)
        ch = ContractionHierarchy.build(de_tiny)
        build_tnr(de_tiny, ch, 8)
        build_silc(de_tiny, workers=0)
        build_pcpd(de_tiny, workers=0)
        obs.stop_trace()

        root = rollup(read_trace(trace_file))
        top = set(root.children)
        for phase in ("bidijkstra.setup", "ch.build", "tnr.build",
                      "silc.build", "pcpd.build"):
            assert phase in top, f"missing build span {phase}"
        assert "tnr.table" in root.children["tnr.build"].children
        assert "pcpd.apsp" in root.children["pcpd.build"].children
        counters = obs_on.counter_values("")
        assert counters["ch.build.runs"] == 1
        assert counters["silc.build.runs"] == 1
        assert counters["pcpd.build.pairs"] > 0

    def test_serve_histograms(self, obs_on, ch_co):
        from repro.harness.experiments import batched_distances

        pairs = [(0, 5), (1, 5), (0, 7), (2, 9)]
        batched_distances(ch_co, pairs, batch_size=2)
        reg = obs_on
        assert reg.counter("serve.pairs").value == 4
        assert reg.counter("serve.batches").value == 2
        assert reg.histogram("serve.batch_us").count == 2
        assert reg.histogram("serve.request_us").count == 4
        # Batch 1 repeats source 0: one source sweep saved.
        assert reg.counter("serve.dedup_saved").value >= 1

    def test_cache_counters_mirrored(self, obs_on, tmp_path):
        from repro.harness.cache import MISSING, DiskCache

        cache = DiskCache(tmp_path / "c")
        assert cache.load(("k",)) is MISSING
        cache.store(("k",), {"v": 1})
        assert cache.load(("k",)) == {"v": 1}
        values = obs_on.counter_values("cache")
        assert values["cache.misses"] == 1
        assert values["cache.hits"] == 1
        assert values["cache.writes"] == 1


class TestObsCLI:
    @pytest.fixture()
    def trace_file(self, obs_on, tmp_path, ch_co):
        from repro.harness.experiments import batched_distances

        path = tmp_path / "run.jsonl"
        obs.start_trace(path)
        batched_distances(ch_co, [(0, 5), (1, 7)])
        obs.stop_trace()
        return path

    def test_trace_subcommand_renders_tree(self, trace_file, capsys):
        assert cli_main(["trace", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "serve.batched" in out and "self" in out

    def test_trace_subcommand_json(self, trace_file, capsys):
        assert cli_main(["trace", str(trace_file), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["serve.batched"]["count"] == 1

    def test_trace_subcommand_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "nope.jsonl"
        bad.write_text("garbage\n")
        assert cli_main(["trace", str(bad)]) == 1
        err = capsys.readouterr().err.strip()
        assert err.startswith("error:") and len(err.splitlines()) == 1

    def test_stats_from_trace(self, trace_file, capsys):
        assert cli_main(["stats", "--trace", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "serve.pairs" in out
        assert cli_main(["stats", "--trace", str(trace_file), "--json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["counters"]["serve.pairs"] == 2

    def test_stats_live_registry(self, obs_on, tmp_path, capsys):
        obs.registry().counter("demo.live").inc(3)
        assert cli_main(["stats", "--cache", str(tmp_path / "none")]) == 0
        assert "demo.live" in capsys.readouterr().out


class TestServeErrorPaths:
    """`repro-harness serve` must fail with one-line diagnostics."""

    def _err_lines(self, capsys):
        err = capsys.readouterr().err.strip()
        return err.splitlines()

    def test_unknown_technique(self, capsys):
        assert cli_main(["serve", "--technique", "warp"]) == 2
        lines = self._err_lines(capsys)
        assert len(lines) == 1
        assert "unknown technique 'warp'" in lines[0]

    def test_unknown_dataset(self, capsys):
        assert cli_main(["serve", "--dataset", "Atlantis",
                         "--tier", "tiny"]) == 2
        lines = self._err_lines(capsys)
        assert len(lines) == 1 and "unknown dataset" in lines[0]

    def test_malformed_pair_file(self, tmp_path, capsys):
        bad = tmp_path / "pairs.txt"
        bad.write_text("1 2\n3 four\n")
        assert cli_main(["serve", "--tier", "tiny",
                         "--pair-file", str(bad)]) == 2
        lines = self._err_lines(capsys)
        assert len(lines) == 1
        assert f"{bad}:2" in lines[0] and "non-integer" in lines[0]

    def test_pair_file_wrong_arity(self, tmp_path, capsys):
        bad = tmp_path / "pairs.txt"
        bad.write_text("1 2 3\n")
        assert cli_main(["serve", "--tier", "tiny",
                         "--pair-file", str(bad)]) == 2
        assert "expected 'source target'" in self._err_lines(capsys)[0]

    def test_missing_pair_file(self, tmp_path, capsys):
        assert cli_main(["serve", "--tier", "tiny",
                         "--pair-file", str(tmp_path / "nope.txt")]) == 2
        assert "cannot read pair file" in self._err_lines(capsys)[0]

    def test_empty_batch(self, tmp_path, capsys):
        empty = tmp_path / "pairs.txt"
        empty.write_text("# nothing but comments\n\n")
        assert cli_main(["serve", "--tier", "tiny",
                         "--pair-file", str(empty)]) == 1
        lines = self._err_lines(capsys)
        assert len(lines) == 1 and "empty batch" in lines[0]

    def test_out_of_range_pair(self, tmp_path, capsys):
        pairs = tmp_path / "pairs.txt"
        pairs.write_text("0 999999\n")
        assert cli_main(["serve", "--tier", "tiny",
                         "--pair-file", str(pairs)]) == 2
        assert "out of range" in self._err_lines(capsys)[0]

    def test_pair_file_happy_path(self, tmp_path, capsys):
        pairs = tmp_path / "pairs.txt"
        pairs.write_text("0 5\n1 3  # comment\n0 5\n")
        assert cli_main(["serve", "--tier", "tiny",
                         "--pair-file", str(pairs), "--check"]) == 0
        out = capsys.readouterr().out
        assert "served 3 pairs" in out and "answers identical" in out
