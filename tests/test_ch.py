"""Unit tests for Contraction Hierarchies (§3.2)."""

import math

import pytest

from repro.core.ch import ContractionHierarchy, OrderingConfig, build_ch, many_to_many
from repro.core.ch.contraction import ORIGINAL_EDGE
from repro.core.ch.many_to_many import many_to_many_sparse
from repro.core.ch.ordering import STRATEGIES, validate_fixed_order
from repro.core.dijkstra import dijkstra_distance
from repro.graph.graph import Graph
from tests.conftest import random_pairs

FIGURE1_ORDER = OrderingConfig(strategy="fixed", fixed_order=tuple(range(8)))


class TestPaperWalkthrough:
    """The full §3.2 example on the Figure 1 network."""

    def test_exactly_three_shortcuts(self, paper_graph):
        index = build_ch(paper_graph, FIGURE1_ORDER)
        assert index.n_shortcuts == 3

    def test_shortcut_tags(self, paper_graph):
        index = build_ch(paper_graph, FIGURE1_ORDER)
        shortcuts = {
            pair: via for pair, via in index.middle.items() if via != ORIGINAL_EDGE
        }
        # c1 = (v3, v8) via v1; c2 = (v6, v7) via v5; c3 = (v7, v8) via v6.
        assert shortcuts == {(2, 7): 0, (5, 6): 4, (6, 7): 5}

    def test_shortcut_weights(self, paper_graph):
        index = build_ch(paper_graph, FIGURE1_ORDER)
        weights = {}
        for v in range(8):
            for u, w, via in index.up[v]:
                if via != ORIGINAL_EDGE:
                    weights[(min(u, v), max(u, v))] = w
        assert weights == {(2, 7): 2.0, (5, 6): 2.0, (6, 7): 4.0}

    def test_query_meets_at_v8(self, paper_graph):
        ch = ContractionHierarchy.build(paper_graph, FIGURE1_ORDER)
        assert ch.distance(2, 6) == 6.0

    def test_unpacked_path(self, paper_graph):
        ch = ContractionHierarchy.build(paper_graph, FIGURE1_ORDER)
        d, path = ch.path(2, 6)
        assert d == 6.0
        # c1 unpacks to (v3, v1), (v1, v8) exactly as §3.2 describes.
        assert path == [2, 0, 7, 5, 4, 6]

    def test_c1_unpacks_through_v1(self, paper_graph):
        ch = ContractionHierarchy.build(paper_graph, FIGURE1_ORDER)
        assert ch.unpack_edge(2, 7) == [2, 0, 7]

    def test_all_pairs_exact(self, paper_graph):
        ch = ContractionHierarchy.build(paper_graph, FIGURE1_ORDER)
        for s in range(8):
            for t in range(8):
                assert ch.distance(s, t) == dijkstra_distance(paper_graph, s, t)


class TestCorrectness:
    def test_distance_agreement(self, co_tiny, ch_co, rng):
        for s, t in random_pairs(co_tiny, rng, 200):
            assert ch_co.distance(s, t) == dijkstra_distance(co_tiny, s, t)

    def test_paths_valid_and_optimal(self, co_tiny, ch_co, rng):
        for s, t in random_pairs(co_tiny, rng, 100):
            d, path = ch_co.path(s, t)
            assert path[0] == s and path[-1] == t
            assert co_tiny.path_weight(path) == d
            assert d == dijkstra_distance(co_tiny, s, t)

    def test_augmented_path_weight_matches(self, co_tiny, ch_co, rng):
        # The augmented path may contain shortcuts but its unpacking is
        # exactly the reported distance.
        for s, t in random_pairs(co_tiny, rng, 40):
            d, augmented = ch_co.augmented_path(s, t)
            unpacked = ch_co.unpack_path(augmented)
            assert co_tiny.path_weight(unpacked) == d
            assert len(unpacked) >= len(augmented)

    def test_same_vertex(self, ch_co):
        assert ch_co.distance(9, 9) == 0.0
        assert ch_co.path(9, 9) == (0.0, [9])

    def test_disconnected(self):
        g = Graph([0.0, 1.0, 2.0, 3.0], [0.0] * 4,
                  [(0, 1, 1.0), (2, 3, 1.0)]).freeze()
        ch = ContractionHierarchy.build(g)
        assert math.isinf(ch.distance(0, 3))
        assert ch.path(0, 3) == (math.inf, None)

    def test_stalling_preserves_exactness(self, co_tiny, rng):
        plain = ContractionHierarchy(co_tiny, build_ch(co_tiny), use_stalling=False)
        stalled = ContractionHierarchy(co_tiny, plain.index, use_stalling=True)
        for s, t in random_pairs(co_tiny, rng, 80):
            assert plain.distance(s, t) == stalled.distance(s, t)

    def test_tight_witness_budget_still_exact(self, de_tiny, rng):
        ch = ContractionHierarchy.build(de_tiny, witness_settle_limit=2)
        for s, t in random_pairs(de_tiny, rng, 80):
            assert ch.distance(s, t) == dijkstra_distance(de_tiny, s, t)

    def test_unfrozen_graph_rejected(self):
        g = Graph([0.0, 1.0], [0.0, 0.0], [(0, 1, 1.0)])
        with pytest.raises(ValueError):
            build_ch(g)

    def test_wrong_graph_rejected(self, co_tiny, de_tiny, ch_co):
        with pytest.raises(ValueError):
            ContractionHierarchy(de_tiny, ch_co.index)


class TestOrdering:
    @pytest.mark.parametrize("strategy", ["edge_difference", "edge_difference_only",
                                          "degree", "random"])
    def test_every_strategy_is_exact(self, de_tiny, strategy, rng):
        ch = ContractionHierarchy.build(
            de_tiny, OrderingConfig(strategy=strategy, seed=3)
        )
        for s, t in random_pairs(de_tiny, rng, 60):
            assert ch.distance(s, t) == dijkstra_distance(de_tiny, s, t)

    def test_random_ordering_creates_more_shortcuts(self, co_tiny, ch_co):
        # §3.2: "an inferior ordering can lead to O(n^2) shortcuts".
        random_idx = build_ch(co_tiny, OrderingConfig(strategy="random", seed=1))
        assert random_idx.n_shortcuts > ch_co.index.n_shortcuts

    def test_rank_is_permutation(self, ch_co, co_tiny):
        assert sorted(ch_co.index.rank) == list(range(co_tiny.n))
        order = ch_co.index.order()
        assert sorted(order) == list(range(co_tiny.n))
        assert all(ch_co.index.rank[v] == i for i, v in enumerate(order))

    def test_up_edges_point_upward(self, ch_co):
        rank = ch_co.index.rank
        for v, edges in enumerate(ch_co.index.up):
            for u, _, _ in edges:
                assert rank[u] > rank[v]

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            OrderingConfig(strategy="voodoo")

    def test_fixed_requires_order(self):
        with pytest.raises(ValueError):
            OrderingConfig(strategy="fixed")

    def test_validate_fixed_order(self):
        assert validate_fixed_order([1, 0], 2) == (1, 0)
        with pytest.raises(ValueError):
            validate_fixed_order([0, 0], 2)

    def test_strategy_catalogue(self):
        assert set(STRATEGIES) == {
            "edge_difference", "edge_difference_only", "degree", "random", "fixed"
        }


class TestManyToMany:
    def test_table_exact(self, co_tiny, ch_co, rng):
        nodes = [rng.randrange(co_tiny.n) for _ in range(20)]
        table = many_to_many(ch_co, nodes, nodes)
        for i, s in enumerate(nodes):
            for j, t in enumerate(nodes):
                assert table[i, j] == dijkstra_distance(co_tiny, s, t)

    def test_asymmetric_source_target_sets(self, co_tiny, ch_co, rng):
        sources = [rng.randrange(co_tiny.n) for _ in range(7)]
        targets = [rng.randrange(co_tiny.n) for _ in range(11)]
        table = many_to_many(ch_co, sources, targets)
        assert table.shape == (7, 11)
        for i, s in enumerate(sources):
            for j, t in enumerate(targets):
                assert table[i, j] == dijkstra_distance(co_tiny, s, t)

    def test_disconnected_pairs_inf(self):
        g = Graph([0.0, 1.0, 2.0, 3.0], [0.0] * 4,
                  [(0, 1, 1.0), (2, 3, 1.0)]).freeze()
        ch = ContractionHierarchy.build(g)
        table = many_to_many(ch, [0, 2], [1, 3])
        assert table[0, 0] == 1.0 and table[1, 1] == 1.0
        assert math.isinf(table[0, 1]) and math.isinf(table[1, 0])

    def test_sparse_variant_matches_dense(self, co_tiny, ch_co, rng):
        nodes = [rng.randrange(co_tiny.n) for _ in range(15)]
        dense = many_to_many(ch_co, nodes, nodes)
        sparse = many_to_many_sparse(ch_co, nodes, lambda i, j: (i + j) % 2 == 0)
        for (i, j), d in sparse.items():
            assert (i + j) % 2 == 0
            assert d == dense[i, j]
        # All wanted, reachable entries are present.
        for i in range(15):
            for j in range(15):
                if (i + j) % 2 == 0 and not math.isinf(dense[i, j]):
                    assert (i, j) in sparse


class TestUnpacking:
    def test_unknown_edge_rejected(self, ch_co):
        with pytest.raises(KeyError):
            ch_co.unpack_edge(0, 0)

    def test_unpack_trivial_path(self, ch_co):
        assert ch_co.unpack_path([4]) == [4]
        assert ch_co.unpack_path([]) == []

    def test_upward_search_contains_source(self, ch_co):
        space = ch_co.upward_search(11)
        assert space[11] == 0.0
        assert all(d >= 0 for d in space.values())
