"""Property-based cross-technique agreement.

The paper's central correctness premise is that every technique is
*exact*: it answers identically to Dijkstra on any road network. These
tests parametrise over the canonical technique registry
(:data:`repro.core.techniques.TECHNIQUES`) — a new technique added
there is enrolled in the agreement, protocol and symmetry suites
automatically, with no edits here (how the labels technique landed
fully covered).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.base import QueryTechnique
from repro.core.dijkstra import dijkstra_distance, dijkstra_sssp
from repro.core.techniques import DISPLAY_NAMES, TECHNIQUES, build_on_graph, registry_builders
from repro.graph.generators import RoadNetworkSpec, generate_road_network

NETWORK_CACHE: dict[object, object] = {}

#: Hypothesis seed range per technique — the slower builders get fewer
#: distinct graphs, matching the original per-technique suites.
SEED_RANGE = {"dijkstra": 7, "ch": 4, "silc": 4, "pcpd": 3, "tnr": 3, "labels": 4}


def network(seed: int):
    """Small deterministic network per seed (cached across examples)."""
    if seed not in NETWORK_CACHE:
        NETWORK_CACHE[seed] = generate_road_network(
            RoadNetworkSpec(n=90, seed=seed)
        )[0]
    return NETWORK_CACHE[seed]


def technique(name: str, seed: int):
    """Technique ``name`` on ``network(seed)``, cached; CH is shared."""
    key = (name, seed)
    if key not in NETWORK_CACHE:
        g = network(seed)
        ch = None
        if name in ("ch", "tnr", "labels"):
            ch_key = ("ch", seed)
            if ch_key not in NETWORK_CACHE:
                NETWORK_CACHE[ch_key] = build_on_graph("ch", g)
            ch = NETWORK_CACHE[ch_key]
        NETWORK_CACHE[key] = ch if name == "ch" else build_on_graph(name, g, ch=ch)
    return NETWORK_CACHE[key]


SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestAgreementProperties:
    @SLOW
    @pytest.mark.parametrize("name", TECHNIQUES)
    @given(seed=st.integers(0, 7), pair_seed=st.integers(0, 10_000))
    def test_technique_equals_dijkstra(self, name, seed, pair_seed):
        seed %= SEED_RANGE[name] + 1
        g = network(seed)
        tech = technique(name, seed)
        s, t = pair_seed % g.n, (pair_seed // g.n) % g.n
        assert tech.distance(s, t) == dijkstra_distance(g, s, t)

    @SLOW
    @given(seed=st.integers(0, 4), pair_seed=st.integers(0, 10_000))
    def test_ch_path_unpacks_to_real_edges(self, seed, pair_seed):
        g = network(seed)
        ch = technique("ch", seed)
        s, t = pair_seed % g.n, (pair_seed // g.n) % g.n
        d = dijkstra_distance(g, s, t)
        dp, path = ch.path(s, t)
        assert dp == d
        if path is not None:
            assert g.path_weight(path) == d

    @SLOW
    @given(seed=st.integers(0, 3), source=st.integers(0, 89))
    def test_first_hop_consistency(self, seed, source):
        # Walking any first-hop table from any source reaches every
        # reachable target with the exact distance.
        from repro.core.dijkstra import first_hop_table

        g = network(seed)
        source %= g.n
        hop = first_hop_table(g, source)
        dist, _ = dijkstra_sssp(g, source)
        for t in range(0, g.n, 7):
            if t == source or hop[t] < 0:
                continue
            h = hop[t]
            assert g.edge_weight(source, h) + dijkstra_sssp(g, h)[0][t] == dist[t]


class TestProtocol:
    @pytest.mark.parametrize("name", TECHNIQUES)
    def test_every_registry_technique_satisfies_protocol(self, name):
        tech = technique(name, 0)
        assert isinstance(tech, QueryTechnique)
        assert tech.name == DISPLAY_NAMES[name]

    def test_display_names_cover_the_registry(self):
        assert set(DISPLAY_NAMES) == set(TECHNIQUES)
        assert {DISPLAY_NAMES[n] for n in TECHNIQUES} == {
            "CH", "TNR", "SILC", "Dijkstra", "PCPD", "HL"
        }


class TestDESmallWorkloadRegression:
    """Every registry technique rebuilt on DE tier ``small``: all Q/R-set
    answers must match bidirectional Dijkstra, per-pair and through the
    batched serve path.

    This is the regression guard for the flat-array engines: the TNR
    table and the hub labels are both built by the many-to-many sweep
    machinery, so a wrong entry surfaces here as a workload answer that
    disagrees with the baseline.
    """

    @pytest.fixture(scope="class")
    def registry(self):
        from repro.harness.registry import Registry

        return Registry(tier="small", pairs_per_set=20, cache="off")

    @pytest.fixture(scope="class")
    def baseline(self, registry):
        return registry.bidijkstra("DE")

    @pytest.fixture(scope="class")
    def workload(self, registry):
        return [
            pair
            for qset in registry.q_sets("DE") + registry.r_sets("DE")
            for pair in qset.pairs
        ]

    def test_every_workload_answer_matches_dijkstra(
        self, registry, workload, baseline
    ):
        assert len(workload) > 100
        tnr = registry.tnr("DE")
        hl = registry.hub_labels("DE")
        for s, t in workload:
            d = baseline.distance(s, t)
            assert tnr.distance(s, t) == d, (s, t)
            assert hl.distance(s, t) == d, (s, t)

    @pytest.mark.parametrize("name", ["tnr", "ch", "labels", "dijkstra"])
    def test_batched_serve_matches_per_pair(
        self, registry, workload, name
    ):
        from repro.harness.experiments import batched_distances

        tech = registry_builders(registry)[name]("DE")
        pairs = workload[:192]
        served = batched_distances(tech, pairs)
        for (s, t), d in zip(pairs, served.tolist()):
            assert d == tech.distance(s, t), (tech.name, s, t)

    def test_distance_table_grids_agree_across_techniques(
        self, registry, workload, baseline
    ):
        from repro.harness.experiments import distance_table

        sources = sorted({s for s, _ in workload[:40]})
        targets = sorted({t for _, t in workload[:40]})
        expect = distance_table(baseline, sources, targets)
        for name in ("tnr", "ch", "labels"):
            tech = registry_builders(registry)[name]("DE")
            assert np.array_equal(
                distance_table(tech, sources, targets), expect
            ), name


class TestSymmetry:
    """Undirected graphs: every technique must answer symmetrically."""

    @pytest.mark.parametrize(
        "fixture", ["ch_co", "tnr_co", "silc_co", "bidij_co", "hl_co"]
    )
    def test_distance_symmetric(self, fixture, request, co_tiny, rng):
        tech = request.getfixturevalue(fixture)
        for _ in range(40):
            s, t = rng.randrange(co_tiny.n), rng.randrange(co_tiny.n)
            assert tech.distance(s, t) == tech.distance(t, s)

    def test_pcpd_distance_symmetric(self, pcpd_de, de_tiny, rng):
        for _ in range(40):
            s, t = rng.randrange(de_tiny.n), rng.randrange(de_tiny.n)
            assert pcpd_de.distance(s, t) == pcpd_de.distance(t, s)
