"""Property-based cross-technique agreement.

The paper's central correctness premise is that all five techniques are
*exact*: they answer identically to Dijkstra on any road network. These
tests generate networks with hypothesis and assert exactly that, plus
the interface contract of :class:`~repro.core.base.QueryTechnique`.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.base import QueryTechnique
from repro.core.bidirectional import BidirectionalDijkstra
from repro.core.ch import ContractionHierarchy
from repro.core.dijkstra import dijkstra_distance, dijkstra_sssp
from repro.core.pcpd import PCPD
from repro.core.silc import SILC
from repro.core.tnr import TransitNodeRouting, build_tnr
from repro.graph.generators import RoadNetworkSpec, generate_road_network

NETWORK_CACHE: dict[int, object] = {}


def network(seed: int):
    """Small deterministic network per seed (cached across examples)."""
    if seed not in NETWORK_CACHE:
        NETWORK_CACHE[seed] = generate_road_network(
            RoadNetworkSpec(n=90, seed=seed)
        )[0]
    return NETWORK_CACHE[seed]


SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestAgreementProperties:
    @SLOW
    @given(seed=st.integers(0, 7), s=st.integers(0, 89), t=st.integers(0, 89))
    def test_bidirectional_equals_dijkstra(self, seed, s, t):
        g = network(seed)
        s, t = s % g.n, t % g.n
        assert BidirectionalDijkstra(g).distance(s, t) == dijkstra_distance(g, s, t)

    @SLOW
    @given(seed=st.integers(0, 4), pair_seed=st.integers(0, 10_000))
    def test_ch_equals_dijkstra(self, seed, pair_seed):
        g = network(seed)
        key = ("ch", seed)
        if key not in NETWORK_CACHE:
            NETWORK_CACHE[key] = ContractionHierarchy.build(g)
        ch = NETWORK_CACHE[key]
        s, t = pair_seed % g.n, (pair_seed // g.n) % g.n
        d = dijkstra_distance(g, s, t)
        assert ch.distance(s, t) == d
        dp, path = ch.path(s, t)
        assert dp == d
        if path is not None:
            assert g.path_weight(path) == d

    @SLOW
    @given(seed=st.integers(0, 4), pair_seed=st.integers(0, 10_000))
    def test_silc_equals_dijkstra(self, seed, pair_seed):
        g = network(seed)
        key = ("silc", seed)
        if key not in NETWORK_CACHE:
            NETWORK_CACHE[key] = SILC.build(g)
        silc = NETWORK_CACHE[key]
        s, t = pair_seed % g.n, (pair_seed // g.n) % g.n
        assert silc.distance(s, t) == dijkstra_distance(g, s, t)

    @SLOW
    @given(seed=st.integers(0, 3), pair_seed=st.integers(0, 10_000))
    def test_pcpd_equals_dijkstra(self, seed, pair_seed):
        g = network(seed)
        key = ("pcpd", seed)
        if key not in NETWORK_CACHE:
            NETWORK_CACHE[key] = PCPD.build(g)
        pcpd = NETWORK_CACHE[key]
        s, t = pair_seed % g.n, (pair_seed // g.n) % g.n
        assert pcpd.distance(s, t) == dijkstra_distance(g, s, t)

    @SLOW
    @given(seed=st.integers(0, 3), pair_seed=st.integers(0, 10_000))
    def test_tnr_equals_dijkstra(self, seed, pair_seed):
        g = network(seed)
        key = ("tnr", seed)
        if key not in NETWORK_CACHE:
            ch = ContractionHierarchy.build(g)
            NETWORK_CACHE[key] = TransitNodeRouting(g, build_tnr(g, ch, 16), ch)
        tnr = NETWORK_CACHE[key]
        s, t = pair_seed % g.n, (pair_seed // g.n) % g.n
        assert tnr.distance(s, t) == dijkstra_distance(g, s, t)

    @SLOW
    @given(seed=st.integers(0, 3), source=st.integers(0, 89))
    def test_first_hop_consistency(self, seed, source):
        # Walking any first-hop table from any source reaches every
        # reachable target with the exact distance.
        from repro.core.dijkstra import first_hop_table

        g = network(seed)
        source %= g.n
        hop = first_hop_table(g, source)
        dist, _ = dijkstra_sssp(g, source)
        for t in range(0, g.n, 7):
            if t == source or hop[t] < 0:
                continue
            h = hop[t]
            assert g.edge_weight(source, h) + dijkstra_sssp(g, h)[0][t] == dist[t]


class TestProtocol:
    def test_all_techniques_satisfy_protocol(self, co_tiny, ch_co, tnr_co,
                                             silc_co, bidij_co):
        for tech in (ch_co, tnr_co, silc_co, bidij_co):
            assert isinstance(tech, QueryTechnique)
            assert isinstance(tech.name, str)

    def test_pcpd_satisfies_protocol(self, pcpd_de):
        assert isinstance(pcpd_de, QueryTechnique)

    def test_names_are_the_papers(self, ch_co, tnr_co, silc_co, bidij_co, pcpd_de):
        assert {t.name for t in (ch_co, tnr_co, silc_co, bidij_co, pcpd_de)} == {
            "CH", "TNR", "SILC", "Dijkstra", "PCPD"
        }


class TestDESmallWorkloadRegression:
    """TNR rebuilt on DE tier ``small``: every Q/R-set answer must match
    bidirectional Dijkstra, per-pair and through the batched serve path.

    This is the regression guard for the flat-array many-to-many
    rewrite: the TNR table is built by ``many_to_many``, so a wrong
    table entry surfaces here as a workload answer that disagrees with
    the baseline.
    """

    @pytest.fixture(scope="class")
    def registry(self):
        from repro.harness.registry import Registry

        return Registry(tier="small", pairs_per_set=20, cache="off")

    @pytest.fixture(scope="class")
    def tnr_small(self, registry):
        return registry.tnr("DE")

    @pytest.fixture(scope="class")
    def baseline(self, registry):
        return registry.bidijkstra("DE")

    @pytest.fixture(scope="class")
    def workload(self, registry):
        return [
            pair
            for qset in registry.q_sets("DE") + registry.r_sets("DE")
            for pair in qset.pairs
        ]

    def test_every_workload_answer_matches_dijkstra(
        self, workload, tnr_small, baseline
    ):
        assert len(workload) > 100
        for s, t in workload:
            assert tnr_small.distance(s, t) == baseline.distance(s, t), (s, t)

    def test_batched_serve_matches_per_pair_for_all_techniques(
        self, registry, workload, tnr_small, baseline
    ):
        from repro.harness.experiments import batched_distances

        pairs = workload[:192]
        for tech in (tnr_small, registry.ch("DE"), baseline):
            served = batched_distances(tech, pairs)
            for (s, t), d in zip(pairs, served.tolist()):
                assert d == tech.distance(s, t), (tech.name, s, t)

    def test_distance_table_grids_agree_across_techniques(
        self, registry, workload, tnr_small, baseline
    ):
        from repro.harness.experiments import distance_table

        sources = sorted({s for s, _ in workload[:40]})
        targets = sorted({t for _, t in workload[:40]})
        expect = distance_table(baseline, sources, targets)
        for tech in (tnr_small, registry.ch("DE")):
            assert np.array_equal(distance_table(tech, sources, targets), expect)


class TestSymmetry:
    """Undirected graphs: every technique must answer symmetrically."""

    @pytest.mark.parametrize("fixture", ["ch_co", "tnr_co", "silc_co", "bidij_co"])
    def test_distance_symmetric(self, fixture, request, co_tiny, rng):
        tech = request.getfixturevalue(fixture)
        for _ in range(40):
            s, t = rng.randrange(co_tiny.n), rng.randrange(co_tiny.n)
            assert tech.distance(s, t) == tech.distance(t, s)

    def test_pcpd_distance_symmetric(self, pcpd_de, de_tiny, rng):
        for _ in range(40):
            s, t = rng.randrange(de_tiny.n), rng.randrange(de_tiny.n)
            assert pcpd_de.distance(s, t) == pcpd_de.distance(t, s)
