"""Unit tests for the RE and HEPV extensions (Appendix A)."""

import math

import pytest

from repro.core.dijkstra import dijkstra_distance, settled_count
from repro.extensions.hepv import HEPV, build_hepv
from repro.extensions.reach import Reach, build_reach, compute_reaches
from repro.graph.generators import grid_graph
from repro.graph.graph import Graph
from tests.conftest import random_pairs


@pytest.fixture(scope="module")
def reach_de(de_tiny):
    return Reach.build(de_tiny)


@pytest.fixture(scope="module")
def hepv_co(co_tiny):
    return HEPV.build(co_tiny, k=4)


class TestReachValues:
    def test_path_graph_reaches(self):
        # On a path a-b-c-d with unit weights, the middle vertices have
        # reach 1 (min of the two sides), the ends reach 0.
        g = Graph([0.0, 1.0, 2.0, 3.0], [0.0] * 4,
                  [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).freeze()
        reach = compute_reaches(g)
        assert reach[0] == 0.0 and reach[3] == 0.0
        assert reach[1] == 1.0 and reach[2] == 1.0

    def test_star_center_reach(self):
        g = Graph([0.0, 1.0, -1.0, 0.0], [0.0, 0.0, 0.0, 1.0],
                  [(0, 1, 2.0), (0, 2, 3.0), (0, 3, 5.0)]).freeze()
        reach = compute_reaches(g)
        # Through-paths at the hub: min over the two arms, maximised
        # over arm pairs -> min(3, 5) = 3.
        assert reach[0] == 3.0
        assert reach[1] == 0.0

    def test_reach_bounds_on_dataset(self, de_tiny, reach_de, rng):
        # Soundness: for any (s, t) and any v on a shortest path,
        # min(d(s,v), d(v,t)) <= reach(v).
        from repro.core.dijkstra import dijkstra_path

        reach = reach_de.index.reach
        for s, t in random_pairs(de_tiny, rng, 25):
            d, path = dijkstra_path(de_tiny, s, t)
            if path is None:
                continue
            for v in path[1:-1]:
                dv = dijkstra_distance(de_tiny, s, v)
                assert min(dv, d - dv) <= reach[v] + 1e-9


class TestReachQueries:
    def test_distance_agreement(self, de_tiny, reach_de, rng):
        for s, t in random_pairs(de_tiny, rng, 150):
            assert reach_de.distance(s, t) == dijkstra_distance(de_tiny, s, t)

    def test_paths_valid(self, de_tiny, reach_de, rng):
        for s, t in random_pairs(de_tiny, rng, 40):
            d, path = reach_de.path(s, t)
            assert path[0] == s and path[-1] == t
            assert de_tiny.path_weight(path) == d

    def test_prunes_search_space(self, de_tiny, reach_de, rng):
        pruned = plain = 0
        for s, t in random_pairs(de_tiny, rng, 25):
            reach_de.distance(s, t)
            pruned += reach_de.last_settled
            plain += settled_count(de_tiny, s, t)
        assert pruned < plain

    def test_lattice_ties(self):
        g = grid_graph(9, 9)
        re = Reach.build(g)
        import random as _r

        rr = _r.Random(5)
        for _ in range(60):
            s, t = rr.randrange(g.n), rr.randrange(g.n)
            assert re.distance(s, t) == dijkstra_distance(g, s, t)

    def test_unfrozen_rejected(self):
        g = Graph([0.0, 1.0], [0.0, 0.0], [(0, 1, 1.0)])
        with pytest.raises(ValueError):
            build_reach(g)


class TestHEPV:
    def test_distance_agreement(self, co_tiny, hepv_co, rng):
        for s, t in random_pairs(co_tiny, rng, 200):
            assert hepv_co.distance(s, t) == dijkstra_distance(co_tiny, s, t), (s, t)

    def test_same_component_queries(self, co_tiny, hepv_co, rng):
        comp = hepv_co.index.component_of
        pairs = [
            (s, t) for s, t in random_pairs(co_tiny, rng, 300)
            if comp[s] == comp[t]
        ][:40]
        assert pairs, "need same-component pairs"
        for s, t in pairs:
            assert hepv_co.distance(s, t) == dijkstra_distance(co_tiny, s, t)

    def test_path_valid(self, co_tiny, hepv_co, rng):
        for s, t in random_pairs(co_tiny, rng, 25):
            d, path = hepv_co.path(s, t)
            assert co_tiny.path_weight(path) == d

    def test_same_vertex_and_disconnected(self, hepv_co):
        assert hepv_co.distance(3, 3) == 0.0
        g = Graph([0.0, 100.0, 900_000.0], [0.0] * 3, [(0, 1, 1.0)]).freeze()
        hepv = HEPV.build(g, k=4)
        assert math.isinf(hepv.distance(0, 2))

    def test_views_are_quadratic_in_boundary(self, co_tiny, hepv_co):
        # The [17] critique the paper cites: view entries ~ sum |B_C|^2.
        stats = hepv_co.index.stats
        assert stats.view_entries > stats.boundary_vertices
        assert stats.components > 1

    def test_finer_partition_more_boundary(self, co_tiny):
        coarse = build_hepv(co_tiny, k=2)
        fine = build_hepv(co_tiny, k=6)
        assert fine.stats.boundary_vertices > coarse.stats.boundary_vertices

    def test_lattice_ties(self):
        g = grid_graph(10, 10)
        hepv = HEPV.build(g, k=3)
        import random as _r

        rr = _r.Random(6)
        for _ in range(80):
            s, t = rr.randrange(g.n), rr.randrange(g.n)
            assert hepv.distance(s, t) == dijkstra_distance(g, s, t), (s, t)

    def test_unfrozen_rejected(self):
        g = Graph([0.0, 1.0], [0.0, 0.0], [(0, 1, 1.0)])
        with pytest.raises(ValueError):
            build_hepv(g)
