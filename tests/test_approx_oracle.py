"""Unit tests for the ε-approximate distance oracle (Appendix A / [24])."""

import math

import pytest

from repro.core.dijkstra import dijkstra_distance
from repro.extensions.approx_oracle import ApproxDistanceOracle
from repro.graph.graph import Graph
from tests.conftest import random_pairs


@pytest.fixture(scope="module")
def oracle_de(de_tiny):
    return ApproxDistanceOracle.build(de_tiny, epsilon=0.2)


class TestBuild:
    def test_epsilon_validated(self, de_tiny):
        for bad in (0.0, 0.5, 0.9, -0.1):
            with pytest.raises(ValueError):
                ApproxDistanceOracle.build(de_tiny, epsilon=bad)

    def test_unfrozen_rejected(self):
        g = Graph([0.0, 1.0], [0.0, 0.0], [(0, 1, 1.0)])
        with pytest.raises(ValueError):
            ApproxDistanceOracle.build(g)

    def test_pair_count_grows_with_precision(self, de_tiny):
        loose = ApproxDistanceOracle.build(de_tiny, epsilon=0.4)
        tight = ApproxDistanceOracle.build(de_tiny, epsilon=0.1)
        assert tight.index.stats.n_pairs > loose.index.stats.n_pairs


class TestGuarantee:
    def test_relative_error_bound(self, de_tiny, oracle_de, rng):
        bound = oracle_de.guaranteed_relative_error
        assert bound > 0
        for s, t in random_pairs(de_tiny, rng, 250):
            exact = dijkstra_distance(de_tiny, s, t)
            approx = oracle_de.distance(s, t)
            if exact == 0:
                assert approx == 0
                continue
            assert abs(approx - exact) <= bound * exact + 1e-9, (s, t)

    def test_tighter_epsilon_tighter_answers(self, de_tiny, rng):
        loose = ApproxDistanceOracle.build(de_tiny, epsilon=0.45)
        tight = ApproxDistanceOracle.build(de_tiny, epsilon=0.05)
        pairs = random_pairs(de_tiny, rng, 100)
        loose_err = tight_err = 0.0
        for s, t in pairs:
            exact = dijkstra_distance(de_tiny, s, t)
            if exact == 0:
                continue
            loose_err += abs(loose.distance(s, t) - exact) / exact
            tight_err += abs(tight.distance(s, t) - exact) / exact
        assert tight_err <= loose_err

    def test_same_vertex(self, oracle_de):
        assert oracle_de.distance(9, 9) == 0.0

    def test_disconnected_inf(self):
        g = Graph([0.0, 100.0, 900_000.0, 900_100.0], [0.0] * 4,
                  [(0, 1, 5.0), (2, 3, 5.0)]).freeze()
        oracle = ApproxDistanceOracle.build(g, epsilon=0.3)
        assert math.isinf(oracle.distance(0, 2))
        assert oracle.distance(0, 1) == 5.0


class TestSingleLookup:
    def test_faster_than_pcpd_distance_on_far_pairs(self, de_tiny, oracle_de, rng):
        """The [24] selling point: O(log n) instead of O(k) lookups."""
        import time

        from repro.core.pcpd import PCPD

        pcpd = PCPD.build(de_tiny)
        # Far pairs maximise k; the oracle cost is k-independent.
        pairs = sorted(
            random_pairs(de_tiny, rng, 200),
            key=lambda p: -de_tiny.euclidean_distance(*p),
        )[:40]
        t0 = time.perf_counter()
        for s, t in pairs:
            oracle_de.distance(s, t)
        oracle_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        for s, t in pairs:
            pcpd.distance(s, t)
        pcpd_time = time.perf_counter() - t0
        assert oracle_time < pcpd_time
