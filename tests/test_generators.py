"""Unit tests for synthetic road-network generation."""

import pytest

from repro.graph.components import is_connected
from repro.graph.generators import (
    ARTERIAL_SPEED,
    COORD_SCALE,
    HIGHWAY_SPEED,
    RoadNetworkSpec,
    generate_road_network,
    grid_graph,
    paper_example_graph,
)


class TestSpec:
    def test_resolved_defaults(self):
        spec = RoadNetworkSpec(n=400)
        assert spec.resolved_cities() >= 3
        assert 4 <= spec.resolved_hubs() <= 16

    def test_explicit_overrides(self):
        spec = RoadNetworkSpec(n=400, n_cities=7, n_hubs=5)
        assert spec.resolved_cities() == 7
        assert spec.resolved_hubs() == 5

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            generate_road_network(RoadNetworkSpec(n=4))


class TestGeneration:
    def test_deterministic(self):
        a, _ = generate_road_network(RoadNetworkSpec(n=150, seed=5))
        b, _ = generate_road_network(RoadNetworkSpec(n=150, seed=5))
        assert a.n == b.n and a.m == b.m
        assert sorted((e.u, e.v, e.weight) for e in a.edges()) == sorted(
            (e.u, e.v, e.weight) for e in b.edges()
        )

    def test_seed_changes_output(self):
        a, _ = generate_road_network(RoadNetworkSpec(n=150, seed=5))
        b, _ = generate_road_network(RoadNetworkSpec(n=150, seed=6))
        assert sorted((e.u, e.v) for e in a.edges()) != sorted(
            (e.u, e.v) for e in b.edges()
        )

    def test_connected_and_frozen(self, random_road):
        assert is_connected(random_road)
        assert random_road.frozen

    def test_road_like_density(self, random_road):
        # Table 1's arc/vertex ratio ~2.4 means ~1.2 undirected edges
        # per vertex; allow a generous band.
        ratio = random_road.m / random_road.n
        assert 1.0 <= ratio <= 1.7

    def test_degree_bounded(self, random_road):
        # §2 assumes a degree-bounded graph.
        assert random_road.max_degree() <= 12

    def test_coordinates_on_lattice(self, random_road):
        for v in range(random_road.n):
            x, y = random_road.coord(v)
            assert 0 <= x <= COORD_SCALE and 0 <= y <= COORD_SCALE
            assert x == int(x) and y == int(y)

    def test_coordinates_unique(self, random_road):
        coords = {random_road.coord(v) for v in range(random_road.n)}
        assert len(coords) == random_road.n

    def test_integer_positive_weights(self, random_road):
        for e in random_road.edges():
            assert e.weight >= 1
            assert e.weight == int(e.weight)

    def test_report_counts(self):
        g, report = generate_road_network(RoadNetworkSpec(n=150, seed=5))
        assert report.requested_n == 150
        assert report.final_n == g.n
        assert report.final_m == g.m
        assert report.n_highway_edges > 0

    def test_hierarchy_speeds_up_backbone(self):
        # Highway edges carry lower travel time per unit length than
        # local edges: spot-check the generated weight distribution by
        # comparing weight/length ratios.
        g, report = generate_road_network(RoadNetworkSpec(n=300, seed=1))
        ratios = []
        for e in g.edges():
            length = g.euclidean_distance(e.u, e.v)
            if length > 0:
                ratios.append(e.weight / length)
        ratios.sort()
        fastest, slowest = ratios[0], ratios[-1]
        # Fastest edges should be ~HIGHWAY_SPEED x faster than locals.
        assert slowest / max(fastest, 1e-12) >= ARTERIAL_SPEED
        assert HIGHWAY_SPEED > ARTERIAL_SPEED  # invariant of the model


class TestFixtures:
    def test_grid_graph_shape(self):
        g = grid_graph(4, 3)
        assert g.n == 12
        assert g.m == 17  # (4-1)*3 horizontal + 4*(3-1) vertical

    def test_grid_graph_distances(self, lattice):
        from repro.core.dijkstra import dijkstra_distance

        # Manhattan distance on a unit lattice.
        assert dijkstra_distance(lattice, 0, 5) == 5.0
        assert dijkstra_distance(lattice, 0, 6 * 5 - 1) == 5 + 4

    def test_grid_graph_validation(self):
        with pytest.raises(ValueError):
            grid_graph(0, 3)

    def test_paper_graph_is_figure1(self):
        g = paper_example_graph()
        assert g.n == 8 and g.m == 9
        weights = sorted(e.weight for e in g.edges())
        assert weights == [1, 1, 1, 1, 1, 1, 1, 2, 2]
