"""The cache hardening suite: corruption, concurrency, differential.

The registry's disk cache sits under every table and figure of the
reproduction, so its failure modes are the repo's worst failure modes:

- a corrupt/truncated/stale entry must *never* abort a run — it is
  quarantined and the artifact rebuilt (the corruption matrix below);
- parallel workers writing one key must leave exactly one valid entry
  (the concurrency tests);
- a warm cache must answer exactly like a cold build, for all five
  techniques (the differential test — stale-cache wrong answers are
  the worst possible bug in an experimental evaluation).
"""

from __future__ import annotations

import json
import multiprocessing
import pickle
import random
import sys
import threading

import pytest

from repro.core.dijkstra import dijkstra_distance
from repro.harness import cache as cache_mod
from repro.harness.cache import (
    CACHE_VERSION,
    MISSING,
    CacheIntegrityError,
    CacheStats,
    DiskCache,
    read_entry,
    read_header,
    sha256_hex,
    unique_tmp_path,
    write_entry,
    write_entry_payload,
)
from repro.harness.cli import main as cli_main
from repro.harness.registry import Registry
from repro.harness.timing import fmt_cache_stats

KEY = ("graph", "tiny", "DE")


def make_registry(cache_dir) -> Registry:
    return Registry(tier="tiny", pairs_per_set=5, cache=str(cache_dir),
                    verbose=False)


def warmed_entry(cache_dir):
    """Build one entry through the registry; returns (value, entry path)."""
    reg = make_registry(cache_dir)
    graph = reg.graph("DE")
    path = reg.disk_cache.entry_path(KEY)
    assert path.exists()
    return graph, path


# ----------------------------------------------------------------------
# Entry format
# ----------------------------------------------------------------------
class TestEntryFormat:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "x.pkl"
        header = write_entry(path, {"answer": 42}, ("k", 1), 1.25)
        value, read_back = read_entry(path)
        assert value == {"answer": 42}
        assert read_back == header
        assert header["cache_version"] == CACHE_VERSION
        assert header["key"] == ["k", "1"]
        assert header["build_seconds"] == 1.25
        assert header["sha256"] == sha256_hex(
            pickle.dumps({"answer": 42}, protocol=pickle.HIGHEST_PROTOCOL)
        )

    def test_read_header_is_cheap_and_consistent(self, tmp_path):
        path = tmp_path / "x.pkl"
        written = write_entry(path, list(range(1000)), ("big",), 0.0)
        assert read_header(path) == written

    def test_version_skew_rejected(self, tmp_path):
        path = tmp_path / "x.pkl"
        write_entry(path, 1, ("k",), 0.0)
        with pytest.raises(CacheIntegrityError, match="version skew"):
            read_entry(path, expected_version=CACHE_VERSION + 1)

    def test_unique_tmp_paths_differ_and_carry_pid(self, tmp_path):
        import os

        a = unique_tmp_path(tmp_path / "e.pkl")
        b = unique_tmp_path(tmp_path / "e.pkl")
        assert a != b
        assert str(os.getpid()) in a and a.endswith(".tmp")


# ----------------------------------------------------------------------
# The corruption matrix
# ----------------------------------------------------------------------
def _truncate(path):
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])


def _empty(path):
    path.write_bytes(b"")


def _garbage(path):
    path.write_bytes(b"\x05not a cache entry at all" * 8)


def _legacy_bare_pickle(path):
    # What the pre-hardening cache wrote: a headerless pickle.
    path.write_bytes(pickle.dumps({"legacy": True}))


def _version_skew(path):
    value, _header = read_entry(path)
    write_entry(path, value, KEY, 0.0, cache_version=CACHE_VERSION + 7)


def _checksum_flip(path):
    data = bytearray(path.read_bytes())
    data[-1] ^= 0xFF  # flip one payload bit; header stays intact
    path.write_bytes(bytes(data))


def _renamed_class(path):
    # A payload whose class no longer exists (renamed between releases):
    # header and checksum verify, but unpickling raises AttributeError.
    mod = sys.modules[__name__]
    cls = type("_EphemeralPayload", (), {"__module__": __name__})
    mod._EphemeralPayload = cls
    try:
        payload = pickle.dumps(cls(), protocol=pickle.HIGHEST_PROTOCOL)
    finally:
        del mod._EphemeralPayload
    write_entry_payload(path, payload, KEY, 0.0)


CORRUPTIONS = {
    "truncated": _truncate,
    "empty": _empty,
    "garbage": _garbage,
    "legacy-bare-pickle": _legacy_bare_pickle,
    "version-skew": _version_skew,
    "checksum-mismatch": _checksum_flip,
    "renamed-class": _renamed_class,
}


class TestCorruptionMatrix:
    @pytest.mark.parametrize("kind", sorted(CORRUPTIONS))
    def test_registry_rebuilds_instead_of_raising(self, tmp_path, kind):
        original, path = warmed_entry(tmp_path)
        CORRUPTIONS[kind](path)

        fresh = make_registry(tmp_path)
        rebuilt = fresh.graph("DE")  # must not raise
        assert rebuilt.n == original.n and rebuilt.m == original.m

        stats = fresh.cache_stats
        assert stats.rebuilds == 1 and stats.writes == 1 and stats.hits == 0
        bad = list((tmp_path / "quarantine").glob("*.bad"))
        assert len(bad) == 1

        # after the rebuild the cache is clean again
        assert cli_main(["cache", "verify", "--cache", str(tmp_path)]) == 0

    @pytest.mark.parametrize("kind", sorted(CORRUPTIONS))
    def test_disk_cache_load_reports_missing(self, tmp_path, kind):
        _original, path = warmed_entry(tmp_path)
        CORRUPTIONS[kind](path)
        cache = DiskCache(tmp_path)
        assert cache.load(KEY) is MISSING
        assert not path.exists()  # quarantined, never re-read

    def test_rebuild_is_recorded_in_persistent_counters(self, tmp_path):
        _original, path = warmed_entry(tmp_path)
        _garbage(path)
        make_registry(tmp_path).graph("DE")
        counters = DiskCache(tmp_path).manifest()["counters"]
        assert counters["rebuilds"] == 1
        assert counters["writes"] == 2  # original build + rebuild
        log = DiskCache(tmp_path).manifest()["quarantine_log"]
        assert len(log) == 1 and "magic" in log[0]["reason"]


# ----------------------------------------------------------------------
# Concurrency
# ----------------------------------------------------------------------
def _pool_build(cache_dir: str) -> tuple[int, int]:
    reg = Registry(tier="tiny", pairs_per_set=5, cache=cache_dir, verbose=False)
    graph = reg.graph("DE")
    return graph.n, graph.m


class TestConcurrency:
    def test_two_registries_one_valid_entry(self, tmp_path):
        reg_a = make_registry(tmp_path)
        reg_b = make_registry(tmp_path)
        ga, gb = reg_a.graph("DE"), reg_b.graph("DE")
        assert (ga.n, ga.m) == (gb.n, gb.m)
        assert reg_a.cache_stats.writes == 1
        assert reg_b.cache_stats.hits == 1
        cache = DiskCache(tmp_path)
        assert [p.name for p in cache.entry_files()] == ["graph-tiny-DE.pkl"]
        assert all(info.ok for info in cache.verify())

    def test_threaded_stores_of_same_key(self, tmp_path):
        # Many writers racing on one key: last writer wins atomically,
        # and the surviving entry always verifies.
        cache = DiskCache(tmp_path)
        value = {"payload": list(range(5000))}
        threads = [
            threading.Thread(target=cache.store, args=(("k",), value, 0.0))
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        loaded, header = read_entry(cache.entry_path(("k",)))
        assert loaded == value
        assert not list(tmp_path.rglob("*.tmp"))

    def test_multiprocess_pool_same_key(self, tmp_path):
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        with ctx.Pool(4) as pool:
            results = pool.map(_pool_build, [str(tmp_path)] * 4)
        assert len(set(results)) == 1  # every process saw the same graph

        cache = DiskCache(tmp_path)
        assert [p.name for p in cache.entry_files()] == ["graph-tiny-DE.pkl"]
        assert not list(tmp_path.rglob("*.tmp"))

        # the surviving entry's checksum matches its payload exactly
        path = cache.entry_path(KEY)
        _value, header = read_entry(path)
        raw = path.read_bytes()
        offset = len(cache_mod.MAGIC) + 4 + int.from_bytes(
            raw[len(cache_mod.MAGIC):len(cache_mod.MAGIC) + 4], "big"
        )
        assert sha256_hex(raw[offset:]) == header["sha256"]
        # and the manifest agrees
        manifest_entry = cache.manifest()["entries"]["graph-tiny-DE.pkl"]
        assert manifest_entry["sha256"] == header["sha256"]


# ----------------------------------------------------------------------
# Differential: warm cache answers exactly like a cold build
# ----------------------------------------------------------------------
def _technique_distances(reg: Registry, pairs) -> dict[str, list[float]]:
    techniques = {
        "bidijkstra": reg.bidijkstra("DE"),
        "ch": reg.ch("DE"),
        "tnr": reg.tnr("DE"),
        "silc": reg.silc("DE"),
        "pcpd": reg.pcpd("DE"),
    }
    return {
        name: [tech.distance(s, t) for s, t in pairs]
        for name, tech in techniques.items()
    }


class TestDifferential:
    def test_all_five_techniques_cold_then_warm(self, tmp_path):
        rng = random.Random(0xD1FF)
        cold_reg = make_registry(tmp_path)
        graph = cold_reg.graph("DE")
        pairs = [(rng.randrange(graph.n), rng.randrange(graph.n))
                 for _ in range(20)]
        truth = [dijkstra_distance(graph, s, t) for s, t in pairs]

        cold = _technique_distances(cold_reg, pairs)
        assert cold_reg.cache_stats.writes > 0
        for name, distances in cold.items():
            assert distances == truth, f"{name} diverges from Dijkstra (cold)"

        # a brand-new registry on the same dir: everything loads from disk
        warm_reg = make_registry(tmp_path)
        warm = _technique_distances(warm_reg, pairs)
        assert warm_reg.cache_stats.hits > 0
        assert warm_reg.cache_stats.rebuilds == 0
        assert warm_reg.cache_stats.writes == 0
        assert warm == cold
        for name, distances in warm.items():
            assert distances == truth, f"{name} diverges from Dijkstra (warm)"

        assert cli_main(["cache", "verify", "--cache", str(tmp_path)]) == 0


# ----------------------------------------------------------------------
# Introspection: counters, manifest, CLI
# ----------------------------------------------------------------------
class TestStats:
    def test_counters_accumulate_across_handles(self, tmp_path):
        warmed_entry(tmp_path)  # miss + write
        make_registry(tmp_path).graph("DE")  # hit
        counters = DiskCache(tmp_path).manifest()["counters"]
        assert counters == {"hits": 1, "misses": 1, "writes": 1}

    def test_cache_stats_str_uses_timing_formatter(self):
        stats = CacheStats(hits=2, misses=1)
        assert str(stats) == fmt_cache_stats(stats.as_dict())
        assert "2 hits" in str(stats) and "1 misses" in str(stats)

    def test_manifest_survives_corruption(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.store(("k",), 1)
        cache.manifest_path.write_text("{{{ not json")
        data = cache.manifest()
        assert data["entries"] == {}  # reset, not raise
        cache.store(("k2",), 2)  # and writable again
        assert "k2.pkl" in cache.manifest()["entries"]


class TestCacheCLI:
    def test_stats_and_list(self, tmp_path, capsys):
        warmed_entry(tmp_path)
        assert cli_main(["cache", "stats", "--cache", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries        1" in out and "1 writes" in out

        assert cli_main(["cache", "list", "--cache", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "graph-tiny-DE.pkl" in out and "1 entry" in out

    def test_verify_flags_and_quarantines_bad_entries(self, tmp_path, capsys):
        _graph, path = warmed_entry(tmp_path)
        _checksum_flip(path)
        assert cli_main(["cache", "verify", "--cache", str(tmp_path)]) == 1
        assert "FAIL" in capsys.readouterr().out
        assert path.exists()  # plain verify only reports

        assert cli_main(["cache", "verify", "--quarantine",
                         "--cache", str(tmp_path)]) == 1
        assert not path.exists()  # moved aside
        assert cli_main(["cache", "verify", "--cache", str(tmp_path)]) == 0

    def test_clear(self, tmp_path, capsys):
        warmed_entry(tmp_path)
        assert cli_main(["cache", "clear", "--cache", str(tmp_path)]) == 0
        assert not tmp_path.exists()
        assert cli_main(["cache", "list", "--cache", str(tmp_path)]) == 0
        assert "empty" in capsys.readouterr().out

    def test_cache_off_is_a_noop(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE", "off")
        assert cli_main(["cache", "stats"]) == 0
        assert "disabled" in capsys.readouterr().out
