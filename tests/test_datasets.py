"""Unit tests for the Table 1 dataset registry."""

import pytest

from repro import datasets
from repro.graph import dimacs


class TestRegistry:
    def test_ten_datasets_in_order(self):
        assert len(datasets.DATASET_NAMES) == 10
        assert datasets.DATASET_NAMES[0] == "DE"
        assert datasets.DATASET_NAMES[-1] == "US"

    def test_paper_sizes_ascending(self):
        sizes = [datasets.PAPER_TABLE1[n][1] for n in datasets.DATASET_NAMES]
        assert sizes == sorted(sizes)
        assert sizes[0] == 48_812 and sizes[-1] == 23_947_347

    def test_tier_sizes_ascending(self):
        for tier in datasets.TIERS:
            sizes = [datasets.dataset_spec(n, tier).n_target
                     for n in datasets.DATASET_NAMES]
            assert sizes == sorted(sizes)

    def test_spec_fields(self):
        spec = datasets.dataset_spec("CO", "small")
        assert spec.region == "Colorado"
        assert spec.paper_n == 435_666
        assert spec.allows_spatial_methods
        assert spec.tnr_grid in (16, 32, 64, 128)

    def test_spatial_methods_gate(self):
        allowed = [n for n in datasets.DATASET_NAMES
                   if datasets.dataset_spec(n).allows_spatial_methods]
        assert allowed == list(datasets.SPATIAL_METHOD_DATASETS)

    def test_unknown_names_rejected(self):
        with pytest.raises(KeyError):
            datasets.dataset_spec("XX")
        with pytest.raises(KeyError):
            datasets.load_dataset("XX")
        with pytest.raises(KeyError):
            datasets.dataset_spec("DE", "giant")

    def test_seeds_differ_between_datasets_and_tiers(self):
        seeds = {
            datasets.dataset_spec(n, t).seed
            for n in datasets.DATASET_NAMES
            for t in datasets.TIERS
        }
        assert len(seeds) == len(datasets.DATASET_NAMES) * len(datasets.TIERS)

    def test_tnr_grid_grows_with_n(self):
        small = datasets.dataset_spec("DE", "small").tnr_grid
        large = datasets.dataset_spec("US", "small").tnr_grid
        assert large >= small


class TestLoading:
    def test_load_close_to_target(self, de_tiny):
        spec = datasets.dataset_spec("DE", "tiny")
        assert abs(de_tiny.n - spec.n_target) <= spec.n_target * 0.05

    def test_load_cached(self):
        a = datasets.load_dataset("DE", "tiny")
        b = datasets.load_dataset("DE", "tiny")
        assert a is b

    def test_generation_report(self):
        report = datasets.generation_report("DE", "tiny")
        assert report.final_n > 0 and report.final_m > 0

    def test_dimacs_dir_override(self, tmp_path, de_tiny):
        dimacs.save(de_tiny, tmp_path / "NH.gr", tmp_path / "NH.co")
        g = datasets.load_dataset("NH", "tiny", dimacs_dir=tmp_path)
        # The override wins: same shape as the saved DE graph, not NH's.
        assert g.n == de_tiny.n
        assert g.frozen

    def test_dimacs_dir_missing_files_fall_back(self, tmp_path):
        g = datasets.load_dataset("DE", "tiny", dimacs_dir=tmp_path)
        assert g.n > 0
