"""Unit tests for connectivity utilities."""

from repro.graph.components import connected_components, is_connected, largest_component
from repro.graph.graph import Graph


def two_islands() -> Graph:
    g = Graph([float(i) for i in range(5)], [0.0] * 5)
    g.add_edge(0, 1, 1.0)
    g.add_edge(1, 2, 1.0)
    g.add_edge(3, 4, 1.0)
    return g


class TestComponents:
    def test_two_components_largest_first(self):
        comps = connected_components(two_islands())
        assert comps == [[0, 1, 2], [3, 4]]

    def test_isolated_vertices_are_components(self):
        g = Graph([0.0, 1.0, 2.0], [0.0] * 3, [(0, 1, 1.0)])
        comps = connected_components(g)
        assert comps == [[0, 1], [2]]

    def test_empty_graph(self):
        assert connected_components(Graph([], [])) == []
        assert is_connected(Graph([], []))

    def test_is_connected(self, lattice):
        assert is_connected(lattice)
        assert not is_connected(two_islands())

    def test_largest_component_renumbers(self):
        sub, old = largest_component(two_islands())
        assert old == [0, 1, 2]
        assert sub.n == 3 and sub.m == 2
        assert sub.has_edge(0, 1) and sub.has_edge(1, 2)

    def test_largest_component_of_connected_is_identity_shape(self, lattice):
        sub, old = largest_component(lattice)
        assert sub.n == lattice.n and sub.m == lattice.m
        assert old == list(range(lattice.n))

    def test_datasets_are_connected(self, de_tiny, co_tiny):
        assert is_connected(de_tiny)
        assert is_connected(co_tiny)
