"""Unit tests for the core Graph structure."""

import math

import pytest

from repro.graph.graph import Edge, Graph


def tri() -> Graph:
    return Graph([0.0, 1.0, 0.5], [0.0, 0.0, 1.0],
                 [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 4.0)])


class TestConstruction:
    def test_counts(self):
        g = tri()
        assert g.n == 3
        assert g.m == 3

    def test_empty_graph(self):
        g = Graph([], [])
        assert g.n == 0 and g.m == 0
        assert list(g.edges()) == []

    def test_vertices_without_edges(self):
        g = Graph([0.0, 1.0], [0.0, 1.0])
        assert g.n == 2 and g.m == 0
        assert g.degree(0) == 0

    def test_mismatched_coords_rejected(self):
        with pytest.raises(ValueError):
            Graph([0.0], [0.0, 1.0])

    def test_self_loop_rejected(self):
        g = Graph([0.0, 1.0], [0.0, 0.0])
        with pytest.raises(ValueError):
            g.add_edge(1, 1, 1.0)

    def test_nonpositive_weight_rejected(self):
        g = Graph([0.0, 1.0], [0.0, 0.0])
        with pytest.raises(ValueError):
            g.add_edge(0, 1, 0.0)
        with pytest.raises(ValueError):
            g.add_edge(0, 1, -2.0)

    def test_out_of_range_vertex_rejected(self):
        g = Graph([0.0, 1.0], [0.0, 0.0])
        with pytest.raises(IndexError):
            g.add_edge(0, 2, 1.0)
        with pytest.raises(IndexError):
            g.add_edge(-7, 0, 1.0)

    def test_parallel_edges_keep_minimum(self):
        g = Graph([0.0, 1.0], [0.0, 0.0])
        g.add_edge(0, 1, 5.0)
        g.add_edge(0, 1, 3.0)   # lighter: replaces
        g.add_edge(1, 0, 9.0)   # heavier (either direction): ignored
        assert g.m == 1
        assert g.edge_weight(0, 1) == 3.0
        assert g.edge_weight(1, 0) == 3.0


class TestFreeze:
    def test_freeze_blocks_mutation(self):
        g = tri().freeze()
        with pytest.raises(RuntimeError):
            g.add_edge(0, 1, 1.0)

    def test_freeze_returns_self(self):
        g = tri()
        assert g.freeze() is g
        assert g.frozen

    def test_weight_map_requires_frozen(self):
        g = tri()
        with pytest.raises(RuntimeError):
            g.weight_map(0)
        g.freeze()
        assert g.weight_map(1) == {0: 1.0, 2: 2.0}


class TestInspection:
    def test_neighbors_symmetric(self):
        g = tri()
        assert (1, 1.0) in g.neighbors(0)
        assert (0, 1.0) in g.neighbors(1)

    def test_degree_and_max_degree(self):
        g = tri()
        assert g.degree(0) == 2
        assert g.max_degree() == 2

    def test_has_edge(self):
        g = tri()
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        g2 = Graph([0.0, 1.0, 2.0], [0.0] * 3, [(0, 1, 1.0)])
        assert not g2.has_edge(0, 2)

    def test_edge_weight_missing_raises(self):
        g = Graph([0.0, 1.0, 2.0], [0.0] * 3, [(0, 1, 1.0)])
        with pytest.raises(KeyError):
            g.edge_weight(0, 2)

    def test_edges_iterates_each_once_normalised(self):
        g = tri()
        edges = list(g.edges())
        assert len(edges) == 3
        assert all(e.u < e.v for e in edges)

    def test_coord(self):
        g = tri()
        assert g.coord(2) == (0.5, 1.0)

    def test_metric_helpers(self):
        g = tri()
        assert g.euclidean_distance(0, 1) == 1.0
        assert g.chebyshev_distance(0, 2) == 1.0

    def test_path_weight(self):
        g = tri()
        assert g.path_weight([0, 1, 2]) == 3.0
        assert g.path_weight([2]) == 0.0
        with pytest.raises(KeyError):
            Graph([0.0, 1.0, 2.0], [0.0] * 3, [(0, 1, 1.0)]).path_weight([0, 2])

    def test_bounding_box_cached_when_frozen(self):
        g = tri().freeze()
        assert g.bounding_box() is g.bounding_box()


class TestDerivation:
    def test_induced_subgraph(self):
        g = tri()
        sub, old = g.induced_subgraph([2, 0])
        assert old == [2, 0]
        assert sub.n == 2
        assert sub.edge_weight(0, 1) == 4.0  # old (2, 0) edge

    def test_induced_subgraph_rejects_duplicates(self):
        with pytest.raises(ValueError):
            tri().induced_subgraph([0, 0])

    def test_without_vertices_isolates(self):
        g = tri()
        stripped = g.without_vertices([1])
        assert stripped.n == 3
        assert stripped.degree(1) == 0
        assert stripped.edge_weight(0, 2) == 4.0
        assert not stripped.has_edge(0, 1)

    def test_copy_is_unfrozen_and_equal(self):
        g = tri().freeze()
        c = g.copy()
        assert not c.frozen
        assert sorted(e.key() for e in c.edges()) == sorted(e.key() for e in g.edges())
        c.add_edge(0, 1, 0.5)  # copy stays mutable
        assert g.edge_weight(0, 1) == 1.0


class TestEdge:
    def test_make_normalises(self):
        e = Edge.make(5, 2, 1.5)
        assert (e.u, e.v) == (2, 5)
        assert e.key() == (2, 5)

    def test_other(self):
        e = Edge.make(1, 2, 1.0)
        assert e.other(1) == 2
        assert e.other(2) == 1
        with pytest.raises(ValueError):
            e.other(7)


class TestPaperGraph:
    def test_shape(self, paper_graph):
        assert paper_graph.n == 8
        assert paper_graph.m == 9

    def test_weights_match_figure1(self, paper_graph):
        assert paper_graph.edge_weight(1, 7) == 2.0  # v2-v8
        assert paper_graph.edge_weight(5, 7) == 2.0  # v6-v8
        light = [e for e in paper_graph.edges() if e.weight == 1.0]
        assert len(light) == 7

    def test_v1_neighbours(self, paper_graph):
        # §3.2: "v1 has only two neighbors v3 and v8"
        assert sorted(v for v, _ in paper_graph.neighbors(0)) == [2, 7]

    def test_v2_neighbours(self, paper_graph):
        # §3.2: "v2 has only two neighbors v3 and v8"
        assert sorted(v for v, _ in paper_graph.neighbors(1)) == [2, 7]

    def test_walkthrough_distance(self, paper_graph):
        # §3.2: dist(v3, v7) = 6 via v8.
        from repro.core.dijkstra import dijkstra_distance

        assert dijkstra_distance(paper_graph, 2, 6) == 6.0
