"""Live epoch-swap tests: the serving side of the dynamics subsystem.

The contract under test (docs/SERVING.md): a weight-update batch
repairs the indexes, drains the scheduler, republishes segments side by
side, flips every worker at a barrier, and unlinks the old epoch — with
**zero mixed-epoch answers**: every reply is stamped with the epoch it
was answered under and audited against the epoch it was admitted under.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core import dijkstra_distance
from repro.graph.csr import HAVE_SCIPY
from repro.queries.workloads import rush_hour_churn
from repro.serve import BatchingScheduler, QueryService, ServiceConfig

pytestmark = pytest.mark.skipif(
    not HAVE_SCIPY, reason="the dynamics subsystem needs scipy"
)

DATASET = "DE"


@pytest.fixture(scope="module")
def registry():
    from repro.harness.registry import Registry

    return Registry(tier="small", verbose=False)


@pytest.fixture(scope="module")
def phases(registry):
    return rush_hour_churn(
        registry.graph(DATASET),
        bursts=2,
        edges_per_burst=5,
        queries_per_phase=8,
        seed=13,
    )


def _reference_distances(registry, state, queries):
    from repro.dynamic import reweight_graph

    g2 = reweight_graph(registry.graph(DATASET), state.csr)
    return np.array([dijkstra_distance(g2, u, v) for u, v in queries])


@pytest.mark.parametrize("transport", ["ring", "pipe"])
class TestLiveSwap:
    def test_churn_swaps_clean_on_both_transports(
        self, registry, phases, transport
    ):
        from repro.dynamic import DynamicState

        config = ServiceConfig(
            dataset=DATASET,
            tier="small",
            workers=2,
            techniques=("ch", "tnr", "labels"),
            transport=transport,
        )
        ref = DynamicState(
            registry.graph(DATASET),
            registry.ch(DATASET),
            with_labels=False,
        )
        with QueryService(config, registry=registry) as svc:
            assert svc.epoch == 0
            fut = svc.submit("ch", [(0, 5)])
            svc.drain()
            fut.result()
            assert fut.epoch == 0 and fut.served_epoch == 0

            old_names = [
                e["segment"]
                for e in svc.manifest["techniques"].values()
            ]
            for i, ph in enumerate(phases, start=1):
                edges = [e for e, _ in ph.updates]
                ws = [w for _, w in ph.updates]
                report = svc.apply_updates(edges, ws)
                ref.apply_updates(edges, ws)
                assert report.epoch == i == svc.epoch
                assert svc.manifest["fingerprint"]["epoch"] == i
                want = _reference_distances(registry, ref, ph.queries)
                for tech in ("ch", "tnr", "labels", "dijkstra"):
                    fut = svc.submit(tech, list(ph.queries))
                    svc.drain()
                    got = np.asarray(fut.result())
                    # Admitted and answered on the new epoch...
                    assert fut.epoch == i and fut.served_epoch == i
                    # ...with exact post-update distances.
                    np.testing.assert_array_equal(got, want)

            status = svc.status()
            assert status["epoch"] == len(phases)
            assert status["epoch_mismatches"] == 0
            # The old epoch's segments are provably unlinked: attaching
            # by their manifest names must fail.
            for name in old_names:
                with pytest.raises(FileNotFoundError):
                    shared_memory.SharedMemory(name=name)
            # The live manifest points at the new epoch's names.
            for e in svc.manifest["techniques"].values():
                assert f"-e{len(phases)}-" in e["segment"]
                shm = shared_memory.SharedMemory(name=e["segment"])
                shm.close()

    def test_swap_survives_worker_respawn(self, registry, phases, transport):
        """A worker killed right before the flip is respawned onto the
        current manifest; the barrier still completes and answers stay
        exact."""
        import os
        import signal

        config = ServiceConfig(
            dataset=DATASET,
            tier="small",
            workers=2,
            techniques=("ch",),
            transport=transport,
        )
        ph = phases[0]
        edges = [e for e, _ in ph.updates]
        ws = [w for _, w in ph.updates]
        with QueryService(config, registry=registry) as svc:
            os.kill(svc.pool.worker_pids[0], signal.SIGKILL)
            svc.apply_updates(edges, ws)
            from repro.dynamic import DynamicState

            ref = DynamicState(
                registry.graph(DATASET),
                registry.ch(DATASET),
                with_labels=False,
            )
            ref.apply_updates(edges, ws)
            want = _reference_distances(registry, ref, ph.queries)
            fut = svc.submit("ch", list(ph.queries))
            svc.drain()
            np.testing.assert_array_equal(np.asarray(fut.result()), want)
            assert fut.served_epoch == 1
            assert svc.scheduler.epoch_mismatches == 0


class TestSwapGuards:
    def test_unrepairable_technique_rejected(self, registry):
        config = ServiceConfig(
            dataset=DATASET, tier="small", workers=1, techniques=("silc",)
        )
        with QueryService(config, registry=registry) as svc:
            with pytest.raises(ValueError, match="silc"):
                svc.apply_updates([(0, 1)], [2.0])

    def test_epoch_mismatch_fails_the_batch(self):
        """A reply stamped with a foreign epoch must never reach the
        caller — the scheduler fails the batch and counts it."""

        class _StaleEpochPool:
            restarts = 0

            def __init__(self):
                self._pending = []

            def submit(self, batch_id, technique, pairs, meta=None):
                self._pending.append((batch_id, len(pairs)))

            def poll(self, timeout=0.0):
                events = [
                    ("done", bid, np.ones(n), {"epoch": 99})
                    for bid, n in self._pending
                ]
                self._pending.clear()
                return events

        sched = BatchingScheduler(
            _StaleEpochPool(),
            published=("ch", "dijkstra"),
            max_batch=8,
            batch_window_s=0.0,
            max_queue=8,
        )
        fut = sched.submit("ch", [(0, 1)])
        deadline = 50
        while not fut.done and deadline:
            sched.pump(0.01)
            deadline -= 1
        assert fut.done
        with pytest.raises(RuntimeError, match="epoch mismatch"):
            fut.result()
        assert sched.epoch_mismatches == 1
        assert sched.stats()["epoch_mismatches"] == 1
