"""Adversarial property tests: every technique, every pair, odd graphs.

The road-network generator produces well-behaved inputs; these tests
instead build *hostile* small graphs — random topologies, duplicate-ish
geometry, maximal shortest-path ties — and check that all five
techniques (plus the extensions) agree with Dijkstra on **all** vertex
pairs. This is where the tie-handling bugs (TNR access-node coverage,
SILC tie-broken first hops, PCPD canonical paths) would resurface.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.bidirectional import BidirectionalDijkstra
from repro.core.ch import ContractionHierarchy
from repro.core.dijkstra import dijkstra_sssp
from repro.core.pcpd import PCPD
from repro.core.silc import SILC
from repro.core.tnr import TransitNodeRouting, build_tnr
from repro.extensions import ALT, ArcFlags
from repro.graph.generators import grid_graph
from repro.graph.graph import Graph

SLOW = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def small_connected_graphs(draw):
    """Random connected graph: spanning tree + extra edges, lattice coords."""
    n = draw(st.integers(6, 26))
    coords = draw(
        st.lists(
            st.tuples(st.integers(0, 50), st.integers(0, 50)),
            min_size=n, max_size=n, unique=True,
        )
    )
    g = Graph([c[0] for c in coords], [c[1] for c in coords])
    # Random spanning tree keeps it connected.
    for v in range(1, n):
        u = draw(st.integers(0, v - 1))
        w = draw(st.integers(1, 9))
        g.add_edge(u, v, float(w))
    # Extra edges create ties and alternative routes.
    extra = draw(st.integers(0, n))
    for _ in range(extra):
        a = draw(st.integers(0, n - 1))
        b = draw(st.integers(0, n - 1))
        if a != b and not g.has_edge(a, b):
            g.add_edge(a, b, float(draw(st.integers(1, 9))))
    return g.freeze()


def all_pairs_reference(g: Graph) -> list[list[float]]:
    return [dijkstra_sssp(g, s)[0] for s in range(g.n)]


class TestAllTechniquesAllPairs:
    @SLOW
    @given(g=small_connected_graphs())
    def test_agreement_on_random_graphs(self, g):
        ref = all_pairs_reference(g)
        ch = ContractionHierarchy.build(g)
        techniques = [
            BidirectionalDijkstra(g),
            ch,
            TransitNodeRouting(g, build_tnr(g, ch, 16), ch),
            SILC.build(g),
            PCPD.build(g),
            ALT.build(g, n_landmarks=3),
            ArcFlags.build(g, k=4),
        ]
        for tech in techniques:
            for s in range(g.n):
                for t in range(g.n):
                    assert tech.distance(s, t) == ref[s][t], (
                        tech.name, s, t,
                    )

    @SLOW
    @given(g=small_connected_graphs(), seed=st.integers(0, 999))
    def test_paths_are_optimal_walks(self, g, seed):
        ref = all_pairs_reference(g)
        ch = ContractionHierarchy.build(g)
        silc = SILC.build(g)
        s = seed % g.n
        t = (seed // g.n) % g.n
        for tech in (ch, silc):
            d, path = tech.path(s, t)
            assert d == ref[s][t]
            if path is not None:
                assert path[0] == s and path[-1] == t
                assert g.path_weight(path) == d


class TestTieHeavyLattices:
    """Uniform lattices maximise equal-length shortest paths."""

    @pytest.mark.parametrize("dims", [(12, 12), (20, 5), (3, 40)])
    def test_all_techniques_on_lattice(self, dims):
        g = grid_graph(*dims)
        ref = all_pairs_reference(g)
        ch = ContractionHierarchy.build(g)
        techniques = [
            ch,
            TransitNodeRouting(g, build_tnr(g, ch, 16), ch),
            SILC.build(g),
        ]
        probes = [(0, g.n - 1), (1, g.n - 2), (g.n // 2, 0), (3, g.n // 3)]
        for tech in techniques:
            for s, t in probes:
                assert tech.distance(s, t) == ref[s][t], tech.name

    def test_pcpd_on_small_lattice(self):
        g = grid_graph(6, 6)
        ref = all_pairs_reference(g)
        pcpd = PCPD.build(g)
        for s in range(g.n):
            for t in range(g.n):
                assert pcpd.distance(s, t) == ref[s][t]


class TestDegenerateTopologies:
    def path_graph(self, k: int) -> Graph:
        g = Graph([float(i) for i in range(k)], [0.0] * k)
        for i in range(k - 1):
            g.add_edge(i, i + 1, float(i + 1))
        return g.freeze()

    def star_graph(self, k: int) -> Graph:
        import math as m

        xs = [0.0] + [m.cos(2 * m.pi * i / k) * 100 for i in range(k)]
        ys = [0.0] + [m.sin(2 * m.pi * i / k) * 100 for i in range(k)]
        g = Graph(xs, ys)
        for i in range(1, k + 1):
            g.add_edge(0, i, float(i))
        return g.freeze()

    @pytest.mark.parametrize("maker,arg", [("path_graph", 12), ("star_graph", 9)])
    def test_all_on_degenerate(self, maker, arg):
        g = getattr(self, maker)(arg)
        ref = all_pairs_reference(g)
        ch = ContractionHierarchy.build(g)
        techniques = [
            BidirectionalDijkstra(g),
            ch,
            TransitNodeRouting(g, build_tnr(g, ch, 16), ch),
            SILC.build(g),
            PCPD.build(g),
        ]
        for tech in techniques:
            for s in range(g.n):
                for t in range(g.n):
                    assert tech.distance(s, t) == ref[s][t], tech.name

    def test_two_vertex_graph(self):
        g = Graph([0.0, 1000.0], [0.0, 0.0], [(0, 1, 7.0)]).freeze()
        ch = ContractionHierarchy.build(g)
        silc = SILC.build(g)
        pcpd = PCPD.build(g)
        for tech in (ch, silc, pcpd, BidirectionalDijkstra(g)):
            assert tech.distance(0, 1) == 7.0
            assert tech.path(0, 1) == (7.0, [0, 1])

    def test_single_vertex_graph(self):
        g = Graph([5.0], [5.0]).freeze()
        ch = ContractionHierarchy.build(g)
        assert ch.distance(0, 0) == 0.0
        silc = SILC.build(g)
        assert silc.path(0, 0) == (0.0, [0])
