"""Unit tests for the multiprocess build fan-out."""

import pytest

from repro.core.pcpd.pairs import APSPTables
from repro.core.silc import build_silc
from repro.core.tnr import TNRGrid
from repro.core.tnr.access_nodes import compute_access_nodes
from repro.parallel import effective_chunksize, map_with_context, resolve_workers


def _double(context, item):
    return context * item


class TestMapWithContext:
    def test_inline_path(self):
        assert map_with_context(_double, 3, [1, 2, 4]) == [3, 6, 12]

    def test_parallel_matches_inline(self):
        items = list(range(40))
        inline = map_with_context(_double, 7, items, workers=1)
        fanned = map_with_context(_double, 7, items, workers=2)
        assert fanned == inline

    def test_order_preserved(self):
        items = list(range(25))
        result = map_with_context(_double, 1, items, workers=3)
        assert result == items

    def test_single_item_stays_inline(self):
        assert map_with_context(_double, 2, [5], workers=8) == [10]

    def test_chunksize_small_batches_do_not_collapse(self):
        # Regression: floor division collapsed this to 1 (one IPC
        # round-trip per item) whenever items // workers rounded to 0.
        assert effective_chunksize(10, 8, 4) == 2

    def test_chunksize_respects_caller_cap(self):
        assert effective_chunksize(1000, 4, 8) == 8

    def test_chunksize_fewer_items_than_processes(self):
        assert effective_chunksize(3, 8, 8) == 1

    def test_chunksize_ceil_division(self):
        assert effective_chunksize(33, 32, 4) == 2
        assert effective_chunksize(64, 2, 64) == 32

    def test_chunksize_degenerate_inputs(self):
        assert effective_chunksize(0, 4, 8) == 1
        assert effective_chunksize(5, 0, 8) == 1

    def test_resolve_workers(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1
        assert resolve_workers(1) == 1
        assert resolve_workers(4) == 4
        assert resolve_workers(-1) >= 1


class TestBuildersParallel:
    def test_silc_identical_output(self, de_tiny):
        seq = build_silc(de_tiny, workers=1)
        par = build_silc(de_tiny, workers=2)
        assert seq.starts == par.starts
        assert seq.ends == par.ends
        assert seq.colors == par.colors
        assert seq.exceptions == par.exceptions

    def test_apsp_identical_output(self, de_tiny):
        import numpy as np

        seq = APSPTables.compute(de_tiny, workers=1)
        par = APSPTables.compute(de_tiny, workers=2)
        assert np.array_equal(seq.dist, par.dist)
        assert np.array_equal(seq.parent, par.parent)

    def test_access_nodes_identical_output(self, co_tiny):
        grid = TNRGrid(co_tiny, 16)
        seq = compute_access_nodes(co_tiny, grid, workers=1)
        par = compute_access_nodes(co_tiny, grid, workers=2)
        assert seq.keys() == par.keys()
        for cell in seq:
            assert seq[cell].access_nodes == par[cell].access_nodes
            assert seq[cell].vertex_distances == par[cell].vertex_distances
