"""Serving subsystem tests: segments, scheduler, pool, end-to-end.

Integration tests run a real 2-worker service on DE/small (builds are
sub-second there) and hold the subsystem to its core contract: every
answer bit-identical to the in-process batched endpoint, crashes
recovered, segments always released. Scheduler policy (coalescing,
admission control, retry-once) is tested against a deterministic fake
pool so no timing can flake it.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest
from multiprocessing import shared_memory

from repro import obs
from repro.core.silc.quadtree import compress_partition, compress_partitions
from repro.harness.experiments import batched_distances, request_stream
from repro.harness.registry import Registry
from repro.serve import (
    BatchingScheduler,
    Overloaded,
    QueryService,
    SegmentError,
    SegmentSet,
    ServiceConfig,
    attach_segments,
    load_manifest,
    save_manifest,
)
from repro.serve.segments import pack_graph
from repro.serve.service import PUBLISHABLE, build_payloads, serve_workload

DATASET = "DE"


@pytest.fixture(scope="module")
def registry():
    return Registry(tier="small", verbose=False)


@pytest.fixture(scope="module")
def workload(registry):
    pairs = [p for qset in registry.q_sets(DATASET) for p in qset.pairs]
    return pairs[:240]


@pytest.fixture(scope="module", params=["ring", "pipe"])
def service(registry, request):
    config = ServiceConfig(
        dataset=DATASET,
        tier="small",
        workers=2,
        techniques=("ch", "tnr", "silc", "labels"),
        transport=request.param,
    )
    with QueryService(config, registry=registry) as svc:
        yield svc


def _inprocess(registry, technique: str):
    from repro.core.techniques import registry_builders

    return registry_builders(registry)[technique](DATASET)


# ----------------------------------------------------------------------
# Segments
# ----------------------------------------------------------------------
class TestSegments:
    def test_publish_attach_roundtrip_bit_identical(self, registry):
        payloads = build_payloads(
            registry, DATASET, ("ch", "tnr", "silc", "labels")
        )
        assert "labels" in payloads
        from repro.persistence import GraphFingerprint

        csr = registry.graph(DATASET).csr()
        with SegmentSet(
            payloads, fingerprint=GraphFingerprint.of_csr(csr),
            dataset=DATASET, tier="small",
        ) as segs:
            with attach_segments(segs.manifest, foreign=True) as att:
                assert att.techniques == segs.techniques
                for tech, (arrays, _meta) in payloads.items():
                    for key, want in arrays.items():
                        got = att.arrays(tech)[key]
                        assert got.dtype == np.asarray(want).dtype
                        assert np.array_equal(got, want), (tech, key)

    def test_offsets_aligned_and_views_zero_copy(self, registry):
        csr = registry.graph(DATASET).csr()
        from repro.persistence import GraphFingerprint

        with SegmentSet(
            {"dijkstra": pack_graph(csr)},
            fingerprint=GraphFingerprint.of_csr(csr),
        ) as segs:
            for spec in segs.manifest["techniques"]["dijkstra"]["arrays"].values():
                assert spec["offset"] % 64 == 0
            with attach_segments(segs.manifest, foreign=True) as att:
                for arr in att.arrays("dijkstra").values():
                    # A view over the mapped buffer, not a copy.
                    assert not arr.flags.owndata

    def test_segments_are_shared_not_copies(self, registry):
        """A write through one attachment is visible through another."""
        csr = registry.graph(DATASET).csr()
        from repro.persistence import GraphFingerprint

        with SegmentSet(
            {"dijkstra": pack_graph(csr)},
            fingerprint=GraphFingerprint.of_csr(csr),
        ) as segs:
            with attach_segments(segs.manifest, foreign=True) as a, \
                    attach_segments(segs.manifest, foreign=True) as b:
                wa = a.arrays("dijkstra")["weights"]
                wb = b.arrays("dijkstra")["weights"]
                original = wa[0]
                wa[0] = 12345.5
                assert wb[0] == 12345.5
                wa[0] = original

    def test_close_unlinks_segments(self, registry):
        csr = registry.graph(DATASET).csr()
        from repro.persistence import GraphFingerprint

        segs = SegmentSet(
            {"dijkstra": pack_graph(csr)},
            fingerprint=GraphFingerprint.of_csr(csr),
        )
        name = segs.manifest["techniques"]["dijkstra"]["segment"]
        segs.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
        with pytest.raises(SegmentError, match="gone"):
            attach_segments(segs.manifest, foreign=True)

    def test_manifest_file_roundtrip_and_schema_gate(self, registry, tmp_path):
        csr = registry.graph(DATASET).csr()
        from repro.persistence import GraphFingerprint

        with SegmentSet(
            {"dijkstra": pack_graph(csr)},
            fingerprint=GraphFingerprint.of_csr(csr),
        ) as segs:
            path = tmp_path / "manifest.json"
            save_manifest(path, segs.manifest)
            assert load_manifest(path) == segs.manifest
            bad = dict(segs.manifest, schema=999)
            with pytest.raises(SegmentError, match="schema"):
                attach_segments(bad)


class TestManifestMismatches:
    """Every manifest/segment inconsistency must raise a typed
    :class:`SegmentError` — never attach garbage views."""

    def test_wrong_schema_version_rejected(self, registry):
        with pytest.raises(SegmentError, match="schema"):
            attach_segments({"schema": 0, "techniques": {}})
        with pytest.raises(SegmentError, match="schema"):
            attach_segments("not a manifest")  # type: ignore[arg-type]

    def test_wrong_graph_fingerprint_rejected(self, registry):
        """Segments published for a *different* graph must be refused by
        workers even when the arrays attach cleanly."""
        from repro.persistence import GraphFingerprint
        from repro.serve.pool import build_techniques

        csr = registry.graph(DATASET).csr()
        fp = GraphFingerprint.of_csr(csr)
        lying = GraphFingerprint(n=fp.n + 1, m=fp.m, total_weight=fp.total_weight)
        with SegmentSet(
            {"dijkstra": pack_graph(csr)}, fingerprint=lying,
        ) as segs:
            with attach_segments(segs.manifest, foreign=True) as att:
                with pytest.raises(SegmentError, match="fingerprint"):
                    build_techniques(att)

    def test_truncated_segment_rejected(self, registry):
        """A manifest promising more bytes than the segment holds must
        raise, not hand out views over out-of-bounds memory."""
        import copy

        from repro.persistence import GraphFingerprint

        csr = registry.graph(DATASET).csr()
        with SegmentSet(
            {"dijkstra": pack_graph(csr)},
            fingerprint=GraphFingerprint.of_csr(csr),
        ) as segs:
            lying = copy.deepcopy(segs.manifest)
            spec = lying["techniques"]["dijkstra"]["arrays"]["weights"]
            spec["shape"] = [spec["shape"][0] * 1000]
            with pytest.raises(SegmentError, match="truncated"):
                attach_segments(lying, foreign=True)


class TestSharedViews:
    """The worker-side shared views, exercised directly (no fork): each
    ``Shared*`` must answer bit-identically to the real index it wraps.
    The service tests prove the same thing end-to-end; this pins the
    views themselves so a mapping bug can't hide behind the pipe."""

    @pytest.fixture(scope="class")
    def views(self, registry):
        from repro.persistence import GraphFingerprint
        from repro.serve.pool import build_techniques

        payloads = build_payloads(registry, DATASET, PUBLISHABLE)
        csr = registry.graph(DATASET).csr()
        with SegmentSet(
            payloads, fingerprint=GraphFingerprint.of_csr(csr),
            dataset=DATASET, tier="small",
        ) as segs:
            with attach_segments(segs.manifest, foreign=True) as att:
                yield build_techniques(att)

    @pytest.fixture(scope="class")
    def pairs(self, workload):
        return workload[:40]

    @pytest.mark.parametrize("technique", PUBLISHABLE)
    def test_point_queries_bit_identical(
        self, views, registry, pairs, technique
    ):
        real = _inprocess(registry, technique)
        view = views[technique]
        assert view.name == real.name
        for s, t in pairs:
            assert view.distance(s, t) == real.distance(s, t)

    def test_labels_batch_apis_bit_identical(self, views, registry, pairs):
        hl = _inprocess(registry, "labels")
        view = views["labels"]
        assert np.array_equal(view.distances(pairs), hl.distances(pairs))
        sources = sorted({s for s, _ in pairs[:8]})
        targets = sorted({t for _, t in pairs[:8]})
        assert np.array_equal(
            view.distance_table(sources, targets),
            hl.distance_table(sources, targets),
        )

    def test_tables_bit_identical(self, views, registry, pairs):
        sources = sorted({s for s, _ in pairs[:6]})
        targets = sorted({t for _, t in pairs[:6]})
        for technique in ("ch", "tnr"):
            real = _inprocess(registry, technique)
            got = views[technique].distance_table(sources, targets)
            assert np.array_equal(got, real.distance_table(sources, targets))

    def test_shared_ch_upward_search_matches(self, views, registry, pairs):
        real = registry.ch(DATASET)
        for v in sorted({s for s, _ in pairs[:6]}):
            assert views["ch"].upward_search(v) == real.upward_search(v)


# ----------------------------------------------------------------------
# End-to-end agreement (the acceptance criterion)
# ----------------------------------------------------------------------
class TestServiceAgreement:
    @pytest.mark.parametrize("technique", PUBLISHABLE)
    def test_bit_identical_to_inprocess(
        self, service, registry, workload, technique
    ):
        requests = request_stream(workload, 8)
        futures, _ = serve_workload(service, technique, requests)
        got = np.array([d for f in futures for d in f.result()])
        want = np.asarray(batched_distances(_inprocess(registry, technique), workload))
        assert np.array_equal(got, want)

    def test_degrades_unpublished_technique(self, service, registry, workload):
        """pcpd is known but never published -> served by dijkstra."""
        future = service.submit("pcpd", workload[:16])
        service.drain()
        assert future.degraded
        want = np.asarray(
            batched_distances(_inprocess(registry, "dijkstra"), workload[:16])
        )
        assert np.array_equal(np.array(future.result()), want)
        assert service.scheduler.degraded >= 1

    def test_unknown_technique_rejected(self, service, workload):
        with pytest.raises(ValueError, match="unknown technique"):
            service.submit("astar", workload[:4])

    def test_status_snapshot(self, service):
        status = service.status()
        assert status["n_workers"] == 2
        assert len(status["worker_pids"]) == 2
        assert status["transport"] in ("ring", "pipe")
        assert status["transport"] == service.transport
        assert set(status["published"]) == {
            "ch", "dijkstra", "silc", "tnr", "labels"
        }
        assert all(v > 0 for v in status["segment_bytes"].values())
        # The per-worker telemetry section, sourced from the shm planes.
        rows = status["workers"]
        assert [r["worker"] for r in rows] == [0, 1]
        for row in rows:
            assert row["alive"] and row["ready"]
            assert {"pid", "batches", "inflight",
                    "last_commit_age_s"} <= set(row)
        assert "flight_recorded" in status


# ----------------------------------------------------------------------
# Scheduler policy (deterministic fake pool)
# ----------------------------------------------------------------------
class _FakePool:
    """Answers every pair with 1.0; scriptable death events."""

    def __init__(self):
        self.batches: list[tuple[int, str, list]] = []
        self.die_next = 0
        self._pending: list[tuple[int, int]] = []  # (batch_id, n_pairs)
        self.restarts = 0

    def submit(self, batch_id, technique, pairs, meta=None):
        self.batches.append((batch_id, technique, list(pairs)))
        self._pending.append((batch_id, len(pairs)))

    def poll(self, timeout=0.0):
        events = []
        for batch_id, n in self._pending:
            if self.die_next > 0:
                self.die_next -= 1
                self.restarts += 1
                events.append(("died", [batch_id]))
            else:
                events.append(("done", batch_id, np.ones(n)))
        self._pending.clear()
        return events


def _scheduler(**kwargs) -> BatchingScheduler:
    defaults = dict(published=("ch", "dijkstra"), max_batch=64,
                    batch_window_s=0.0, max_queue=8)
    defaults.update(kwargs)
    return BatchingScheduler(_FakePool(), **defaults)


class TestScheduler:
    def test_coalesces_requests_into_one_batch(self):
        sched = _scheduler()
        futures = [sched.submit("ch", [(0, i), (1, i)]) for i in range(8)]
        sched.drain()
        assert sched.dispatched_batches == 1
        assert sched.dispatched_pairs == 16
        (_, technique, pairs), = sched.pool.batches
        assert technique == "ch" and len(pairs) == 16
        for f in futures:
            assert f.result() == [1.0, 1.0]

    def test_requests_never_split_across_batches(self):
        sched = _scheduler(max_batch=5)
        # 3 requests of 3 pairs under a 5-pair cap: two whole requests
        # never fit together, and none may be split -> 3 batches of 3.
        for i in range(3):
            sched.submit("ch", [(i, 0), (i, 1), (i, 2)])
        sched.drain()
        assert sched.dispatched_batches == 3
        assert all(len(pairs) == 3 for _, _, pairs in sched.pool.batches)

    def test_oversized_request_gets_own_batch(self):
        sched = _scheduler(max_batch=4)
        big = [(0, t) for t in range(10)]
        fut = sched.submit("ch", big)
        sched.drain()
        assert sched.dispatched_batches == 1
        assert len(fut.result()) == 10

    def test_queue_overflow_sheds(self):
        sched = _scheduler(max_queue=3)
        for i in range(3):
            sched.submit("ch", [(0, i)])
        with pytest.raises(Overloaded, match="queue full"):
            sched.submit("ch", [(0, 99)])
        assert sched.shed == 1

    def test_deadline_shed_before_dispatch(self):
        sched = _scheduler()
        fut = sched.submit("ch", [(0, 1)], deadline_s=0.0)
        time.sleep(0.002)
        sched.drain()
        assert fut.status == "shed"
        assert sched.shed == 1
        with pytest.raises(Overloaded, match="deadline"):
            fut.result()

    def test_retry_once_then_fail(self):
        sched = _scheduler()
        sched.pool.die_next = 1
        fut = sched.submit("ch", [(0, 1)])
        sched.drain()
        assert sched.retries == 1 and fut.result() == [1.0]

        sched.pool.die_next = 2  # death, retry, death again
        fut2 = sched.submit("ch", [(0, 2)])
        sched.drain()
        assert fut2.status == "failed"
        with pytest.raises(RuntimeError, match="died twice"):
            fut2.result()

    def test_degrade_target_must_be_published(self):
        with pytest.raises(ValueError, match="not published"):
            _scheduler(published=("ch",), degrade_to="dijkstra")

    def test_empty_request_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            _scheduler().submit("ch", [])

    def test_flight_recorder_records_done_and_sheds(self):
        sched = _scheduler(max_queue=2)
        fut = sched.submit("ch", [(0, 1), (0, 2)])
        sched.drain()
        done = sched.flight.records()[-1]
        assert done["status"] == "done"
        assert done["pairs"] == 2 and done["retries"] == 0
        assert done["e2e_us"] >= 0
        assert done["id"] == fut.request_id > 0

        shed = sched.submit("ch", [(0, 3)], deadline_s=0.0)
        time.sleep(0.002)
        sched.drain()
        assert shed.status == "shed"
        assert sched.flight.records()[-1]["status"] == "shed"

        for i in range(2):
            sched.submit("ch", [(0, i)])
        with pytest.raises(Overloaded):
            sched.submit("ch", [(0, 99)])  # queue full -> recorded too
        assert sched.flight.records()[-1]["error"] == "queue full"
        sched.drain()
        assert sched.stats()["flight_recorded"] == len(sched.flight.records())

    def test_flight_recorder_records_worker_death(self):
        sched = _scheduler()
        sched.pool.die_next = 2  # death, retry, death again -> failed
        fut = sched.submit("ch", [(0, 2)])
        sched.drain()
        assert fut.status == "failed"
        rec = sched.flight.records()[-1]
        assert rec["status"] == "failed" and rec["retries"] == 1


# ----------------------------------------------------------------------
# Worker death, recovery, cleanup
# ----------------------------------------------------------------------
class TestRecovery:
    @pytest.mark.parametrize("transport", ["ring", "pipe"])
    @pytest.mark.parametrize("technique", ["ch", "labels"])
    def test_worker_kill_mid_workload_recovers(
        self, registry, workload, technique, transport
    ):
        config = ServiceConfig(
            dataset=DATASET, tier="small", workers=2,
            techniques=(technique,), max_batch=64, transport=transport,
        )
        with QueryService(config, registry=registry) as svc:
            requests = request_stream(workload, 8)
            futures = [svc.submit(technique, req) for req in requests]
            svc.pump()  # dispatch what is due
            os.kill(svc.pool.worker_pids[0], signal.SIGKILL)
            svc.drain()
            assert svc.pool.restarts >= 1
            got = np.array([d for f in futures for d in f.result()])
            want = np.asarray(
                batched_distances(_inprocess(registry, technique), workload)
            )
            assert np.array_equal(got, want)

    def test_segments_released_after_worker_crash(self, registry):
        config = ServiceConfig(
            dataset=DATASET, tier="small", workers=1, techniques=("ch",)
        )
        svc = QueryService(config, registry=registry)
        names = [
            entry["segment"]
            for entry in svc.manifest["techniques"].values()
        ]
        os.kill(svc.pool.worker_pids[0], signal.SIGKILL)
        svc.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)


# ----------------------------------------------------------------------
# Cross-process telemetry plane (shm worker metrics + latency breakdown)
# ----------------------------------------------------------------------
class TestTelemetryPlane:
    """The shared-memory metrics plane, end to end over real workers."""

    @pytest.fixture()
    def obs_enabled(self):
        """Enable obs BEFORE service creation so forked workers inherit
        the flag; restore and clear after."""
        was = obs.ENABLED
        obs.reset()
        obs.set_enabled(True)
        yield
        obs.set_enabled(was)
        obs.reset()

    def test_worker_counters_bit_identical_to_control(
        self, registry, workload, obs_enabled
    ):
        """The acceptance criterion: worker-side counters harvested over
        shared memory equal an in-process control run of the same pairs
        bit for bit, and equal the sum of the per-worker planes.

        Partitioning is pinned (one request per drain cycle => one
        batch per request; control uses the same batch size) because
        ``labels.query.pairs`` counts table cells, which depend on the
        batch split."""
        pairs = workload[:64]
        control_obj = _inprocess(registry, "labels")
        obs.reset()
        batched_distances(control_obj, pairs, batch_size=8)
        control = obs.registry().counter_values("labels.query")
        assert control["labels.query.pairs"] > 0

        obs.reset()
        config = ServiceConfig(
            dataset=DATASET, tier="small", workers=2,
            techniques=("labels",), max_batch=8, transport="ring",
        )
        with QueryService(config, registry=registry) as svc:
            obs.reset()  # drop publish-time counters: serving only
            for req in request_stream(pairs, 8):
                svc.submit("labels", req)
                svc.drain()
            snap = svc.merged_snapshot()
            per_worker = [
                s["counters"].get("labels.query.pairs", 0)
                for s in svc.pool.worker_snapshots()
            ]
        for name, want in control.items():
            assert snap["counters"][name] == want, name
        assert sum(per_worker) == control["labels.query.pairs"]

    def test_latency_breakdown_histograms(
        self, registry, workload, obs_enabled
    ):
        """serve.e2e_us / serve.stage_us.* land in the merged snapshot
        and obey the invariant e2e >= worker-compute stage."""
        config = ServiceConfig(
            dataset=DATASET, tier="small", workers=2,
            techniques=("ch",), max_batch=64, transport="ring",
        )
        with QueryService(config, registry=registry) as svc:
            obs.reset()
            serve_workload(svc, "ch", request_stream(workload[:64], 8))
            snap = svc.merged_snapshot()
        hists = snap["histograms"]
        e2e = hists["serve.e2e_us"]
        worker = hists["serve.stage_us.worker"]
        assert e2e["count"] == 8  # one observation per request
        assert worker["count"] >= 1  # one per batch
        # The request wrapping the slowest batch waited at least that
        # batch's worker time, so the maxima are ordered.
        assert e2e["max"] >= worker["max"]
        assert e2e["min"] >= 0 and worker["min"] >= 0
        for stage in ("queue", "scatter"):
            assert f"serve.stage_us.{stage}" in hists

    def test_status_workers_section_tracks_serving(
        self, registry, workload
    ):
        config = ServiceConfig(
            dataset=DATASET, tier="small", workers=2,
            techniques=("ch",), max_batch=64, transport="ring",
        )
        with QueryService(config, registry=registry) as svc:
            serve_workload(svc, "ch", request_stream(workload[:64], 8))
            rows = svc.status()["workers"]
            assert [r["worker"] for r in rows] == [0, 1]
            assert sum(r["batches"] for r in rows) >= 1
            for row in rows:
                assert row["alive"] and row["ready"]
                if row["batches"]:
                    # pid claimed by the worker itself, over shared memory
                    assert row["pid"] in svc.pool.worker_pids
                    assert row["last_commit_age_s"] is not None
                else:
                    assert row["last_commit_age_s"] is None

    def test_service_status_json_schema(self, service, tmp_path, capsys):
        """`service status --json`: the documented schema, asserted."""
        from repro.harness.cli import main as cli_main

        path = tmp_path / "manifest.json"
        save_manifest(path, service.manifest)
        assert cli_main(
            ["service", "status", "--manifest", str(path), "--json"]
        ) == 0
        info = json.loads(capsys.readouterr().out)
        assert set(info) == {
            "service", "dataset", "tier", "publisher_pid", "fingerprint",
            "techniques", "workers", "segments_ok",
        }
        assert info["segments_ok"] is True
        assert info["dataset"] == DATASET
        assert {r["worker"] for r in info["workers"]} == {0, 1}
        for row in info["workers"]:
            assert set(row) == {
                "worker", "pid", "batches", "last_commit_age_s"
            }
        for tech in info["techniques"].values():
            assert tech["nbytes"] > 0 and tech["arrays"] > 0

    def test_service_stats_cli_merged_view(
        self, registry, workload, obs_enabled, tmp_path, capsys
    ):
        """`service stats` renders the merged plane of a live service.

        Needs its own obs-enabled service (the module fixture forks its
        workers with obs off, so those planes stay empty)."""
        from repro.harness.cli import main as cli_main

        config = ServiceConfig(
            dataset=DATASET, tier="small", workers=2,
            techniques=("ch",), transport="ring",
        )
        with QueryService(config, registry=registry) as svc:
            for req in request_stream(workload[:32], 8):
                svc.submit("ch", req)
            svc.drain()
            path = tmp_path / "manifest.json"
            save_manifest(path, svc.manifest)
            assert cli_main(
                ["service", "stats", "--manifest", str(path), "--prom"]
            ) == 0
            out = capsys.readouterr().out
            assert "repro_serve_e2e_us" in out
            assert "repro_labels" not in out  # only the served technique
            assert cli_main(
                ["service", "stats", "--manifest", str(path), "--watch",
                 "--interval", "0.05", "--iterations", "2"]
            ) == 0
            out = capsys.readouterr().out
            assert out.count("\x1b[2J") == 2  # two clear-screen redraws
            assert "worker 0" in out and "worker 1" in out

    def test_sigusr1_metrics_snapshot(self, registry, tmp_path):
        config = ServiceConfig(
            dataset=DATASET, tier="small", workers=1,
            techniques=("ch",), transport="ring",
        )
        dump = tmp_path / "metrics.prom"
        prev = signal.getsignal(signal.SIGUSR1)
        with QueryService(config, registry=registry) as svc:
            svc.install_usr1_snapshot(dump)
            os.kill(os.getpid(), signal.SIGUSR1)
            time.sleep(0.05)
            assert dump.exists()
            assert "repro_serve_worker_0_pid" in dump.read_text()
        # close() restored the previous disposition
        assert signal.getsignal(signal.SIGUSR1) is prev

    def test_worker_restart_preserves_harvested_counters(
        self, registry, workload, obs_enabled
    ):
        """Counters of a killed worker survive into pool.retired and
        stay in the merged snapshot after its plane is reused."""
        config = ServiceConfig(
            dataset=DATASET, tier="small", workers=1,
            techniques=("labels",), max_batch=8, transport="ring",
        )
        with QueryService(config, registry=registry) as svc:
            obs.reset()
            for req in request_stream(workload[:16], 8):
                svc.submit("labels", req)
                svc.drain()
            before = svc.merged_snapshot()["counters"]["labels.query.pairs"]
            os.kill(svc.pool.worker_pids[0], signal.SIGKILL)
            for req in request_stream(workload[16:32], 8):
                svc.submit("labels", req)
                svc.drain()
            after = svc.merged_snapshot()
            assert svc.pool.restarts >= 1
            assert after["counters"]["labels.query.pairs"] > before
            retired = svc.pool.retired.snapshot()["counters"]
            assert retired.get("labels.query.pairs", 0) >= before


# ----------------------------------------------------------------------
# Trace-file collision fix
# ----------------------------------------------------------------------
class TestTraceNames:
    def test_unique_trace_path_embeds_pid_and_counter(self):
        a = obs.unique_trace_path("run.jsonl")
        b = obs.unique_trace_path("run.jsonl")
        assert a != b
        assert str(os.getpid()) in a
        assert a.endswith(".jsonl") and b.endswith(".jsonl")
        assert obs.unique_trace_path("bare").endswith(".jsonl")

    def test_foreign_claim_redirects_env_trace(self, tmp_path):
        """A second process under the same REPRO_TRACE must not clobber
        the claimant's file — it picks a pid-unique variant."""
        base = tmp_path / "trace.jsonl"
        env = dict(os.environ)
        env.update({
            "REPRO_TRACE": str(base),
            "REPRO_TRACE_PID": "1",  # someone else holds the claim
            "PYTHONPATH": "src",
        })
        out = subprocess.run(
            [sys.executable, "-c",
             "from repro import obs; print(obs.trace_path())"],
            capture_output=True, text=True, env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert out.returncode == 0, out.stderr
        path = out.stdout.strip()
        assert path != str(base)
        assert path.startswith(str(tmp_path / "trace-"))


# ----------------------------------------------------------------------
# `service clean`: orphaned-segment recovery after a SIGKILLed publisher
# ----------------------------------------------------------------------
_PUBLISHER_SCRIPT = """
import json, sys, time
# A SIGKILL leaves no chance to unlink, but CPython's resource_tracker
# daemon outlives the kill and would race `service clean` to the
# segments (and warn about them). Real deployments lose the tracker
# too (container teardown, OOM group kills); stub registration so the
# leak is deterministic.
from multiprocessing import resource_tracker
resource_tracker.register = lambda *a, **k: None
from repro.graph.generators import grid_graph
from repro.obs.shm import MetricsPlane
from repro.persistence import GraphFingerprint
from repro.serve.segments import RingBuffers, SegmentSet, pack_graph

g = grid_graph(4, 4)
csr = g.csr()
segs = SegmentSet(
    {"dijkstra": pack_graph(csr)},
    fingerprint=GraphFingerprint.of_csr(csr),
)
ring = RingBuffers(4, 8, token=segs.manifest["service"])
segs.manifest["transport"] = ring.manifest_entry
plane = MetricsPlane("rsv-" + segs.manifest["service"] + "-mwsched")
segs.manifest.setdefault("metrics", {})["scheduler"] = plane.entry
with open(sys.argv[1], "w") as fh:
    json.dump(segs.manifest, fh)
print("READY", flush=True)
time.sleep(300)
"""


class TestServiceClean:
    """A SIGKILLed publisher never unlinks; `service clean` must."""

    def _spawn_publisher(self, tmp_path):
        manifest_path = tmp_path / "manifest.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        proc = subprocess.Popen(
            [sys.executable, "-c", _PUBLISHER_SCRIPT, str(manifest_path)],
            stdout=subprocess.PIPE, text=True, env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert proc.stdout.readline().strip() == "READY"
        with open(manifest_path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
        return proc, manifest_path, manifest

    def test_sigkilled_publisher_segments_cleaned(self, tmp_path):
        from repro.harness.cli import main
        from repro.serve.segments import manifest_segment_names

        proc, manifest_path, manifest = self._spawn_publisher(tmp_path)
        names = manifest_segment_names(manifest)
        try:
            # Techniques + ring + scheduler plane are all accounted for.
            assert len(names) == 3
            # Refuses while the publisher is alive, even with --force.
            rc = main(
                ["service", "clean", "--manifest", str(manifest_path),
                 "--force"]
            )
            assert rc == 1
            from repro.serve.segments import _attach_shm

            for name in names:
                _attach_shm(name, foreign=True).close()

            proc.kill()
            proc.wait()
            # The kill leaked every segment...
            for name in names:
                _attach_shm(name, foreign=True).close()
            # ...and clean unlinks them all.
            rc = main(
                ["service", "clean", "--manifest", str(manifest_path),
                 "--force"]
            )
            assert rc == 0
            for name in names:
                with pytest.raises(FileNotFoundError):
                    shared_memory.SharedMemory(name=name)
            # Idempotent: a second run finds nothing and succeeds.
            rc = main(
                ["service", "clean", "--manifest", str(manifest_path),
                 "--force"]
            )
            assert rc == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
            from repro.serve.segments import unlink_orphans

            unlink_orphans(names)

    def test_clean_confirm_aborts_on_no(self, tmp_path, monkeypatch):
        from repro.harness.cli import main

        proc, manifest_path, _ = self._spawn_publisher(tmp_path)
        try:
            proc.kill()
            proc.wait()
            monkeypatch.setattr("builtins.input", lambda prompt="": "n")
            rc = main(["service", "clean", "--manifest", str(manifest_path)])
            assert rc == 1  # aborted, nothing unlinked
            monkeypatch.setattr("builtins.input", lambda prompt="": "y")
            rc = main(["service", "clean", "--manifest", str(manifest_path)])
            assert rc == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()


# ----------------------------------------------------------------------
# Satellite: fused SILC compression
# ----------------------------------------------------------------------
class TestBatchedQuadtree:
    def test_differential_vs_scalar(self):
        rng = np.random.default_rng(7)
        n, k = 80, 12
        codes = rng.integers(0, 1 << 10, n).tolist()
        codes[10] = codes[11] = codes[12]  # shared Morton codes -> mixed leaves
        codes.sort()
        colors = rng.integers(0, 5, (k, n)).astype(np.int64)
        skips = rng.integers(0, n, k).tolist()
        batched = compress_partitions(codes, colors, skips)
        saw_exceptions = 0
        for r in range(k):
            intervals, exc = compress_partition(codes, colors[r].tolist(), skips[r])
            assert batched[r][0] == intervals
            assert batched[r][1] == exc
            saw_exceptions += len(exc)
        assert saw_exceptions > 0  # the mixed-leaf path was exercised

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="codes"):
            compress_partitions([0, 1], np.zeros((2, 3), dtype=np.int64), [0, 0])


# ----------------------------------------------------------------------
# serve_bench gates (pure-function unit tests + the committed report)
# ----------------------------------------------------------------------
def _serve_bench_module():
    import importlib.util

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    spec = importlib.util.spec_from_file_location(
        "serve_bench", os.path.join(root, "scripts", "serve_bench.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestServeBenchGates:
    def _entry(self, **overrides):
        entry = {
            "qps_inprocess_batched": 30000.0,
            "qps_single": 10000.0,
            "qps_service_1w": 18000.0,
            "qps_service_2w": 20000.0,
            "speedup_2w": 2.0,
            "bit_identical": True,
        }
        entry.update(overrides)
        return entry

    def test_clean_report_passes(self):
        sb = _serve_bench_module()
        report = {"techniques": {
            "ch": self._entry(),
            "labels": self._entry(
                qps_service_1w=22000.0, qps_service_2w=25000.0
            ),
        }}
        assert sb.evaluate_gates(report) == []

    def test_floor_gate_catches_slow_technique(self):
        sb = _serve_bench_module()
        report = {"techniques": {"silc": self._entry(speedup_2w=0.4)}}
        failures = sb.evaluate_gates(report)
        assert len(failures) == 1 and "below the 1.0x floor" in failures[0]

    def test_tnr_floor_miss_now_gates(self):
        """The TNR exemption is gone: a floor miss fails the bench."""
        sb = _serve_bench_module()
        assert sb.EXPECTED_BELOW_FLOOR == frozenset()
        report = {"techniques": {"tnr": self._entry(speedup_2w=0.1)}}
        failures = sb.evaluate_gates(report)
        assert len(failures) == 1 and "below the 1.0x floor" in failures[0]

    def test_scaling_floor_gate(self):
        """2 workers may cost at most 5% of 1-worker throughput."""
        sb = _serve_bench_module()
        report = {"techniques": {
            "ch": self._entry(qps_service_1w=22000.0),  # 20000 < 0.95*22000
        }}
        failures = sb.evaluate_gates(report)
        assert any("the second worker costs throughput" in f
                   for f in failures)

    def test_monotonic_gate_respects_core_count(self):
        """ch/labels must climb 1w->2w->4w, but only over worker counts
        with real cores behind them (cpu_count in the report)."""
        sb = _serve_bench_module()
        entry = self._entry(qps_service_4w=19000.0)  # 4w below 2w
        report = {"techniques": {"ch": entry}, "cpu_count": 4}
        assert any("does not improve" in f
                   for f in sb.evaluate_gates(report))
        # Same numbers on a 2-core box: the 4w point has no hardware
        # behind it, so only 1w->2w is gated (and that one climbs).
        report = {"techniques": {"ch": dict(entry)}, "cpu_count": 2}
        assert sb.evaluate_gates(report) == []
        # Non-monotonic techniques (tnr) are never ladder-gated.
        report = {"techniques": {"tnr": dict(entry)}, "cpu_count": 4}
        assert sb.evaluate_gates(report) == []

    def test_labels_must_beat_ch(self):
        sb = _serve_bench_module()
        report = {"techniques": {
            "ch": self._entry(qps_service_2w=20000.0),
            "labels": self._entry(qps_service_2w=15000.0),
        }}
        failures = sb.evaluate_gates(report)
        assert any("does not beat ch" in f for f in failures)

    def test_bit_identity_and_baseline_regression_gate(self):
        sb = _serve_bench_module()
        report = {"techniques": {"ch": self._entry(bit_identical=False)}}
        assert any(
            "not bit-identical" in f for f in sb.evaluate_gates(report)
        )
        report = {"techniques": {"ch": self._entry(speedup_2w=1.6)}}
        baseline = {"techniques": {"ch": self._entry(speedup_2w=4.0)}}
        assert any(
            "below half the committed baseline" in f
            for f in sb.evaluate_gates(report, baseline)
        )

    def test_label_size_regression_gate(self):
        """`--check` fails when the mean hub-label size grows more than
        10% over the committed baseline; growth within slack passes."""
        sb = _serve_bench_module()
        baseline = {"techniques": {
            "labels": self._entry(
                qps_service_2w=25000.0, label_size_mean=27.4
            ),
        }}
        grown = {"techniques": {
            "labels": self._entry(
                qps_service_2w=25000.0, label_size_mean=31.0
            ),
        }}
        failures = sb.evaluate_gates(grown, baseline)
        assert any("label_size_mean" in f and "exceeds" in f
                   for f in failures)
        within = {"techniques": {
            "labels": self._entry(
                qps_service_2w=25000.0, label_size_mean=28.9
            ),
        }}
        assert sb.evaluate_gates(within, baseline) == []
        # Old baselines without the field are tolerated (no gate).
        legacy = {"techniques": {
            "labels": self._entry(qps_service_2w=25000.0),
        }}
        assert sb.evaluate_gates(grown, legacy) == []

    def test_committed_report_passes_gates_and_labels_beat_ch(self):
        """The acceptance criterion, pinned to the committed numbers:
        labels beat CH per-request QPS on DE-small at 2 workers, with
        the per-technique floor gate active."""
        import json

        sb = _serve_bench_module()
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        with open(os.path.join(root, "BENCH_serve.json")) as fh:
            report = json.load(fh)
        assert sb.evaluate_gates(report) == []
        techs = report["techniques"]
        assert techs["labels"]["qps_service_2w"] > techs["ch"]["qps_service_2w"]
        assert techs["labels"]["speedup_2w"] >= sb.FLOOR_2W
        assert techs["labels"]["bit_identical"] is True
        # The committed report carries the label-size baseline the
        # regression gate compares against.
        assert techs["labels"]["label_size_mean"] > 0
        assert techs["labels"]["label_size_max"] >= techs["labels"]["label_size_mean"]
        # Self-check: the committed report gates cleanly against itself.
        assert sb.evaluate_gates(report, report) == []


def test_request_stream_chunks():
    pairs = [(0, i) for i in range(10)]
    assert request_stream(pairs, 4) == [pairs[0:4], pairs[4:8], pairs[8:10]]
    assert request_stream([], 4) == []
    with pytest.raises(ValueError):
        request_stream(pairs, 0)
