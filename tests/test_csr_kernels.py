"""Differential tests: CSR kernels vs the legacy pure-Python Dijkstra.

The CSR kernels (:mod:`repro.graph.csr`) must be *bit-identical* to the
legacy loops — distances, tie-broken parents, and first hops — because
SILC and PCPD store one canonical answer per pair and the two
implementations are interchangeable behind the ``REPRO_NO_CSR`` knob.
These tests drive both over adversarial small graphs (duplicate-weight
ties, disconnected components, degenerate sizes) and compare raw
output, plus cover the dispatch knobs, the scratch pool contract, and
the CSR-based pickle round trip.
"""

import math
import pickle

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import dijkstra as dj
from repro.core.bidirectional import BidirectionalDijkstra
from repro.graph.csr import HAVE_SCIPY, kernel_for
from repro.graph.generators import grid_graph
from repro.graph.graph import Graph

pytestmark = pytest.mark.skipif(not HAVE_SCIPY, reason="scipy unavailable")

DIFF = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def small_graphs(draw):
    """Random small graph: tie-heavy weights, sometimes disconnected."""
    n = draw(st.integers(2, 24))
    coords = draw(
        st.lists(
            st.tuples(st.integers(0, 40), st.integers(0, 40)),
            min_size=n, max_size=n, unique=True,
        )
    )
    g = Graph([c[0] for c in coords], [c[1] for c in coords])
    for v in range(1, n):
        # Occasionally skip the spanning edge: disconnected vertices
        # exercise the unreachable (-1 / inf) paths of the derivations.
        if draw(st.integers(0, 9)) < 8:
            u = draw(st.integers(0, v - 1))
            g.add_edge(u, v, float(draw(st.integers(1, 5))))
    for _ in range(draw(st.integers(0, n))):
        a = draw(st.integers(0, n - 1))
        b = draw(st.integers(0, n - 1))
        if a != b and not g.has_edge(a, b):
            g.add_edge(a, b, float(draw(st.integers(1, 5))))
    return g.freeze()


def tie_diamond() -> Graph:
    """Two equal-length 0→3 paths; the tie-break must pick parent 1."""
    return Graph(
        [0.0, 1.0, 1.0, 2.0],
        [0.0, 1.0, -1.0, 0.0],
        [(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 1.0)],
    ).freeze()


class TestKernelLegacyEquivalence:
    @DIFF
    @given(g=small_graphs())
    def test_sssp_distances_and_parents(self, g):
        csr = g.csr()
        D, P = csr.sssp_many(list(range(g.n)), chunk=5)
        for s in range(g.n):
            dist_py, parent_py = dj._sssp_py(g, s)
            dist_k, parent_k = csr.sssp(s)
            assert np.array_equal(np.asarray(dist_py), dist_k)
            assert np.array_equal(np.asarray(parent_py), parent_k)
            assert np.array_equal(dist_k, D[s])
            assert np.array_equal(parent_k, P[s])

    @DIFF
    @given(g=small_graphs())
    def test_first_hops(self, g):
        csr = g.csr()
        hops = csr.first_hops_many(list(range(g.n)), chunk=7)
        for s in range(g.n):
            assert np.array_equal(np.asarray(dj._first_hop_py(g, s)), hops[s])

    @DIFF
    @given(g=small_graphs())
    def test_point_queries(self, g):
        csr = g.csr()
        targets = list(range(0, g.n, 2))
        for s in range(g.n):
            for t in range(g.n):
                assert dj._distance_kernel(g, csr, s, t) == dj._distance_py(g, s, t)
                assert dj._path_kernel(g, csr, s, t) == dj._path_py(g, s, t)
            assert dj._to_targets_kernel(g, csr, s, targets) == dj._to_targets_py(
                g, s, targets
            )

    def test_tie_break_prefers_smaller_predecessor(self):
        g = tie_diamond()
        dist_py, parent_py = dj._sssp_py(g, 0)
        dist_k, parent_k = g.csr().sssp(0)
        assert parent_py[3] == 1  # not 2: equal distance, smaller id wins
        assert np.array_equal(np.asarray(parent_py), parent_k)
        assert np.array_equal(np.asarray(dist_py), dist_k)
        assert np.array_equal(
            np.asarray(dj._first_hop_py(g, 0)), g.csr().first_hops_many([0])[0]
        )

    def test_bidirectional_matches_legacy_search(self, monkeypatch):
        g = grid_graph(8, 8)  # lattices maximise equal-length ties
        algo = BidirectionalDijkstra(g)
        monkeypatch.setenv("REPRO_NO_CSR", "1")
        legacy = [
            (algo.distance(s, t), algo.path(s, t))
            for s in range(0, g.n, 7)
            for t in range(0, g.n, 5)
        ]
        monkeypatch.delenv("REPRO_NO_CSR")
        monkeypatch.setenv("REPRO_FORCE_CSR", "1")
        kernel = [
            (algo.distance(s, t), algo.path(s, t))
            for s in range(0, g.n, 7)
            for t in range(0, g.n, 5)
        ]
        assert kernel == legacy


class TestDispatch:
    def test_no_csr_env_knob_forces_legacy(self, monkeypatch):
        g = tie_diamond()
        monkeypatch.setenv("REPRO_NO_CSR", "1")
        assert kernel_for(g, 0) is None
        dist, parent = dj.dijkstra_sssp(g, 0)
        assert isinstance(dist, list) and isinstance(parent, list)

    def test_force_csr_env_knob_uses_kernels(self, monkeypatch):
        g = tie_diamond()
        monkeypatch.delenv("REPRO_NO_CSR", raising=False)
        monkeypatch.setenv("REPRO_FORCE_CSR", "1")
        assert kernel_for(g) is g.csr()
        dist, parent = dj.dijkstra_sssp(g, 0)
        assert isinstance(dist, np.ndarray) and isinstance(parent, np.ndarray)
        legacy = dj._sssp_py(g, 0)
        assert np.array_equal(np.asarray(legacy[0]), dist)
        assert np.array_equal(np.asarray(legacy[1]), parent)

    def test_size_cutoff_keeps_tiny_graphs_on_python(self, monkeypatch):
        monkeypatch.delenv("REPRO_FORCE_CSR", raising=False)
        g = tie_diamond()
        assert kernel_for(g, 400) is None  # n=4 < cutoff
        assert kernel_for(g, 0) is g.csr()

    def test_unfrozen_graph_has_no_kernel(self):
        g = Graph([0.0, 1.0], [0.0, 0.0], [(0, 1, 1.0)])
        assert kernel_for(g, 0) is None
        with pytest.raises(RuntimeError):
            g.csr()
        assert dj.dijkstra_distance(g, 0, 1) == 1.0  # legacy path still works


class TestScratchPool:
    def test_borrow_release_recycles_clean_labels(self):
        csr = grid_graph(5, 5).csr()
        a = csr.borrow_labels()
        b = csr.borrow_labels()
        assert a is not b  # nested borrows must not alias
        a.dist[3] = 1.0
        a.parent[3] = 0
        a.touched.append(3)
        a.mark[2] = 1
        a.marked.append(2)
        csr.release_labels(a)
        c = csr.borrow_labels()
        assert c is a  # recycled, and reset:
        assert c.dist[3] == math.inf and c.parent[3] == -1
        assert c.mark[2] == 0 and not c.touched and not c.marked
        csr.release_labels(c)
        csr.release_labels(b)

    def test_kernels_return_labels_clean(self):
        g = grid_graph(4, 4)
        csr = g.csr()
        dj._distance_kernel(g, csr, 0, g.n - 1)
        dj._path_kernel(g, csr, 0, g.n - 1)
        dj._to_targets_kernel(g, csr, 0, [1, 5, g.n - 1])
        labels = csr.borrow_labels()
        assert all(d == math.inf for d in labels.dist)
        assert all(p == -1 for p in labels.parent)
        assert not any(labels.mark)
        csr.release_labels(labels)


class TestCSRRoundTrip:
    def test_frozen_graph_pickles_as_csr(self):
        g = grid_graph(6, 6)
        state = g.__getstate__()
        assert set(state) == {"csr"}  # compact arrays, not the object graph
        g2 = pickle.loads(pickle.dumps(g))
        assert g2.frozen and g2.n == g.n and g2.m == g.m
        assert np.array_equal(g2.csr().indptr, g.csr().indptr)
        assert np.array_equal(g2.csr().indices, g.csr().indices)
        assert np.array_equal(g2.csr().weights, g.csr().weights)
        for u in range(g.n):
            assert sorted(g2.neighbors(u)) == sorted(g.neighbors(u))
        assert dj._sssp_py(g2, 0) == dj._sssp_py(g, 0)

    def test_unfrozen_graph_survives_pickling_mutable(self):
        g = Graph([0.0, 1.0, 2.0], [0.0, 0.0, 0.0], [(0, 1, 1.0)])
        g2 = pickle.loads(pickle.dumps(g))
        assert not g2.frozen
        g2.add_edge(1, 2, 2.0)  # neighbour index must have been rebuilt
        assert g2.has_edge(1, 2) and g2.m == 2
        g2.add_edge(0, 1, 0.5)  # parallel-edge dedup still works
        assert g2.edge_weight(0, 1) == 0.5 and g2.m == 2

    def test_persistence_format3_round_trip(self, tmp_path):
        from repro import persistence
        from repro.core.ch import ContractionHierarchy

        g = grid_graph(5, 5)
        ch = ContractionHierarchy.build(g)
        path = persistence.save_index(tmp_path / "lattice.chx", ch.index, g)
        loaded = persistence.load_index(path, g, expected_kind="CHIndex")
        assert loaded.rank == ch.index.rank
        assert loaded.up == ch.index.up
