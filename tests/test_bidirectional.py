"""Unit tests for the bidirectional Dijkstra baseline (§3.1)."""

import math

from repro.core.bidirectional import BidirectionalDijkstra, UnidirectionalDijkstra
from repro.core.dijkstra import dijkstra_distance
from repro.graph.graph import Graph
from tests.conftest import random_pairs


class TestCorrectness:
    def test_paper_walkthrough(self, paper_graph):
        algo = BidirectionalDijkstra(paper_graph)
        assert algo.distance(2, 6) == 6.0  # v3 -> v7

    def test_agreement_with_dijkstra(self, co_tiny, bidij_co, rng):
        for s, t in random_pairs(co_tiny, rng, 150):
            assert bidij_co.distance(s, t) == dijkstra_distance(co_tiny, s, t)

    def test_paths_valid_and_optimal(self, co_tiny, bidij_co, rng):
        for s, t in random_pairs(co_tiny, rng, 80):
            d, path = bidij_co.path(s, t)
            assert path[0] == s and path[-1] == t
            assert co_tiny.path_weight(path) == d
            assert d == dijkstra_distance(co_tiny, s, t)

    def test_same_vertex(self, co_tiny, bidij_co):
        assert bidij_co.distance(5, 5) == 0.0
        assert bidij_co.path(5, 5) == (0.0, [5])

    def test_disconnected(self):
        g = Graph([0.0, 1.0, 2.0, 3.0], [0.0] * 4,
                  [(0, 1, 1.0), (2, 3, 1.0)]).freeze()
        algo = BidirectionalDijkstra(g)
        assert math.isinf(algo.distance(0, 3))
        d, path = algo.path(0, 3)
        assert math.isinf(d) and path is None

    def test_adjacent_vertices(self, lattice):
        algo = BidirectionalDijkstra(lattice)
        assert algo.distance(0, 1) == 1.0
        assert algo.path(0, 1) == (1.0, [0, 1])


class TestSearchSpace:
    def test_smaller_than_unidirectional(self, co_tiny, bidij_co, rng):
        # §3.1: each traversal covers ~dist/2, so the bidirectional
        # search settles fewer vertices than plain Dijkstra on average.
        from repro.core.dijkstra import settled_count

        bi_total = uni_total = 0
        for s, t in random_pairs(co_tiny, rng, 40):
            bidij_co.distance(s, t)
            bi_total += bidij_co.last_settled
            uni_total += settled_count(co_tiny, s, t)
        assert bi_total < uni_total

    def test_last_settled_updates(self, co_tiny, bidij_co):
        bidij_co.distance(0, co_tiny.n - 1)
        far = bidij_co.last_settled
        bidij_co.distance(0, 0)
        assert bidij_co.last_settled == 0
        assert far > 0


class TestUnidirectionalWrapper:
    def test_interface(self, co_tiny, rng):
        uni = UnidirectionalDijkstra(co_tiny)
        for s, t in random_pairs(co_tiny, rng, 30):
            d = uni.distance(s, t)
            assert d == dijkstra_distance(co_tiny, s, t)
            d2, path = uni.path(s, t)
            assert d2 == d and co_tiny.path_weight(path) == d
