"""Unit tests for index size accounting."""

import numpy as np

from repro.analysis.memory import deep_sizeof, megabytes


class Holder:
    def __init__(self, **kw):
        self.__dict__.update(kw)


class Slotted:
    __slots__ = ("a", "graph")

    def __init__(self, a, graph=None):
        self.a = a
        if graph is not None:
            self.graph = graph


class TestDeepSizeof:
    def test_numpy_counted_by_nbytes(self):
        arr = np.zeros(1000, dtype=np.float64)
        assert deep_sizeof(arr) >= 8000

    def test_containers_recursive(self):
        flat = deep_sizeof([1, 2, 3])
        nested = deep_sizeof([[1, 2, 3], [4, 5, 6]])
        assert nested > flat

    def test_shared_objects_counted_once(self):
        arr = np.zeros(10000, dtype=np.float64)
        assert deep_sizeof([arr, arr]) < 2 * deep_sizeof(arr)

    def test_graph_attribute_skipped(self, de_tiny):
        with_graph = Holder(a=[1, 2], graph=de_tiny)
        without = Holder(a=[1, 2])
        assert abs(deep_sizeof(with_graph) - deep_sizeof(without)) < 200

    def test_slots_supported_and_graph_skipped(self, de_tiny):
        a = Slotted(a=list(range(100)))
        b = Slotted(a=list(range(100)), graph=de_tiny)
        assert abs(deep_sizeof(a) - deep_sizeof(b)) < 200

    def test_dict_keys_and_values(self):
        small = deep_sizeof({1: "x"})
        big = deep_sizeof({i: "x" * 50 for i in range(100)})
        assert big > small * 20

    def test_index_ordering_matches_intuition(self, co_tiny, ch_co, tnr_co, silc_co):
        # The Figure 6(a) ordering at this scale: CH smallest.
        ch_bytes = deep_sizeof(ch_co.index)
        tnr_bytes = deep_sizeof(tnr_co.index)
        silc_bytes = deep_sizeof(silc_co.index)
        assert ch_bytes < tnr_bytes
        assert ch_bytes < silc_bytes


class TestUnits:
    def test_megabytes(self):
        assert megabytes(2_000_000) == 2.0
