"""Integration: every experiment runner end-to-end on the tiny tier.

One shared registry (tiny datasets, few pairs) runs the complete
catalogue — the same code path as ``repro-harness -e all`` — and checks
the structural integrity of each result: headers/rows consistent, raw
data present, and the relationships that must hold at *any* scale.
Timing-shape claims that need realistic scale live in benchmarks/.
"""

import math

import pytest

from repro.harness.experiments import all_keys, run
from repro.harness.registry import Registry


@pytest.fixture(scope="module")
def reg(tmp_path_factory):
    cache = tmp_path_factory.mktemp("figcache")
    return Registry(tier="tiny", pairs_per_set=8, cache=str(cache), verbose=False)


def rows_consistent(exp):
    assert exp.rows, exp.key
    for row in exp.rows:
        assert len(row) == len(exp.headers), (exp.key, row)


class TestEveryExperimentRuns:
    def test_catalogue_complete(self):
        assert len(all_keys()) == 16

    @pytest.mark.parametrize("key", ["table1", "table2", "appb", "summary"])
    def test_tables_and_checks(self, reg, key):
        exp = run(key, reg)
        rows_consistent(exp)

    @pytest.mark.parametrize("key", ["fig6", "fig7"])
    def test_space_and_silc_pcpd_figures(self, reg, key):
        exp = run(key, reg)
        rows_consistent(exp)

    @pytest.mark.parametrize("key", ["fig8", "fig10"])
    def test_vs_n_figures(self, reg, key):
        exp = run(key, reg, names=("DE", "CO", "US"))
        rows_consistent(exp)
        assert ("CH", "US", "Q10") in exp.data

    @pytest.mark.parametrize("key", ["fig16", "fig17"])
    def test_vs_n_figures_rsets(self, reg, key):
        exp = run(key, reg, names=("DE", "US"))
        rows_consistent(exp)

    @pytest.mark.parametrize("key", ["fig9", "fig11"])
    def test_vs_qset_figures(self, reg, key):
        exp = run(key, reg, names=("DE", "US"))
        rows_consistent(exp)
        assert sum(1 for (tech, *_rest) in exp.data if tech == "TNR") == 20

    def test_fig13_grid_sweep(self, reg):
        exp = run("fig13", reg, names=("DE", "CO"))
        rows_consistent(exp)
        for name in ("DE", "CO"):
            assert exp.data[("g", name)]["bytes"] > 0
            assert exp.data[("hybrid", name)]["bytes"] > exp.data[("g", name)]["bytes"]

    @pytest.mark.parametrize("key", ["fig14", "fig15"])
    def test_tnr_variant_figures(self, reg, key):
        exp = run(key, reg, names=("CO",))
        rows_consistent(exp)
        assert ("g(CH)", "CO", "Q10") in exp.data


class TestScaleInvariantRelationships:
    def test_fig6_data_relationships(self, reg):
        exp = run("fig6", reg)
        spatial = ("DE", "NH", "ME", "CO")
        for name in spatial:
            # The quadratic-preprocessing wall exists at every scale.
            assert exp.data[("PCPD", name)]["seconds"] > exp.data[("SILC", name)]["seconds"]
            assert exp.data[("SILC", name)]["bytes"] > exp.data[("CH", name)]["bytes"]
        # The CSR kernels compressed SILC's n² build to within timing
        # noise of CH's on the smallest (n=150) dataset, so the
        # SILC-vs-CH seconds wall is asserted on the ladder total,
        # where the margin is real at every tier.
        silc_s = sum(exp.data[("SILC", n)]["seconds"] for n in spatial)
        ch_s = sum(exp.data[("CH", n)]["seconds"] for n in spatial)
        assert silc_s > ch_s

    def test_appb_defect_reproduces(self, reg):
        exp = run("appb", reg)
        report = exp.data["counterexample"]
        assert report.flawed_is_wrong and report.corrected_is_right
        assert exp.data["stress"]["wrong"] > 0

    def test_table2_bounds_near_one(self, reg):
        exp = run("table2", reg)
        finite = [d["bound"] for d in exp.data.values() if not math.isinf(d["bound"])]
        assert finite, "at least some datasets admit core-disjoint paths"
        assert min(finite) < 1.6

    def test_table1_ladder_ascends(self, reg):
        exp = run("table1", reg)
        ns = [exp.data[name]["n"] for name in
              ("DE", "NH", "ME", "CO", "FL", "CA", "E-US", "W-US", "C-US", "US")]
        assert ns == sorted(ns)

    def test_fig7_silc_wins_aggregate(self, reg):
        exp = run("fig7", reg, names=("CO",))
        silc = [v for k, v in exp.data.items() if k[0] == "SILC" and not math.isnan(v)]
        pcpd = [v for k, v in exp.data.items() if k[0] == "PCPD" and not math.isnan(v)]
        assert sum(silc) < sum(pcpd)
