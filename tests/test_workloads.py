"""Unit tests for the workload generators (§4.2 / Appendix E.2)."""

import math
import os
from contextlib import contextmanager

from repro.core.dijkstra import dijkstra_distance
from repro.queries.workloads import (
    N_SETS,
    QUERY_GRID,
    distance_query_sets,
    estimate_max_distance,
    linf_query_sets,
)


@contextmanager
def _mode(csr: bool):
    """Pin the SSSP engine choice via the env knobs (restores on exit)."""
    set_key = "REPRO_FORCE_CSR" if csr else "REPRO_NO_CSR"
    saved = {k: os.environ.pop(k, None) for k in ("REPRO_FORCE_CSR", "REPRO_NO_CSR")}
    os.environ[set_key] = "1"
    try:
        yield
    finally:
        os.environ.pop(set_key, None)
        for k, v in saved.items():
            if v is not None:
                os.environ[k] = v


class TestQSets:
    def test_ten_sets_with_doubling_bounds(self, co_tiny):
        sets = linf_query_sets(co_tiny, pairs_per_set=20, seed=1)
        assert len(sets) == N_SETS
        cell = co_tiny.bounding_box().side / QUERY_GRID
        for i, qs in enumerate(sets, start=1):
            assert qs.name == f"Q{i}"
            assert qs.lo == (2 ** (i - 1)) * cell
            assert qs.hi == 2 * qs.lo

    def test_pairs_respect_bucket(self, co_tiny):
        for qs in linf_query_sets(co_tiny, pairs_per_set=25, seed=2):
            for s, t in qs.pairs:
                d = co_tiny.chebyshev_distance(s, t)
                assert qs.lo <= d < qs.hi, (qs.name, s, t, d)

    def test_deterministic(self, co_tiny):
        a = linf_query_sets(co_tiny, pairs_per_set=15, seed=7)
        b = linf_query_sets(co_tiny, pairs_per_set=15, seed=7)
        assert [qs.pairs for qs in a] == [qs.pairs for qs in b]

    def test_seed_matters(self, co_tiny):
        a = linf_query_sets(co_tiny, pairs_per_set=15, seed=7)
        b = linf_query_sets(co_tiny, pairs_per_set=15, seed=8)
        assert any(x.pairs != y.pairs for x, y in zip(a, b))

    def test_shortfall_visible_not_padded(self, co_tiny):
        sets = linf_query_sets(co_tiny, pairs_per_set=30, seed=3)
        for qs in sets:
            assert qs.requested == 30
            assert qs.shortfall == 30 - len(qs.pairs)
            assert len(qs.pairs) <= 30

    def test_far_buckets_populated(self, co_tiny):
        # Q7..Q10 are the interesting TNR buckets; a usable dataset
        # must populate them well.
        sets = linf_query_sets(co_tiny, pairs_per_set=20, seed=4)
        for qs in sets[6:]:
            assert len(qs.pairs) >= 15, (qs.name, len(qs.pairs))


class TestRSets:
    def test_bounds_follow_definition(self, co_tiny):
        ld = estimate_max_distance(co_tiny, seed=0)
        sets = distance_query_sets(co_tiny, pairs_per_set=10, seed=1, max_distance=ld)
        for i, rs in enumerate(sets, start=1):
            assert rs.name == f"R{i}"
            assert rs.lo == (2.0 ** (i - 11)) * ld
            assert rs.hi == (2.0 ** (i - 10)) * ld

    def test_pairs_respect_network_distance_bucket(self, co_tiny):
        sets = distance_query_sets(co_tiny, pairs_per_set=8, seed=2)
        checked = 0
        for rs in sets:
            for s, t in rs.pairs[:4]:
                d = dijkstra_distance(co_tiny, s, t)
                assert rs.lo <= d < rs.hi, (rs.name, s, t, d)
                checked += 1
        assert checked > 10

    def test_deterministic(self, co_tiny):
        a = distance_query_sets(co_tiny, pairs_per_set=6, seed=5)
        b = distance_query_sets(co_tiny, pairs_per_set=6, seed=5)
        assert [rs.pairs for rs in a] == [rs.pairs for rs in b]

    def test_top_bucket_may_be_sparse_but_exists_overall(self, co_tiny):
        sets = distance_query_sets(co_tiny, pairs_per_set=10, seed=6)
        assert sum(len(rs.pairs) for rs in sets) > 30


class TestBucketInvariant:
    """Every emitted pair satisfies ``lo <= metric < hi`` — no self
    pairs, no boundary leakage at either end of any bucket."""

    def test_every_q_pair_in_its_bucket(self, co_tiny):
        for qs in linf_query_sets(co_tiny, pairs_per_set=20, seed=11):
            for s, t in qs.pairs:
                assert s != t
                d = co_tiny.chebyshev_distance(s, t)
                assert qs.lo <= d < qs.hi, (qs.name, s, t, d)

    def test_every_r_pair_in_its_bucket(self, co_tiny):
        for rs in distance_query_sets(co_tiny, pairs_per_set=6, seed=11):
            for s, t in rs.pairs:
                assert s != t
                d = dijkstra_distance(co_tiny, s, t)
                assert rs.lo <= d < rs.hi, (rs.name, s, t, d)


class TestModeEquivalence:
    """The emitted workloads must not depend on which SSSP engine runs:
    the Q sampler is pure coordinate arithmetic and the R sampler
    consumes bit-identical distances, so ``REPRO_NO_CSR`` vs
    ``REPRO_FORCE_CSR`` yield the same sets draw for draw."""

    def test_q_sets_identical_across_engines(self, co_tiny):
        with _mode(csr=True):
            a = [qs.pairs for qs in linf_query_sets(co_tiny, pairs_per_set=12, seed=3)]
        with _mode(csr=False):
            b = [qs.pairs for qs in linf_query_sets(co_tiny, pairs_per_set=12, seed=3)]
        assert a == b

    def test_r_sets_identical_across_engines(self, co_tiny):
        with _mode(csr=True):
            a = [rs.pairs for rs in distance_query_sets(co_tiny, pairs_per_set=6, seed=3)]
        with _mode(csr=False):
            b = [rs.pairs for rs in distance_query_sets(co_tiny, pairs_per_set=6, seed=3)]
        assert a == b

    def test_diameter_estimate_identical_across_engines(self, co_tiny):
        with _mode(csr=True):
            a = estimate_max_distance(co_tiny, seed=2)
        with _mode(csr=False):
            b = estimate_max_distance(co_tiny, seed=2)
        assert a == b


class TestDiameterEstimate:
    def test_lower_bounds_true_eccentricity(self, de_tiny):
        # The double-sweep value is a valid lower bound on the diameter
        # and at least the eccentricity of some vertex.
        ld = estimate_max_distance(de_tiny, seed=0)
        assert ld > 0
        some = max(
            dijkstra_distance(de_tiny, 0, t) for t in range(de_tiny.n)
        )
        assert ld >= some * 0.5  # generous: double sweep is near-exact

    def test_finite_on_connected(self, co_tiny):
        assert not math.isinf(estimate_max_distance(co_tiny, seed=1))
