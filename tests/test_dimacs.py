"""Unit tests for DIMACS challenge IO."""

import io

import pytest

from repro.graph import dimacs
from repro.graph.graph import Graph


def sample_graph() -> Graph:
    g = Graph([0.0, 1_000_000.0, 500_000.0], [0.0, 0.0, 800_000.0])
    g.add_edge(0, 1, 120.0)
    g.add_edge(1, 2, 75.0)
    return g


def write_to_strings(g: Graph) -> tuple[str, str]:
    gr, co = io.StringIO(), io.StringIO()
    dimacs.write_graph(g, gr, co, name="sample")
    return gr.getvalue(), co.getvalue()


class TestRoundtrip:
    def test_roundtrip_preserves_structure(self):
        g = sample_graph()
        gr, co = write_to_strings(g)
        back = dimacs.read_graph(io.StringIO(gr), io.StringIO(co))
        assert back.n == g.n and back.m == g.m
        for e in g.edges():
            assert back.edge_weight(e.u, e.v) == e.weight
        assert back.coord(2) == g.coord(2)

    def test_each_edge_written_as_two_arcs(self):
        gr, _ = write_to_strings(sample_graph())
        arcs = [line for line in gr.splitlines() if line.startswith("a ")]
        assert len(arcs) == 4

    def test_save_load_files(self, tmp_path):
        g = sample_graph()
        gr_path = tmp_path / "x.gr"
        co_path = tmp_path / "x.co"
        dimacs.save(g, gr_path, co_path)
        back = dimacs.load(gr_path, co_path)
        assert back.n == 3 and back.m == 2


class TestParsing:
    def test_comments_and_blank_lines_skipped(self):
        co = "c comment\n\np aux sp co 1\nv 1 5 6\n"
        gr = "c hello\np sp 1 0\n"
        g = dimacs.read_graph(io.StringIO(gr), io.StringIO(co))
        assert g.n == 1 and g.coord(0) == (5.0, 6.0)

    def test_asymmetric_arc_weights_keep_minimum(self):
        co = "p aux sp co 2\nv 1 0 0\nv 2 1 0\n"
        gr = "p sp 2 2\na 1 2 10\na 2 1 7\n"
        g = dimacs.read_graph(io.StringIO(gr), io.StringIO(co))
        assert g.edge_weight(0, 1) == 7.0

    def test_self_loop_arcs_ignored(self):
        co = "p aux sp co 2\nv 1 0 0\nv 2 1 0\n"
        gr = "p sp 2 3\na 1 1 5\na 1 2 3\na 2 1 3\n"
        g = dimacs.read_graph(io.StringIO(gr), io.StringIO(co))
        assert g.m == 1

    def test_missing_header_rejected(self):
        with pytest.raises(dimacs.DimacsFormatError):
            dimacs.read_coordinates(io.StringIO("v 1 0 0\n"))
        with pytest.raises(dimacs.DimacsFormatError):
            dimacs.read_graph(io.StringIO("a 1 2 3\n"),
                              io.StringIO("p aux sp co 2\nv 1 0 0\nv 2 1 0\n"))

    def test_vertex_count_mismatch_rejected(self):
        co = "p aux sp co 1\nv 1 0 0\n"
        gr = "p sp 2 0\n"
        with pytest.raises(dimacs.DimacsFormatError):
            dimacs.read_graph(io.StringIO(gr), io.StringIO(co))

    def test_vertex_id_out_of_range_rejected(self):
        with pytest.raises(dimacs.DimacsFormatError):
            dimacs.read_coordinates(io.StringIO("p aux sp co 1\nv 2 0 0\n"))

    def test_unknown_record_rejected(self):
        with pytest.raises(dimacs.DimacsFormatError):
            dimacs.read_coordinates(io.StringIO("p aux sp co 1\nq 1 0 0\n"))

    def test_bad_header_shape_rejected(self):
        with pytest.raises(dimacs.DimacsFormatError):
            dimacs.read_coordinates(io.StringIO("p aux sp xx 1\n"))

    def test_too_many_arcs_rejected(self):
        co = "p aux sp co 2\nv 1 0 0\nv 2 1 0\n"
        gr = "p sp 2 1\na 1 2 3\na 2 1 3\na 1 2 4\n"
        with pytest.raises(dimacs.DimacsFormatError):
            dimacs.read_graph(io.StringIO(gr), io.StringIO(co))


class TestDatasetRoundtrip:
    def test_tiny_dataset_roundtrip(self, de_tiny, tmp_path):
        dimacs.save(de_tiny, tmp_path / "DE.gr", tmp_path / "DE.co")
        back = dimacs.load(tmp_path / "DE.gr", tmp_path / "DE.co")
        assert back.n == de_tiny.n and back.m == de_tiny.m
        # Integer lattice coordinates and integer weights survive exactly.
        for e in list(de_tiny.edges())[:50]:
            assert back.edge_weight(e.u, e.v) == e.weight
