"""Shared fixtures: small graphs and session-scoped indexes.

Index builds are the expensive part of the suite, so every index is
built once per session on the ``tiny`` registry tier. Correctness tests
cross-check against plain Dijkstra on these graphs; scale behaviour is
the benchmarks' job, not the tests'.
"""

from __future__ import annotations

import random

import pytest

from repro.core.bidirectional import BidirectionalDijkstra
from repro.core.ch import ContractionHierarchy
from repro.core.pcpd import PCPD
from repro.core.silc import SILC
from repro.core.tnr import TransitNodeRouting, build_tnr
from repro.datasets import load_dataset
from repro.graph.generators import (
    RoadNetworkSpec,
    generate_road_network,
    grid_graph,
    paper_example_graph,
)


@pytest.fixture(scope="session")
def paper_graph():
    """The Figure 1 example network (vertices v1..v8 -> ids 0..7)."""
    return paper_example_graph()


@pytest.fixture(scope="session")
def lattice():
    """A 6x5 unit lattice with hand-checkable distances."""
    return grid_graph(6, 5)


@pytest.fixture(scope="session")
def de_tiny():
    """The smallest registry dataset (~150 vertices)."""
    return load_dataset("DE", "tiny")


@pytest.fixture(scope="session")
def co_tiny():
    """A mid-sized tiny-tier dataset (~340 vertices)."""
    return load_dataset("CO", "tiny")


@pytest.fixture(scope="session")
def random_road():
    """A seeded synthetic network independent of the registry."""
    graph, _ = generate_road_network(RoadNetworkSpec(n=220, seed=99))
    return graph


@pytest.fixture(scope="session")
def ch_co(co_tiny):
    return ContractionHierarchy.build(co_tiny)


@pytest.fixture(scope="session")
def tnr_co(co_tiny, ch_co):
    index = build_tnr(co_tiny, ch_co, 16)
    return TransitNodeRouting(co_tiny, index, ch_co)


@pytest.fixture(scope="session")
def silc_co(co_tiny):
    return SILC.build(co_tiny)


@pytest.fixture(scope="session")
def hl_co(co_tiny, ch_co):
    from repro.core.labels import HubLabels

    return HubLabels.build(co_tiny, ch=ch_co)


@pytest.fixture(scope="session")
def pcpd_de(de_tiny):
    return PCPD.build(de_tiny)


@pytest.fixture(scope="session")
def bidij_co(co_tiny):
    return BidirectionalDijkstra(co_tiny)


@pytest.fixture()
def rng():
    """Per-test deterministic RNG."""
    return random.Random(0xC0FFEE)


def random_pairs(graph, rng, count):
    """Uniform random vertex pairs (shared helper, not a fixture)."""
    return [
        (rng.randrange(graph.n), rng.randrange(graph.n)) for _ in range(count)
    ]
