"""Integration tests for the registry, experiment runners, and CLI."""

import pytest

from repro.harness.cli import main as cli_main
from repro.harness.experiments import Experiment, all_keys, run
from repro.harness.registry import Registry
from repro.harness.timing import (
    Timing,
    fmt_bytes,
    fmt_micros,
    fmt_seconds,
    subsample_evenly,
    time_queries,
)


@pytest.fixture(scope="module")
def registry(tmp_path_factory):
    cache = tmp_path_factory.mktemp("cache")
    return Registry(tier="tiny", pairs_per_set=12, cache=str(cache), verbose=False)


class TestRegistry:
    def test_graph_cached_in_memory(self, registry):
        assert registry.graph("DE") is registry.graph("DE")

    def test_disk_cache_roundtrip(self, registry, tmp_path_factory):
        index = registry.ch_index("DE")
        fresh = Registry(tier="tiny", pairs_per_set=12,
                         cache=str(registry.cache_dir), verbose=False)
        again = fresh.ch_index("DE")
        assert again.rank == index.rank
        assert again.stats.seconds == index.stats.seconds

    def test_cache_off(self):
        reg = Registry(tier="tiny", pairs_per_set=5, cache="off", verbose=False)
        assert reg.cache_dir is None
        assert reg.graph("DE").n > 0

    def test_query_sets_cached(self, registry):
        assert registry.q_sets("DE") is registry.q_sets("DE")
        assert len(registry.q_sets("DE")) == 10

    def test_tnr_fallback_selection(self, registry):
        ch_backed = registry.tnr("DE", fallback="ch")
        dij_backed = registry.tnr("DE", fallback="dijkstra")
        assert ch_backed.fallback.name == "CH"
        assert dij_backed.fallback.name == "Dijkstra"
        with pytest.raises(ValueError):
            registry.tnr("DE", fallback="bogus")

    def test_all_techniques_constructible(self, registry):
        for factory in (registry.bidijkstra, registry.ch, registry.tnr,
                        registry.silc, registry.pcpd):
            tech = factory("DE")
            assert tech.distance(0, 1) >= 0


class TestExperiments:
    def test_all_keys_present(self):
        keys = all_keys()
        for expected in ("table1", "table2", "fig6", "fig7", "fig8", "fig9",
                         "fig10", "fig11", "fig13", "fig14", "fig15",
                         "fig16", "fig17", "appb", "summary"):
            assert expected in keys

    def test_unknown_key_rejected(self, registry):
        with pytest.raises(KeyError):
            run("fig99", registry)

    def test_table1_rows(self, registry):
        exp = run("table1", registry)
        assert len(exp.rows) == 10
        assert exp.data["DE"]["paper_n"] == 48_812

    def test_fig8_small_slice(self, registry):
        exp = run("fig8", registry, names=("DE", "CO"), set_indexes=(1, 10))
        assert ("CH", "DE", "Q1") in exp.data
        assert ("TNR", "CO", "Q10") in exp.data
        assert all(v > 0 for v in exp.data.values())

    def test_fig7_uses_spatial_datasets(self, registry):
        exp = run("fig7", registry, names=("DE",))
        assert ("SILC", "DE", "Q1") in exp.data
        assert ("PCPD", "DE", "Q1") in exp.data

    def test_render_is_ascii_table(self, registry):
        exp = run("table1", registry)
        text = exp.render()
        assert "== table1" in text
        assert "Delaware" in text

    def test_experiment_dataclass_defaults(self):
        exp = Experiment(key="x", title="t", headers=["a"])
        assert exp.rows == [] and exp.data == {} and exp.notes == []


class TestTiming:
    def test_time_queries_counts(self):
        calls = []
        t = time_queries(lambda s, t_: calls.append((s, t_)), [(1, 2), (3, 4)])
        assert t.queries == 2 and calls == [(1, 2), (3, 4)]
        assert t.micros_per_query >= 0

    def test_subsampling(self):
        calls = []
        time_queries(lambda s, t_: calls.append(s), [(i, i) for i in range(100)],
                     max_pairs=10)
        assert len(calls) == 10

    def test_subsampling_never_duplicates(self):
        # Exact integer arithmetic: every subsample is max_pairs
        # *distinct* indices, including sizes where float stepping
        # (int(i * step)) could collapse neighbouring picks.
        for n, k in [(100, 10), (7, 3), (10**6, 9999), (12345, 12344),
                     (3, 3), (5, 1)]:
            picked = subsample_evenly(n, k)
            assert len(picked) == min(n, k)
            assert len(set(picked)) == len(picked), (n, k)
            assert picked == sorted(picked)
            assert all(0 <= i < n for i in picked)

    def test_empty_pairs(self):
        import math

        t = time_queries(lambda s, t_: None, [])
        assert t.queries == 0 and math.isnan(t.micros_per_query)
        assert math.isnan(t.p50) and math.isnan(t.p99)
        t = time_queries(lambda s, t_: None, [], percentiles=True)
        assert t.queries == 0 and math.isnan(t.p50)

    def test_percentiles_recorded(self):
        import math

        t = time_queries(lambda s, t_: None, [(i, i) for i in range(50)],
                         percentiles=True)
        assert t.queries == 50
        assert not math.isnan(t.p50)
        assert t.p50 <= t.p90 <= t.p99
        assert "p50" in str(t) and "p99" in str(t)
        # The default (block-timed) loop leaves percentiles unset.
        t2 = time_queries(lambda s, t_: None, [(1, 2)])
        assert math.isnan(t2.p50) and "p50" not in str(t2)

    def test_timing_str(self):
        assert "us over" in str(Timing(12.5, 10))

    def test_formatters(self):
        assert fmt_micros(5.0) == "5.0us"
        assert fmt_micros(1500.0) == "1.5ms"
        assert fmt_micros(2_000_000.0) == "2.00s"
        assert fmt_bytes(500.0) == "0.5KB"
        assert fmt_bytes(2_000_000.0) == "2.0MB"
        assert fmt_bytes(3_200_000_000.0) == "3.20GB"
        assert fmt_seconds(30.0) == "30.0s"
        assert fmt_seconds(90.0) == "1.5min"
        assert fmt_seconds(7200.0) == "2.0h"


class TestCLI:
    def test_list(self, capsys):
        assert cli_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig8" in out and "table2" in out

    def test_no_args_lists(self, capsys):
        assert cli_main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_run_table1(self, capsys, tmp_path):
        code = cli_main([
            "--experiment", "table1", "--tier", "tiny", "--pairs", "5",
        ])
        assert code == 0
        assert "Delaware" in capsys.readouterr().out

    def test_run_survives_corrupt_default_cache(self, capsys, tmp_path,
                                                monkeypatch):
        # A stale/corrupt entry in the default cache location must never
        # abort a run — this is the exact failure the seed suite hit.
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        from repro.harness.cache import CACHE_VERSION

        bad = tmp_path / f"v{CACHE_VERSION}" / "graph-tiny-DE.pkl"
        bad.parent.mkdir(parents=True)
        bad.write_bytes(b"\x05corrupt")
        assert cli_main(["--experiment", "table1", "--tier", "tiny",
                         "--pairs", "5"]) == 0
        assert "Delaware" in capsys.readouterr().out
        assert cli_main(["cache", "verify", "--cache", str(tmp_path)]) == 0

    def test_cache_subcommand_stats(self, capsys, tmp_path):
        assert cli_main(["cache", "stats", "--cache", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "cache root" in out and "entries        0" in out
