"""Unit tests for Transit Node Routing (§3.3)."""

import math

import pytest

from repro.core.bidirectional import BidirectionalDijkstra
from repro.core.ch import ContractionHierarchy
from repro.core.dijkstra import dijkstra_distance
from repro.core.tnr import TNRGrid, TransitNodeRouting, build_tnr
from repro.core.tnr.access_nodes import correct_cell_access, flawed_cell_access
from repro.core.tnr.grid import INNER_RADIUS, OUTER_RADIUS
from repro.graph.generators import grid_graph
from tests.conftest import random_pairs


class TestGrid:
    def test_cell_assignment(self, lattice):
        grid = TNRGrid(lattice, 10)
        # The 6x5 lattice's square hull has side 5; 10 cells of 0.5.
        assert grid.cell_of_vertex[0] == grid.cell_id(0, 0)
        assert len(grid.cell_of_vertex) == lattice.n

    def test_grid_too_small_rejected(self, lattice):
        with pytest.raises(ValueError):
            TNRGrid(lattice, 4)

    def test_cell_distance(self, lattice):
        grid = TNRGrid(lattice, 10)
        a, b = grid.cell_id(1, 2), grid.cell_id(4, 9)
        assert grid.cell_distance(a, b) == 7
        assert grid.cell_distance(a, a) == 0

    def test_shell_semantics(self, lattice):
        grid = TNRGrid(lattice, 10)
        center = grid.cell_id(5, 5)
        # Beyond the outer shell means cell distance >= 5.
        assert not grid.beyond_outer_shell(center, grid.cell_id(5, 9))
        assert grid.beyond_outer_shell(center, grid.cell_id(5, 0))
        # Disjoint outer shells need distance > 8.
        assert not grid.outer_shells_disjoint(center, grid.cell_id(5, 0))
        assert grid.outer_shells_disjoint(grid.cell_id(0, 0), grid.cell_id(9, 9))

    def test_members_partition_vertices(self, co_tiny):
        grid = TNRGrid(co_tiny, 16)
        seen = []
        for cell in grid.nonempty_cells():
            seen.extend(grid.vertices_in(cell))
        assert sorted(seen) == list(range(co_tiny.n))

    def test_crossing_edges_straddle(self, co_tiny):
        grid = TNRGrid(co_tiny, 16)
        cell = next(iter(grid.nonempty_cells()))
        for u, v, w in grid.crossing_edges(cell, INNER_RADIUS):
            du = grid.cell_distance(cell, grid.cell_of_vertex[u])
            dv = grid.cell_distance(cell, grid.cell_of_vertex[v])
            assert du <= INNER_RADIUS < dv
            assert co_tiny.edge_weight(u, v) == w

    def test_radii_constants(self):
        # The paper's 5x5 inner / 9x9 outer blocks.
        assert INNER_RADIUS == 2 and OUTER_RADIUS == 4


class TestAccessNodes:
    def test_access_nodes_on_inner_edges(self, co_tiny):
        grid = TNRGrid(co_tiny, 16)
        for cell in list(grid.nonempty_cells())[:10]:
            info = correct_cell_access(co_tiny, grid, cell)
            for a in info.access_nodes:
                # Every access node is an endpoint of an edge that
                # crosses the inner shell (the §3.3 requirement).
                da = grid.cell_distance(cell, grid.cell_of_vertex[a])
                assert da <= INNER_RADIUS
                assert any(
                    grid.cell_distance(cell, grid.cell_of_vertex[v]) > INNER_RADIUS
                    for v, _ in co_tiny.neighbors(a)
                )

    def test_vertex_distances_exact(self, co_tiny):
        grid = TNRGrid(co_tiny, 16)
        cell = max(grid.nonempty_cells(), key=lambda c: len(grid.vertices_in(c)))
        info = correct_cell_access(co_tiny, grid, cell)
        for v, dists in info.vertex_distances.items():
            for a, d in zip(info.access_nodes, dists):
                assert d == dijkstra_distance(co_tiny, v, a)

    def test_flawed_variant_also_reports_distances(self, co_tiny):
        grid = TNRGrid(co_tiny, 16)
        cell = next(iter(grid.nonempty_cells()))
        info = flawed_cell_access(co_tiny, grid, cell)
        for v, dists in info.vertex_distances.items():
            assert len(dists) == len(info.access_nodes)


class TestQueries:
    def test_distance_agreement(self, co_tiny, tnr_co, rng):
        for s, t in random_pairs(co_tiny, rng, 250):
            assert tnr_co.distance(s, t) == dijkstra_distance(co_tiny, s, t)

    def test_paths_valid_and_optimal(self, co_tiny, tnr_co, rng):
        for s, t in random_pairs(co_tiny, rng, 80):
            d, path = tnr_co.path(s, t)
            assert path[0] == s and path[-1] == t
            assert co_tiny.path_weight(path) == d
            assert d == dijkstra_distance(co_tiny, s, t)

    def test_same_vertex(self, tnr_co):
        assert tnr_co.distance(3, 3) == 0.0
        assert tnr_co.path(3, 3) == (0.0, [3])

    def test_fallback_used_for_near_pairs(self, co_tiny, tnr_co, rng):
        tnr_co.stats.reset()
        near = far = None
        for s, t in random_pairs(co_tiny, rng, 300):
            if tnr_co.index.answerable(s, t):
                far = (s, t)
            else:
                near = (s, t)
            if near and far:
                break
        assert near and far, "expected both near and far pairs"
        tnr_co.stats.reset()
        tnr_co.distance(*near)
        assert tnr_co.stats.answered_by_fallback == 1
        tnr_co.distance(*far)
        assert tnr_co.stats.answered_by_table == 1

    def test_dijkstra_fallback_variant(self, co_tiny, tnr_co, rng):
        alt = TransitNodeRouting(
            co_tiny, tnr_co.index, BidirectionalDijkstra(co_tiny)
        )
        for s, t in random_pairs(co_tiny, rng, 80):
            assert alt.distance(s, t) == dijkstra_distance(co_tiny, s, t)

    def test_transit_table_symmetric(self, tnr_co):
        import numpy as np

        table = tnr_co.index.table
        finite = np.isfinite(table)
        assert (table[finite] >= 0).all()
        assert np.array_equal(table, table.T)

    def test_walk_steps_counted_for_far_paths(self, co_tiny, tnr_co, rng):
        tnr_co.stats.reset()
        for s, t in random_pairs(co_tiny, rng, 150):
            if tnr_co.index.answerable(s, t):
                tnr_co.path(s, t)
        assert tnr_co.stats.walk_steps > 0


class TestFlawedVariant:
    def test_flawed_build_is_wrong_somewhere(self, co_tiny, ch_co, rng):
        # The Appendix B defect: the flawed preprocessing produces
        # incorrect answers for some answerable pairs.
        flawed = TransitNodeRouting(
            co_tiny, build_tnr(co_tiny, ch_co, 16, flawed=True), ch_co
        )
        wrong = 0
        for s, t in random_pairs(co_tiny, rng, 250):
            if not flawed.index.answerable(s, t):
                continue
            if flawed.distance(s, t) != dijkstra_distance(co_tiny, s, t):
                wrong += 1
        assert wrong > 0

    def test_flawed_never_underestimates(self, co_tiny, ch_co, rng):
        # Missing access nodes can only lengthen the min in Equation 1.
        flawed = TransitNodeRouting(
            co_tiny, build_tnr(co_tiny, ch_co, 16, flawed=True), ch_co
        )
        for s, t in random_pairs(co_tiny, rng, 150):
            assert flawed.distance(s, t) >= dijkstra_distance(co_tiny, s, t)


class TestEdgeCases:
    def test_lattice_exactness(self):
        # A uniform lattice has maximal shortest-path ties — the
        # hardest case for access-node completeness.
        g = grid_graph(30, 30)
        ch = ContractionHierarchy.build(g)
        tnr = TransitNodeRouting(g, build_tnr(g, ch, 10), ch)
        import random as _random

        r = _random.Random(4)
        for _ in range(120):
            s, t = r.randrange(g.n), r.randrange(g.n)
            assert tnr.distance(s, t) == dijkstra_distance(g, s, t)
