"""Differential tests for the flat-array many-to-many CH engine.

The CSR bucket engine (:mod:`repro.core.ch.many_to_many`) must produce
tables *bit-identical* to the legacy dict-bucket implementation — and
both must equal plain Dijkstra — because TNR stores the table verbatim
and the two implementations are interchangeable behind ``REPRO_NO_CSR``.
These tests drive both over adversarial small graphs × random
source/target set shapes (overlapping, disjoint, symmetric, empty,
singleton, unreachable components), cover the float32 cast boundary,
and pin the bucket stores' grow-don't-truncate contract.
"""

import os
from contextlib import contextmanager

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import importlib

# The ch package re-exports the many_to_many *function*, which shadows
# the submodule in plain `import ... as` syntax.
m2m = importlib.import_module("repro.core.ch.many_to_many")

from repro.core.ch.contraction import build_ch  # noqa: E402
from repro.core.ch.query import ContractionHierarchy  # noqa: E402
from repro.core.dijkstra import dijkstra_distance  # noqa: E402
from repro.graph.csr import HAVE_SCIPY  # noqa: E402
from repro.graph.graph import Graph  # noqa: E402

pytestmark = pytest.mark.skipif(not HAVE_SCIPY, reason="scipy unavailable")

DIFF = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@contextmanager
def _mode(csr: bool):
    """Pin the engine choice via the env knobs (restores on exit).

    A plain contextmanager instead of monkeypatch: hypothesis @given
    bodies run many times per test invocation, and both modes are
    needed *inside* one example.
    """
    set_key = "REPRO_FORCE_CSR" if csr else "REPRO_NO_CSR"
    saved = {k: os.environ.pop(k, None) for k in ("REPRO_FORCE_CSR", "REPRO_NO_CSR")}
    os.environ[set_key] = "1"
    try:
        yield
    finally:
        os.environ.pop(set_key, None)
        for k, v in saved.items():
            if v is not None:
                os.environ[k] = v


@st.composite
def graph_and_sets(draw):
    """Random small CH plus a (sources, targets) pair of index sets.

    The set shapes deliberately cover the tricky cases: either side may
    be empty or a singleton, the sides may be disjoint, overlap, or be
    the *same list* (the symmetric fast path), vertices repeat, and the
    graph is sometimes disconnected so unreachable (inf) entries occur.
    """
    n = draw(st.integers(2, 20))
    coords = draw(
        st.lists(
            st.tuples(st.integers(0, 40), st.integers(0, 40)),
            min_size=n, max_size=n, unique=True,
        )
    )
    g = Graph([c[0] for c in coords], [c[1] for c in coords])
    for v in range(1, n):
        if draw(st.integers(0, 9)) < 8:  # sometimes disconnected
            u = draw(st.integers(0, v - 1))
            g.add_edge(u, v, float(draw(st.integers(1, 5))))
    for _ in range(draw(st.integers(0, n))):
        a = draw(st.integers(0, n - 1))
        b = draw(st.integers(0, n - 1))
        if a != b and not g.has_edge(a, b):
            g.add_edge(a, b, float(draw(st.integers(1, 5))))
    g.freeze()

    vertex = st.integers(0, n - 1)
    sources = draw(st.lists(vertex, min_size=0, max_size=8))
    if draw(st.booleans()):  # symmetric: the TNR table shape
        targets = list(sources)
    else:
        targets = draw(st.lists(vertex, min_size=0, max_size=8))
    return g, sources, targets


class TestDifferential:
    @DIFF
    @given(case=graph_and_sets())
    def test_csr_matches_legacy_and_dijkstra(self, case):
        g, sources, targets = case
        ch = ContractionHierarchy(g, build_ch(g))
        for dtype in (np.float32, np.float64):
            with _mode(csr=True):
                flat = m2m.many_to_many(ch, sources, targets, dtype=dtype)
            with _mode(csr=False):
                legacy = m2m.many_to_many(ch, sources, targets, dtype=dtype)
            assert flat.dtype == legacy.dtype == dtype
            assert np.array_equal(flat, legacy)  # bit-for-bit, inf included
        for i, s in enumerate(sources):
            for j, t in enumerate(targets):
                assert flat[i, j] == dijkstra_distance(g, s, t)

    @DIFF
    @given(case=graph_and_sets())
    def test_sparse_csr_matches_legacy(self, case):
        g, sources, _ = case
        ch = ContractionHierarchy(g, build_ch(g))
        def wanted(i, j):
            return (i + j) % 2 == 0

        with _mode(csr=True):
            flat = m2m.many_to_many_sparse(ch, sources, wanted)
        with _mode(csr=False):
            legacy = m2m.many_to_many_sparse(ch, sources, wanted)
        assert flat == legacy
        for (i, j), d in flat.items():
            assert wanted(i, j)
            assert d == dijkstra_distance(g, sources[i], sources[j])

    def test_distance_table_endpoint_matches_per_pair(self, co_tiny, ch_co, rng):
        sources = [rng.randrange(co_tiny.n) for _ in range(9)]
        targets = [rng.randrange(co_tiny.n) for _ in range(13)]
        table = ch_co.distance_table(sources, targets)
        assert table.dtype == np.float64
        for i, s in enumerate(sources):
            for j, t in enumerate(targets):
                assert table[i, j] == ch_co.distance(s, t)


class TestFloat32Boundary:
    def test_cast_boundary_is_bit_identical_across_engines(self):
        # Path weights near and beyond 2^24: float32 rounds there, and
        # both engines must round identically (cast from the same
        # float64 sums). 2^24 + 3 is not float32-representable.
        big = float(2**24)
        weights = [big / 2, big / 2, 3.0, 5.0]
        xs = [float(i) for i in range(5)]
        g = Graph(xs, [0.0] * 5, [(i, i + 1, w) for i, w in enumerate(weights)])
        g.freeze()
        ch = ContractionHierarchy(g, build_ch(g))
        nodes = list(range(5))
        with _mode(csr=True):
            flat32 = m2m.many_to_many(ch, nodes, nodes, dtype=np.float32)
            flat64 = m2m.many_to_many(ch, nodes, nodes, dtype=np.float64)
        with _mode(csr=False):
            legacy32 = m2m.many_to_many(ch, nodes, nodes, dtype=np.float32)
            legacy64 = m2m.many_to_many(ch, nodes, nodes, dtype=np.float64)
        assert np.array_equal(flat32, legacy32)
        assert np.array_equal(flat64, legacy64)
        # The float64 tables are exact; the float32 cast genuinely
        # rounded somewhere past 2^24 — the boundary is being exercised.
        assert flat64[0, 3] == big + 3.0
        assert float(flat32[0, 3]) != flat64[0, 3]  # the cast rounded
        assert flat32[0, 3] == np.float32(flat64[0, 3])


class TestBucketGrowth:
    def test_entry_store_grows_instead_of_truncating(self):
        store = m2m._EntryStore(capacity=4)
        blocks = [
            (np.arange(3), np.zeros(3, dtype=np.int64), np.full(3, 1.5)),
            (np.arange(7), np.ones(7, dtype=np.int64), np.full(7, 2.5)),
            (np.arange(40), np.full(40, 2, dtype=np.int64), np.full(40, 3.5)),
        ]
        for v, s, d in blocks:
            store.append_block(v, s, d)
        vertex, search, dist = store.views()
        assert store.size == len(vertex) == 50  # nothing dropped
        expect_v = np.concatenate([b[0] for b in blocks])
        expect_s = np.concatenate([b[1] for b in blocks])
        expect_d = np.concatenate([b[2] for b in blocks])
        assert np.array_equal(vertex, expect_v)
        assert np.array_equal(search, expect_s)
        assert np.array_equal(dist, expect_d)

    def test_overflowing_preallocation_estimate_loses_no_entries(
        self, co_tiny, ch_co, rng, monkeypatch
    ):
        # With the per-target estimate forced to one entry, every real
        # search space overflows the preallocation immediately; the
        # table must still match the legacy engine exactly.
        sources = [rng.randrange(co_tiny.n) for _ in range(12)]
        with _mode(csr=False):
            legacy = m2m.many_to_many(ch_co, sources, sources)
        monkeypatch.setattr(m2m, "BUCKET_CAPACITY_HINT", 1)
        with _mode(csr=True):
            flat = m2m.many_to_many(ch_co, sources, sources)
        assert np.array_equal(flat, legacy)


class TestDispatch:
    def test_env_knobs_select_engine(self, monkeypatch):
        g = Graph([0.0, 1.0, 2.0], [0.0] * 3, [(0, 1, 2.0), (1, 2, 3.0)])
        g.freeze()
        ch = ContractionHierarchy(g, build_ch(g))
        monkeypatch.setenv("REPRO_NO_CSR", "1")
        assert m2m._flat_engine(ch) is None
        monkeypatch.delenv("REPRO_NO_CSR")
        # n=3 is below the batch cutoff: legacy unless forced.
        assert m2m._flat_engine(ch) is None
        monkeypatch.setenv("REPRO_FORCE_CSR", "1")
        engine = m2m._flat_engine(ch)
        assert engine is not None
        assert engine is ch.index.upward_csr()  # cached, not rebuilt

    def test_default_engine_runs_flat_on_batch_sized_graphs(self, co_tiny, ch_co):
        assert co_tiny.n >= 48
        assert m2m._flat_engine(ch_co) is not None
