"""Unit tests for the Appendix B defect demonstration."""

import math

import pytest

from repro.analysis.defect import counterexample, demonstrate, stress
from repro.core.dijkstra import dijkstra_distance
from repro.core.tnr.grid import OUTER_RADIUS, TNRGrid
from tests.conftest import random_pairs


class TestCounterexample:
    def test_geometry_matches_figure12b(self):
        graph, grid_g, v1, v6 = counterexample()
        grid = TNRGrid(graph, grid_g)
        c0 = grid.cell_of_vertex[v1]
        # v5 (id 7) sits between the shells; v6 beyond the outer shell.
        d5 = grid.cell_distance(c0, grid.cell_of_vertex[7])
        d6 = grid.cell_distance(c0, grid.cell_of_vertex[v6])
        assert 2 < d5 <= OUTER_RADIUS
        assert d6 > OUTER_RADIUS

    def test_v5_is_essential(self):
        graph, _, v1, v6 = counterexample()
        # v6's only neighbour is v5 (id 7), per Figure 12(b).
        assert [v for v, _ in graph.neighbors(v6)] == [7]
        assert dijkstra_distance(graph, v1, v6) == 80.0

    def test_query_is_answerable(self):
        graph, grid_g, v1, v6 = counterexample()
        grid = TNRGrid(graph, grid_g)
        assert grid.answerable(v1, v6)


class TestDemonstration:
    def test_flawed_wrong_corrected_right(self):
        report = demonstrate()
        assert report.flawed_is_wrong
        assert report.corrected_is_right
        assert report.flawed_distance > report.true_distance

    def test_flawed_misses_the_essential_access_node(self):
        report = demonstrate()
        # The corrected access set covers v1's crossing towards v5
        # (it contains v1 itself as the inside endpoint of the long
        # crossing edge); the flawed one cannot route through v5.
        assert set(report.corrected_access_nodes) - set(report.flawed_access_nodes)


class TestStress:
    def test_flawed_wrong_corrected_exact_on_dataset(self, co_tiny, ch_co, rng):
        pairs = random_pairs(co_tiny, rng, 200)
        wrong, answerable = stress(co_tiny, 16, pairs, ch_co)
        assert answerable > 20
        # stress() itself asserts the corrected variant is exact;
        # the flawed one must err somewhere on a tie-rich network.
        assert wrong > 0

    def test_stress_raises_if_corrected_breaks(self, co_tiny, ch_co, monkeypatch):
        # Sanity: the guard inside stress() really does trip if the
        # "corrected" answers were wrong.
        import repro.analysis.defect as defect_mod

        real = dijkstra_distance

        def skewed(graph, s, t):
            return real(graph, s, t) + 1.0

        monkeypatch.setattr(defect_mod, "dijkstra_distance", skewed)
        with pytest.raises(AssertionError):
            stress(co_tiny, 16, [(0, co_tiny.n - 1)] * 50, ch_co)
