"""Unit tests for coordinate utilities."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph.coords import (
    BoundingBox,
    bucket_of,
    chebyshev,
    euclidean,
    manhattan,
    mean,
    square_hull,
)


class TestMetrics:
    def test_euclidean(self):
        assert euclidean(0, 0, 3, 4) == 5.0

    def test_chebyshev(self):
        assert chebyshev(0, 0, 3, 4) == 4.0
        assert chebyshev(1, 1, -2, 1) == 3.0

    def test_manhattan(self):
        assert manhattan(0, 0, 3, 4) == 7.0

    @given(st.floats(-1e6, 1e6), st.floats(-1e6, 1e6),
           st.floats(-1e6, 1e6), st.floats(-1e6, 1e6))
    def test_metric_ordering(self, x1, y1, x2, y2):
        # Chebyshev <= Euclidean <= Manhattan for any pair of points.
        c = chebyshev(x1, y1, x2, y2)
        e = euclidean(x1, y1, x2, y2)
        m = manhattan(x1, y1, x2, y2)
        assert c <= e + 1e-9
        assert e <= m + 1e-9


class TestBoundingBox:
    def test_of_points(self):
        box = BoundingBox.of_points([1.0, 3.0, 2.0], [5.0, -1.0, 0.0])
        assert (box.xmin, box.ymin, box.xmax, box.ymax) == (1.0, -1.0, 3.0, 5.0)

    def test_of_points_empty_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox.of_points([], [])

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(1.0, 0.0, 0.0, 1.0)

    def test_dimensions(self):
        box = BoundingBox(0, 0, 2, 5)
        assert box.width == 2 and box.height == 5 and box.side == 5

    def test_contains_closed(self):
        box = BoundingBox(0, 0, 1, 1)
        assert box.contains(0, 0) and box.contains(1, 1)
        assert not box.contains(1.01, 0.5)

    def test_intersects(self):
        a = BoundingBox(0, 0, 1, 1)
        assert a.intersects(BoundingBox(1, 1, 2, 2))  # shared corner
        assert not a.intersects(BoundingBox(1.1, 0, 2, 1))

    def test_expanded(self):
        box = BoundingBox(0, 0, 1, 1).expanded(0.5)
        assert box == BoundingBox(-0.5, -0.5, 1.5, 1.5)
        with pytest.raises(ValueError):
            BoundingBox(0, 0, 1, 1).expanded(-1)

    def test_quadrants_partition(self):
        box = BoundingBox(0, 0, 2, 2)
        sw, se, nw, ne = box.quadrants()
        assert sw == BoundingBox(0, 0, 1, 1)
        assert ne == BoundingBox(1, 1, 2, 2)
        assert se.width == se.height == 1

    def test_degenerate_box_allowed(self):
        box = BoundingBox(1, 1, 1, 1)
        assert box.side == 0
        assert box.contains(1, 1)


class TestHelpers:
    def test_square_hull(self):
        hull = square_hull(BoundingBox(0, 0, 2, 5))
        assert hull.width == hull.height == 5
        assert hull.xmin == 0 and hull.ymin == 0

    def test_bucket_of(self):
        assert bucket_of(0.0, 1.0) == 0
        assert bucket_of(0.99, 1.0) == 0
        assert bucket_of(1.0, 1.0) == 1
        with pytest.raises(ValueError):
            bucket_of(1.0, 0.0)

    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        with pytest.raises(ValueError):
            mean([])

    @given(st.lists(st.tuples(st.floats(-100, 100), st.floats(-100, 100)),
                    min_size=1, max_size=30))
    def test_hull_contains_all_points(self, pts):
        xs = [p[0] for p in pts]
        ys = [p[1] for p in pts]
        hull = square_hull(BoundingBox.of_points(xs, ys))
        assert all(hull.contains(x, y) for x, y in pts)
