"""Unit + property tests for Morton codes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph.coords import BoundingBox
from repro.graph.morton import (
    MORTON_BITS,
    MORTON_MAX,
    MORTON_SIDE,
    MortonMapper,
    morton_decode,
    morton_encode,
    quadtree_interval,
)

cells = st.integers(0, MORTON_SIDE - 1)


class TestCodes:
    def test_known_values(self):
        assert morton_encode(0, 0) == 0
        assert morton_encode(1, 0) == 1
        assert morton_encode(0, 1) == 2
        assert morton_encode(1, 1) == 3
        assert morton_encode(2, 0) == 4

    def test_range_checks(self):
        with pytest.raises(ValueError):
            morton_encode(-1, 0)
        with pytest.raises(ValueError):
            morton_encode(0, MORTON_SIDE)
        with pytest.raises(ValueError):
            morton_decode(-1)
        with pytest.raises(ValueError):
            morton_decode(MORTON_MAX + 1)

    @given(cells, cells)
    def test_roundtrip(self, ix, iy):
        assert morton_decode(morton_encode(ix, iy)) == (ix, iy)

    @given(cells, cells)
    def test_distinct_cells_distinct_codes(self, ix, iy):
        other = ((ix + 1) % MORTON_SIDE, iy)
        assert morton_encode(*other) != morton_encode(ix, iy)

    @given(cells, cells)
    def test_monotone_in_each_axis_within_quadrant(self, ix, iy):
        # Within the same cell, increasing x by 1 where the low bit is 0
        # increases the code (Z-order local monotonicity).
        if ix % 2 == 0:
            assert morton_encode(ix + 1, iy) > morton_encode(ix, iy)


class TestQuadtreeInterval:
    def test_root_interval(self):
        lo, hi = quadtree_interval(0, 0, 0)
        assert lo == 0 and hi == MORTON_MAX + 1

    def test_leaf_interval(self):
        lo, hi = quadtree_interval(5, 9, MORTON_BITS)
        assert hi - lo == 1
        assert lo == morton_encode(5, 9)

    def test_depth_range_checked(self):
        with pytest.raises(ValueError):
            quadtree_interval(0, 0, MORTON_BITS + 1)

    @given(st.integers(0, 6), st.data())
    def test_children_partition_parent(self, depth, data):
        side = 1 << depth
        ix = data.draw(st.integers(0, side - 1))
        iy = data.draw(st.integers(0, side - 1))
        lo, hi = quadtree_interval(ix, iy, depth)
        child_ranges = sorted(
            quadtree_interval(2 * ix + dx, 2 * iy + dy, depth + 1)
            for dx in (0, 1)
            for dy in (0, 1)
        )
        assert child_ranges[0][0] == lo
        assert child_ranges[-1][1] == hi
        for (a_lo, a_hi), (b_lo, b_hi) in zip(child_ranges, child_ranges[1:]):
            assert a_hi == b_lo  # contiguous, disjoint

    @given(st.integers(0, 8), st.data())
    def test_cell_codes_inside_interval(self, depth, data):
        side = 1 << depth
        ix = data.draw(st.integers(0, side - 1))
        iy = data.draw(st.integers(0, side - 1))
        lo, hi = quadtree_interval(ix, iy, depth)
        shift = MORTON_BITS - depth
        sub_x = data.draw(st.integers(0, (1 << shift) - 1))
        sub_y = data.draw(st.integers(0, (1 << shift) - 1))
        code = morton_encode((ix << shift) + sub_x, (iy << shift) + sub_y)
        assert lo <= code < hi


class TestMapper:
    def test_corners_map_inside(self):
        m = MortonMapper(BoundingBox(0, 0, 10, 10))
        assert m.cell_of(0, 0) == (0, 0)
        ix, iy = m.cell_of(10, 10)
        assert ix == MORTON_SIDE - 1 and iy == MORTON_SIDE - 1

    def test_clamping(self):
        m = MortonMapper(BoundingBox(0, 0, 10, 10))
        assert m.cell_of(-5, 100) == (0, MORTON_SIDE - 1)

    def test_degenerate_box(self):
        m = MortonMapper(BoundingBox(3, 3, 3, 3))
        assert m.encode(3, 3) == 0

    @given(st.floats(0, 10), st.floats(0, 10), st.floats(0, 10), st.floats(0, 10))
    def test_order_preserved_on_axis(self, x1, y, x2, _unused):
        m = MortonMapper(BoundingBox(0, 0, 10, 10))
        c1 = m.cell_of(x1, y)[0]
        c2 = m.cell_of(x2, y)[0]
        if x1 < x2:
            assert c1 <= c2
